"""Minimal pure-Python ``bdist_wheel`` distutils command (shim).

Supports exactly what this offline environment needs:

- ``setup.py dist_info`` (setuptools calls ``bdist_wheel.egg2dist`` to turn
  an egg-info directory into a dist-info directory),
- building a ``py3-none-any`` wheel for pure-Python projects so
  ``pip install .`` / ``pip wheel`` work.

Projects with C extensions are rejected loudly rather than mis-tagged.
"""

from __future__ import annotations

import os
import shutil
import sys

from distutils import log
from distutils.core import Command
import io

from email.generator import Generator

from wheel import __version__ as wheel_version
from wheel.metadata import pkginfo_to_metadata
from wheel.wheelfile import WheelFile

__all__ = ["bdist_wheel"]


class bdist_wheel(Command):
    description = "create a wheel distribution (offline shim)"

    user_options = [
        ("bdist-dir=", "b", "temporary directory for creating the distribution"),
        ("dist-dir=", "d", "directory to put final built distributions in"),
        ("keep-temp", "k", "keep the pseudo-installation tree"),
        ("universal", None, "ignored (compatibility)"),
        ("python-tag=", None, "Python implementation compatibility tag"),
        ("build-number=", None, "build number"),
        ("plat-name=", "p", "ignored (pure wheels only)"),
    ]

    boolean_options = ["keep-temp", "universal"]

    def initialize_options(self) -> None:
        self.bdist_dir = None
        self.dist_dir = None
        self.keep_temp = False
        self.universal = False
        self.python_tag = f"py{sys.version_info[0]}"
        self.build_number = None
        self.plat_name = None

    def finalize_options(self) -> None:
        if self.bdist_dir is None:
            bdist_base = self.get_finalized_command("bdist").bdist_base
            self.bdist_dir = os.path.join(bdist_base, "wheel")
        if self.dist_dir is None:
            self.dist_dir = "dist"
        if self.distribution.has_ext_modules():
            raise RuntimeError(
                "the offline bdist_wheel shim only builds pure-Python wheels"
            )
        self.root_is_pure = True

    # ------------------------------------------------------------------
    def get_tag(self) -> tuple[str, str, str]:
        return (self.python_tag, "none", "any")

    @property
    def wheel_dist_name(self) -> str:
        components = [
            self.distribution.get_name().replace("-", "_"),
            self.distribution.get_version(),
        ]
        if self.build_number:
            components.append(self.build_number)
        return "-".join(components)

    # ------------------------------------------------------------------
    def run(self) -> None:
        build_scripts = self.reinitialize_command("build_scripts")
        build_scripts.executable = "python"
        build_scripts.force = True

        self.run_command("build")
        install = self.reinitialize_command("install", reinit_subcommands=True)
        install.root = self.bdist_dir
        install.compile = False
        install.skip_build = True
        install.warn_dir = False
        # Flatten: everything into the wheel root (purelib layout).
        prefix = "/wheelroot"
        install.install_lib = f"{prefix}/lib"
        install.install_scripts = f"{prefix}/data/scripts"
        install.install_headers = f"{prefix}/data/headers"
        install.install_data = f"{prefix}/data/data"
        self.run_command("install")

        libdir = os.path.join(self.bdist_dir, "wheelroot", "lib")
        if not os.path.isdir(libdir):
            os.makedirs(libdir)

        # dist-info alongside the installed modules.
        egg_info_cmd = self.get_finalized_command("egg_info")
        egg_info_cmd.run()
        distinfo_name = (
            f"{self.distribution.get_name().replace('-', '_')}-"
            f"{self.distribution.get_version()}.dist-info"
        )
        distinfo_path = os.path.join(libdir, distinfo_name)
        self.egg2dist(egg_info_cmd.egg_info, distinfo_path)

        # Data directory (scripts etc.).
        dataroot = os.path.join(self.bdist_dir, "wheelroot", "data")
        if os.path.isdir(dataroot):
            data_name = distinfo_name.replace(".dist-info", ".data")
            target = os.path.join(libdir, data_name)
            if os.path.exists(target):
                shutil.rmtree(target)
            shutil.move(dataroot, target)

        os.makedirs(self.dist_dir, exist_ok=True)
        impl_tag, abi_tag, plat_tag = self.get_tag()
        archive_name = f"{self.wheel_dist_name}-{impl_tag}-{abi_tag}-{plat_tag}.whl"
        wheel_path = os.path.join(self.dist_dir, archive_name)
        log.info("creating %s", wheel_path)
        with WheelFile(wheel_path, "w") as wf:
            wf.write_files(libdir)

        getattr(self.distribution, "dist_files", []).append(
            ("bdist_wheel", f"py{sys.version_info[0]}", wheel_path)
        )
        if not self.keep_temp:
            shutil.rmtree(self.bdist_dir, ignore_errors=True)

    # ------------------------------------------------------------------
    def write_wheelfile(
        self, wheelfile_base: str, generator: str | None = None
    ) -> None:
        """Write the ``WHEEL`` metadata file into a dist-info directory."""
        impl_tag, abi_tag, plat_tag = self.get_tag()
        if generator is None:
            generator = f"wheel-shim ({wheel_version})"
        content = (
            "Wheel-Version: 1.0\n"
            f"Generator: {generator}\n"
            f"Root-Is-Purelib: {'true' if self.root_is_pure else 'false'}\n"
            f"Tag: {impl_tag}-{abi_tag}-{plat_tag}\n"
        )
        if self.build_number:
            content += f"Build: {self.build_number}\n"
        path = os.path.join(wheelfile_base, "WHEEL")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(content)

    # ------------------------------------------------------------------
    def egg2dist(self, egginfo_path: str, distinfo_path: str) -> None:
        """Convert an egg-info directory into a dist-info directory."""
        if os.path.exists(distinfo_path):
            shutil.rmtree(distinfo_path)
        os.makedirs(distinfo_path)

        pkginfo = os.path.join(egginfo_path, "PKG-INFO")
        msg = pkginfo_to_metadata(egginfo_path, pkginfo)
        # Flatten to text and write UTF-8 explicitly: the wheel spec says
        # METADATA is UTF-8, and BytesGenerator's compat32 ascii encoding
        # chokes on non-ascii summaries/readmes regardless of locale.
        buf = io.StringIO()
        Generator(buf, maxheaderlen=0).flatten(msg)
        with open(os.path.join(distinfo_path, "METADATA"), "w",
                  encoding="utf-8") as fh:
            fh.write(buf.getvalue())

        for extra in ("entry_points.txt", "top_level.txt"):
            src = os.path.join(egginfo_path, extra)
            if os.path.exists(src):
                shutil.copy(src, os.path.join(distinfo_path, extra))

        impl_tag, abi_tag, plat_tag = self.get_tag()
        wheel_msg = (
            "Wheel-Version: 1.0\n"
            f"Generator: wheel-shim ({wheel_version})\n"
            f"Root-Is-Purelib: true\n"
            f"Tag: {impl_tag}-{abi_tag}-{plat_tag}\n"
        )
        with open(os.path.join(distinfo_path, "WHEEL"), "w", encoding="utf-8") as fh:
            fh.write(wheel_msg)
