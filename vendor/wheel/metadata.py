"""egg-info -> wheel METADATA conversion (shim).

Implements the wheel project's ``pkginfo_to_metadata``: merge an egg-info
``PKG-INFO`` with ``requires.txt`` into a Metadata-2.1 message carrying
``Requires-Dist`` / ``Provides-Extra`` headers.
"""

from __future__ import annotations

import os
from email.message import Message
from email.parser import Parser

__all__ = ["pkginfo_to_metadata"]


def _requires_to_requires_dist(requirement: str) -> str:
    """Normalize an egg-info requirement line to Requires-Dist syntax."""
    return requirement.strip()


def _convert_requirements(lines: list[str], extra: str | None) -> list[str]:
    out = []
    for line in lines:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        spec = _requires_to_requires_dist(line)
        if extra:
            if ";" in spec:
                req, marker = spec.split(";", 1)
                spec = f'{req.strip()} ; ({marker.strip()}) and extra == "{extra}"'
            else:
                spec = f'{spec} ; extra == "{extra}"'
        out.append(spec)
    return out


def _parse_requires_txt(text: str) -> list[tuple[str | None, list[str]]]:
    """Split requires.txt into (extra-or-None, requirement-lines) sections."""
    sections: list[tuple[str | None, list[str]]] = [(None, [])]
    for line in text.splitlines():
        line = line.strip()
        if line.startswith("[") and line.endswith("]"):
            sections.append((line[1:-1], []))
        elif line:
            sections[-1][1].append(line)
    return sections


def pkginfo_to_metadata(egg_info_path: str, pkginfo_path: str) -> Message:
    """Build the wheel METADATA message from an egg-info directory."""
    with open(pkginfo_path, encoding="utf-8") as fh:
        msg = Parser().parse(fh)
    # Upgrade declared metadata version; drop egg-only fields.
    if "Metadata-Version" in msg:
        del msg["Metadata-Version"]
    msg["Metadata-Version"] = "2.1"
    for field in ("Requires", "Provides", "Obsoletes"):
        del msg[field]

    requires_path = os.path.join(egg_info_path, "requires.txt")
    if os.path.exists(requires_path) and "Requires-Dist" not in msg:
        with open(requires_path, encoding="utf-8") as fh:
            sections = _parse_requires_txt(fh.read())
        for extra, lines in sections:
            condition = None
            extra_name = extra
            if extra and ":" in extra:
                extra_name, condition = extra.split(":", 1)
                extra_name = extra_name.strip() or None
            if extra_name:
                msg["Provides-Extra"] = extra_name
            for spec in _convert_requirements(lines, extra_name):
                if condition and ";" not in spec:
                    spec = f"{spec} ; {condition.strip()}"
                msg["Requires-Dist"] = spec
    return msg
