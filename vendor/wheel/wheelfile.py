"""Spec-compliant minimal ``WheelFile`` (see package docstring).

Implements the subset of the real ``wheel.wheelfile.WheelFile`` API that
setuptools' ``bdist_wheel``/``editable_wheel`` paths use:

- construction from a ``{name}-{version}(-{build})?-{tags}.whl`` path,
- ``writestr`` / ``write`` / ``write_files`` with sha256 tracking,
- RECORD generation on ``close()`` per the binary-distribution spec
  (``path,sha256=<urlsafe-b64-nopad>,size``; RECORD's own row empty).
"""

from __future__ import annotations

import base64
import hashlib
import os
import re
import stat
import zipfile

__all__ = ["WheelFile", "WheelError"]

_WHEEL_NAME_RE = re.compile(
    r"""^(?P<name>[^\s-]+?)-(?P<version>[^\s-]+?)
        (-(?P<build>\d[^\s-]*))?
        -(?P<pyver>[^\s-]+?)-(?P<abi>[^\s-]+?)-(?P<plat>\S+)\.whl$""",
    re.VERBOSE,
)


class WheelError(Exception):
    """Raised for malformed wheel names or misuse."""


def _urlsafe_b64_nopad(digest: bytes) -> str:
    return base64.urlsafe_b64encode(digest).rstrip(b"=").decode("ascii")


class WheelFile(zipfile.ZipFile):
    """A ZipFile that maintains the wheel RECORD automatically."""

    def __init__(self, file, mode: str = "r", compression=zipfile.ZIP_DEFLATED):
        basename = os.path.basename(os.fspath(file))
        match = _WHEEL_NAME_RE.match(basename)
        if match is None:
            raise WheelError(f"bad wheel filename {basename!r}")
        self.parsed_filename = match
        name, version = match.group("name"), match.group("version")
        self.dist_info_path = f"{name}-{version}.dist-info"
        self.record_path = f"{self.dist_info_path}/RECORD"
        self._file_hashes: dict[str, tuple[str, int] | None] = {}
        super().__init__(file, mode=mode, compression=compression)

    # -- write side -----------------------------------------------------
    def writestr(self, zinfo_or_arcname, data, *args, **kwargs) -> None:
        if isinstance(data, str):
            data = data.encode("utf-8")
        super().writestr(zinfo_or_arcname, data, *args, **kwargs)
        arcname = (
            zinfo_or_arcname.filename
            if isinstance(zinfo_or_arcname, zipfile.ZipInfo)
            else zinfo_or_arcname
        )
        if arcname != self.record_path:
            digest = hashlib.sha256(data).digest()
            self._file_hashes[arcname] = (
                f"sha256={_urlsafe_b64_nopad(digest)}",
                len(data),
            )

    def write(self, filename, arcname=None, compress_type=None) -> None:
        with open(filename, "rb") as fh:
            data = fh.read()
        if arcname is None:
            arcname = os.path.relpath(filename, os.path.curdir)
        arcname = os.path.normpath(arcname).replace(os.sep, "/")
        zinfo = zipfile.ZipInfo.from_file(filename, arcname)
        zinfo.compress_type = (
            self.compression if compress_type is None else compress_type
        )
        # Preserve the executable bit like the real implementation.
        st_mode = os.stat(filename).st_mode
        zinfo.external_attr = (stat.S_IMODE(st_mode) | stat.S_IFMT(st_mode)) << 16
        self.writestr(zinfo, data)

    def write_files(self, base_dir) -> None:
        """Add every file under ``base_dir``, RECORD last."""
        deferred: list[tuple[str, str]] = []
        for root, _dirs, files in os.walk(base_dir):
            for name in sorted(files):
                path = os.path.join(root, name)
                arcname = os.path.relpath(path, base_dir).replace(os.sep, "/")
                if arcname == self.record_path:
                    continue
                deferred.append((arcname, path))
        deferred.sort()
        for arcname, path in deferred:
            self.write(path, arcname)

    def close(self) -> None:
        if self.fp is not None and self.mode == "w":
            lines = [
                f"{arc},{h[0]},{h[1]}"
                for arc, h in sorted(self._file_hashes.items())
                if h is not None
            ]
            lines.append(f"{self.record_path},,")
            super().writestr(self.record_path, "\n".join(lines) + "\n")
        super().close()
