"""Minimal offline shim for the PyPA ``wheel`` package.

This environment has setuptools but no network and no ``wheel``
distribution, which breaks ``pip install -e .`` (setuptools'
``editable_wheel`` command imports :mod:`wheel.wheelfile`).  This shim
implements the small :class:`wheel.wheelfile.WheelFile` surface setuptools
uses — a ZipFile that records sha256 digests and emits a spec-compliant
RECORD on close.  Installed into site-packages by ``tools/install_dev.sh``.
"""

__version__ = "0.0.0+reproshim"
