"""Ablation benchmarks for the design choices DESIGN.md calls out:

- analytic vs DES task-model fidelity (accuracy and cost),
- influence-guided search-space pruning vs full-space hill climbing
  (the paper's Sec. VI proposal),
- the value of per-architecture noise modeling for the Table III result.
"""

import time

import numpy as np
import pytest

from conftest import bench_dataset, emit

from repro.arch.machines import MILAN
from repro.core.envspace import EnvSpace
from repro.core.influence import influence_by_arch_application
from repro.core.pruning import hill_climb, prune_space
from repro.frame.table import Table
from repro.runtime.executor import RuntimeExecutor
from repro.runtime.icv import EnvConfig
from repro.workloads.base import get_workload


def test_ablation_task_fidelity(benchmark, output_dir):
    """Analytic task model vs the DES ground truth: error and speed.

    The analytic mode exists so quarter-million-sample sweeps are
    tractable; this ablation quantifies what it gives up.
    """
    program = get_workload("health").program("small")
    configs = [
        EnvConfig(),
        EnvConfig(library="turnaround"),
        EnvConfig(blocktime="0"),
        EnvConfig(num_threads=24),
    ]

    def timed(fn, repeats=5):
        best = float("inf")
        value = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            value = fn()
            best = min(best, time.perf_counter() - t0)
        return value, best

    def measure():
        rows = []
        for config in configs:
            analytic, t_analytic = timed(
                lambda c=config: RuntimeExecutor(MILAN, c, "analytic")
                .execute(program)
            )
            des, t_des = timed(
                lambda c=config: RuntimeExecutor(MILAN, c, "des")
                .execute(program)
            )
            rows.append(
                {
                    "config": " ".join(
                        f"{k}={v}" for k, v in config.as_env().items()
                    ) or "(default)",
                    "analytic_s": analytic,
                    "des_s": des,
                    "rel_error": abs(analytic - des) / des,
                    "eval_cost_ratio": t_des / max(t_analytic, 1e-9),
                }
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        "Ablation: analytic vs DES task model (health.small, milan)",
        Table.from_records(rows).to_text(float_fmt="{:.3g}"),
        output_dir,
        "ablation_fidelity.txt",
    )
    for row in rows:
        assert row["rel_error"] < 0.5, row
    # The analytic mode must be dramatically cheaper (it is why sweeps at
    # paper scale are feasible).
    assert np.median([r["eval_cost_ratio"] for r in rows]) > 3


def test_ablation_pruning(benchmark, output_dir):
    """Influence-guided pruning vs full-space hill climbing (Sec. VI)."""
    dataset = bench_dataset("milan")
    inf = {
        r.label: r for r in influence_by_arch_application(dataset).rows
    }
    space = EnvSpace()

    def run():
        rows = []
        for app in ("nqueens", "cg", "xsbench"):
            program = get_workload(app).program(
                get_workload(app).default_input
            )
            full = hill_climb(program, MILAN, space, restarts=1, seed=0)
            pruned_space = prune_space(space, inf[("milan", app)],
                                       threshold=0.06)
            pruned = hill_climb(program, MILAN, pruned_space, restarts=1,
                                seed=0)
            rows.append(
                {
                    "app": app,
                    "full_evals": full.evaluations,
                    "full_speedup": full.speedup,
                    "pruned_vars": len(pruned_space.variables),
                    "pruned_evals": pruned.evaluations,
                    "pruned_speedup": pruned.speedup,
                    "retained": pruned.speedup / full.speedup,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation: influence-pruned vs full-space hill climbing (milan)",
        Table.from_records(rows).to_text(float_fmt="{:.3f}"),
        output_dir,
        "ablation_pruning.txt",
    )
    for row in rows:
        assert row["pruned_evals"] < row["full_evals"], row
        # Pruning must retain most of the achievable speedup.
        assert row["retained"] > 0.75, row


def test_ablation_noise_model(benchmark, output_dir):
    """Without per-arch drift, the Table III Wilcoxon contrast vanishes.

    Re-runs the paired test on Milan data with the drift factored out —
    the significance must disappear, demonstrating the drift term (not the
    lognormal jitter) carries the paper's machine-consistency finding.
    """
    from repro.arch.noise import get_noise_model
    from repro.core.dataset import records_to_table, run_columns
    from repro.stats.wilcoxon import wilcoxon_signed_rank
    from conftest import bench_sweep

    sweep = bench_sweep("milan", workloads=("alignment",), repetitions=2)
    table = records_to_table(sweep.records)

    def run():
        cols = run_columns(table)
        r0 = np.asarray(table[cols[0]], float)
        r1 = np.asarray(table[cols[1]], float)
        with_drift = wilcoxon_signed_rank(r0, r1)
        model = get_noise_model("milan")
        detrended = wilcoxon_signed_rank(
            r0 / model.drift_factor(0), r1 / model.drift_factor(1)
        )
        return with_drift, detrended

    with_drift, detrended = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation: run-index drift drives the Wilcoxon significance",
        (
            f"with drift   : p = {with_drift.pvalue:.3g} (significant: "
            f"{with_drift.significant()})\n"
            f"drift removed: p = {detrended.pvalue:.3g} (significant: "
            f"{detrended.significant()})"
        ),
        output_dir,
        "ablation_noise.txt",
    )
    assert with_drift.pvalue < 1e-6
    assert detrended.pvalue > 0.01
