"""Regenerate Table III (Wilcoxon run-consistency tests) and Table IV
(per-run-index runtime statistics) for the Alignment benchmark."""

import numpy as np
import pytest

from conftest import bench_sweep, emit

from repro.core.dataset import records_to_table, run_columns
from repro.frame.table import Table
from repro.stats.descriptive import summarize
from repro.stats.wilcoxon import wilcoxon_signed_rank

ARCHS = ("a64fx", "milan", "skylake")

#: Paper Table III: which pairs were significant (p < 0.05).
PAPER_SIGNIFICANCE = {
    "a64fx": {"R0,R1": False, "R1,R2": False, "R2,R3": False},
    "milan": {"R0,R1": True, "R1,R2": True, "R2,R3": True},
    "skylake": {"R0,R1": False, "R1,R2": True, "R2,R3": True},
}


@pytest.fixture(scope="module")
def alignment_tables():
    """Alignment-small runtime tables with 4 repetitions per arch."""
    out = {}
    for arch in ARCHS:
        sweep = bench_sweep(arch, workloads=("alignment",), repetitions=4)
        table = records_to_table(sweep.records)
        mask = np.asarray([s == "small" for s in table["input_size"]])
        out[arch] = table.filter(mask)
    return out


def test_table3_wilcoxon(benchmark, alignment_tables, output_dir):
    """Table III: consistency of repeated runs per configuration.

    A64FX pairs must be non-significant (quiet machine); every Milan pair
    and the later Skylake pairs significant — the paper's exact pattern.
    """

    def run_tests():
        rows = []
        for arch, table in alignment_tables.items():
            cols = run_columns(table)
            runs = [np.asarray(table[c], float) for c in cols]
            for i in range(len(runs) - 1):
                res = wilcoxon_signed_rank(runs[i], runs[i + 1])
                rows.append(
                    {
                        "arch_benchmark": f"{arch}-alignment-small",
                        "pair": f"R{i},R{i + 1}",
                        "test_stat": res.statistic,
                        "p_value": res.pvalue,
                        "significant": int(res.significant()),
                    }
                )
        return rows

    rows = benchmark.pedantic(run_tests, rounds=1, iterations=1)
    table = Table.from_records(rows)
    emit(
        "Table III: Wilcoxon test results for runtime comparisons",
        table.to_text(float_fmt="{:.3g}"),
        output_dir,
        "table3.txt",
    )

    for row in rows:
        arch = row["arch_benchmark"].split("-")[0]
        expected = PAPER_SIGNIFICANCE[arch][row["pair"]]
        assert bool(row["significant"]) == expected, (
            f"{arch} {row['pair']}: p={row['p_value']:.3g}, "
            f"paper says significant={expected}"
        )


def test_table4_runtime_stats(benchmark, alignment_tables, output_dir):
    """Table IV: mean/std per run index.

    Shapes asserted: A64FX means identical across run indices; Milan's
    Runtime_0 mean clearly above Runtime_1/2; Skylake means flat.
    """

    def compute():
        rows = []
        for arch, table in alignment_tables.items():
            for c in run_columns(table)[:3]:  # the paper shows 3 indices
                s = summarize(np.asarray(table[c], float))
                rows.append(
                    {
                        "arch_application": f"{arch}-alignment-small",
                        "runtime_idx": c.replace("runtime_", "Runtime_"),
                        "mean_sec": s.mean,
                        "std_dev_sec": s.std,
                    }
                )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = Table.from_records(rows)
    emit(
        "Table IV: Runtime statistics for different architectures",
        table.to_text(float_fmt="{:.4f}"),
        output_dir,
        "table4.txt",
    )

    means = {
        (r["arch_application"].split("-")[0], r["runtime_idx"]): r["mean_sec"]
        for r in rows
    }
    # A64FX: stationary within 1%.
    assert means[("a64fx", "Runtime_1")] == pytest.approx(
        means[("a64fx", "Runtime_0")], rel=0.01
    )
    # Milan: first run clearly slower (paper: 0.135 vs 0.109).
    assert means[("milan", "Runtime_0")] > 1.1 * means[("milan", "Runtime_1")]
    # Skylake: flat means (the drift only shows up pairwise).
    assert means[("skylake", "Runtime_1")] == pytest.approx(
        means[("skylake", "Runtime_0")], rel=0.02
    )
