"""Extension benchmark: pairwise variable interactions.

The paper's conclusion: hill climbing risks local minima "especially when
the dependency relationships between parameters are unclear".  This bench
computes those dependencies from a dedicated two-factor sweep and
confirms the structural expectations: the wait-policy pair
(KMP_LIBRARY x KMP_BLOCKTIME) is strongly redundant, while mechanistically
disjoint knobs compose almost independently.
"""

import numpy as np
import pytest

from conftest import emit

from repro.core.dataset import enrich_with_speedup, records_to_table
from repro.core.interactions import interaction_matrix
from repro.core.sweep import SweepPlan, run_sweep
from repro.frame.ops import concat_tables
from repro.frame.table import Table


@pytest.fixture(scope="module")
def two_factor_dataset():
    tables = []
    for arch in ("a64fx", "milan"):
        result = run_sweep(
            SweepPlan(
                arch=arch,
                workload_names=("nqueens", "health", "su3bench", "cg"),
                scale="twofactor",
                repetitions=1,
            )
        )
        tables.append(records_to_table(result.records))
    return enrich_with_speedup(concat_tables(tables))


def test_ext_variable_interactions(benchmark, two_factor_dataset, output_dir):
    """Quantify the paper's 'unclear dependency relationships'."""

    def run():
        return interaction_matrix(two_factor_dataset, min_samples=3)

    pairs = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "pair": p.label,
            "strength": p.strength,
            "synergy": "+".join(p.best_synergy),
            "synergy_val": p.best_synergy_value,
            "conflict": "+".join(p.worst_conflict),
            "conflict_val": p.worst_conflict_value,
        }
        for p in pairs
    ]
    emit(
        "Extension: pairwise variable interactions (log-speedup scale)",
        Table.from_records(rows).to_text(float_fmt="{:.4f}"),
        output_dir,
        "ext_interactions.txt",
    )

    by_pair = {(p.var_a, p.var_b): p for p in pairs}
    # The wait-policy redundancy must rank among the strongest pairs.
    lib_bt = by_pair[("library", "blocktime")]
    strengths = sorted((p.strength for p in pairs), reverse=True)
    assert lib_bt.strength >= strengths[min(2, len(strengths) - 1)]
    # ... and its worst conflict is the turnaround+infinite double-buy.
    assert lib_bt.worst_conflict_value < -0.02
    assert set(lib_bt.worst_conflict) == {"turnaround", "infinite"}
    # Disjoint mechanisms compose ~independently.
    sched_align = by_pair.get(("schedule", "align_alloc"))
    if sched_align is not None:
        assert sched_align.strength < lib_bt.strength
