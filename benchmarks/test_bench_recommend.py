"""Regenerate Table VII (best-performing variables/values) and the
Sec. V-4 worst-trend finding."""

import numpy as np
import pytest

from conftest import emit

from repro.core.recommend import best_variable_values, worst_trends
from repro.frame.ops import concat_tables
from repro.frame.table import Table


@pytest.fixture(scope="module")
def combined_dataset(all_arch_datasets):
    return concat_tables(list(all_arch_datasets.values()))


def test_table7_best_variables(benchmark, combined_dataset, output_dir):
    """Table VII: per-app/arch enriched variable-value pairs.

    The paper's headline rows:
    - NQueens: KMP_LIBRARY=turnaround (all architectures),
    - CG on Skylake: KMP_FORCE_REDUCTION in {tree, atomic} (+ alignment).
    """

    def mine():
        return best_variable_values(combined_dataset, quantile=0.05)

    recs = benchmark.pedantic(mine, rounds=1, iterations=1)

    rows = [
        {
            "app": r.app,
            "arch": r.arch,
            "variable": r.variable,
            "values": "/".join(r.values),
            "lift": r.lift,
            "best_speedup": r.best_speedup,
        }
        for r in recs
        if r.app in ("nqueens", "cg")
    ]
    emit(
        "Table VII: Best performing environment variables and values",
        Table.from_records(rows).to_text(float_fmt="{:.2f}"),
        output_dir,
        "table7.txt",
    )

    # NQueens: active waiting (turnaround or its blocktime=infinite twin)
    # enriched in the top slice on every architecture.
    for arch in ("a64fx", "skylake", "milan"):
        group = [r for r in recs if r.app == "nqueens" and r.arch == arch]
        active_values = set()
        for r in group:
            if r.variable in ("library", "blocktime"):
                active_values |= set(r.values)
        assert "turnaround" in active_values or "infinite" in active_values, (
            arch,
            group,
        )

    # CG on Skylake: the reduction method appears among the enriched
    # variables with tree and/or atomic values (never critical).
    cg_sky = [
        r
        for r in recs
        if r.app == "cg" and r.arch == "skylake" and r.variable == "force_reduction"
    ]
    if cg_sky:  # enrichment can fall below threshold at tiny scales
        assert set(cg_sky[0].values) <= {"tree", "atomic", "unset"}


def test_worst_trend_master_binding(benchmark, combined_dataset, output_dir):
    """Sec. V-4: master binding at large thread counts is the worst trend."""

    def mine():
        return worst_trends(combined_dataset, quantile=0.05)

    trends = benchmark.pedantic(mine, rounds=1, iterations=1)
    rows = [
        {
            "variable": t.variable,
            "value": t.value,
            "lift": t.lift,
            "mean_speedup": t.mean_speedup,
        }
        for t in trends
    ]
    emit(
        "Sec. V-4: Worst-performance trends",
        Table.from_records(rows).to_text(float_fmt="{:.3f}"),
        output_dir,
        "worst_trends.txt",
    )

    assert trends, "no worst trends mined"
    top = trends[0]
    assert top.variable == "proc_bind" and top.value == "master"
    assert top.mean_speedup < 0.5  # catastrophic, not merely slow

    # And the mechanism: it is the large-thread-count runs that sink.
    table = combined_dataset
    master = table.filter(
        np.asarray([b == "master" for b in table["proc_bind"]])
    )
    threads = np.asarray(master["num_threads"], int)
    speedup = np.asarray(master["speedup"], float)
    big = speedup[threads >= np.median(threads)]
    small = speedup[threads < np.median(threads)]
    if small.size and big.size:
        assert np.median(big) <= np.median(small)
