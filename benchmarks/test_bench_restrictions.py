"""Extension benchmarks: lifting the paper's scoping restrictions.

Three restrictions the paper states explicitly, each lifted and priced:

- *"but no chunk sizes"* (Sec. III-3): sweep OMP_SCHEDULE with chunks and
  measure what chunked dynamic rescues,
- per-application (not per-kernel) tuning (Sec. IV): per-region tuning's
  extra headroom over one-config-per-run,
- the two KMP_* wait variables vs the single derived OMP_WAIT_POLICY
  (Sec. V-3's "one may choose to optionally only tune this variable").
"""

import numpy as np
import pytest

from conftest import emit

from repro.arch.machines import MILAN
from repro.core.envspace import (
    EnvSpace,
    chunked_schedule_variables,
    wait_policy_variables,
)
from repro.core.perkernel import per_kernel_tune
from repro.core.pruning import hill_climb
from repro.core.threads import recommend_threads
from repro.frame.table import Table
from repro.runtime.executor import execute
from repro.runtime.icv import EnvConfig
from repro.runtime.program import LoadPattern, Program
from repro.workloads.base import get_workload
from repro.workloads.generator import (
    synthetic_loop_workload,
    synthetic_task_workload,
)


def test_ext_chunk_sizes(benchmark, output_dir):
    """Sec. III-3 lifted: chunk sizes in the OMP_SCHEDULE sweep."""
    fine = synthetic_loop_workload(
        name="fine-grained", n_iters=400_000, iter_work=2e-8, trips=2
    )
    ramp = synthetic_loop_workload(
        name="ramped", n_iters=8000, iter_work=1e-6, trips=4,
        pattern=LoadPattern.LINEAR, imbalance=1.0,
    )

    def run():
        rows = []
        for prog in (fine, ramp):
            base = execute(prog, MILAN, EnvConfig())
            for sched in ("static", "static,16", "dynamic", "dynamic,64",
                          "dynamic,1024", "guided", "guided,64"):
                t = execute(prog, MILAN, EnvConfig(schedule=sched))
                rows.append(
                    {"program": prog.name, "schedule": sched,
                     "speedup": base / t}
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Extension: OMP_SCHEDULE chunk sizes (the paper swept kinds only)",
        Table.from_records(rows).to_text(float_fmt="{:.3f}"),
        output_dir,
        "ext_chunks.txt",
    )
    by = {(r["program"], r["schedule"]): r["speedup"] for r in rows}
    # Plain dynamic is catastrophic on the fine loop; a chunk rescues it.
    assert by[("fine-grained", "dynamic")] < 0.1
    assert by[("fine-grained", "dynamic,1024")] > 0.5
    assert (
        by[("fine-grained", "dynamic,1024")]
        > 100 * by[("fine-grained", "dynamic")]
    )
    # The ramped loop benefits from chunked static (no dispatch at all).
    assert by[("ramped", "static,16")] > 1.1
    assert by[("ramped", "static,16")] >= by[("ramped", "static")]


def test_ext_per_kernel_tuning(benchmark, output_dir):
    """Sec. IV lifted: per-region configurations."""
    loop = synthetic_loop_workload(
        n_iters=3000, iter_work=1e-6, pattern=LoadPattern.LINEAR,
        imbalance=1.2, trips=5, n_regions=1,
    )
    task = synthetic_task_workload(depth=6, branching=3, leaf_work=1e-6)
    mixed = Program("mixed", loop.phases + task.phases[1:])
    apps = [("mixed-synthetic", mixed)]
    for name in ("lulesh", "mg"):
        w = get_workload(name)
        apps.append((name, w.program(w.default_input)))

    def run():
        rows = []
        for name, prog in apps:
            res = per_kernel_tune(prog, MILAN, restarts=0)
            rows.append(
                {
                    "program": name,
                    "whole_app": res.whole_app_speedup,
                    "per_kernel": res.per_kernel_speedup,
                    "extra_gain": res.per_kernel_gain,
                    "evaluations": res.evaluations,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Extension: per-kernel vs whole-application tuning (milan)",
        Table.from_records(rows).to_text(float_fmt="{:.3f}"),
        output_dir,
        "ext_perkernel.txt",
    )
    for row in rows:
        # Per-kernel can only help; and on these workloads it helps little
        # — evidence that the paper's per-application restriction is cheap.
        assert row["per_kernel"] >= row["whole_app"] - 1e-9
        assert row["extra_gain"] < 1.25, row


def test_ext_wait_policy_knob(benchmark, output_dir):
    """Sec. V-3: tune OMP_WAIT_POLICY instead of the two KMP_* variables."""
    apps = ("nqueens", "health", "mg")

    def run():
        rows = []
        for app in apps:
            w = get_workload(app)
            prog = w.program(w.default_input)
            full = hill_climb(prog, MILAN, EnvSpace(), restarts=0, seed=1)
            wp = hill_climb(prog, MILAN, EnvSpace(wait_policy_variables()),
                            restarts=0, seed=1)
            rows.append(
                {
                    "app": app,
                    "full_speedup": full.speedup,
                    "full_evals": full.evaluations,
                    "wait_policy_speedup": wp.speedup,
                    "wait_policy_evals": wp.evaluations,
                    "retained": wp.speedup / full.speedup,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Extension: OMP_WAIT_POLICY as the single wait knob (milan)",
        Table.from_records(rows).to_text(float_fmt="{:.3f}"),
        output_dir,
        "ext_wait_policy.txt",
    )
    for row in rows:
        assert row["wait_policy_evals"] < row["full_evals"], row
        assert row["retained"] > 0.9, row  # the derived knob suffices


def test_ext_thread_recommendation(benchmark, output_dir):
    """The conclusion's deferred thread-count recommendation, computed."""
    apps = ("su3bench", "xsbench", "rsbench", "ep")

    def run():
        rows = []
        for app in apps:
            w = get_workload(app)
            rec = recommend_threads(w.program(w.default_input), MILAN)
            rows.append(
                {
                    "app": app,
                    "recommended_T": rec.best_threads,
                    "speedup_vs_full": rec.speedup_over_full_machine,
                    "saturation_T": rec.bandwidth_saturation_threads or "-",
                    "reason": rec.reason.split(":")[0],
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Extension: thread-count recommendations (milan, eighth-steps)",
        Table.from_records(rows).to_text(float_fmt="{:.3f}"),
        output_dir,
        "ext_threads.txt",
    )
    by = {r["app"]: r for r in rows}
    assert by["su3bench"]["recommended_T"] < MILAN.n_cores
    assert by["su3bench"]["speedup_vs_full"] > 1.5
    assert by["ep"]["recommended_T"] == MILAN.n_cores
