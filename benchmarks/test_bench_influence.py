"""Regenerate the influence heat maps: Fig. 2 (per application), Fig. 3
(per architecture) and Fig. 4 (per architecture-application)."""

import numpy as np
import pytest

from conftest import emit

from repro.core.influence import (
    influence_by_application,
    influence_by_arch_application,
    influence_by_architecture,
    linear_fit_quality,
)
from repro.frame.ops import concat_tables
from repro.viz.heatmap import influence_heatmap
from repro.viz.text import text_heatmap


@pytest.fixture(scope="module")
def combined_dataset(all_arch_datasets):
    return concat_tables(list(all_arch_datasets.values()))


def _render(inf, title, output_dir, stem):
    body = text_heatmap(inf.matrix(), inf.row_labels, list(inf.feature_names))
    emit(title, body, output_dir, f"{stem}.txt")
    influence_heatmap(inf, title=title).save(str(output_dir / f"{stem}.svg"))


def test_linear_fit_motivation(benchmark, combined_dataset, output_dir):
    """Sec. IV-D: plain linear regression fits runtimes poorly, motivating
    the classification reformulation."""
    r2 = benchmark.pedantic(
        lambda: linear_fit_quality(combined_dataset), rounds=1, iterations=1
    )
    emit(
        "Sec. IV-D: OLS fit quality on naive-encoded features",
        f"R^2 = {r2:.4f}  (poor fit -> classification reformulation)",
        output_dir,
        "linear_fit.txt",
    )
    assert r2 < 0.5


def test_fig2_per_application(benchmark, combined_dataset, output_dir):
    """Fig. 2: influence heat map grouped by application.

    Asserted shapes: BOTS task apps show lower Architecture reliance than
    XSBench (the paper's observation that task-app tuning transfers), and
    apps run on a single machine (Sort/Strassen) show zero Architecture
    influence.
    """
    inf = benchmark.pedantic(
        lambda: influence_by_application(combined_dataset),
        rounds=1, iterations=1,
    )
    _render(inf, "Fig. 2: influence grouped by application", output_dir,
            "fig2_per_application")

    rows = {r.label[0]: r.as_dict() for r in inf.rows}
    assert rows["xsbench"]["Architecture"] > 0.08
    assert rows["alignment"]["Architecture"] < rows["xsbench"]["Architecture"]
    for app in ("sort", "strassen"):
        assert rows[app]["Architecture"] == pytest.approx(0.0, abs=1e-9), (
            "single-arch apps show no architecture reliance"
        )
    assert inf.mean_accuracy() > 0.55


def test_fig3_per_architecture(benchmark, combined_dataset, output_dir):
    """Fig. 3: influence heat map grouped by architecture.

    Paper finding: OMP_NUM_THREADS, OMP_PROC_BIND and OMP_PLACES are the
    dominant tunables across architectures; KMP_LIBRARY/KMP_BLOCKTIME have
    some impact; KMP_FORCE_REDUCTION and KMP_ALIGN_ALLOC very little.
    """
    inf = benchmark.pedantic(
        lambda: influence_by_architecture(combined_dataset),
        rounds=1, iterations=1,
    )
    _render(inf, "Fig. 3: influence grouped by architecture", output_dir,
            "fig3_per_architecture")

    assert set(inf.row_labels) == {"a64fx", "skylake", "milan"}
    mean = {f: inf.column_mean(f) for f in inf.feature_names}

    tunables = [
        "OMP_NUM_THREADS", "OMP_PLACES", "OMP_PROC_BIND", "OMP_SCHEDULE",
        "KMP_LIBRARY", "KMP_BLOCKTIME", "KMP_FORCE_REDUCTION",
        "KMP_ALIGN_ALLOC",
    ]
    ranked = sorted(tunables, key=lambda f: -mean[f])
    # Affinity (proc_bind) ranks at the top across machines, and thread
    # count leads on the machine where thread sweeps have real headroom
    # (Milan) — the paper's "OMP_NUM_THREADS / OMP_PROC_BIND / OMP_PLACES
    # dominate" finding, modulo the known attribution split between the
    # correlated places/bind columns.
    assert "OMP_PROC_BIND" in ranked[:2]
    milan_row = {r.label[0]: r.as_dict() for r in inf.rows}["milan"]
    milan_rank = sorted(tunables, key=lambda f: -milan_row[f])
    assert "OMP_NUM_THREADS" in milan_rank[:2]
    # KMP_LIBRARY / KMP_BLOCKTIME: "some impact on all architectures".
    assert mean["KMP_LIBRARY"] > 0.05 and mean["KMP_BLOCKTIME"] > 0.05
    # The undocumented variables show very low relevance (paper Sec. V-3).
    assert mean["KMP_FORCE_REDUCTION"] < mean["OMP_PROC_BIND"]
    assert mean["KMP_ALIGN_ALLOC"] < mean["OMP_PROC_BIND"]
    assert mean["KMP_ALIGN_ALLOC"] < mean["KMP_LIBRARY"]


def test_fig4_per_arch_application(benchmark, combined_dataset, output_dir):
    """Fig. 4: influence at the finest grouping.

    Asserted shape: the rows exist for every (arch, app) the paper ran,
    and NQueens rows put their weight on the wait-policy variables while
    XSBench-on-Milan weights thread count / binding.
    """
    inf = benchmark.pedantic(
        lambda: influence_by_arch_application(combined_dataset),
        rounds=1, iterations=1,
    )
    _render(inf, "Fig. 4: influence grouped by architecture-application",
            output_dir, "fig4_per_arch_application")

    labels = set(inf.row_labels)
    assert len(labels) == 15 + 13 + 12
    assert "a64fx/sort" in labels and "milan/sort" not in labels

    rows = {r.label: r.as_dict() for r in inf.rows}
    for arch in ("a64fx", "skylake", "milan"):
        nq = rows[(arch, "nqueens")]
        wait_signal = nq["KMP_LIBRARY"] + nq["KMP_BLOCKTIME"]
        assert wait_signal > nq["KMP_ALIGN_ALLOC"], arch
        assert wait_signal > nq["OMP_SCHEDULE"], arch
    xs = rows[("milan", "xsbench")]
    assert xs["OMP_NUM_THREADS"] + xs["OMP_PROC_BIND"] + xs["OMP_PLACES"] > 0.25
