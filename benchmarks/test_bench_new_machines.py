"""Extension benchmark: the methodology on post-paper machines.

Runs the full sweep+influence pipeline on the two extension machines
(AMD Genoa, NVIDIA Grace — the paper's "latest CPU chips" future work)
and checks the structural predictions: Genoa inherits Milan's
congestion-driven tuning profile; Grace's flat memory removes the
affinity/thread-count headroom while the wait-policy knob keeps its
value.
"""

import numpy as np
import pytest

from conftest import emit

from repro.arch.extensions import GENOA, GRACE, register_machine, unregister_machine
from repro.core.dataset import enrich_with_speedup, records_to_table
from repro.core.influence import influence_by_architecture
from repro.core.labeling import label_optimal
from repro.core.sweep import SweepPlan, run_sweep
from repro.frame.table import Table

APPS = ("nqueens", "su3bench", "xsbench", "cg")


@pytest.fixture(scope="module")
def new_machine_datasets():
    register_machine(GENOA)
    register_machine(GRACE)
    out = {}
    try:
        for arch in ("genoa", "grace"):
            result = run_sweep(
                SweepPlan(arch=arch, workload_names=APPS, scale="small",
                          repetitions=2)
            )
            out[arch] = label_optimal(
                enrich_with_speedup(records_to_table(result.records))
            )
    finally:
        # Keep them registered for the duration of the module's tests.
        pass
    yield out
    unregister_machine("genoa")
    unregister_machine("grace")


def test_ext_new_machines(benchmark, new_machine_datasets, output_dir):
    """Per-app tuning headroom + influence on the post-paper machines."""

    def analyze():
        rows = []
        influences = {}
        for arch, dataset in new_machine_datasets.items():
            for (app,), sub in dataset.group_by("app"):
                best = {}
                for (inp, thr), g in sub.group_by(
                    ["input_size", "num_threads"]
                ):
                    key = (inp, thr)
                    best[key] = float(
                        np.max(np.asarray(g["speedup"], float))
                    )
                rows.append(
                    {
                        "arch": arch,
                        "app": app,
                        "best_speedup": max(best.values()),
                    }
                )
            influences[arch] = influence_by_architecture(dataset)
        return rows, influences

    rows, influences = benchmark.pedantic(analyze, rounds=1, iterations=1)
    body = Table.from_records(rows).to_text(float_fmt="{:.3f}")
    for arch, inf in influences.items():
        scores = inf.rows[0].as_dict()
        top = ", ".join(inf.rows[0].top_features(3))
        body += f"\n{arch} top influences: {top}"
    emit(
        "Extension: methodology on post-paper machines (Genoa, Grace)",
        body,
        output_dir,
        "ext_new_machines.txt",
    )

    by = {(r["arch"], r["app"]): r["best_speedup"] for r in rows}
    # Genoa: Milan-like congestion headroom on the bandwidth apps.
    assert by[("genoa", "su3bench")] > 1.3
    assert by[("genoa", "xsbench")] > 1.25
    # Grace: flat memory kills those, wait policy survives.
    assert by[("grace", "su3bench")] < 1.15
    assert by[("grace", "xsbench")] < 1.15
    assert by[("grace", "nqueens")] > 1.5
