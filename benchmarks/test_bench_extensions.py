"""Extension benchmarks: the paper's future work, made to run.

- non-linear (random forest) vs linear classification of tuning outcome
  (the conclusion's "suitable path forward"),
- transfer to unseen applications (the conclusion's explicit caveat),
- tuner shoot-out on the configuration space (related work's global
  optimizers vs the paper's hill-climbing sketch),
- the deferred ``OMP_PLACES=numa_domains`` value,
- energy/EDP trade-offs of the wait policy (related work's theme).
"""

import numpy as np
import pytest

from conftest import bench_dataset, emit

from repro.arch.machines import MILAN
from repro.core.envspace import EnvSpace, extended_variables
from repro.core.nonlinear import compare_models
from repro.core.pruning import hill_climb
from repro.core.search import greedy_ofat, random_search, simulated_annealing
from repro.core.transfer import fine_tune, leave_one_app_out, recommend_for_unseen
from repro.frame.ops import concat_tables
from repro.frame.table import Table
from repro.runtime.executor import execute
from repro.runtime.icv import EnvConfig
from repro.runtime.power import energy_profile
from repro.workloads.base import get_workload


def _subsample(table, cap=45_000, seed=0):
    """Deterministic row subsample so tree fitting stays tractable at
    REPRO_BENCH_SCALE=full (~1M rows)."""
    if table.num_rows <= cap:
        return table
    rng = np.random.default_rng(seed)
    idx = np.sort(rng.choice(table.num_rows, size=cap, replace=False))
    return table.take(idx)


@pytest.fixture(scope="module")
def combined_dataset(all_arch_datasets):
    return _subsample(concat_tables(list(all_arch_datasets.values())))


def test_ext_nonlinear_models(benchmark, combined_dataset, output_dir):
    """Future work: non-linear models capture what linear ones miss."""

    def run():
        return compare_models(combined_dataset, by=("arch",), n_trees=15,
                              max_depth=9)

    comparisons = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "arch": "/".join(str(p) for p in c.label),
            "linear_acc": c.linear_accuracy,
            "forest_acc": c.forest_accuracy,
            "gain": c.accuracy_gain,
            "linear_auc": c.linear_auc,
            "forest_auc": c.forest_auc,
            "top_forest": ", ".join(c.top_forest),
        }
        for c in comparisons
    ]
    emit(
        "Extension: linear vs non-linear optimal/sub-optimal classification",
        Table.from_records(rows).to_text(float_fmt="{:.3f}"),
        output_dir,
        "ext_nonlinear.txt",
    )
    for c in comparisons:
        assert c.forest_accuracy >= c.linear_accuracy
    # Somewhere the interactions matter enough for a solid gain.
    assert max(c.accuracy_gain for c in comparisons) > 0.05


def test_ext_transfer_unseen_apps(benchmark, combined_dataset, output_dir):
    """Future work: quantify the unseen-application caveat."""

    def run():
        loao = leave_one_app_out(
            combined_dataset,
            apps=("nqueens", "xsbench", "cg", "health", "mg"),
            n_trees=10, max_depth=8,
        )
        recs = [
            recommend_for_unseen(combined_dataset, app=app, arch="milan")
            for app in ("nqueens", "xsbench", "health")
        ]
        curve = fine_tune(combined_dataset, app="xsbench", arch="milan",
                          budgets=(0, 8, 32, 128))
        return loao, recs, curve

    loao, recs, curve = benchmark.pedantic(run, rounds=1, iterations=1)

    loao_rows = [
        {
            "app": r.app,
            "in_sample_acc": r.in_sample_accuracy,
            "transfer_acc": r.transfer_accuracy,
            "gap": r.transfer_gap,
        }
        for r in loao
    ]
    rec_rows = [
        {
            "app": r.app,
            "donors": "+".join(r.donor_apps),
            "achieved": r.achieved_speedup,
            "best": r.best_speedup,
            "regret": r.regret,
        }
        for r in recs
    ]
    body = (
        Table.from_records(loao_rows).to_text(float_fmt="{:.3f}")
        + "\n\nconfiguration transfer (milan):\n"
        + Table.from_records(rec_rows).to_text(float_fmt="{:.3f}")
        + "\n\nfine-tune curve (xsbench/milan): "
        + "  ".join(f"n={b}: regret={r:.2f}" for b, r in curve)
    )
    emit("Extension: transfer to unseen applications", body, output_dir,
         "ext_transfer.txt")

    # The paper's caveat quantified: transfer works sometimes (donor apps
    # with a similar computation pattern), and probing closes the gap.
    regrets = [r.regret for r in recs]
    assert min(regrets) < 0.5  # at least one app transfers well
    assert curve[-1][1] <= curve[0][1]


def test_ext_tuner_shootout(benchmark, output_dir):
    """Hill climbing vs random search vs annealing vs greedy OFAT."""
    space = EnvSpace()
    apps = ("nqueens", "cg", "su3bench")

    def run():
        rows = []
        for app in apps:
            w = get_workload(app)
            program = w.program(w.default_input)
            entries = [
                ("hill-climb", hill_climb(program, MILAN, space,
                                          restarts=1, seed=0)),
                ("random-64", random_search(program, MILAN, space,
                                            budget=64, seed=0)),
                ("annealing-64", simulated_annealing(program, MILAN, space,
                                                     budget=64, seed=0)),
                ("greedy-ofat", greedy_ofat(program, MILAN, space, seed=0)),
            ]
            for name, res in entries:
                rows.append(
                    {
                        "app": app,
                        "tuner": name,
                        "speedup": res.speedup,
                        "evaluations": res.evaluations,
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Extension: tuner comparison on milan (full env space)",
        Table.from_records(rows).to_text(float_fmt="{:.3f}"),
        output_dir,
        "ext_tuners.txt",
    )
    # Every tuner finds real speedups on the tunable apps.
    for row in rows:
        if row["app"] in ("nqueens", "su3bench"):
            assert row["speedup"] > 1.2, row
        assert row["speedup"] >= 1.0 - 1e-12


def test_ext_numa_domains_places(benchmark, output_dir):
    """The paper's deferred OMP_PLACES=numa_domains value, evaluated."""
    apps = ("su3bench", "xsbench", "mg")

    def run():
        rows = []
        for app in apps:
            w = get_workload(app)
            program = w.program(w.default_input)
            base = execute(program, MILAN, EnvConfig())
            for places in ("sockets", "ll_caches", "numa_domains"):
                t = execute(
                    program, MILAN,
                    EnvConfig(places=places, proc_bind="spread"),
                )
                rows.append(
                    {"app": app, "places": places, "speedup": base / t}
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Extension: OMP_PLACES=numa_domains (deferred in the paper)",
        Table.from_records(rows).to_text(float_fmt="{:.3f}"),
        output_dir,
        "ext_numa_domains.txt",
    )
    by = {(r["app"], r["places"]): r["speedup"] for r in rows}
    # numa_domains binding is at least as good as sockets for the
    # bandwidth-bound apps (finer first-touch distribution).
    for app in ("su3bench", "mg"):
        assert by[(app, "numa_domains")] >= 0.98 * by[(app, "sockets")]
        assert by[(app, "numa_domains")] > 1.0


def test_ext_energy_tradeoff(benchmark, output_dir):
    """Energy/EDP view of the wait-policy knob (related-work theme)."""
    apps = ("nqueens", "mg", "ep")

    def run():
        rows = []
        for app in apps:
            w = get_workload(app)
            program = w.program(w.default_input)
            for label, cfg in (
                ("default", EnvConfig()),
                ("turnaround", EnvConfig(library="turnaround")),
                ("half-threads", EnvConfig(num_threads=MILAN.n_cores // 2)),
            ):
                p = energy_profile(program, MILAN, cfg)
                rows.append(
                    {
                        "app": app,
                        "config": label,
                        "runtime_s": p.runtime_s,
                        "energy_j": p.energy_j,
                        "avg_w": p.avg_power_w,
                        "edp": p.edp,
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Extension: energy/EDP trade-offs on milan",
        Table.from_records(rows).to_text(float_fmt="{:.4g}"),
        output_dir,
        "ext_energy.txt",
    )
    by = {(r["app"], r["config"]): r for r in rows}
    # Turnaround cuts NQueens runtime AND (because the machine finishes
    # sooner) its total energy, despite higher average power draw.
    nq_def, nq_turn = by[("nqueens", "default")], by[("nqueens", "turnaround")]
    assert nq_turn["runtime_s"] < nq_def["runtime_s"]
    assert nq_turn["energy_j"] < nq_def["energy_j"]
    # Halving threads on EP halves power but costs runtime: EDP decides.
    ep_def, ep_half = by[("ep", "default")], by[("ep", "half-threads")]
    assert ep_half["avg_w"] < ep_def["avg_w"]
    assert ep_half["runtime_s"] > ep_def["runtime_s"]
