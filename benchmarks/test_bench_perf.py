"""Performance benchmarks of the library's hot paths.

These are conventional pytest-benchmark timings (many rounds) for the
operations the sweep/analysis pipeline leans on; they guard against
regressions that would make paper-scale (full-grid) sweeps impractical.
"""

import numpy as np
import pytest
from conftest import BENCH_SCALE

from repro.arch.machines import MILAN
from repro.core.envspace import EnvSpace
from repro.desim.stealing import TaskGraph, WorkStealingSimulator
from repro.frame.table import Table
from repro.mlkit.logreg import LogisticRegression
from repro.mlkit.preprocess import Standardizer
from repro.runtime.executor import RuntimeExecutor
from repro.runtime.icv import EnvConfig
from repro.stats.wilcoxon import wilcoxon_signed_rank
from repro.workloads.base import get_workload


def test_perf_executor_loop_workload(benchmark):
    """One CG execution: the sweep's unit of work for loop apps."""
    program = get_workload("cg").program("A")
    executor = RuntimeExecutor(MILAN, EnvConfig())
    result = benchmark(executor.execute, program)
    assert result > 0


def test_perf_executor_task_workload(benchmark):
    """One NQueens execution (analytic task model)."""
    program = get_workload("nqueens").program("large")
    executor = RuntimeExecutor(MILAN, EnvConfig())
    result = benchmark(executor.execute, program)
    assert result > 0


def test_perf_executor_construction(benchmark):
    """ICV resolution + placement: paid once per config in a sweep."""
    benchmark(RuntimeExecutor, MILAN, EnvConfig(places="ll_caches",
                                                proc_bind="spread"))


def test_perf_full_grid_enumeration(benchmark):
    """Enumerating the full 9,216-point Milan grid."""
    space = EnvSpace()
    configs = benchmark(lambda: list(space.full_grid(MILAN)))
    assert len(configs) == 9216


def test_perf_work_stealing_des(benchmark):
    """DES simulation of a ~3k-task tree on 48 workers."""
    graph = TaskGraph.balanced_tree(depth=7, branching=3, leaf_work=2e-6,
                                    node_work=3e-7)
    sim = WorkStealingSimulator(n_workers=48, seed=0)
    result = benchmark(sim.run, graph)
    assert result.n_tasks == graph.n_tasks


def test_perf_logistic_fit(benchmark):
    """Logistic fit on a sweep-sized design (10k x 10)."""
    rng = np.random.default_rng(0)
    X = Standardizer().fit_transform(rng.normal(size=(10_000, 10)))
    w = rng.normal(size=10)
    y = (X @ w + rng.logistic(size=10_000) > 0).astype(float)

    def fit():
        return LogisticRegression(l2=1.0).fit(X, y)

    model = benchmark(fit)
    assert model.score(X, y) > 0.6


def test_perf_wilcoxon_large(benchmark):
    """Wilcoxon on 10k paired measurements (Table III scale)."""
    rng = np.random.default_rng(1)
    x = rng.lognormal(size=10_000)
    y = x * rng.lognormal(sigma=0.05, size=10_000)
    result = benchmark(wilcoxon_signed_rank, x, y)
    assert result.n_used == 10_000


def test_perf_table_groupby(benchmark):
    """Group-by over a 20k-row dataset (the analysis inner loop)."""
    rng = np.random.default_rng(2)
    n = 20_000
    table = Table(
        {
            "app": rng.choice(["cg", "bt", "mg", "ft"], size=n).astype(object),
            "arch": rng.choice(["a", "b", "c"], size=n).astype(object),
            "speedup": rng.lognormal(size=n),
        }
    )
    groups = benchmark(table.group_by, ["app", "arch"])
    assert len(groups) == 12


def _synthetic_dataset(n_settings: int, n_configs: int) -> Table:
    """A dataset-shaped table: n_settings x n_configs rows, one default
    configuration row per setting (what enrich_with_speedup requires)."""
    rng = np.random.default_rng(3)
    n = n_settings * n_configs
    unset = np.full(n, "unset", dtype=object)
    swept = unset.copy()
    swept[np.arange(n) % n_configs != 0] = "dynamic"
    return Table(
        {
            "arch": np.full(n, "milan", dtype=object),
            "app": np.asarray(
                [f"app{(i // n_configs) % 10}" for i in range(n)], dtype=object
            ),
            "suite": np.full(n, "synthetic", dtype=object),
            "input_size": np.asarray(
                [f"in{i // n_configs}" for i in range(n)], dtype=object
            ),
            "num_threads": np.full(n, 96, dtype=np.int64),
            "places": unset,
            "proc_bind": unset,
            "schedule": swept,
            "library": unset,
            "blocktime": unset,
            "force_reduction": unset,
            "align_alloc": np.zeros(n, dtype=np.int64),
            "runtime_mean": rng.lognormal(size=n),
        }
    )


def test_perf_enrich_speedup_10k(benchmark):
    """Speedup enrichment on a 10k-row dataset.

    The per-row Python lookup this replaced took ~4.5ms at this scale
    (the factorize-and-gather path measures ~1.5ms); this is the
    regression guard for full-grid (240k-sample) dataset construction.
    """
    from repro.core.dataset import enrich_with_speedup

    table = _synthetic_dataset(n_settings=50, n_configs=200)
    enriched = benchmark(enrich_with_speedup, table)
    speedup = np.asarray(enriched["speedup"], float)
    assert enriched.num_rows == 10_000
    assert np.isfinite(speedup).all() and (speedup > 0).all()


def test_perf_sweep_one_batch(benchmark):
    """One (workload, setting) batch: the streaming pool's unit of work."""
    from repro.core.sweep import SweepPlan, run_sweep

    plan = SweepPlan(arch="milan", workload_names=("cg",), scale="small",
                     repetitions=1, inputs_limit=1)
    result = benchmark(run_sweep, plan)
    assert result.n_samples > 0


def test_perf_sweep_cache_hit(benchmark, tmp_path):
    """A fully warmed resume: every batch served from the on-disk cache."""
    from repro.core.cache import SweepCache
    from repro.core.sweep import SweepPlan, run_sweep

    plan = SweepPlan(arch="milan", workload_names=("cg",), scale="small",
                     repetitions=1)
    cache = SweepCache(tmp_path / "cache")
    run_sweep(plan, cache=cache)

    result = benchmark(run_sweep, plan, cache=cache)
    assert result.n_computed_batches == 0
    assert result.n_cached_batches > 0


def test_perf_sweep_nodes_sharded(benchmark):
    """Sharded multi-node dispatch: the socket-transport backend at 2
    shards, plus a one-shot shard-count scaling series (1/2/4 lanes)
    recorded in BENCH_sweep.json.

    The series captures the fixed cost of node spawn + frame transport
    against the work-stealing win as lanes are added; the parity of the
    produced records is pinned separately by sharded-execution-parity.
    """
    import time

    from repro.core.sweep import SweepPlan, run_sweep

    plan = SweepPlan(arch="milan", workload_names=("cg",), scale="small",
                     repetitions=1, inputs_limit=1)
    result = benchmark(run_sweep, plan, n_processes=2, backend="nodes",
                       n_shards=2)
    assert result.backend == "nodes"
    assert result.n_shards == 2
    assert result.shard_report is not None

    scaling = {}
    for shards in (1, 2, 4):
        t0 = time.perf_counter()
        one = run_sweep(plan, n_processes=2, backend="nodes",
                        n_shards=shards)
        scaling[shards] = round(time.perf_counter() - t0, 4)
        assert one.records == result.records
    benchmark.extra_info["n_records"] = len(result.records)
    benchmark.extra_info["shard_scaling_s"] = \
        {str(k): v for k, v in scaling.items()}
    benchmark.extra_info["n_steals"] = result.shard_report.n_steals
    benchmark.extra_info["n_reassignments"] = \
        result.shard_report.n_reassignments


# ----------------------------------------------------------------------
# Record pipeline: dict-records baseline vs columnar blocks
# ----------------------------------------------------------------------
# Both chains replay the full journey of one sweep batch — pack on the
# worker, spool through the supervisor's pickle file, unpack on the
# consumer, tabulate — once with the retained v4 dict-row codec and once
# with the columnar RecordBlock path.  Timing and tracemalloc peaks land
# in BENCH_sweep.json (extra_info) as the throughput / peak-memory
# series; the floor test pins the ISSUE's >= 5x acceptance ratio.

_PIPELINE_N_RECORDS = {"small": 10_000, "medium": 50_000, "full": 200_000}


def _synthetic_records(n: int, repetitions: int = 3) -> list:
    """``n`` SweepRecords shaped like a large-grid milan sweep batch."""
    from repro.core.sweep import SweepRecord

    apps = ("cg", "ep", "xsbench", "lulesh", "nqueens")
    places = ("unset", "cores", "ll_caches")
    schedules = ("unset", "static", "dynamic", "guided")
    records = []
    for i in range(n):
        config = EnvConfig(
            num_threads=None if i % 3 == 0 else 48,
            places=places[i % 3],
            schedule=schedules[i % 4],
            align_alloc=None if i % 2 else 64,
        )
        records.append(SweepRecord(
            arch="milan", app=apps[i % 5], suite="NPB", input_size="A",
            num_threads=96, config=config,
            runtimes=tuple(1.0 + (i % 97) / 97 + j * 0.01
                           for j in range(repetitions)),
        ))
    return records


def _spool_roundtrip(obj, path):
    """One supervisor hop: pickle to a spool file, read it back."""
    import pickle

    with open(path, "wb") as handle:
        pickle.dump(obj, handle, protocol=pickle.HIGHEST_PROTOCOL)
    del obj
    with open(path, "rb") as handle:
        return pickle.load(handle)


def _dict_pipeline(records, spool_path):
    """Baseline: v4 dict rows spooled, decoded and tabulated row-wise."""
    from repro.core.cache import _record_from_dict, _record_to_dict
    from repro.core.dataset import records_to_table

    rows = _spool_roundtrip([_record_to_dict(r) for r in records],
                            spool_path)
    back = [_record_from_dict(d) for d in rows]
    del rows
    return records_to_table(back)


def _columnar_pipeline(records, spool_path):
    """The columnar path: one RecordBlock end to end, no dict rows."""
    from repro.core.dataset import records_to_table
    from repro.core.sweep import sweep_records_to_block

    block = _spool_roundtrip(sweep_records_to_block(records), spool_path)
    return records_to_table(block)


def _traced_peak(fn) -> int:
    """tracemalloc peak (bytes) of one ``fn()`` call."""
    import tracemalloc

    tracemalloc.start()
    try:
        fn()
        return tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()


def test_perf_record_pipeline_dict_records(benchmark, tmp_path):
    """Baseline series: dict-row batch through spool, decode, tabulate."""
    n = _PIPELINE_N_RECORDS.get(BENCH_SCALE, 50_000)
    records = _synthetic_records(n)
    spool = tmp_path / "spool.pkl"

    table = benchmark(_dict_pipeline, records, spool)
    assert table.num_rows == n
    best = benchmark.stats.stats.min
    benchmark.extra_info["n_records"] = n
    benchmark.extra_info["records_per_s"] = round(n / best)
    benchmark.extra_info["peak_bytes"] = _traced_peak(
        lambda: _dict_pipeline(records, spool)
    )
    benchmark.extra_info["spool_bytes"] = spool.stat().st_size


def test_perf_record_pipeline_columnar(benchmark, tmp_path):
    """Columnar series: one RecordBlock through the identical hops."""
    from repro.core.sweep import sweep_records_to_block

    n = _PIPELINE_N_RECORDS.get(BENCH_SCALE, 50_000)
    records = _synthetic_records(n)
    spool = tmp_path / "spool.pkl"

    table = benchmark(_columnar_pipeline, records, spool)
    assert table.num_rows == n
    best = benchmark.stats.stats.min
    benchmark.extra_info["n_records"] = n
    benchmark.extra_info["records_per_s"] = round(n / best)
    benchmark.extra_info["peak_bytes"] = _traced_peak(
        lambda: _columnar_pipeline(records, spool)
    )
    benchmark.extra_info["spool_bytes"] = spool.stat().st_size
    benchmark.extra_info["block_nbytes"] = \
        sweep_records_to_block(records).nbytes()


def test_perf_columnar_vs_dict_floor(benchmark, tmp_path):
    """The acceptance ratio: columnar must beat dict rows by >= 5x.

    Measures both chains (best of three for time, tracemalloc for peak
    memory) and records the ratios in BENCH_sweep.json.  The full 5x
    floor is asserted at the ``full`` (large-grid, 200k-record) scale
    per the acceptance criterion; smaller CI scales use a 2.5x noise
    floor so shared-runner jitter cannot flake the build.  Measured
    ratios at all scales are ~6-12x throughput and ~7x peak memory.
    """
    import time

    n = _PIPELINE_N_RECORDS.get(BENCH_SCALE, 50_000)
    records = _synthetic_records(n)
    spool = tmp_path / "spool.pkl"

    def best_of(fn, rounds=3):
        best = float("inf")
        for _ in range(rounds):
            t0 = time.perf_counter()
            fn(records, spool)
            best = min(best, time.perf_counter() - t0)
        return best

    columnar_table = benchmark(_columnar_pipeline, records, spool)
    columnar_s = benchmark.stats.stats.min
    dict_s = best_of(_dict_pipeline)
    dict_peak = _traced_peak(lambda: _dict_pipeline(records, spool))
    columnar_peak = _traced_peak(
        lambda: _columnar_pipeline(records, spool)
    )

    throughput_ratio = dict_s / columnar_s
    memory_ratio = dict_peak / columnar_peak
    benchmark.extra_info["n_records"] = n
    benchmark.extra_info["throughput_ratio"] = round(throughput_ratio, 2)
    benchmark.extra_info["memory_ratio"] = round(memory_ratio, 2)
    benchmark.extra_info["dict_records_per_s"] = round(n / dict_s)
    benchmark.extra_info["columnar_records_per_s"] = round(n / columnar_s)
    benchmark.extra_info["dict_peak_bytes"] = dict_peak
    benchmark.extra_info["columnar_peak_bytes"] = columnar_peak

    if n <= 50_000:  # parity spot-check; the check suite pins it fully
        assert (_dict_pipeline(records, spool).to_records()
                == columnar_table.to_records())
    floor = 5.0 if BENCH_SCALE == "full" else 2.5
    assert throughput_ratio >= floor, (
        f"columnar throughput only {throughput_ratio:.1f}x the dict "
        f"baseline (floor {floor}x at scale {BENCH_SCALE!r})"
    )
    assert memory_ratio >= floor, (
        f"columnar peak memory only {memory_ratio:.1f}x better than the "
        f"dict baseline (floor {floor}x at scale {BENCH_SCALE!r})"
    )


# ----------------------------------------------------------------------
# Serving layer: warm-cache recommend latency under concurrency
# ----------------------------------------------------------------------
# The daemon's interactive path — GET /recommend against a fully warmed
# sweep cache — measured at 1 / 8 / 64 concurrent clients over real HTTP
# round trips.  The per-level rps and p50/p99 latencies land in
# BENCH_sweep.json (extra_info); the floor assert pins the warm path to
# interactive territory (lenient: job completion is observed by a 20 ms
# poll, so every served recommend carries that floor on top of the
# cache-hit sweep itself).


def _percentile(sorted_s: list, q: float) -> float:
    idx = min(len(sorted_s) - 1, max(0, int(round(q * (len(sorted_s) - 1)))))
    return sorted_s[idx]


def test_perf_serve_recommend_warm(benchmark, tmp_path):
    import concurrent.futures
    import time

    from repro.serve.app import DaemonConfig
    from repro.serve.harness import DaemonHandle

    config = DaemonConfig(
        port=0, backend="serial", max_inflight=8, max_queued=512,
        deadline_s=120.0, rate_per_s=100_000.0, burst=200_000,
        cache_dir=str(tmp_path / "cache"), state_dir=str(tmp_path / "state"),
    )
    handle = DaemonHandle(config)
    path = ("/recommend?arch=milan&workload=nqueens&scale=small"
            "&repetitions=2&inputs_limit=1&deadline_s=120")
    try:
        status, warm = handle.request("GET", path, timeout=120)
        assert status == 200 and warm["recommendations"]

        def round_trip():
            t0 = time.perf_counter()
            st, _body = handle.request("GET", path, timeout=120)
            assert st == 200
            return time.perf_counter() - t0

        benchmark(round_trip)

        series = {}
        for clients in (1, 8, 64):
            n_requests = clients * (3 if clients < 64 else 1)
            t0 = time.perf_counter()
            with concurrent.futures.ThreadPoolExecutor(clients) as pool:
                latencies = sorted(
                    f.result() for f in [
                        pool.submit(round_trip) for _ in range(n_requests)
                    ]
                )
            elapsed = time.perf_counter() - t0
            series[str(clients)] = {
                "n_requests": n_requests,
                "rps": round(n_requests / elapsed, 1),
                "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 1),
                "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 1),
            }
    finally:
        handle.stop()

    benchmark.extra_info["clients_series"] = series
    benchmark.extra_info["n_recommendations"] = len(warm["recommendations"])
    solo_p99_ms = series["1"]["p99_ms"]
    assert solo_p99_ms < 2_000.0, (
        f"warm-cache recommend p99 at 1 client is {solo_p99_ms:.0f} ms — "
        "the served interactive path has left interactive territory"
    )
