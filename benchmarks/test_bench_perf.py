"""Performance benchmarks of the library's hot paths.

These are conventional pytest-benchmark timings (many rounds) for the
operations the sweep/analysis pipeline leans on; they guard against
regressions that would make paper-scale (full-grid) sweeps impractical.
"""

import numpy as np
import pytest

from repro.arch.machines import MILAN
from repro.core.envspace import EnvSpace
from repro.desim.stealing import TaskGraph, WorkStealingSimulator
from repro.frame.table import Table
from repro.mlkit.logreg import LogisticRegression
from repro.mlkit.preprocess import Standardizer
from repro.runtime.executor import RuntimeExecutor
from repro.runtime.icv import EnvConfig
from repro.stats.wilcoxon import wilcoxon_signed_rank
from repro.workloads.base import get_workload


def test_perf_executor_loop_workload(benchmark):
    """One CG execution: the sweep's unit of work for loop apps."""
    program = get_workload("cg").program("A")
    executor = RuntimeExecutor(MILAN, EnvConfig())
    result = benchmark(executor.execute, program)
    assert result > 0


def test_perf_executor_task_workload(benchmark):
    """One NQueens execution (analytic task model)."""
    program = get_workload("nqueens").program("large")
    executor = RuntimeExecutor(MILAN, EnvConfig())
    result = benchmark(executor.execute, program)
    assert result > 0


def test_perf_executor_construction(benchmark):
    """ICV resolution + placement: paid once per config in a sweep."""
    benchmark(RuntimeExecutor, MILAN, EnvConfig(places="ll_caches",
                                                proc_bind="spread"))


def test_perf_full_grid_enumeration(benchmark):
    """Enumerating the full 9,216-point Milan grid."""
    space = EnvSpace()
    configs = benchmark(lambda: list(space.full_grid(MILAN)))
    assert len(configs) == 9216


def test_perf_work_stealing_des(benchmark):
    """DES simulation of a ~3k-task tree on 48 workers."""
    graph = TaskGraph.balanced_tree(depth=7, branching=3, leaf_work=2e-6,
                                    node_work=3e-7)
    sim = WorkStealingSimulator(n_workers=48, seed=0)
    result = benchmark(sim.run, graph)
    assert result.n_tasks == graph.n_tasks


def test_perf_logistic_fit(benchmark):
    """Logistic fit on a sweep-sized design (10k x 10)."""
    rng = np.random.default_rng(0)
    X = Standardizer().fit_transform(rng.normal(size=(10_000, 10)))
    w = rng.normal(size=10)
    y = (X @ w + rng.logistic(size=10_000) > 0).astype(float)

    def fit():
        return LogisticRegression(l2=1.0).fit(X, y)

    model = benchmark(fit)
    assert model.score(X, y) > 0.6


def test_perf_wilcoxon_large(benchmark):
    """Wilcoxon on 10k paired measurements (Table III scale)."""
    rng = np.random.default_rng(1)
    x = rng.lognormal(size=10_000)
    y = x * rng.lognormal(sigma=0.05, size=10_000)
    result = benchmark(wilcoxon_signed_rank, x, y)
    assert result.n_used == 10_000


def test_perf_table_groupby(benchmark):
    """Group-by over a 20k-row dataset (the analysis inner loop)."""
    rng = np.random.default_rng(2)
    n = 20_000
    table = Table(
        {
            "app": rng.choice(["cg", "bt", "mg", "ft"], size=n).astype(object),
            "arch": rng.choice(["a", "b", "c"], size=n).astype(object),
            "speedup": rng.lognormal(size=n),
        }
    )
    groups = benchmark(table.group_by, ["app", "arch"])
    assert len(groups) == 12


def _synthetic_dataset(n_settings: int, n_configs: int) -> Table:
    """A dataset-shaped table: n_settings x n_configs rows, one default
    configuration row per setting (what enrich_with_speedup requires)."""
    rng = np.random.default_rng(3)
    n = n_settings * n_configs
    unset = np.full(n, "unset", dtype=object)
    swept = unset.copy()
    swept[np.arange(n) % n_configs != 0] = "dynamic"
    return Table(
        {
            "arch": np.full(n, "milan", dtype=object),
            "app": np.asarray(
                [f"app{(i // n_configs) % 10}" for i in range(n)], dtype=object
            ),
            "suite": np.full(n, "synthetic", dtype=object),
            "input_size": np.asarray(
                [f"in{i // n_configs}" for i in range(n)], dtype=object
            ),
            "num_threads": np.full(n, 96, dtype=np.int64),
            "places": unset,
            "proc_bind": unset,
            "schedule": swept,
            "library": unset,
            "blocktime": unset,
            "force_reduction": unset,
            "align_alloc": np.zeros(n, dtype=np.int64),
            "runtime_mean": rng.lognormal(size=n),
        }
    )


def test_perf_enrich_speedup_10k(benchmark):
    """Speedup enrichment on a 10k-row dataset.

    The per-row Python lookup this replaced took ~4.5ms at this scale
    (the factorize-and-gather path measures ~1.5ms); this is the
    regression guard for full-grid (240k-sample) dataset construction.
    """
    from repro.core.dataset import enrich_with_speedup

    table = _synthetic_dataset(n_settings=50, n_configs=200)
    enriched = benchmark(enrich_with_speedup, table)
    speedup = np.asarray(enriched["speedup"], float)
    assert enriched.num_rows == 10_000
    assert np.isfinite(speedup).all() and (speedup > 0).all()


def test_perf_sweep_one_batch(benchmark):
    """One (workload, setting) batch: the streaming pool's unit of work."""
    from repro.core.sweep import SweepPlan, run_sweep

    plan = SweepPlan(arch="milan", workload_names=("cg",), scale="small",
                     repetitions=1, inputs_limit=1)
    result = benchmark(run_sweep, plan)
    assert result.n_samples > 0


def test_perf_sweep_cache_hit(benchmark, tmp_path):
    """A fully warmed resume: every batch served from the on-disk cache."""
    from repro.core.cache import SweepCache
    from repro.core.sweep import SweepPlan, run_sweep

    plan = SweepPlan(arch="milan", workload_names=("cg",), scale="small",
                     repetitions=1)
    cache = SweepCache(tmp_path / "cache")
    run_sweep(plan, cache=cache)

    result = benchmark(run_sweep, plan, cache=cache)
    assert result.n_computed_batches == 0
    assert result.n_cached_batches > 0
