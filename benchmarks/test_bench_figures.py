"""Regenerate the violin-plot figures: Fig. 1 (Alignment), Fig. 5 (BT),
Fig. 6 (Health) and Fig. 7 (RSBench) — full-sweep runtime distributions
per architecture and setting."""

import numpy as np
import pytest

from conftest import bench_dataset, emit

from repro.stats.distribution import violin_stats
from repro.viz.violin import violin_plot

ARCHS = ("a64fx", "milan", "skylake")


def _distributions(app: str):
    """(label, runtimes, best_runtime) per (arch, setting) for one app."""
    out = []
    for arch in ARCHS:
        dataset = bench_dataset(arch)
        mask = np.asarray([a == app for a in dataset["app"]])
        sub = dataset.filter(mask)
        if sub.num_rows == 0:
            continue
        for (inp, threads), group in sub.group_by(
            ["input_size", "num_threads"]
        ):
            runtimes = np.asarray(group["runtime_mean"], float)
            label = (
                f"{arch}/{inp}"
                if len(set(sub["num_threads"].tolist())) == 1
                else f"{arch}/T={threads}"
            )
            out.append((label, runtimes, float(runtimes.min())))
    return out


_CONFIG_COLS = ("places", "proc_bind", "schedule", "library", "blocktime",
                "force_reduction", "align_alloc")


def _cross_setting_markers(app: str, reference: tuple[str, str]):
    """Where the reference setting's best config lands on every setting.

    Reproduces Fig. 1's colored marks: the best configuration of one
    (architecture, input) setting, located on all other settings'
    distributions (None where that config was not swept, e.g. an
    x86-only KMP_ALIGN_ALLOC value on A64FX).
    """
    ref_arch, ref_input = reference
    # Best config of the reference setting.
    ref = bench_dataset(ref_arch)
    mask = np.asarray(
        [a == app and i == ref_input
         for a, i in zip(ref["app"], ref["input_size"])]
    )
    sub = ref.filter(mask)
    runtimes = np.asarray(sub["runtime_mean"], float)
    best_row = sub.row(int(np.argmin(runtimes)))
    best_key = tuple(best_row[c] for c in _CONFIG_COLS)

    markers = []
    for arch in ARCHS:
        dataset = bench_dataset(arch)
        mask = np.asarray([a == app for a in dataset["app"]])
        dsub = dataset.filter(mask)
        if dsub.num_rows == 0:
            continue
        for (_inp, _threads), group in dsub.group_by(
            ["input_size", "num_threads"]
        ):
            found = None
            for row in group.iter_rows():
                if tuple(row[c] for c in _CONFIG_COLS) == best_key:
                    found = row["runtime_mean"]
                    break
            markers.append(found)
    return best_key, markers


def _render_violin(app: str, figure_name: str, output_dir, benchmark,
                   extra_markers=None):
    dists = benchmark.pedantic(
        lambda: _distributions(app), rounds=1, iterations=1
    )
    labels = [d[0] for d in dists]
    samples = [d[1] for d in dists]
    markers = [d[2] for d in dists]
    canvas = violin_plot(
        samples,
        labels,
        title=f"{figure_name}: {app} runtime distribution over the sweep",
        log_scale=True,
        markers=markers,
        extra_markers=extra_markers,
        width=max(900.0, 60.0 * len(samples)),
    )
    canvas.save(str(output_dir / f"{figure_name.lower().replace('. ', '')}_{app}.svg"))

    lines = []
    for label, sample, best in dists:
        v = violin_stats(np.log10(sample), label=label)
        lines.append(
            f"{label:16s} n={v.n:5d} median={10 ** v.median:.4g}s "
            f"iqr=[{10 ** v.q1:.4g}, {10 ** v.q3:.4g}] best={best:.4g}s"
        )
    emit(
        f"{figure_name}: {app} full-sweep distribution summary",
        "\n".join(lines),
        output_dir,
        f"{figure_name.lower().replace('. ', '')}_{app}.txt",
    )
    return dists


def test_fig1_alignment_violin(benchmark, output_dir):
    """Fig. 1: Alignment distributions, all three machines x input sizes.

    Shape assertions mirror the figure's point: distributions are
    non-normal/wide, and the best configuration of one setting is not the
    best of another.
    """
    best_key, cross = _cross_setting_markers("alignment",
                                             reference=("milan", "small"))
    dists = _render_violin("alignment", "Fig. 1", output_dir, benchmark,
                           extra_markers=cross)
    assert len(dists) == 9  # 3 archs x 3 input sizes

    # Wide, skewed distributions: max >> median (log-scale violins).
    for _label, sample, _best in dists:
        assert sample.max() / np.median(sample) > 2.0

    # Non-normality (the reason the paper uses Wilcoxon): strong skew.
    for _label, sample, _best in dists:
        mean, med = sample.mean(), np.median(sample)
        assert mean > med  # right-skewed

    # Fig. 1's point: the best configuration of one setting is "not
    # always a top-contender" elsewhere — somewhere it ranks outside the
    # top decile.
    ranks = []
    for (label, sample, _best), marker in zip(dists, cross):
        if marker is None:
            continue
        rank = float(np.mean(sample <= marker))  # quantile of the marker
        ranks.append((label, rank))
    assert any(rank > 0.10 for _label, rank in ranks), ranks
    # ... while in its home setting it is by definition the minimum.
    home = [r for label, r in ranks if label == "milan/small"]
    assert home and home[0] <= 0.05


def test_fig5_bt_violin(benchmark, output_dir):
    """Fig. 5: BT distributions (input classes on each machine)."""
    dists = _render_violin("bt", "Fig. 5", output_dir, benchmark)
    assert len(dists) == 12  # 3 archs x 4 classes
    # Input classes scale the location of the distribution.
    for arch in ARCHS:
        meds = [
            np.median(s)
            for label, s, _ in dists
            if label.startswith(f"{arch}/")
        ]
        assert meds == sorted(meds), arch  # S < W < A < B


def test_fig6_health_violin(benchmark, output_dir):
    """Fig. 6: Health distributions."""
    dists = _render_violin("health", "Fig. 6", output_dir, benchmark)
    assert len(dists) == 9
    # Health has real tuning spread on every machine (paper: >=1.28x):
    # the sweep's distribution spans well over 1.3x from best to worst
    # config on every (arch, size) setting.
    for label, sample, _best in dists:
        assert sample.max() / sample.min() > 1.3, label


def test_fig7_rsbench_violin(benchmark, output_dir):
    """Fig. 7: RSBench distributions (thread settings on each machine)."""
    dists = _render_violin("rsbench", "Fig. 7", output_dir, benchmark)
    assert len(dists) == 12  # 3 archs x 4 thread counts
    # More threads -> faster medians (RSBench is compute-bound).
    for arch in ARCHS:
        entries = [
            (label, np.median(s))
            for label, s, _ in dists
            if label.startswith(f"{arch}/")
        ]
        entries.sort(key=lambda e: int(e[0].split("T=")[1]))
        meds = [m for _, m in entries]
        assert meds == sorted(meds, reverse=True), arch
