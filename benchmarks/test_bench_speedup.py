"""Regenerate Table V (per-arch speedup ranges for Alignment & XSBench),
Table VI (per-application speedup ranges) and the Sec. V-1 headline
speedup statistics."""

import numpy as np
import pytest

from conftest import all_arch_datasets, bench_dataset, emit

from repro.frame.table import Table

#: Paper Table VI ranges (min-max across architectures of the best
#: per-setting speedup), for side-by-side reporting.
PAPER_TABLE6 = {
    "alignment": (1.022, 1.186),
    "bt": (1.027, 1.185),
    "cg": (1.000, 1.857),
    "ep": (1.000, 1.090),
    "ft": (1.010, 1.545),
    "health": (1.282, 2.218),
    "lu": (1.020, 1.121),
    "lulesh": (1.004, 1.062),
    "mg": (1.011, 2.167),
    "nqueens": (2.342, 4.851),
    "rsbench": (1.004, 1.213),
    "sort": (1.174, 1.180),
    "strassen": (1.023, 1.025),
    "su3bench": (1.002, 2.279),
    "xsbench": (1.001, 2.602),
}


def _per_setting_max(dataset) -> dict[tuple, float]:
    """Best speedup at each (app, input, threads) setting."""
    out = {}
    for (app, inp, threads), sub in dataset.group_by(
        ["app", "input_size", "num_threads"]
    ):
        out[(app, inp, threads)] = float(
            np.max(np.asarray(sub["speedup"], float))
        )
    return out


def test_headline_ranges(benchmark, all_arch_datasets, output_dir):
    """Sec. V-1: per-architecture range and median of best speedups.

    Paper: A64FX 1.0-4.85 median 1.02; Milan 1.011-2.6 median 1.15;
    Skylake 1.0-3.47 median 1.065.
    """

    def compute():
        rows = []
        for arch, dataset in all_arch_datasets.items():
            maxima = np.array(list(_per_setting_max(dataset).values()))
            rows.append(
                {
                    "arch": arch,
                    "min_best": float(maxima.min()),
                    "max_best": float(maxima.max()),
                    "median_best": float(np.median(maxima)),
                }
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit(
        "Sec. V-1 headline: best-speedup range and median per architecture",
        Table.from_records(rows).to_text(float_fmt="{:.3f}"),
        output_dir,
        "headline_ranges.txt",
    )
    by_arch = {r["arch"]: r for r in rows}

    # Medians: a64fx ~1.02, skylake ~1.05-1.07, milan ~1.1-1.2.
    assert by_arch["a64fx"]["median_best"] < 1.06
    assert by_arch["milan"]["median_best"] > by_arch["a64fx"]["median_best"]
    # Maxima: a64fx largest overall (NQueens ~4.9), skylake next (~3.4),
    # milan smallest (~2.6) — the paper's exact ordering.
    assert by_arch["a64fx"]["max_best"] > 4.0
    assert by_arch["skylake"]["max_best"] > 2.5
    assert 2.0 < by_arch["milan"]["max_best"] < 3.5
    # Every architecture shows near-1.0 minima: some settings barely move.
    for r in rows:
        assert r["min_best"] < 1.1


def test_table5_alignment_xsbench(benchmark, all_arch_datasets, output_dir):
    """Table V: speedup ranges for Alignment and XSBench per architecture.

    Shape: Alignment consistent across machines; XSBench big on Milan
    only.
    """

    def compute():
        rows = []
        for app in ("alignment", "xsbench"):
            for arch, dataset in all_arch_datasets.items():
                maxima = [
                    v
                    for (a, _i, _t), v in _per_setting_max(dataset).items()
                    if a == app
                ]
                rows.append(
                    {
                        "application": app,
                        "architecture": arch,
                        "speedup_lo": float(min(maxima)),
                        "speedup_hi": float(max(maxima)),
                    }
                )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit(
        "Table V: Speedup range for Alignment and XSBench per architecture",
        Table.from_records(rows).to_text(float_fmt="{:.3f}"),
        output_dir,
        "table5.txt",
    )

    by_key = {(r["application"], r["architecture"]): r for r in rows}
    # XSBench: >1.5x on Milan, <1.15x elsewhere (paper: 2.60 vs ~1.0).
    assert by_key[("xsbench", "milan")]["speedup_hi"] > 1.5
    assert by_key[("xsbench", "skylake")]["speedup_hi"] < 1.15
    assert by_key[("xsbench", "a64fx")]["speedup_hi"] < 1.15
    # Alignment: modest (1.02-1.20) and consistent everywhere.
    for arch in ("a64fx", "skylake", "milan"):
        hi = by_key[("alignment", arch)]["speedup_hi"]
        assert 1.01 < hi < 1.35, arch


def test_table6_per_application(benchmark, all_arch_datasets, output_dir):
    """Table VI: best-speedup range per application across architectures."""

    def compute():
        per_app_arch: dict[str, list[float]] = {}
        for dataset in all_arch_datasets.values():
            best_by_app: dict[str, float] = {}
            for (app, _i, _t), v in _per_setting_max(dataset).items():
                best_by_app[app] = max(best_by_app.get(app, 0.0), v)
            for app, v in best_by_app.items():
                per_app_arch.setdefault(app, []).append(v)
        rows = []
        for app in sorted(per_app_arch):
            values = per_app_arch[app]
            lo, hi = PAPER_TABLE6[app]
            rows.append(
                {
                    "application": app,
                    "speedup_lo": float(min(values)),
                    "speedup_hi": float(max(values)),
                    "paper_lo": lo,
                    "paper_hi": hi,
                }
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit(
        "Table VI: Speedup range per application (vs paper)",
        Table.from_records(rows).to_text(float_fmt="{:.3f}"),
        output_dir,
        "table6.txt",
    )

    by_app = {r["application"]: r for r in rows}
    assert set(by_app) == set(PAPER_TABLE6)

    # Shape assertions: the winners win, the flat apps stay flat.
    assert by_app["nqueens"]["speedup_hi"] > 3.5  # biggest headroom overall
    for app in ("ep", "strassen", "lulesh"):
        assert by_app[app]["speedup_hi"] < 1.25, app
    for app in ("health", "mg", "su3bench", "xsbench", "cg"):
        assert by_app[app]["speedup_hi"] > 1.4, app
    # Ordering of headroom matches the paper's top-4.
    ours = sorted(by_app, key=lambda a: -by_app[a]["speedup_hi"])
    assert ours[0] == "nqueens"
