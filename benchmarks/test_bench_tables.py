"""Regenerate Table I (hardware configuration) and Table II (dataset
description)."""

import pytest

from conftest import BENCH_SCALE, bench_sweep, emit

from repro.arch.machines import hardware_table
from repro.frame.table import Table

#: The paper's Table II sample counts, for side-by-side reporting.
PAPER_TABLE2 = {"a64fx": (15, 53822), "milan": (13, 99707), "skylake": (12, 90230)}


def test_table1_hardware_configuration(benchmark, output_dir):
    """Table I: the three machine models."""
    rows = benchmark(hardware_table)
    table = Table.from_records(rows)
    emit("Table I: Hardware configuration", table.to_text(), output_dir,
         "table1.txt")

    by_arch = {r["architecture"]: r for r in rows}
    assert by_arch["a64fx"]["cores"] == 48
    assert by_arch["skylake"]["cores"] == 40 and by_arch["skylake"]["sockets"] == 2
    assert by_arch["milan"]["cores"] == 96 and by_arch["milan"]["numa_nodes"] == 8


def test_table2_dataset_description(benchmark, output_dir):
    """Table II: applications and unique samples per architecture.

    At ``REPRO_BENCH_SCALE=full`` the sample counts land in the same range
    as the paper's (tens of thousands per machine, A64FX smallest because
    its KMP_ALIGN_ALLOC domain is half the size); scaled runs report
    proportionally fewer.
    """

    def collect():
        return {arch: bench_sweep(arch) for arch in PAPER_TABLE2}

    sweeps = benchmark.pedantic(collect, rounds=1, iterations=1)

    rows = []
    for arch, sweep in sweeps.items():
        paper_apps, paper_samples = PAPER_TABLE2[arch]
        rows.append(
            {
                "architecture": arch,
                "applications": len(sweep.apps()),
                "samples": sweep.n_samples,
                "paper_applications": paper_apps,
                "paper_samples": paper_samples,
            }
        )
    table = Table.from_records(rows)
    emit(
        f"Table II: Dataset description (scale={BENCH_SCALE})",
        table.to_text(),
        output_dir,
        "table2.txt",
    )

    by_arch = {r["architecture"]: r for r in rows}
    # App counts match the paper exactly at any scale.
    assert by_arch["a64fx"]["applications"] == 15
    assert by_arch["milan"]["applications"] == 13
    assert by_arch["skylake"]["applications"] == 12
    if BENCH_SCALE == "full":
        # With the full grids the paper's sample-count ordering emerges:
        # the x86 machines sweep twice the configs per setting (4 vs 2
        # KMP_ALIGN_ALLOC values), outweighing A64FX's two extra apps.
        assert (
            by_arch["milan"]["samples"]
            > by_arch["skylake"]["samples"]
            > by_arch["a64fx"]["samples"]
        )
