"""Shared infrastructure for the paper-artifact benchmarks.

Every benchmark regenerates one table or figure of the paper (see
DESIGN.md's experiment index) and prints the rows/series the paper
reports; artifacts (CSV datasets, SVG figures, text tables) are written to
``benchmarks/output/``.

Scale is controlled by ``REPRO_BENCH_SCALE``:

- ``small``   — tens of configs per setting; seconds per bench (CI),
- ``medium``  — a few hundred configs; the default,
- ``full``    — the complete 4,608/9,216-config grids, the paper's
  exhaustive exploration; minutes per architecture.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core.dataset import (
    aggregate_runs,
    enrich_with_speedup,
    records_to_table,
)
from repro.core.labeling import label_optimal
from repro.core.sweep import SweepPlan, run_sweep

BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "medium")
OUTPUT_DIR = Path(__file__).parent / "output"

_SWEEP_CACHE: dict[tuple, object] = {}
_DATASET_CACHE: dict[tuple, object] = {}


def bench_sweep(arch: str, workloads=None, repetitions: int = 3,
                scale: str | None = None):
    """Run (or reuse) a sweep for benchmarks — cached per identity."""
    key = (arch, workloads, repetitions, scale or BENCH_SCALE)
    if key not in _SWEEP_CACHE:
        plan = SweepPlan(
            arch=arch,
            workload_names=workloads,
            scale=scale or BENCH_SCALE,
            repetitions=repetitions,
        )
        _SWEEP_CACHE[key] = run_sweep(plan)
    return _SWEEP_CACHE[key]


def bench_dataset(arch: str, workloads=None, repetitions: int = 3,
                  scale: str | None = None):
    """Enriched + labeled dataset table for a cached sweep."""
    key = (arch, workloads, repetitions, scale or BENCH_SCALE)
    if key not in _DATASET_CACHE:
        result = bench_sweep(arch, workloads, repetitions, scale)
        table = aggregate_runs(records_to_table(result.records))
        _DATASET_CACHE[key] = label_optimal(enrich_with_speedup(table))
    return _DATASET_CACHE[key]


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def all_arch_datasets():
    """Datasets for all three machines at the bench scale."""
    return {arch: bench_dataset(arch) for arch in ("a64fx", "skylake", "milan")}


def emit(title: str, body: str, output_dir: Path, filename: str) -> None:
    """Print a regenerated artifact and persist it."""
    banner = f"\n=== {title} ==="
    print(banner)
    print(body)
    (output_dir / filename).write_text(f"{title}\n\n{body}\n", encoding="utf-8")
