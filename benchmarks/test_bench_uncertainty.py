"""Extension benchmark: uncertainty on the headline statistics.

The paper reports point estimates; this bench attaches bootstrap
confidence intervals to the per-architecture best-speedup medians and
checks that the paper's reported medians are statistically compatible
with this reproduction (fall inside or near our 95% intervals).
"""

import numpy as np
import pytest

from conftest import emit

from repro.frame.table import Table
from repro.stats.bootstrap import bootstrap_ci

#: The paper's Sec. V-1 medians.
PAPER_MEDIANS = {"a64fx": 1.02, "skylake": 1.065, "milan": 1.15}


def _per_setting_maxima(dataset) -> np.ndarray:
    out = []
    for _key, sub in dataset.group_by(["app", "input_size", "num_threads"]):
        out.append(float(np.max(np.asarray(sub["speedup"], float))))
    return np.asarray(out)


def test_headline_median_confidence(benchmark, all_arch_datasets, output_dir):
    """Bootstrap CIs on the per-arch best-speedup medians vs the paper."""

    def run():
        rows = []
        for arch, dataset in all_arch_datasets.items():
            maxima = _per_setting_maxima(dataset)
            ci = bootstrap_ci(maxima, np.median, confidence=0.95,
                              n_resamples=2000, seed=0)
            rows.append(
                {
                    "arch": arch,
                    "median": ci.estimate,
                    "ci_low": ci.low,
                    "ci_high": ci.high,
                    "paper": PAPER_MEDIANS[arch],
                    "n_settings": maxima.shape[0],
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Extension: bootstrap CIs on the Sec. V-1 medians",
        Table.from_records(rows).to_text(float_fmt="{:.3f}"),
        output_dir,
        "ext_uncertainty.txt",
    )
    for row in rows:
        # The paper's median lies within 0.1 of our interval: the shapes
        # are statistically compatible, not merely point-close.
        assert row["ci_low"] - 0.1 <= row["paper"] <= row["ci_high"] + 0.1, row
        assert row["ci_low"] <= row["median"] <= row["ci_high"]
