"""Machine models for the three CPU architectures of the study (Table I).

- :mod:`~repro.arch.topology` — core/socket/NUMA/LLC topology with place
  partitioning and a NUMA distance matrix,
- :mod:`~repro.arch.machines` — the Fujitsu A64FX, Intel Skylake 6148 and
  AMD Milan 7643 definitions plus a registry,
- :mod:`~repro.arch.noise` — per-architecture measurement-noise models
  reproducing the consistency contrast of Tables III/IV (A64FX stationary,
  X86 drifting and heavier-tailed).
"""

from repro.arch.topology import MachineTopology, Place, PlaceKind
from repro.arch.machines import (
    A64FX,
    MILAN,
    SKYLAKE,
    ALL_MACHINES,
    get_machine,
    machine_names,
    hardware_table,
)
from repro.arch.noise import NoiseModel, NOISE_MODELS, get_noise_model

__all__ = [
    "MachineTopology",
    "Place",
    "PlaceKind",
    "A64FX",
    "MILAN",
    "SKYLAKE",
    "ALL_MACHINES",
    "get_machine",
    "machine_names",
    "hardware_table",
    "NoiseModel",
    "NOISE_MODELS",
    "get_noise_model",
]
