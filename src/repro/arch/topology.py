"""CPU topology: cores, sockets, NUMA nodes, shared caches, places.

The LLVM/OpenMP runtime partitions hardware into *places* according to
``OMP_PLACES`` and distributes threads over them according to
``OMP_PROC_BIND``.  :class:`MachineTopology` provides exactly the facts the
simulated runtime needs for that: which cores share a socket / NUMA node /
last-level cache, the relative memory-access penalty between NUMA nodes,
and per-NUMA memory bandwidth.

Core numbering is hierarchical and contiguous: cores ``[k * cores_per_numa,
(k+1) * cores_per_numa)`` belong to NUMA node ``k``, and NUMA nodes are
contiguous within sockets — the layout Linux exposes on all three study
machines.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import TopologyError

__all__ = ["PlaceKind", "Place", "MachineTopology"]


class PlaceKind(str, enum.Enum):
    """Legal ``OMP_PLACES`` partitions (paper Sec. III-1).

    ``THREADS`` and ``NUMA_DOMAINS`` exist for completeness; the paper
    excludes ``threads`` (no SMT machines) and ``numa_domains`` (requires
    hwloc) from its sweeps, and so do our default grids.
    """

    UNSET = "unset"
    CORES = "cores"
    SOCKETS = "sockets"
    LL_CACHES = "ll_caches"
    NUMA_DOMAINS = "numa_domains"
    THREADS = "threads"


@dataclass(frozen=True)
class Place:
    """A set of cores a thread may be bound to."""

    index: int
    cores: tuple[int, ...]

    @property
    def width(self) -> int:
        """Number of cores in the place."""
        return len(self.cores)


@dataclass(frozen=True)
class MachineTopology:
    """Static description of one CPU machine.

    Parameters mirror Table I plus the micro-architectural facts the cost
    model needs (cache line size for the ``KMP_ALIGN_ALLOC`` false-sharing
    model, LLC sharing for ``ll_caches`` places, NUMA distances and
    bandwidth for locality penalties).
    """

    name: str
    n_cores: int
    n_sockets: int
    n_numa: int
    cores_per_llc: int
    clock_ghz: float
    cache_line_bytes: int
    mem_type: str
    mem_capacity_gb: int
    #: Sustainable memory bandwidth of one NUMA node, GB/s.
    mem_bw_per_numa_gbps: float
    #: Relative extra cost of accessing memory on a same-socket remote NUMA
    #: node (1.0 = local).
    numa_penalty_same_socket: float = 1.5
    #: Relative extra cost of accessing memory across sockets.
    numa_penalty_cross_socket: float = 2.2
    #: Relative single-core throughput (A64FX cores are weaker per clock).
    core_perf: float = 1.0
    #: SMT threads per core — 1 on all study machines (SMT disabled).
    smt_per_core: int = 1

    def __post_init__(self) -> None:
        if self.n_cores <= 0 or self.n_sockets <= 0 or self.n_numa <= 0:
            raise TopologyError(f"{self.name}: non-positive topology counts")
        if self.n_cores % self.n_numa != 0:
            raise TopologyError(
                f"{self.name}: {self.n_cores} cores not divisible by "
                f"{self.n_numa} NUMA nodes"
            )
        if self.n_numa % self.n_sockets != 0:
            raise TopologyError(
                f"{self.name}: {self.n_numa} NUMA nodes not divisible by "
                f"{self.n_sockets} sockets"
            )
        if self.n_cores % self.cores_per_llc != 0:
            raise TopologyError(
                f"{self.name}: {self.n_cores} cores not divisible by LLC "
                f"group size {self.cores_per_llc}"
            )
        if self.cache_line_bytes not in (32, 64, 128, 256):
            raise TopologyError(
                f"{self.name}: implausible cache line {self.cache_line_bytes}"
            )

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------
    @property
    def cores_per_numa(self) -> int:
        """Cores in one NUMA node."""
        return self.n_cores // self.n_numa

    @property
    def cores_per_socket(self) -> int:
        """Cores in one socket."""
        return self.n_cores // self.n_sockets

    @property
    def numa_per_socket(self) -> int:
        """NUMA nodes in one socket."""
        return self.n_numa // self.n_sockets

    @property
    def total_mem_bw_gbps(self) -> float:
        """Aggregate machine memory bandwidth."""
        return self.mem_bw_per_numa_gbps * self.n_numa

    def numa_of_core(self, core: int) -> int:
        """NUMA node owning ``core``."""
        self._check_core(core)
        return core // self.cores_per_numa

    def socket_of_core(self, core: int) -> int:
        """Socket owning ``core``."""
        self._check_core(core)
        return core // self.cores_per_socket

    def llc_of_core(self, core: int) -> int:
        """Last-level-cache group owning ``core``."""
        self._check_core(core)
        return core // self.cores_per_llc

    def socket_of_numa(self, numa: int) -> int:
        """Socket owning NUMA node ``numa``."""
        if not 0 <= numa < self.n_numa:
            raise TopologyError(f"{self.name}: NUMA node {numa} out of range")
        return numa // self.numa_per_socket

    def _check_core(self, core: int) -> None:
        if not 0 <= core < self.n_cores:
            raise TopologyError(
                f"{self.name}: core {core} out of range [0, {self.n_cores})"
            )

    # ------------------------------------------------------------------
    # NUMA distances
    # ------------------------------------------------------------------
    def numa_distance(self, a: int, b: int) -> float:
        """Relative memory-access cost from NUMA node ``a`` to ``b``.

        1.0 for local accesses, :attr:`numa_penalty_same_socket` within a
        socket, :attr:`numa_penalty_cross_socket` across sockets.
        """
        if a == b:
            return 1.0
        if self.socket_of_numa(a) == self.socket_of_numa(b):
            return self.numa_penalty_same_socket
        return self.numa_penalty_cross_socket

    def numa_distance_matrix(self) -> np.ndarray:
        """(n_numa, n_numa) matrix of :meth:`numa_distance` values."""
        out = np.empty((self.n_numa, self.n_numa))
        for a in range(self.n_numa):
            for b in range(self.n_numa):
                out[a, b] = self.numa_distance(a, b)
        return out

    def mean_numa_distance(self) -> float:
        """Average distance from a node to all nodes (interleaved-page cost)."""
        return float(self.numa_distance_matrix().mean())

    # ------------------------------------------------------------------
    # Places
    # ------------------------------------------------------------------
    def places(self, kind: PlaceKind | str) -> list[Place]:
        """Partition the machine into places per ``OMP_PLACES``.

        ``UNSET`` returns a single place spanning the whole machine — the
        runtime treats "no places" as free movement over all cores, and a
        full-machine place models that for distribution purposes.
        """
        kind = PlaceKind(kind)
        if kind in (PlaceKind.UNSET,):
            return [Place(0, tuple(range(self.n_cores)))]
        if kind in (PlaceKind.CORES, PlaceKind.THREADS):
            # No SMT on the study machines: threads == cores.
            return [Place(i, (i,)) for i in range(self.n_cores)]
        if kind is PlaceKind.SOCKETS:
            width = self.cores_per_socket
        elif kind is PlaceKind.LL_CACHES:
            width = self.cores_per_llc
        elif kind is PlaceKind.NUMA_DOMAINS:
            width = self.cores_per_numa
        else:  # pragma: no cover - exhaustive enum
            raise TopologyError(f"unhandled place kind {kind}")
        return [
            Place(i, tuple(range(i * width, (i + 1) * width)))
            for i in range(self.n_cores // width)
        ]

    def describe(self) -> dict[str, object]:
        """Table I row for this machine."""
        return {
            "architecture": self.name,
            "cores": self.n_cores,
            "sockets": self.n_sockets,
            "numa_nodes": self.n_numa,
            "clock_ghz": self.clock_ghz,
            "memory_type": self.mem_type,
            "memory_gb": self.mem_capacity_gb,
            "cache_line_bytes": self.cache_line_bytes,
        }
