"""Extension machines — the paper's "latest CPU chips" future work.

The conclusion commits to "add more thread counts and latest CPU chips in
the data collection strategy".  This module provides two post-paper
machine models and the registration hook to run the full pipeline on
them:

- **AMD EPYC 9654 "Genoa"**: Milan's successor — 96 Zen4 cores per
  socket, 12 DDR5 channels, NPS4.  Structurally a bigger Milan, so the
  methodology predicts the same congestion-driven tuning headroom.
- **NVIDIA Grace**: 72 Neoverse V2 cores behind a *flat* LPDDR5X memory
  system (one NUMA domain, ~500 GB/s).  No NUMA structure means binding
  and thread-count knobs should lose most of their leverage — a strong
  out-of-distribution test for the transfer analysis.

Extension machines are not registered by default (the paper benches
assert the study's exact three machines); call :func:`register_machine`
to add one to the global registry, or pass the topology objects directly
to the executor/sweep APIs that accept them.
"""

from __future__ import annotations

from repro.arch.machines import ALL_MACHINES
from repro.arch.noise import NOISE_MODELS, NoiseModel
from repro.arch.topology import MachineTopology
from repro.errors import TopologyError

__all__ = ["GENOA", "GRACE", "register_machine", "unregister_machine"]


GENOA = MachineTopology(
    name="genoa",
    n_cores=192,
    n_sockets=2,
    n_numa=8,
    cores_per_llc=8,  # L3 per CCX
    clock_ghz=2.4,
    cache_line_bytes=64,
    mem_type="DDR5",
    mem_capacity_gb=768,
    mem_bw_per_numa_gbps=57.6,  # 460 GB/s per socket at NPS4
    numa_penalty_same_socket=1.35,
    numa_penalty_cross_socket=2.2,
    core_perf=1.25,  # Zen4 IPC + clocks
)

GRACE = MachineTopology(
    name="grace",
    n_cores=72,
    n_sockets=1,
    n_numa=1,  # flat LPDDR5X behind the Scalable Coherency Fabric
    cores_per_llc=72,  # one big distributed L3
    clock_ghz=3.1,
    cache_line_bytes=64,
    mem_type="LPDDR5X",
    mem_capacity_gb=480,
    mem_bw_per_numa_gbps=500.0,
    numa_penalty_same_socket=1.0,
    numa_penalty_cross_socket=1.0,
    core_perf=1.15,
)


def _install_cost_tables() -> None:
    """Cost/noise/power entries for the extension machines (idempotent)."""
    from repro.runtime.costs import RUNTIME_COSTS, RuntimeCosts
    from repro.runtime.power import POWER_MODELS, PowerModel

    if "genoa" not in RUNTIME_COSTS:
        RUNTIME_COSTS["genoa"] = RuntimeCosts(
            arch="genoa",
            fork_base_us=1.5,
            fork_per_thread_us=0.035,
            barrier_step_us=0.60,
            wake_latency_us=8.0,
            dispatch_ns=50.0,
            atomic_ns=65.0,
            critical_ns=300.0,
            tree_step_us=0.50,
            spin_steal_us=0.20,
            os_yield_us=1.2,
            spawn_us=0.22,
            wake_fraction_passive=0.15,
            wake_fraction_blocktime0=0.40,
            congestion_gamma=2.4,  # same NPS4 fabric character as Milan
            unbound_bw_efficiency=0.78,
        )
    if "grace" not in RUNTIME_COSTS:
        RUNTIME_COSTS["grace"] = RuntimeCosts(
            arch="grace",
            fork_base_us=1.4,
            fork_per_thread_us=0.05,
            barrier_step_us=0.50,
            wake_latency_us=7.0,
            dispatch_ns=48.0,
            atomic_ns=55.0,
            critical_ns=240.0,
            tree_step_us=0.42,
            spin_steal_us=0.20,
            os_yield_us=1.5,
            spawn_us=0.22,
            wake_fraction_passive=0.20,
            wake_fraction_blocktime0=0.45,
            congestion_gamma=0.6,  # flat, fat memory: rarely congests
            unbound_bw_efficiency=0.97,  # nothing to scatter across
        )
    if "genoa" not in NOISE_MODELS:
        NOISE_MODELS["genoa"] = NoiseModel(
            arch="genoa", sigma=0.025, drift=(1.15, 1.0, 1.01, 1.02)
        )
    if "grace" not in NOISE_MODELS:
        NOISE_MODELS["grace"] = NoiseModel(
            arch="grace", sigma=0.008, drift=(1.0, 1.0, 1.0, 1.0)
        )
    if "genoa" not in POWER_MODELS:
        POWER_MODELS["genoa"] = PowerModel(
            "genoa", core_active_w=2.8, core_spin_w=2.2, core_idle_w=0.4,
            uncore_w=110.0,
        )
    if "grace" not in POWER_MODELS:
        POWER_MODELS["grace"] = PowerModel(
            "grace", core_active_w=3.2, core_spin_w=2.6, core_idle_w=0.4,
            uncore_w=60.0,
        )


def register_machine(machine: MachineTopology) -> MachineTopology:
    """Add an extension machine to the global registry (with its cost,
    noise and power tables), enabling sweeps/CLI use by name."""
    if machine.name in ALL_MACHINES and ALL_MACHINES[machine.name] is not machine:
        raise TopologyError(f"machine {machine.name!r} already registered")
    _install_cost_tables()
    from repro.runtime.costs import RUNTIME_COSTS

    if machine.name not in RUNTIME_COSTS:
        raise TopologyError(
            f"no cost table for {machine.name!r}; extension machines must "
            "ship one (see _install_cost_tables)"
        )
    ALL_MACHINES[machine.name] = machine
    return machine


def unregister_machine(name: str) -> None:
    """Remove an extension machine from the registry (study machines are
    protected)."""
    if name in ("a64fx", "skylake", "milan"):
        raise TopologyError(f"cannot unregister study machine {name!r}")
    ALL_MACHINES.pop(name, None)
