"""The three study machines (Table I) and a machine registry.

Micro-architectural parameters beyond Table I (LLC sharing, NUMA penalties,
bandwidth) come from the publicly documented characteristics of each chip:

- **Fujitsu A64FX**: 48 cores in 4 CMGs (core-memory-groups) of 12, each CMG
  a NUMA node with its own HBM2 stack (~256 GB/s) and shared L2 (the LLC),
  256-byte cache lines, single socket.
- **Intel Xeon Gold 6148 (Skylake)**: 2 sockets x 20 cores, one NUMA node
  per socket, socket-wide shared L3, 64-byte lines, ~128 GB/s per socket
  (6 channels DDR4-2666).
- **AMD EPYC 7643 (Milan)**: 2 sockets x 48 cores, NPS4 so 8 NUMA nodes of
  12 cores, L3 shared per 8-core CCX, 64-byte lines, ~204 GB/s per socket
  (~25.6 GB/s per NUMA node at NPS4 accounting granularity x 8).
"""

from __future__ import annotations

from repro.arch.topology import MachineTopology
from repro.errors import UnknownMachine

__all__ = [
    "A64FX",
    "SKYLAKE",
    "MILAN",
    "ALL_MACHINES",
    "get_machine",
    "machine_names",
    "hardware_table",
]


A64FX = MachineTopology(
    name="a64fx",
    n_cores=48,
    n_sockets=1,
    n_numa=4,
    cores_per_llc=12,  # L2 shared per CMG is the effective LLC
    clock_ghz=1.8,
    cache_line_bytes=256,
    mem_type="HBM",
    mem_capacity_gb=32,
    mem_bw_per_numa_gbps=256.0,  # one HBM2 stack per CMG
    numa_penalty_same_socket=1.3,  # on-die ring between CMGs
    numa_penalty_cross_socket=1.3,  # single socket: never used, keep = same
    core_perf=0.55,  # weaker OoO core at 1.8 GHz vs server x86
)

SKYLAKE = MachineTopology(
    name="skylake",
    n_cores=40,
    n_sockets=2,
    n_numa=2,
    cores_per_llc=20,  # socket-wide L3
    clock_ghz=2.4,
    cache_line_bytes=64,
    mem_type="DDR4",
    mem_capacity_gb=188,
    mem_bw_per_numa_gbps=128.0,  # 6ch DDR4-2666 per socket
    numa_penalty_same_socket=1.0,  # one NUMA node per socket
    numa_penalty_cross_socket=1.9,  # UPI hop
    core_perf=1.0,
)

MILAN = MachineTopology(
    name="milan",
    n_cores=96,
    n_sockets=2,
    n_numa=8,
    cores_per_llc=8,  # L3 per CCX
    clock_ghz=2.3,
    cache_line_bytes=64,
    mem_type="DDR4",
    mem_capacity_gb=251,
    mem_bw_per_numa_gbps=25.6,  # 204.8 GB/s per socket at NPS4
    numa_penalty_same_socket=1.4,  # Infinity Fabric on-package
    numa_penalty_cross_socket=2.3,  # xGMI socket hop
    core_perf=1.05,
)

#: Registry of the study machines in the paper's presentation order.
ALL_MACHINES: dict[str, MachineTopology] = {
    m.name: m for m in (A64FX, SKYLAKE, MILAN)
}


def get_machine(name: str) -> MachineTopology:
    """Look up a machine by name (case-insensitive)."""
    key = name.lower()
    try:
        return ALL_MACHINES[key]
    except KeyError:
        raise UnknownMachine(
            f"unknown machine {name!r}; have {sorted(ALL_MACHINES)}"
        ) from None


def machine_names() -> list[str]:
    """Registered machine names."""
    return list(ALL_MACHINES)


def hardware_table() -> list[dict[str, object]]:
    """Table I of the paper as a list of row dicts."""
    return [m.describe() for m in ALL_MACHINES.values()]
