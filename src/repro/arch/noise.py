"""Per-architecture measurement-noise models.

The paper's Tables III/IV document a qualitative contrast between machines:

- **A64FX** repetitions of the same configuration are statistically
  indistinguishable (Wilcoxon p in [0.72, 0.86]) with essentially identical
  means — a quiet, stationary machine.
- **Milan** shows a large run-index effect: the first repetition is clearly
  slower (mean 0.135 s vs 0.109/0.111 s) and *every* pair differs
  significantly (p <= 3e-12) — first-touch/page-cache warm-up plus noisy
  shared fabric.
- **Skylake** means are flat (0.061/0.062/0.062) and the first pair is not
  significant (p = 0.19), but later pairs are (p ~ 1e-140) — a small,
  *consistent* drift that Wilcoxon detects across thousands of pairs even
  though it is invisible in the means.

:class:`NoiseModel` reproduces those three regimes with two ingredients:
a deterministic per-run-index drift factor and multiplicative lognormal
jitter.  Noise streams are keyed by the full sample identity so sweeps are
reproducible regardless of execution order.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError

__all__ = ["NoiseModel", "NOISE_MODELS", "get_noise_model", "sample_seed"]


def sample_seed(*parts: object) -> int:
    """Derive a stable 64-bit seed from arbitrary hashable identity parts.

    Uses blake2b over the repr of the parts, so seeds are stable across
    processes and Python hash randomization.
    """
    h = hashlib.blake2b(digest_size=8)
    for p in parts:
        h.update(repr(p).encode("utf-8"))
        h.update(b"\x1f")
    return struct.unpack("<Q", h.digest())[0]


@dataclass(frozen=True)
class NoiseModel:
    """Multiplicative measurement noise for one architecture.

    ``observed = true * drift[run_index] * exp(sigma * N(0,1))``

    Attributes
    ----------
    arch:
        Machine name the model belongs to.
    sigma:
        Lognormal jitter scale (coefficient of variation for small sigma).
    drift:
        Per-run-index deterministic multipliers; run indices beyond the
        tuple reuse the final entry (steady state).
    """

    arch: str
    sigma: float
    drift: tuple[float, ...]

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ReproError(f"noise sigma must be >= 0, got {self.sigma}")
        if not self.drift or any(d <= 0 for d in self.drift):
            raise ReproError("drift factors must be positive and non-empty")

    def drift_factor(self, run_index: int) -> float:
        """Deterministic drift for a repetition index."""
        if run_index < 0:
            raise ReproError(f"run index must be >= 0, got {run_index}")
        if run_index < len(self.drift):
            return self.drift[run_index]
        return self.drift[-1]

    def apply(self, true_runtime: float, run_index: int, seed: int) -> float:
        """One noisy observation of ``true_runtime``."""
        if true_runtime <= 0:
            raise ReproError(f"true runtime must be > 0, got {true_runtime}")
        rng = np.random.default_rng(np.random.SeedSequence([seed, run_index]))
        jitter = float(np.exp(self.sigma * rng.standard_normal()))
        return true_runtime * self.drift_factor(run_index) * jitter


#: Calibrated models: A64FX quiet/stationary; Milan loud with a slow first
#: run; Skylake flat means with a small consistent drift after R1.
NOISE_MODELS: dict[str, NoiseModel] = {
    "a64fx": NoiseModel(arch="a64fx", sigma=0.004, drift=(1.0, 1.0, 1.0, 1.0)),
    "milan": NoiseModel(
        arch="milan", sigma=0.030, drift=(1.22, 1.0, 1.015, 1.033)
    ),
    "skylake": NoiseModel(
        arch="skylake", sigma=0.020, drift=(1.0, 1.0, 1.012, 1.022)
    ),
}


def get_noise_model(arch: str) -> NoiseModel:
    """Noise model for a machine name (falls back to a generic quiet model)."""
    try:
        return NOISE_MODELS[arch.lower()]
    except KeyError:
        return NoiseModel(arch=arch.lower(), sigma=0.01, drift=(1.0,))
