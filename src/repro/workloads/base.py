"""Workload protocol and registry."""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.arch.topology import MachineTopology
from repro.errors import UnknownInput, UnknownWorkload, WorkloadError
from repro.runtime.program import Program

__all__ = [
    "Workload",
    "WORKLOADS",
    "register_workload",
    "get_workload",
    "workload_names",
    "workloads_for_arch",
]

#: Thread-count fractions swept for ``varies == "threads"`` workloads
#: (quarter steps up to the full machine, the paper's "reduced exploration
#: of thread counts").
THREAD_FRACTIONS = (0.25, 0.5, 0.75, 1.0)


@dataclass(frozen=True)
class Workload:
    """One benchmark application.

    Attributes
    ----------
    name, suite:
        Identity ("cg", "npb").
    varies:
        The paper's experimental design: NPB and BOTS vary ``"input_size"``
        at a fixed (full-machine) thread count; the proxy apps vary
        ``"threads"`` at the default input.
    inputs:
        Valid input-size names in increasing order.
    builder:
        ``builder(input_name) -> Program`` — must be deterministic.
    archs:
        Machines the workload ran on (None = all); Sort and Strassen are
        restricted to A64FX per the paper.
    """

    name: str
    suite: str
    varies: str
    inputs: tuple[str, ...]
    builder: Callable[[str], Program] = field(repr=False)
    archs: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.varies not in ("input_size", "threads"):
            raise WorkloadError(
                f"workload {self.name!r}: varies must be 'input_size' or "
                f"'threads', got {self.varies!r}"
            )
        if not self.inputs:
            raise WorkloadError(f"workload {self.name!r}: no inputs defined")

    def program(self, input_name: str) -> Program:
        """Build the program for one input size."""
        if input_name not in self.inputs:
            raise UnknownInput(
                f"workload {self.name!r} has no input {input_name!r}; "
                f"have {self.inputs}"
            )
        return self.builder(input_name)

    @property
    def default_input(self) -> str:
        """The input used when sweeping threads (largest defined)."""
        return self.inputs[-1]

    def runs_on(self, arch: str) -> bool:
        """Whether the paper's dataset includes this workload on ``arch``."""
        return self.archs is None or arch.lower() in self.archs

    def thread_counts(self, machine: MachineTopology) -> tuple[int, ...]:
        """Thread counts swept on ``machine`` (only for thread-varying
        workloads; input-varying ones pin the full machine)."""
        if self.varies != "threads":
            return (machine.n_cores,)
        return tuple(
            max(1, int(round(f * machine.n_cores))) for f in THREAD_FRACTIONS
        )

    def describe(self, machine: MachineTopology) -> dict:
        """Registry row: identity, design and structural facts."""
        program = self.program(self.default_input)
        return {
            "name": self.name,
            "suite": self.suite,
            "varies": self.varies,
            "inputs": "/".join(self.inputs),
            "parallelism": "tasks" if program.uses_tasks else "loops",
            "regions": len(program.parallel_regions),
            "archs": "/".join(self.archs) if self.archs else "all",
            "settings": len(self.settings(machine)),
        }

    def settings(self, machine: MachineTopology) -> list[tuple[str, int]]:
        """The (input_size, nthreads) settings the sweep explores.

        Mirrors Sec. IV-B: inputs and threads are varied, "but not
        simultaneously".
        """
        if self.varies == "input_size":
            return [(inp, machine.n_cores) for inp in self.inputs]
        return [
            (self.default_input, t) for t in self.thread_counts(machine)
        ]


#: Global registry, populated by the suite modules on import.
WORKLOADS: dict[str, Workload] = {}


def register_workload(workload: Workload) -> Workload:
    """Add a workload to the registry (idempotent for identical names)."""
    existing = WORKLOADS.get(workload.name)
    if existing is not None and existing is not workload:
        raise WorkloadError(f"workload {workload.name!r} already registered")
    WORKLOADS[workload.name] = workload
    return workload


def get_workload(name: str) -> Workload:
    """Look up a workload by name (case-insensitive)."""
    try:
        return WORKLOADS[name.lower()]
    except KeyError:
        raise UnknownWorkload(
            f"unknown workload {name!r}; have {sorted(WORKLOADS)}"
        ) from None


def workload_names() -> list[str]:
    """All registered workload names."""
    return sorted(WORKLOADS)


def workloads_for_arch(arch: str) -> list[Workload]:
    """Workloads included in the dataset for one machine."""
    return [w for w in WORKLOADS.values() if w.runs_on(arch)]
