"""Benchmark workload models.

Each of the paper's 15 applications is modeled by its runtime-visible
parallel structure (see DESIGN.md for the substitution rationale):

- :mod:`~repro.workloads.npb` — NAS Parallel Benchmarks BT, CG, EP, FT,
  LU, MG (worksharing loops; input classes S/W/A/B; threads fixed),
- :mod:`~repro.workloads.bots` — BSC OpenMP Tasking Suite Alignment,
  Health, NQueens, Sort, Strassen (task trees; sizes small/medium/large;
  threads fixed; Sort and Strassen only ran on A64FX, as in the paper),
- :mod:`~repro.workloads.proxies` — XSBench, RSBench, SU3Bench, LULESH
  (default input; thread counts swept),
- :mod:`~repro.workloads.generator` — synthetic workloads for property
  tests and extrapolation studies.
"""

from repro.workloads.base import (
    Workload,
    WORKLOADS,
    get_workload,
    register_workload,
    workload_names,
    workloads_for_arch,
)

# Importing the suite modules populates the registry.
from repro.workloads import npb as _npb  # noqa: F401
from repro.workloads import bots as _bots  # noqa: F401
from repro.workloads import proxies as _proxies  # noqa: F401
from repro.workloads.generator import synthetic_loop_workload, synthetic_task_workload

__all__ = [
    "Workload",
    "WORKLOADS",
    "get_workload",
    "register_workload",
    "workload_names",
    "workloads_for_arch",
    "synthetic_loop_workload",
    "synthetic_task_workload",
]
