"""BSC OpenMP Tasking Suite models: Alignment, Health, NQueens, Sort,
Strassen.

These are the paper's task-parallelism workloads — they stress the parts
of libomp the loop benchmarks never touch: task deques, stealing, and the
wait policy derived from ``KMP_LIBRARY``/``KMP_BLOCKTIME``.  Task
granularity is the decisive property:

- **NQueens** spawns an enormous tree of microsecond-scale tasks, so task
  acquisition cost dominates and spin-waiting (``turnaround``) wins big —
  the paper's strongest recommendation (Table VII, speedups 2.3-4.9x),
- **Health** is a deep irregular tree of small tasks — strong but smaller
  gains,
- **Alignment** is a flat bag of medium tasks (one per sequence pair) —
  modest gains, *architecture-independent* (Fig. 2's observation),
- **Sort**/**Strassen** spawn coarse divide-and-conquer tasks — little to
  tune; both only ran on A64FX in the paper's dataset.

Per the paper's design, BOTS runs vary the input size at a fixed
full-machine thread count.
"""

from __future__ import annotations

from repro.runtime.program import Program, SerialPhase, TaskRegion
from repro.workloads.base import Workload, register_workload

__all__ = ["BOTS_SIZES"]

#: Input sizes with their work multiplier.
BOTS_SIZES: dict[str, float] = {"small": 1.0, "medium": 4.0, "large": 16.0}


def _build_alignment(input_name: str) -> Program:
    """Alignment: pairwise protein alignment, one task per sequence pair.

    A flat spawn tree (depth 1) of a few thousand irregular medium-grain
    tasks; the master generates them all.
    """
    scale = BOTS_SIZES[input_name]
    n_pairs = int(600 * scale)
    phases = (
        SerialPhase(work=3e-4 * scale, name="read_sequences"),
        TaskRegion(
            "align_pairs",
            depth=1,
            branching=n_pairs,
            leaf_work=9e-5,
            node_work=1e-6,
            leaf_sigma=0.5,
            mem_intensity=0.15,
            bw_per_thread_gbps=0.6,
        ),
    )
    return Program(name=f"alignment.{input_name}", phases=phases)


def _build_health(input_name: str) -> Program:
    """Health: Columbian health-care simulation.

    A deep, irregular task tree re-spawned every simulated timestep; small
    tasks with high dispersion and pointer-chasing memory access.
    """
    scale = BOTS_SIZES[input_name]
    trips = int(18 * scale**0.5)
    phases = (
        SerialPhase(work=2e-4 * scale, name="read_model"),
        TaskRegion(
            "sim_village",
            depth=5,
            branching=4,
            leaf_work=5.5e-6 * scale**0.5,
            node_work=1.2e-6,
            leaf_sigma=0.9,
            mem_intensity=0.35,
            bw_per_thread_gbps=0.8,
            random_access=True,
            trips=trips,
            gap_work=8e-6,
        ),
    )
    return Program(name=f"health.{input_name}", phases=phases)


def _build_nqueens(input_name: str) -> Program:
    """NQueens: backtracking board search, one task per partial placement.

    A huge tree of microsecond tasks (cut off a few levels deep in the
    real code).  Task-acquisition latency is everything here.
    """
    scale = BOTS_SIZES[input_name]
    depth = {1.0: 4, 4.0: 5, 16.0: 5}[scale]
    branching = {1.0: 8, 4.0: 8, 16.0: 11}[scale]
    phases = (
        SerialPhase(work=2e-5, name="init_board"),
        TaskRegion(
            "solve",
            depth=depth,
            branching=branching,
            leaf_work=5e-7 * scale**0.25,
            node_work=1.5e-7,
            leaf_sigma=0.6,
            mem_intensity=0.02,
            bw_per_thread_gbps=0.05,
        ),
    )
    return Program(name=f"nqueens.{input_name}", phases=phases)


def _build_sort(input_name: str) -> Program:
    """Sort: mergesort with task-parallel recursion above a serial cutoff.

    Binary tree of coarse tasks; streaming merges.
    """
    scale = BOTS_SIZES[input_name]
    depth = {1.0: 8, 4.0: 10, 16.0: 12}[scale]
    phases = (
        SerialPhase(work=1e-4 * scale, name="fill_array"),
        TaskRegion(
            "cilksort",
            depth=depth,
            branching=2,
            leaf_work=6e-5,
            node_work=2.5e-5,
            leaf_sigma=0.1,
            mem_intensity=0.55,
            bw_per_thread_gbps=1.8,
        ),
    )
    return Program(name=f"sort.{input_name}", phases=phases)


def _build_strassen(input_name: str) -> Program:
    """Strassen: recursive matrix multiply, seven subproblems per node.

    Very coarse tasks (each a sizeable matmul) — the runtime is almost
    invisible, so tuning moves little (paper range 1.023-1.025x).
    """
    scale = BOTS_SIZES[input_name]
    depth = {1.0: 3, 4.0: 4, 16.0: 4}[scale]
    phases = (
        SerialPhase(work=2e-4 * scale, name="init_matrices"),
        TaskRegion(
            "strassen_mult",
            depth=depth,
            branching=7,
            leaf_work=1.4e-3 * scale**0.4,
            node_work=6e-5,
            leaf_sigma=0.05,
            mem_intensity=0.30,
            bw_per_thread_gbps=1.2,
        ),
    )
    return Program(name=f"strassen.{input_name}", phases=phases)


_SIZES = tuple(BOTS_SIZES)

for _name, _builder, _archs in (
    ("alignment", _build_alignment, None),
    ("health", _build_health, None),
    ("nqueens", _build_nqueens, None),
    ("sort", _build_sort, ("a64fx",)),
    ("strassen", _build_strassen, ("a64fx",)),
):
    register_workload(
        Workload(
            name=_name,
            suite="bots",
            varies="input_size",
            inputs=_SIZES,
            builder=_builder,
            archs=_archs,
        )
    )
