"""NAS Parallel Benchmarks models: BT, CG, EP, FT, LU, MG.

Each builder encodes the benchmark's published parallel structure —
which loops dominate, how balanced they are, how memory-hungry, how many
fork/join transitions per time step — at four input classes (S, W, A, B).
Classes scale the grid (iteration count and per-iteration work) and the
number of time steps the way the real class tables do (geometric growth).

Per the paper's design, NPB runs vary the input class at a fixed,
full-machine thread count.
"""

from __future__ import annotations

import math

from repro.runtime.program import LoadPattern, LoopRegion, Program, SerialPhase
from repro.workloads.base import Workload, register_workload

__all__ = ["NPB_CLASSES"]

#: Input classes in increasing size with their total-work multiplier.
NPB_CLASSES: dict[str, float] = {"S": 1.0, "W": 4.0, "A": 16.0, "B": 64.0}


def _dims(scale: float, base: int) -> tuple[int, float]:
    """Grid growth: iterations grow with the cube root of total work,
    per-iteration work absorbs the remaining two thirds."""
    n_iters = max(4, int(round(base * scale ** (1.0 / 3.0))))
    work_growth = scale / (n_iters / base)
    return n_iters, work_growth


def _build_bt(input_name: str) -> Program:
    """BT: block-tridiagonal ADI solver.

    Five balanced plane loops per time step (rhs + three directional
    solves + add), moderate memory traffic, modest reduction use.
    """
    scale = NPB_CLASSES[input_name]
    n, wg = _dims(scale, 20)
    trips = max(10, int(round(60 * math.sqrt(scale))))
    iw = 1.6e-4 * wg
    mk = dict(mem_intensity=0.40, bw_per_thread_gbps=1.2)
    phases = [
        SerialPhase(work=0.002 * scale, name="init"),
        LoopRegion("compute_rhs", n, iw * 1.2, trips=trips, gap_work=2e-6, **mk),
        LoopRegion("x_solve", n, iw, trips=trips, gap_work=1e-6, **mk),
        LoopRegion("y_solve", n, iw, trips=trips, gap_work=1e-6, **mk),
        LoopRegion("z_solve", n, iw, trips=trips, gap_work=1e-6, **mk),
        LoopRegion("add", n, iw * 0.3, trips=trips, gap_work=1e-6, **mk),
        LoopRegion(
            "verify", n, iw * 0.2, n_reductions=1,
            mem_intensity=0.3, bw_per_thread_gbps=1.0,
        ),
    ]
    return Program(name=f"bt.{input_name}", phases=tuple(phases))


def _build_cg(input_name: str) -> Program:
    """CG: sparse conjugate gradient.

    Irregular sparse matvec rows (RANDOM pattern), latency-sensitive
    gather access, and two dot-product reductions per iteration — the
    reduction-heaviest NPB kernel (the paper's Table VII CG row).
    """
    scale = NPB_CLASSES[input_name]
    rows = max(256, int(round(1400 * scale ** 0.5)))
    iw = 1.1e-5 * scale / (rows / 1400.0)
    trips = max(15, int(round(26 * scale ** 0.25)))
    matvec = dict(
        pattern=LoadPattern.RANDOM,
        imbalance=0.45,
        mem_intensity=0.60,
        bw_per_thread_gbps=2.5,
        random_access=True,
    )
    phases = [
        SerialPhase(work=0.001 * scale, name="makea"),
        LoopRegion("matvec", rows, iw, trips=trips * 25, gap_work=5e-7, **matvec),
        LoopRegion(
            "dot_r", rows, iw * 0.08, n_reductions=1, trips=trips * 25,
            gap_work=5e-7, mem_intensity=0.5, bw_per_thread_gbps=2.0,
        ),
        LoopRegion(
            "axpy_norm", rows, iw * 0.10, n_reductions=2, trips=trips,
            gap_work=1e-6, mem_intensity=0.5, bw_per_thread_gbps=2.0,
        ),
    ]
    return Program(name=f"cg.{input_name}", phases=tuple(phases))


def _build_ep(input_name: str) -> Program:
    """EP: embarrassingly parallel random-number kernel.

    One huge, perfectly balanced compute loop with a final reduction —
    almost nothing to tune (speedup range 1.00-1.09 in the paper).
    """
    scale = NPB_CLASSES[input_name]
    n = int(1024 * scale)
    phases = [
        SerialPhase(work=1e-4, name="init"),
        LoopRegion(
            "gaussian_pairs", n, 4.5e-5, n_reductions=3,
            mem_intensity=0.02, bw_per_thread_gbps=0.1,
        ),
    ]
    return Program(name=f"ep.{input_name}", phases=tuple(phases))


def _build_ft(input_name: str) -> Program:
    """FT: 3-D FFT.

    Bandwidth-bound pencil transposes and streaming butterfly loops; few
    but fat regions.  Binding/locality is the paper's lever here.
    """
    scale = NPB_CLASSES[input_name]
    n, wg = _dims(scale, 32)
    trips = max(6, int(round(6 * scale ** 0.25)))
    stream = dict(mem_intensity=0.70, bw_per_thread_gbps=3.0)
    phases = [
        SerialPhase(work=0.003 * scale, name="index_map"),
        LoopRegion("evolve", n, 2.5e-4 * wg, trips=trips, gap_work=3e-6, **stream),
        LoopRegion("fftx", n, 3.0e-4 * wg, trips=trips, gap_work=2e-6, **stream),
        LoopRegion("ffty", n, 3.0e-4 * wg, trips=trips, gap_work=2e-6, **stream),
        LoopRegion("fftz", n, 3.0e-4 * wg, trips=trips, gap_work=2e-6, **stream),
        LoopRegion(
            "checksum", n, 2e-5 * wg, n_reductions=2, trips=trips,
            mem_intensity=0.4, bw_per_thread_gbps=1.5,
        ),
    ]
    return Program(name=f"ft.{input_name}", phases=tuple(phases))


def _build_lu(input_name: str) -> Program:
    """LU: SSOR solver with pipelined wavefront sweeps.

    The lower/upper triangular sweeps carry a linear load ramp, making
    the schedule kind matter (static leaves the ramp's tail on one
    thread; guided/dynamic smooth it).
    """
    scale = NPB_CLASSES[input_name]
    n, wg = _dims(scale, 24)
    trips = max(20, int(round(50 * math.sqrt(scale))))
    sweep = dict(
        pattern=LoadPattern.LINEAR,
        imbalance=0.45,
        mem_intensity=0.35,
        bw_per_thread_gbps=1.4,
    )
    phases = [
        SerialPhase(work=0.002 * scale, name="setbv"),
        LoopRegion("jacld_blts", n, 2.2e-4 * wg, trips=trips, gap_work=2e-6, **sweep),
        LoopRegion("jacu_buts", n, 2.2e-4 * wg, trips=trips, gap_work=2e-6, **sweep),
        LoopRegion(
            "rhs", n, 1.4e-4 * wg, trips=trips, gap_work=2e-6,
            mem_intensity=0.45, bw_per_thread_gbps=1.8,
        ),
        LoopRegion(
            "l2norm", n, 2e-5 * wg, n_reductions=1, trips=max(2, trips // 10),
            mem_intensity=0.4, bw_per_thread_gbps=1.5,
        ),
    ]
    return Program(name=f"lu.{input_name}", phases=tuple(phases))


def _build_mg(input_name: str) -> Program:
    """MG: V-cycle multigrid.

    A ladder of grid levels: the fine levels are bandwidth-monsters, the
    coarse levels are tiny regions where fork/join and wait-policy
    overheads dominate — the mix that makes MG sensitive to both memory
    placement and blocktime (paper speedups up to 2.17x).
    """
    scale = NPB_CLASSES[input_name]
    n, wg = _dims(scale, 48)
    trips = max(4, int(round(4 * scale ** 0.25)))
    phases: list = [SerialPhase(work=0.002 * scale, name="zero3")]
    # Four grid levels per V-cycle leg, each 8x smaller than the last.
    for level in range(4):
        shrink = 8.0**level
        n_lvl = max(4, int(n / (2.0**level)))
        phases.append(
            LoopRegion(
                f"resid_psinv_L{level}",
                n_lvl,
                max(3.2e-4 * wg / shrink, 1e-7),
                trips=trips * 12,
                gap_work=1e-6,
                mem_intensity=0.70,
                bw_per_thread_gbps=3.5,
            )
        )
    phases.append(
        LoopRegion(
            "norm2u3", n, 2e-5 * wg, n_reductions=2, trips=trips,
            mem_intensity=0.5, bw_per_thread_gbps=2.0,
        )
    )
    return Program(name=f"mg.{input_name}", phases=tuple(phases))


_CLASSES = tuple(NPB_CLASSES)

for _name, _builder, _archs in (
    ("bt", _build_bt, None),
    ("cg", _build_cg, None),
    ("ep", _build_ep, None),
    ("ft", _build_ft, ("a64fx", "milan")),  # the paper's unnamed 13th gap
    ("lu", _build_lu, None),
    ("mg", _build_mg, None),
):
    register_workload(
        Workload(
            name=_name,
            suite="npb",
            varies="input_size",
            inputs=_CLASSES,
            builder=_builder,
            archs=_archs,
        )
    )
