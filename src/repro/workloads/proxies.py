"""Proxy applications: XSBench, RSBench, SU3Bench, LULESH.

Per the paper's design these run at their default input size and sweep
the *thread count* instead.  Their memory characters differentiate the
architectures:

- **XSBench** — random macroscopic-cross-section table lookups: extreme
  latency-bound random access with heavy bandwidth demand.  At full
  thread count it oversaturates Milan's NPS4 per-node bandwidth (hence
  the paper's up-to-2.6x tuning headroom there) while Skylake's two fat
  memory controllers and A64FX's HBM shrug it off (1.00x).
- **RSBench** — the multipole variant: far more compute per lookup, so
  only moderate tuning headroom (1.0-1.2x).
- **SU3Bench** — streaming SU(3) matrix multiplies: pure bandwidth;
  congests Milan at 96 threads (2.3x headroom), nothing elsewhere.
- **LULESH** — many distinct loop regions per time step with mild
  irregularity: fork/join-heavy, small but broad tuning surface
  (1.00-1.06x).
"""

from __future__ import annotations

from repro.runtime.program import LoadPattern, LoopRegion, Program, SerialPhase
from repro.workloads.base import Workload, register_workload

__all__ = []


def _build_xsbench(input_name: str) -> Program:
    """XSBench: continuous-energy cross-section lookup kernel."""
    del input_name  # single (default "large") input
    phases = (
        SerialPhase(work=0.004, name="generate_grids"),
        LoopRegion(
            "xs_lookups",
            n_iters=425_000,
            iter_work=2.2e-7,
            pattern=LoadPattern.UNIFORM,
            mem_intensity=0.75,
            bw_per_thread_gbps=4.5,
            random_access=True,
            n_reductions=1,
            trips=1,
            fixed_schedule="dynamic",
            fixed_chunk=100,
        ),
    )
    return Program(name="xsbench.default", phases=phases)


def _build_rsbench(input_name: str) -> Program:
    """RSBench: multipole cross-section kernel (compute-heavy)."""
    del input_name
    phases = (
        SerialPhase(work=0.003, name="generate_poles"),
        LoopRegion(
            "rs_lookups",
            n_iters=250_000,
            iter_work=3.6e-7,
            pattern=LoadPattern.UNIFORM,
            mem_intensity=0.35,
            bw_per_thread_gbps=1.8,
            random_access=True,
            n_reductions=1,
            trips=1,
            fixed_schedule="dynamic",
            fixed_chunk=100,
        ),
    )
    return Program(name="rsbench.default", phases=phases)


def _build_su3bench(input_name: str) -> Program:
    """SU3Bench: streaming SU(3) matrix-matrix multiply."""
    del input_name
    phases = (
        SerialPhase(work=0.002, name="init_lattice"),
        LoopRegion(
            "mult_su3_nn",
            n_iters=64_000,
            iter_work=2.5e-7,
            pattern=LoadPattern.UNIFORM,
            mem_intensity=0.80,
            bw_per_thread_gbps=4.0,
            random_access=False,
            trips=25,
            gap_work=1e-6,
        ),
    )
    return Program(name="su3bench.default", phases=phases)


def _build_lulesh(input_name: str) -> Program:
    """LULESH: unstructured hex-mesh hydrodynamics mini-app.

    Roughly a dozen distinct parallel loops per time step with mild
    element-cost dispersion and a couple of courant/hydro reductions.
    """
    del input_name
    n_elems = 27_000  # 30^3 default mesh
    trips = 40
    elem = dict(
        pattern=LoadPattern.RANDOM,
        imbalance=0.25,
        mem_intensity=0.50,
        bw_per_thread_gbps=1.4,
        trips=trips,
        gap_work=1.5e-6,
    )
    phases = (
        SerialPhase(work=0.002, name="build_mesh"),
        LoopRegion("calc_force", n_elems, 2.4e-7, **elem),
        LoopRegion("calc_accel_vel_pos", n_elems, 1.0e-7, **elem),
        LoopRegion("calc_kinematics", n_elems, 2.0e-7, **elem),
        LoopRegion("calc_monotonic_q", n_elems, 1.4e-7, **elem),
        LoopRegion("apply_material", n_elems, 1.6e-7, **elem),
        LoopRegion(
            "calc_time_constraints",
            n_elems,
            6e-8,
            n_reductions=2,
            mem_intensity=0.4,
            bw_per_thread_gbps=1.5,
            trips=trips,
            gap_work=1e-6,
        ),
    )
    return Program(name="lulesh.default", phases=phases)


for _name, _builder in (
    ("xsbench", _build_xsbench),
    ("rsbench", _build_rsbench),
    ("su3bench", _build_su3bench),
    ("lulesh", _build_lulesh),
):
    register_workload(
        Workload(
            name=_name,
            suite="proxy",
            varies="threads",
            inputs=("default",),
            builder=_builder,
        )
    )
