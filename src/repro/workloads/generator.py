"""Synthetic workload generator.

Produces parameterized loop/task workloads outside the 15 paper apps —
used by property-based tests (random-but-valid programs) and by users who
want to ask "what would the sweep recommend for an app shaped like X?".
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.runtime.program import (
    LoadPattern,
    LoopRegion,
    Program,
    SerialPhase,
    TaskRegion,
)

__all__ = ["synthetic_loop_workload", "synthetic_task_workload", "random_program"]


def synthetic_loop_workload(
    name: str = "synthetic-loop",
    n_regions: int = 3,
    n_iters: int = 10_000,
    iter_work: float = 1e-6,
    pattern: LoadPattern = LoadPattern.UNIFORM,
    imbalance: float = 0.0,
    mem_intensity: float = 0.3,
    bw_per_thread_gbps: float = 1.0,
    random_access: bool = False,
    trips: int = 10,
    n_reductions: int = 0,
) -> Program:
    """A loop-parallel program with ``n_regions`` identical regions."""
    if n_regions < 1:
        raise WorkloadError("need at least one region")
    phases: list = [SerialPhase(work=1e-4, name="init")]
    for i in range(n_regions):
        phases.append(
            LoopRegion(
                f"region{i}",
                n_iters=n_iters,
                iter_work=iter_work,
                pattern=pattern,
                imbalance=imbalance,
                mem_intensity=mem_intensity,
                bw_per_thread_gbps=bw_per_thread_gbps,
                random_access=random_access,
                n_reductions=n_reductions,
                trips=trips,
                gap_work=1e-6,
            )
        )
    return Program(name=name, phases=tuple(phases))


def synthetic_task_workload(
    name: str = "synthetic-task",
    depth: int = 6,
    branching: int = 3,
    leaf_work: float = 5e-6,
    node_work: float = 5e-7,
    leaf_sigma: float = 0.3,
    mem_intensity: float = 0.1,
    trips: int = 1,
) -> Program:
    """A task-parallel program with one spawn-tree region."""
    phases = (
        SerialPhase(work=1e-4, name="init"),
        TaskRegion(
            "tree",
            depth=depth,
            branching=branching,
            leaf_work=leaf_work,
            node_work=node_work,
            leaf_sigma=leaf_sigma,
            mem_intensity=mem_intensity,
            bw_per_thread_gbps=0.5 * mem_intensity,
            trips=trips,
        ),
    )
    return Program(name=name, phases=phases)


def random_program(seed: int, max_regions: int = 5) -> Program:
    """A random-but-valid program for fuzz/property testing."""
    rng = np.random.default_rng(seed)
    n_regions = int(rng.integers(1, max_regions + 1))
    phases: list = [SerialPhase(work=float(rng.uniform(1e-6, 1e-3)), name="init")]
    for i in range(n_regions):
        if rng.random() < 0.35:
            phases.append(
                TaskRegion(
                    f"task{i}",
                    depth=int(rng.integers(1, 7)),
                    branching=int(rng.integers(2, 6)),
                    leaf_work=float(rng.uniform(5e-7, 1e-4)),
                    node_work=float(rng.uniform(0.0, 1e-5)),
                    leaf_sigma=float(rng.uniform(0.0, 1.0)),
                    mem_intensity=float(rng.uniform(0.0, 0.8)),
                    bw_per_thread_gbps=float(rng.uniform(0.0, 4.0)),
                    trips=int(rng.integers(1, 6)),
                    gap_work=float(rng.uniform(0.0, 1e-5)),
                )
            )
        else:
            pattern = list(LoadPattern)[int(rng.integers(len(LoadPattern)))]
            imbalance = (
                0.0
                if pattern is LoadPattern.UNIFORM
                else float(rng.uniform(0.0, 1.2))
            )
            phases.append(
                LoopRegion(
                    f"loop{i}",
                    n_iters=int(rng.integers(8, 200_000)),
                    iter_work=float(rng.uniform(1e-9, 1e-4)),
                    pattern=pattern,
                    imbalance=imbalance,
                    mem_intensity=float(rng.uniform(0.0, 0.9)),
                    bw_per_thread_gbps=float(rng.uniform(0.0, 5.0)),
                    random_access=bool(rng.random() < 0.3),
                    n_reductions=int(rng.integers(0, 4)),
                    trips=int(rng.integers(1, 50)),
                    gap_work=float(rng.uniform(0.0, 1e-5)),
                )
            )
    return Program(name=f"random-{seed}", phases=tuple(phases))
