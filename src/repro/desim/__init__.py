"""Discrete-event simulation engine.

A small, deterministic, simpy-flavoured kernel used by the runtime model:

- :mod:`~repro.desim.engine` — event heap, generator-based processes,
  :class:`~repro.desim.engine.Timeout` / :class:`~repro.desim.engine.Event`,
- :mod:`~repro.desim.resources` — :class:`~repro.desim.resources.Lock`,
  :class:`~repro.desim.resources.Semaphore`,
  :class:`~repro.desim.resources.Barrier` built on the kernel,
- :mod:`~repro.desim.stealing` — a work-stealing task-pool simulator used
  as the high-fidelity execution mode for task-parallel regions (BOTS) and
  as ground truth for validating the fast analytic task model.

Determinism: the event heap breaks time ties by a documented total order
(time, priority, insertion sequence; see :mod:`~repro.desim.engine`), and
all randomness flows through explicit ``numpy`` generators, so a given
seed always produces the same trajectory.  The concurrency sanitizer
(:mod:`repro.sanitize`) perturbs the same-timestamp order via
:func:`~repro.desim.engine.tiebreak_scope` to prove results do not depend
on it.
"""

from repro.desim.engine import (
    Engine,
    Event,
    Process,
    Timeout,
    ambient_tiebreak_seed,
    tiebreak_scope,
)
from repro.desim.resources import Barrier, Lock, Semaphore
from repro.desim.stealing import (
    StealResult,
    Task,
    TaskGraph,
    WorkStealingSimulator,
)
from repro.desim.loopsim import LoopSimResult, simulate_loop

__all__ = [
    "Engine",
    "Event",
    "Process",
    "Timeout",
    "Lock",
    "Semaphore",
    "Barrier",
    "Task",
    "TaskGraph",
    "StealResult",
    "WorkStealingSimulator",
    "LoopSimResult",
    "simulate_loop",
    "ambient_tiebreak_seed",
    "tiebreak_scope",
]
