"""Self-scheduled loop execution on the DES kernel.

A per-chunk simulation of OpenMP worksharing-loop execution: workers grab
chunks from a shared counter guarded by a :class:`~repro.desim.resources.Lock`
(the dispatch serialization the analytic model approximates), execute
their iterations' costs, and rendezvous at an end barrier.

Used as ground truth for :mod:`repro.runtime.schedule`'s closed forms —
tests check that the analytic balance factors and dispatch-contention
bounds track this simulation across schedules, chunk sizes, team sizes
and iteration-cost profiles.

For verification, :func:`simulate_loop` accepts an ``on_chunk`` callback
(fired once per executed chunk with its bounds and timing) and an
``engine_observer`` forwarded to the underlying :class:`Engine` — the
``repro.check`` iteration-coverage invariant asserts every loop iteration
is executed exactly once across all reported chunks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.desim.engine import Engine, Timeout
from repro.desim.resources import Lock
from repro.errors import SimulationError

__all__ = ["LoopSimResult", "simulate_loop"]


@dataclass(frozen=True)
class LoopSimResult:
    """Outcome of one simulated loop execution."""

    makespan: float
    n_chunks: int
    #: Total time workers spent waiting on the dispatch lock.
    dispatch_wait: float
    #: Per-worker busy (iteration-executing) time.
    busy: tuple[float, ...]

    @property
    def total_work(self) -> float:
        """Aggregate iteration-executing time across workers."""
        return float(sum(self.busy))

    @property
    def imbalance(self) -> float:
        """max busy / mean busy (1.0 = perfectly balanced)."""
        mean = self.total_work / len(self.busy)
        return max(self.busy) / mean if mean > 0 else 1.0


def _static_blocks(n: int, workers: int) -> list[tuple[int, int]]:
    """Contiguous static partition (libomp schedule(static))."""
    base = n // workers
    extra = n % workers
    blocks = []
    start = 0
    for w in range(workers):
        size = base + (1 if w < extra else 0)
        blocks.append((start, start + size))
        start += size
    return blocks


def simulate_loop(
    iter_costs: np.ndarray,
    n_workers: int,
    schedule: str = "dynamic",
    chunk: int = 1,
    dispatch_time: float = 0.0,
    worker_speeds: np.ndarray | None = None,
    on_chunk: Callable[[int, int, int, float, float], None] | None = None,
    engine_observer: object = None,
) -> LoopSimResult:
    """Simulate one worksharing loop at per-chunk granularity.

    Parameters
    ----------
    iter_costs:
        Cost of each iteration (seconds).
    schedule:
        ``"static"`` (contiguous blocks, no dispatch),
        ``"dynamic"`` (fixed ``chunk``), or
        ``"guided"`` (chunk = ceil(remaining / 2T), floored at ``chunk``).
    dispatch_time:
        Time the shared chunk counter is held per grab (serializes).
    on_chunk:
        Optional instrumentation callback invoked once per executed chunk
        as ``on_chunk(worker, lo, hi, start_time, duration)`` — the
        half-open iteration range ``[lo, hi)`` the worker ran.
    engine_observer:
        Optional observer forwarded to the internal :class:`Engine`.
    """
    iter_costs = np.asarray(iter_costs, dtype=float)
    if iter_costs.ndim != 1 or iter_costs.shape[0] == 0:
        raise SimulationError("need a non-empty 1-D iteration-cost vector")
    if (iter_costs < 0).any():
        raise SimulationError("negative iteration costs")
    if n_workers < 1:
        raise SimulationError("need at least one worker")
    if schedule not in ("static", "dynamic", "guided"):
        raise SimulationError(f"unknown schedule {schedule!r}")
    if chunk < 1:
        raise SimulationError("chunk must be >= 1")
    speeds = (
        np.ones(n_workers)
        if worker_speeds is None
        else np.asarray(worker_speeds, dtype=float)
    )
    if speeds.shape != (n_workers,) or (speeds <= 0).any():
        raise SimulationError("worker_speeds must be positive, one per worker")

    n = iter_costs.shape[0]
    prefix = np.concatenate([[0.0], np.cumsum(iter_costs)])

    engine = Engine(observer=engine_observer)
    busy = [0.0] * n_workers
    state = {"next": 0, "chunks": 0, "dispatch_wait": 0.0}
    lock = Lock(engine)

    if schedule == "static":
        blocks = _static_blocks(n, n_workers)

        def worker_static(w: int):
            lo, hi = blocks[w % len(blocks)] if w < len(blocks) else (0, 0)
            if w < len(blocks) and hi > lo:
                duration = (prefix[hi] - prefix[lo]) / speeds[w]
                busy[w] += duration
                state["chunks"] += 1
                if on_chunk is not None:
                    on_chunk(w, lo, hi, engine.now, duration)
                yield Timeout(duration)

        for w in range(n_workers):
            engine.process(worker_static(w))
        engine.run()
        return LoopSimResult(
            makespan=engine.now,
            n_chunks=state["chunks"],
            dispatch_wait=0.0,
            busy=tuple(busy),
        )

    def take_chunk() -> tuple[int, int]:
        lo = state["next"]
        if lo >= n:
            return (n, n)
        if schedule == "dynamic":
            size = chunk
        else:  # guided: libomp's remaining/(2T) with a floor
            remaining = n - lo
            size = max(chunk, -(-remaining // (2 * n_workers)))
        hi = min(lo + size, n)
        state["next"] = hi
        state["chunks"] += 1
        return (lo, hi)

    def worker_dyn(w: int):
        while True:
            wait_start = engine.now
            yield from lock.acquire()
            state["dispatch_wait"] += engine.now - wait_start
            if dispatch_time > 0.0:
                yield Timeout(dispatch_time / speeds[w])
            lo, hi = take_chunk()
            lock.release()
            if lo >= hi:
                return
            duration = (prefix[hi] - prefix[lo]) / speeds[w]
            busy[w] += duration
            if on_chunk is not None:
                on_chunk(w, lo, hi, engine.now, duration)
            yield Timeout(duration)

    for w in range(n_workers):
        engine.process(worker_dyn(w))
    engine.run()
    return LoopSimResult(
        makespan=engine.now,
        n_chunks=state["chunks"],
        dispatch_wait=state["dispatch_wait"],
        busy=tuple(busy),
    )
