"""Self-scheduled loop execution on the DES kernel.

A per-chunk simulation of OpenMP worksharing-loop execution: workers grab
chunks from a shared counter guarded by a :class:`~repro.desim.resources.Lock`
(the dispatch serialization the analytic model approximates), execute
their iterations' costs, and rendezvous at an end barrier.

Used as ground truth for :mod:`repro.runtime.schedule`'s closed forms —
tests check that the analytic balance factors and dispatch-contention
bounds track this simulation across schedules, chunk sizes, team sizes
and iteration-cost profiles.

For verification, :func:`simulate_loop` accepts an ``on_chunk`` callback
(fired once per executed chunk with its bounds and timing) and an
``engine_observer`` forwarded to the underlying :class:`Engine` — the
``repro.check`` iteration-coverage invariant asserts every loop iteration
is executed exactly once across all reported chunks.  Shared-state
touches (the chunk cursor and dispatch-wait accumulator, both guarded by
the dispatch lock) are reported through ``state_access`` notifications,
which the ``repro.sanitize`` happens-before tracker consumes; the
``tiebreak_seed`` and ``inject_tie_race`` parameters exist solely for
that sanitizer (seeded same-timestamp perturbation, and a deliberate
order-dependent fault used to prove the detectors catch one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.desim.engine import Engine, Timeout
from repro.desim.resources import Lock
from repro.errors import SimulationError

__all__ = ["LoopSimResult", "simulate_loop"]


@dataclass(frozen=True)
class LoopSimResult:
    """Outcome of one simulated loop execution."""

    makespan: float
    n_chunks: int
    #: Total time workers spent waiting on the dispatch lock.
    dispatch_wait: float
    #: Per-worker busy (iteration-executing) time.
    busy: tuple[float, ...]

    @property
    def total_work(self) -> float:
        """Aggregate iteration-executing time across workers."""
        return float(sum(self.busy))

    @property
    def imbalance(self) -> float:
        """max busy / mean busy (1.0 = perfectly balanced)."""
        mean = self.total_work / len(self.busy)
        return max(self.busy) / mean if mean > 0 else 1.0


def _static_blocks(n: int, workers: int) -> list[tuple[int, int]]:
    """Contiguous static partition (libomp schedule(static))."""
    base = n // workers
    extra = n % workers
    blocks = []
    start = 0
    for w in range(workers):
        size = base + (1 if w < extra else 0)
        blocks.append((start, start + size))
        start += size
    return blocks


def simulate_loop(
    iter_costs: np.ndarray,
    n_workers: int,
    schedule: str = "dynamic",
    chunk: int = 1,
    dispatch_time: float = 0.0,
    worker_speeds: np.ndarray | None = None,
    on_chunk: Callable[[int, int, int, float, float], None] | None = None,
    engine_observer: object = None,
    tiebreak_seed: int | None = None,
    inject_tie_race: bool = False,
) -> LoopSimResult:
    """Simulate one worksharing loop at per-chunk granularity.

    Parameters
    ----------
    iter_costs:
        Cost of each iteration (seconds).
    schedule:
        ``"static"`` (contiguous blocks, no dispatch),
        ``"dynamic"`` (fixed ``chunk``), or
        ``"guided"`` (chunk = ceil(remaining / 2T), floored at ``chunk``).
    dispatch_time:
        Time the shared chunk counter is held per grab (serializes).
    on_chunk:
        Optional instrumentation callback invoked once per executed chunk
        as ``on_chunk(worker, lo, hi, start_time, duration)`` — the
        half-open iteration range ``[lo, hi)`` the worker ran.
    engine_observer:
        Optional observer forwarded to the internal :class:`Engine`.
    tiebreak_seed:
        Optional seed forwarded to the internal :class:`Engine`,
        perturbing same-timestamp handler order (sanitizer fuzzing only).
    inject_tie_race:
        Test-only fault injection: every worker writes a shared cell at
        t=0 *outside* the dispatch lock and the last write perturbs the
        returned makespan by ``1e-9 * value``.  This is a genuine
        tie-break race — unordered same-timestamp writes whose winner
        depends on handler order — planted so the sanitizer's
        happens-before pass and perturbation fuzzer can both be shown to
        catch one.  Never set outside sanitizer tests.
    """
    iter_costs = np.asarray(iter_costs, dtype=float)
    if iter_costs.ndim != 1 or iter_costs.shape[0] == 0:
        raise SimulationError("need a non-empty 1-D iteration-cost vector")
    if (iter_costs < 0).any():
        raise SimulationError("negative iteration costs")
    if n_workers < 1:
        raise SimulationError("need at least one worker")
    if schedule not in ("static", "dynamic", "guided"):
        raise SimulationError(f"unknown schedule {schedule!r}")
    if chunk < 1:
        raise SimulationError("chunk must be >= 1")
    speeds = (
        np.ones(n_workers)
        if worker_speeds is None
        else np.asarray(worker_speeds, dtype=float)
    )
    if speeds.shape != (n_workers,) or (speeds <= 0).any():
        raise SimulationError("worker_speeds must be positive, one per worker")

    n = iter_costs.shape[0]
    prefix = np.concatenate([[0.0], np.cumsum(iter_costs)])

    engine = Engine(observer=engine_observer, tiebreak_seed=tiebreak_seed)
    busy = [0.0] * n_workers
    state = {"next": 0, "chunks": 0, "dispatch_wait": 0.0, "race_cell": 0}
    lock = Lock(engine, name="dispatch")

    def racy_prologue(w: int) -> None:
        # The injected fault: an unguarded same-timestamp write to shared
        # state.  Whichever worker's start handler runs last wins.
        state["race_cell"] = w
        if engine._observer is not None:
            engine.notify(
                "state_access", obj="race_cell", op="write",
                label=f"worker{w} unguarded write",
            )

    def perturbed(makespan: float) -> float:
        if inject_tie_race:
            return makespan + 1e-9 * state["race_cell"]
        return makespan

    if schedule == "static":
        # Chunk count is a pure function of the partition — computed up
        # front so static workers touch only per-worker state.  (An earlier
        # version had every worker bump a shared counter at t=0: harmless
        # in effect, but an unordered same-timestamp write the sanitizer
        # rightly flags.  The sanitizer forced this cleanup.)
        blocks = _static_blocks(n, n_workers)
        n_chunks = sum(1 for lo, hi in blocks if hi > lo)

        def worker_static(w: int):
            if inject_tie_race:
                racy_prologue(w)
            lo, hi = blocks[w]
            if hi > lo:
                duration = (prefix[hi] - prefix[lo]) / speeds[w]
                busy[w] += duration
                if on_chunk is not None:
                    on_chunk(w, lo, hi, engine.now, duration)
                yield Timeout(duration)

        for w in range(n_workers):
            engine.process(worker_static(w), name=f"worker{w}")
        engine.run()
        return LoopSimResult(
            makespan=perturbed(engine.now),
            n_chunks=n_chunks,
            dispatch_wait=0.0,
            busy=tuple(busy),
        )

    def take_chunk() -> tuple[int, int]:
        lo = state["next"]
        if lo >= n:
            return (n, n)
        if schedule == "dynamic":
            size = chunk
        else:  # guided: libomp's remaining/(2T) with a floor
            remaining = n - lo
            size = max(chunk, -(-remaining // (2 * n_workers)))
        hi = min(lo + size, n)
        state["next"] = hi
        state["chunks"] += 1
        return (lo, hi)

    def worker_dyn(w: int):
        if inject_tie_race:
            racy_prologue(w)
        while True:
            wait_start = engine.now
            yield from lock.acquire()
            state["dispatch_wait"] += engine.now - wait_start
            if engine._observer is not None:
                engine.notify(
                    "state_access", obj="dispatch_wait", op="write",
                    label=f"worker{w} wait accounting",
                )
            if dispatch_time > 0.0:
                yield Timeout(dispatch_time / speeds[w])
            lo, hi = take_chunk()
            if engine._observer is not None:
                engine.notify(
                    "state_access", obj="chunk_cursor", op="write",
                    label=f"worker{w} grab [{lo}, {hi})",
                )
            lock.release()
            if lo >= hi:
                return
            duration = (prefix[hi] - prefix[lo]) / speeds[w]
            busy[w] += duration
            if on_chunk is not None:
                on_chunk(w, lo, hi, engine.now, duration)
            yield Timeout(duration)

    for w in range(n_workers):
        engine.process(worker_dyn(w), name=f"worker{w}")
    engine.run()
    return LoopSimResult(
        makespan=perturbed(engine.now),
        n_chunks=state["chunks"],
        dispatch_wait=state["dispatch_wait"],
        busy=tuple(busy),
    )
