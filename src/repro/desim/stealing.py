"""Work-stealing task-pool simulator.

LLVM/OpenMP executes ``task`` constructs on per-thread deques with random
victim stealing.  This module simulates that scheduler at per-task
granularity: LIFO local pops, FIFO steals, a configurable steal latency
(spin-waiting ``turnaround`` mode steals faster than yielding
``throughput`` mode), per-spawn overhead, and exponential idle backoff.

It serves two roles:

1. the high-fidelity (``"des"``) execution mode for task-parallel regions,
2. ground truth against which the fast analytic task model in
   :mod:`repro.runtime.kernel` is validated by tests.

Tie arbitration is part of the specification
--------------------------------------------
Unlike :class:`repro.desim.engine.Engine` callbacks — whose same-timestamp
order must never leak into results — this simulator's trajectories
*legitimately* depend on which idle worker reaches a contended deque
first.  That arbitration is pinned by the documented event order
``(time, sequence)`` on the internal heap plus the ``seed``-driven victim
selection: together they are the reproducibility contract (re-running
with the same graph, speeds and seed replays the identical trajectory,
steal for steal).  The sanitizer therefore does not perturb this heap; it
audits it instead — :class:`repro.sanitize.steal_audit.StealOrderAuditor`
consumes the ``observer`` hooks on :meth:`WorkStealingSimulator.run` to
verify replay determinism and to count (as informational findings, not
races) the same-timestamp deque contentions this order arbitrates.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import SimulationError

__all__ = ["Task", "TaskGraph", "StealResult", "WorkStealingSimulator"]


@dataclass(frozen=True)
class Task:
    """One task: compute ``work`` seconds, then release ``children``."""

    task_id: int
    work: float
    children: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.work < 0:
            raise SimulationError(f"task {self.task_id} has negative work")


@dataclass
class TaskGraph:
    """A spawn tree of tasks, rooted at :attr:`root`.

    Children become runnable when their parent's compute finishes — the
    shape recursive BOTS benchmarks (NQueens, Sort, Strassen, Health)
    produce with ``#pragma omp task`` in a divide phase.
    """

    tasks: list[Task] = field(default_factory=list)
    root: int = 0

    def add(self, work: float, children: tuple[int, ...] = ()) -> int:
        """Append a task; returns its id."""
        tid = len(self.tasks)
        self.tasks.append(Task(tid, work, children))
        return tid

    @property
    def n_tasks(self) -> int:
        """Total number of tasks."""
        return len(self.tasks)

    @property
    def total_work(self) -> float:
        """Sum of all task work (serial execution time sans overheads)."""
        return float(sum(t.work for t in self.tasks))

    def critical_path(self) -> float:
        """Longest root-to-leaf work sum — the tasking lower bound."""
        if not self.tasks:
            return 0.0
        memo: dict[int, float] = {}
        # Iterative DFS (graphs can be deep for unbalanced trees).
        stack = [(self.root, False)]
        while stack:
            tid, expanded = stack.pop()
            task = self.tasks[tid]
            if expanded:
                memo[tid] = task.work + max(
                    (memo[c] for c in task.children), default=0.0
                )
            else:
                stack.append((tid, True))
                for c in task.children:
                    if c not in memo:
                        stack.append((c, False))
        return memo[self.root]

    @classmethod
    def balanced_tree(
        cls,
        depth: int,
        branching: int,
        leaf_work: float,
        node_work: float = 0.0,
    ) -> "TaskGraph":
        """A uniform spawn tree: interior nodes do ``node_work``, leaves
        ``leaf_work``."""
        if depth < 0 or branching < 1:
            raise SimulationError("need depth >= 0 and branching >= 1")
        graph = cls()

        def build(level: int) -> int:
            if level == depth:
                return graph.add(leaf_work)
            children = tuple(build(level + 1) for _ in range(branching))
            return graph.add(node_work, children)

        graph.root = build(0)
        return graph


@dataclass(frozen=True)
class StealResult:
    """Outcome of one work-stealing simulation."""

    makespan: float
    total_work: float
    n_tasks: int
    steals: int
    failed_steals: int
    busy_time: float
    n_workers: int = 1

    @property
    def utilization(self) -> float:
        """Fraction of worker-time spent executing tasks."""
        if self.makespan == 0.0:
            return 1.0
        return self.busy_time / (self.makespan * self.n_workers)

    @property
    def speedup_over_serial(self) -> float:
        """``total_work / makespan`` — the parallel speedup achieved."""
        if self.makespan == 0.0:
            return 1.0
        return self.total_work / self.makespan


class WorkStealingSimulator:
    """Simulate one task-region execution on ``n_workers`` threads.

    Parameters
    ----------
    n_workers:
        Threads in the parallel region's team.
    steal_latency:
        Time one steal attempt takes (successful or not).  Spin-waiting
        modes have low latency; yield-to-OS modes pay more.
    spawn_overhead:
        Bookkeeping time the spawning thread pays per child task.
    backoff_max_factor:
        Idle workers back off exponentially up to
        ``steal_latency * backoff_max_factor`` between attempts.
    seed:
        Victim selection seed (fully deterministic trajectories).
    """

    def __init__(
        self,
        n_workers: int,
        steal_latency: float = 1e-6,
        spawn_overhead: float = 2e-7,
        backoff_max_factor: int = 64,
        seed: int = 0,
    ):
        if n_workers < 1:
            raise SimulationError(f"need >= 1 worker, got {n_workers}")
        if steal_latency <= 0 or spawn_overhead < 0:
            raise SimulationError("non-positive steal latency / negative spawn cost")
        self.n_workers = n_workers
        self.steal_latency = steal_latency
        self.spawn_overhead = spawn_overhead
        self.backoff_max_factor = backoff_max_factor
        self.seed = seed

    def run(
        self,
        graph: TaskGraph,
        worker_speeds: np.ndarray | None = None,
        on_task: Callable[[int, int, float, float], None] | None = None,
        observer: object = None,
    ) -> StealResult:
        """Execute ``graph``; returns a :class:`StealResult`.

        ``worker_speeds`` scales each worker's execution rate (1.0 =
        nominal); oversubscribed or remote-memory threads pass < 1.0.
        ``on_task`` is an optional instrumentation callback fired once per
        executed task as ``on_task(worker, task_id, start, end)`` — the
        ``repro.check`` task-conservation invariant uses it to assert every
        task in the graph executes exactly once.

        ``observer`` receives scheduler-decision hooks (any subset):
        ``on_pop(now, worker, task_id)`` for LIFO local pops,
        ``on_steal(now, thief, victim, task_id)`` for successful steals,
        and ``on_failed_steal(now, worker)`` for empty-handed scans.  The
        sanitizer's steal auditor uses these to verify replay determinism
        and count arbitrated same-timestamp deque contentions.
        """
        if graph.n_tasks == 0:
            return StealResult(0.0, 0.0, 0, 0, 0, 0.0, self.n_workers)
        speeds = (
            np.ones(self.n_workers)
            if worker_speeds is None
            else np.asarray(worker_speeds, dtype=float)
        )
        if speeds.shape != (self.n_workers,) or (speeds <= 0).any():
            raise SimulationError("worker_speeds must be positive, one per worker")

        on_pop = getattr(observer, "on_pop", None)
        on_steal = getattr(observer, "on_steal", None)
        on_failed_steal = getattr(observer, "on_failed_steal", None)

        rng = np.random.default_rng(self.seed)
        deques: list[list[int]] = [[] for _ in range(self.n_workers)]
        deques[0].append(graph.root)
        remaining = 1  # tasks pushed but not yet completed (incl. executing)
        steals = 0
        failed = 0
        busy = 0.0
        backoff = [1.0] * self.n_workers

        # Event heap: (time, seq, worker). Each worker has exactly one
        # pending event: "decide what to do next at this time".
        heap: list[tuple[float, int, int]] = []
        seq = 0
        for w in range(self.n_workers):
            heapq.heappush(heap, (0.0, seq, w))
            seq += 1
        finish_time = 0.0

        def execute(w: int, now: float, tid: int) -> float:
            """Run task ``tid`` on worker ``w``; returns completion time."""
            nonlocal remaining, busy
            task = graph.tasks[tid]
            duration = (
                task.work + self.spawn_overhead * len(task.children)
            ) / speeds[w]
            busy += duration
            done = now + duration
            for child in task.children:
                deques[w].append(child)
            remaining += len(task.children)
            remaining -= 1
            if on_task is not None:
                on_task(w, tid, now, done)
            return done

        while heap:
            now, _, w = heapq.heappop(heap)
            if remaining == 0:
                finish_time = max(finish_time, now)
                continue  # drain: all work done, worker retires
            if deques[w]:
                tid = deques[w].pop()  # LIFO local pop
                if on_pop is not None:
                    on_pop(now, w, tid)
                backoff[w] = 1.0
                done = execute(w, now, tid)
                finish_time = max(finish_time, done)
                heapq.heappush(heap, (done, seq, w))
                seq += 1
                continue
            # Steal attempt: pick a random victim with work.
            victims = [v for v in range(self.n_workers) if v != w and deques[v]]
            if victims:
                victim = victims[int(rng.integers(len(victims)))]
                tid = deques[victim].pop(0)  # FIFO steal end
                if on_steal is not None:
                    on_steal(now, w, victim, tid)
                steals += 1
                backoff[w] = 1.0
                start = now + self.steal_latency / speeds[w]
                done = execute(w, start, tid)
                finish_time = max(finish_time, done)
                heapq.heappush(heap, (done, seq, w))
                seq += 1
            else:
                failed += 1
                if on_failed_steal is not None:
                    on_failed_steal(now, w)
                wait = self.steal_latency * backoff[w]
                backoff[w] = min(backoff[w] * 2.0, float(self.backoff_max_factor))
                heapq.heappush(heap, (now + wait, seq, w))
                seq += 1

        if remaining != 0:
            raise SimulationError(
                f"work-stealing simulation ended with {remaining} live tasks"
            )
        return StealResult(
            makespan=finish_time,
            total_work=graph.total_work,
            n_tasks=graph.n_tasks,
            steals=steals,
            failed_steals=failed,
            busy_time=busy,
            n_workers=self.n_workers,
        )
