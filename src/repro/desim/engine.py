"""Generator-based discrete-event simulation kernel.

Processes are Python generators that ``yield`` waitables:

- :class:`Timeout` — resume after a span of simulated time,
- :class:`Event` — resume when the event succeeds (possibly with a value),
- another :class:`Process` — resume when that process finishes.

The engine advances simulated time through a binary heap of scheduled
callbacks.

Same-timestamp total order (the tie-break contract)
---------------------------------------------------
Callbacks scheduled for the same simulated time are executed in a
*documented, stable total order*: ascending ``(time, priority, sequence)``
where ``sequence`` is the global insertion counter and ``priority`` is
``0.0`` in canonical runs.  Two callbacks never compare equal, so runs are
fully deterministic and repeatable.  This order is a **contract**, not an
accident: simulation results may depend on it only where the simulated
system itself arbitrates ties (e.g. which worker wins a steal), and such
arbitration must be documented at the site that relies on it.

The concurrency sanitizer (``repro.sanitize``) perturbs exactly this
order: inside :func:`tiebreak_scope` (or with an explicit
``Engine(tiebreak_seed=...)``) each callback draws ``priority`` from a
seeded RNG, yielding a deterministic *permutation of same-timestamp
handler order* while preserving causality — a handler scheduled by
another handler at the same timestamp still runs after it, because it
cannot be pushed before it is scheduled.  Code with no hidden
order-dependence produces identical results under every seed; the
schedule-perturbation fuzzer asserts exactly that.

Instrumented mode
-----------------
An engine optionally carries a single *observer* — any object exposing a
subset of the hook methods below — attached at construction
(``Engine(observer=...)``) or later (:meth:`Engine.attach_observer`).
The core hooks fire on the engine's state transitions:

- ``on_schedule(now, delay)`` — a callback was pushed on the event heap,
- ``on_advance(time)`` — the clock moved to ``time`` to run a callback,
- ``on_process_start(process)`` — a generator was registered,
- ``on_process_finish(process)`` — a generator finished.

Beyond the core quartet, the engine (and the primitives in
:mod:`repro.desim.resources`) emit *named notifications* through
:meth:`Engine.notify`: an observer that defines ``on_<kind>`` receives
them, others are skipped.  Current kinds: ``process_resume``,
``event_wake``, ``event_join``, ``lock_acquire``, ``lock_release``,
``barrier_arrive``, ``barrier_release``, ``state_access``.  The
happens-before tracker in :mod:`repro.sanitize.hb` builds its vector-clock
DAG entirely from these notifications.

When no observer is attached (the default) every hook costs a single
``is not None`` test per transition, so production sweeps pay nothing.
:class:`repro.check.InvariantObserver` builds the verification subsystem's
engine-invariant checks (monotonic clock, schedule/advance accounting,
live-process conservation) on these hooks.

Example
-------
>>> eng = Engine()
>>> log = []
>>> def worker(name, delay):
...     yield Timeout(delay)
...     log.append((eng.now, name))
>>> _ = eng.process(worker("a", 2.0))
>>> _ = eng.process(worker("b", 1.0))
>>> eng.run()
2.0
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import heapq
import random
from collections.abc import Generator, Iterator
from contextlib import contextmanager
from typing import Any, Callable

from repro.errors import DeadlockError, SimulationError

__all__ = [
    "Engine",
    "Event",
    "Timeout",
    "Process",
    "tiebreak_scope",
    "ambient_tiebreak_seed",
]

# Stack of ambient tie-break seeds consulted by Engine() when no explicit
# tiebreak_seed is passed.  A plain module-level stack (not thread-local):
# the simulator is single-threaded by design, and sweep worker *processes*
# each get their own module state.
_AMBIENT_TIEBREAK: list[int | None] = [None]


@contextmanager
def tiebreak_scope(seed: int | None) -> Iterator[None]:
    """Make every :class:`Engine` constructed inside the block perturb its
    same-timestamp handler order with ``seed``.

    This is the schedule-perturbation fuzzer's entry point: it lets the
    sanitizer reach engines constructed arbitrarily deep inside sweeps and
    traces without threading a parameter through every layer.  ``None``
    restores the canonical (insertion-order) tie-break for the block.
    """
    _AMBIENT_TIEBREAK.append(seed)
    try:
        yield
    finally:
        _AMBIENT_TIEBREAK.pop()


def ambient_tiebreak_seed() -> int | None:
    """The tie-break seed new engines currently inherit (None = canonical)."""
    return _AMBIENT_TIEBREAK[-1]


class Timeout:
    """Waitable: resume the yielding process after ``delay`` sim-time."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        self.delay = delay


class Event:
    """One-shot event processes can wait on.

    ``succeed(value)`` wakes all waiters, delivering ``value`` as the result
    of their ``yield``.  Succeeding twice is an error; waiting on an already
    succeeded event resumes immediately.
    """

    __slots__ = ("engine", "_value", "_done", "_waiters")

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self._value: Any = None
        self._done = False
        self._waiters: list["Process"] = []

    @property
    def triggered(self) -> bool:
        """Whether the event has succeeded."""
        return self._done

    @property
    def value(self) -> Any:
        """The delivered value (only meaningful once triggered)."""
        return self._value

    def succeed(self, value: Any = None) -> None:
        """Trigger the event, waking all waiters at the current time."""
        if self._done:
            raise SimulationError("event succeeded twice")
        self._done = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        if self.engine._observer is not None:
            # Happens-before edge: whoever succeeds the event orders
            # itself before every waiter's resumption.
            self.engine.notify("event_wake", event=self, waiters=tuple(waiters))
        for proc in waiters:
            self.engine._schedule(0.0, proc._advance, value)

    def _add_waiter(self, proc: "Process") -> None:
        if self._done:
            if self.engine._observer is not None:
                # Late join on an already-triggered event: same edge as a
                # wake, but established at wait time.
                self.engine.notify("event_join", event=self, waiters=(proc,))
            self.engine._schedule(0.0, proc._advance, self._value)
        else:
            self._waiters.append(proc)


class Process:
    """A running generator inside an :class:`Engine`.

    Exposes :attr:`done`, :attr:`result` and is itself waitable (another
    process can ``yield proc`` to join it).  The value a generator returns
    (via ``return x``) becomes its result.
    """

    __slots__ = ("engine", "_gen", "_done_event", "name")

    def __init__(self, engine: "Engine", gen: Generator, name: str = ""):
        if not isinstance(gen, Generator):
            raise SimulationError(
                f"process body must be a generator, got {type(gen).__name__}"
            )
        self.engine = engine
        self._gen = gen
        self._done_event = Event(engine)
        self.name = name or getattr(gen, "__name__", "proc")

    @property
    def done(self) -> bool:
        """Whether the generator has finished."""
        return self._done_event.triggered

    @property
    def result(self) -> Any:
        """The generator's return value (None until done)."""
        return self._done_event.value

    def _advance(self, send_value: Any = None) -> None:
        engine = self.engine
        if engine._observer is not None:
            engine.notify("process_resume", proc=self)
        try:
            target = self._gen.send(send_value)
        except StopIteration as stop:
            # Account synchronously: the live-process count must be exact
            # the instant the generator finishes.  Deferring the decrement
            # through a scheduled callback would let a run(until=...) cut
            # return with the count still elevated, and a later draining
            # run() could then report a spurious deadlock.
            engine._process_finished(self)
            self._done_event.succeed(stop.value)
            return
        if isinstance(target, Timeout):
            engine._schedule(target.delay, self._advance, None)
        elif isinstance(target, Event):
            target._add_waiter(self)
        elif isinstance(target, Process):
            target._done_event._add_waiter(self)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported {target!r}"
            )


class Engine:
    """The simulation clock and event loop.

    Parameters
    ----------
    observer:
        Optional instrumentation hook object (see the module docstring).
        ``None`` (the default) disables instrumentation entirely.
    tiebreak_seed:
        Optional seed perturbing the same-timestamp handler order (see
        *Same-timestamp total order* in the module docstring).  ``None``
        (the default) inherits the ambient :func:`tiebreak_scope` seed,
        which is itself ``None`` — canonical insertion order — outside any
        scope.  Only the sanitizer's perturbation fuzzer should set this;
        production sweeps always run canonically.
    """

    def __init__(
        self, observer: Any = None, tiebreak_seed: int | None = None
    ) -> None:
        if tiebreak_seed is None:
            tiebreak_seed = _AMBIENT_TIEBREAK[-1]
        self._now = 0.0
        # Heap entries: (time, priority, sequence, callback, argument).
        # priority is 0.0 canonically; seeded runs draw it per push, which
        # permutes same-timestamp order without breaking causality.
        self._heap: list[tuple[float, float, int, Callable, Any]] = []
        self._seq = 0
        self._live_processes = 0
        self._observer = observer
        self.tiebreak_seed = tiebreak_seed
        self._tiebreak_rng = (
            None if tiebreak_seed is None else random.Random(tiebreak_seed)
        )

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def live_processes(self) -> int:
        """Registered processes whose generators have not finished."""
        return self._live_processes

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------
    def attach_observer(self, observer: Any) -> None:
        """Attach the instrumentation observer (one per engine)."""
        if self._observer is not None:
            raise SimulationError("engine already has an observer attached")
        self._observer = observer

    def detach_observer(self) -> Any:
        """Detach and return the current observer (None if absent)."""
        observer, self._observer = self._observer, None
        return observer

    def notify(self, kind: str, **info: Any) -> None:
        """Dispatch a named notification to the observer.

        Looks up ``on_<kind>`` on the observer and calls it as
        ``hook(now, **info)``; observers that do not define the hook are
        skipped, so every observer opts into exactly the notifications it
        understands.  No-op without an observer — callers on hot paths
        should still guard with ``engine._observer is not None`` to avoid
        even the call overhead.
        """
        observer = self._observer
        if observer is None:
            return
        hook = getattr(observer, "on_" + kind, None)
        if hook is not None:
            hook(self._now, **info)

    # ------------------------------------------------------------------
    # Process / event management
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh event bound to this engine."""
        return Event(self)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Register a generator as a process, starting it at the current time."""
        proc = Process(self, gen, name)
        self._live_processes += 1
        if self._observer is not None:
            self._observer.on_process_start(proc)
        self._schedule(0.0, proc._advance, None)
        return proc

    def _process_finished(self, proc: Process) -> None:
        self._live_processes -= 1
        if self._observer is not None:
            self._observer.on_process_finish(proc)

    def _schedule(self, delay: float, fn: Callable, arg: Any) -> None:
        if delay < 0:
            # Timeout.__init__ validates user-facing delays; this guards the
            # internal callers (events, joins, primitives) so nothing can
            # ever schedule into the simulated past.
            raise SimulationError(
                f"cannot schedule into the past (negative delay {delay!r})"
            )
        if self._observer is not None:
            self._observer.on_schedule(self._now, delay)
        pri = 0.0 if self._tiebreak_rng is None else self._tiebreak_rng.random()
        heapq.heappush(self._heap, (self._now + delay, pri, self._seq, fn, arg))
        self._seq += 1

    def run(self, until: float | None = None) -> float:
        """Run until the heap drains (or simulated time passes ``until``).

        Callbacks execute in ascending ``(time, priority, sequence)`` order
        — the documented same-timestamp contract from the module docstring.
        Returns the final simulated time.  Raises :class:`DeadlockError` if
        events drain while registered processes are still blocked (e.g. a
        lock never released) — only for unbounded runs: a truncated
        ``run(until=...)`` legitimately returns with processes still live,
        and a subsequent ``run()`` resumes them without spurious deadlock
        reports because process accounting is synchronous.  Asking to run
        until a time before the current clock raises
        :class:`SimulationError` (the clock is monotonic).
        """
        if until is not None and until < self._now:
            raise SimulationError(
                f"run(until={until!r}) would move the clock backwards "
                f"from {self._now!r}"
            )
        while self._heap:
            t = self._heap[0][0]
            if until is not None and t > until:
                self._now = until
                return self._now
            _, _, _, fn, arg = heapq.heappop(self._heap)
            self._now = t
            if self._observer is not None:
                self._observer.on_advance(t)
            fn(arg)
        if self._live_processes > 0 and until is None:
            raise DeadlockError(
                f"no events left but {self._live_processes} process(es) "
                "still blocked"
            )
        return self._now
