"""Generator-based discrete-event simulation kernel.

Processes are Python generators that ``yield`` waitables:

- :class:`Timeout` — resume after a span of simulated time,
- :class:`Event` — resume when the event succeeds (possibly with a value),
- another :class:`Process` — resume when that process finishes.

The engine advances simulated time through a binary heap of scheduled
callbacks.  Ties in time are broken by insertion order, making runs fully
deterministic.

Instrumented mode
-----------------
An engine optionally carries a single *observer* — any object exposing a
subset of the hook methods below — attached at construction
(``Engine(observer=...)``) or later (:meth:`Engine.attach_observer`).
The hooks fire on the engine's state transitions:

- ``on_schedule(now, delay)`` — a callback was pushed on the event heap,
- ``on_advance(time)`` — the clock moved to ``time`` to run a callback,
- ``on_process_start(process)`` — a generator was registered,
- ``on_process_finish(process)`` — a generator finished.

When no observer is attached (the default) the hooks cost a single
``is not None`` test per transition, so production sweeps pay nothing.
:class:`repro.check.InvariantObserver` builds the verification subsystem's
engine-invariant checks (monotonic clock, schedule/advance accounting,
live-process conservation) on these hooks.

Example
-------
>>> eng = Engine()
>>> log = []
>>> def worker(name, delay):
...     yield Timeout(delay)
...     log.append((eng.now, name))
>>> _ = eng.process(worker("a", 2.0))
>>> _ = eng.process(worker("b", 1.0))
>>> eng.run()
2.0
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import heapq
from collections.abc import Generator
from typing import Any, Callable

from repro.errors import DeadlockError, SimulationError

__all__ = ["Engine", "Event", "Timeout", "Process"]


class Timeout:
    """Waitable: resume the yielding process after ``delay`` sim-time."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        self.delay = delay


class Event:
    """One-shot event processes can wait on.

    ``succeed(value)`` wakes all waiters, delivering ``value`` as the result
    of their ``yield``.  Succeeding twice is an error; waiting on an already
    succeeded event resumes immediately.
    """

    __slots__ = ("engine", "_value", "_done", "_waiters")

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self._value: Any = None
        self._done = False
        self._waiters: list["Process"] = []

    @property
    def triggered(self) -> bool:
        """Whether the event has succeeded."""
        return self._done

    @property
    def value(self) -> Any:
        """The delivered value (only meaningful once triggered)."""
        return self._value

    def succeed(self, value: Any = None) -> None:
        """Trigger the event, waking all waiters at the current time."""
        if self._done:
            raise SimulationError("event succeeded twice")
        self._done = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self.engine._schedule(0.0, proc._advance, value)

    def _add_waiter(self, proc: "Process") -> None:
        if self._done:
            self.engine._schedule(0.0, proc._advance, self._value)
        else:
            self._waiters.append(proc)


class Process:
    """A running generator inside an :class:`Engine`.

    Exposes :attr:`done`, :attr:`result` and is itself waitable (another
    process can ``yield proc`` to join it).  The value a generator returns
    (via ``return x``) becomes its result.
    """

    __slots__ = ("engine", "_gen", "_done_event", "name")

    def __init__(self, engine: "Engine", gen: Generator, name: str = ""):
        if not isinstance(gen, Generator):
            raise SimulationError(
                f"process body must be a generator, got {type(gen).__name__}"
            )
        self.engine = engine
        self._gen = gen
        self._done_event = Event(engine)
        self.name = name or getattr(gen, "__name__", "proc")

    @property
    def done(self) -> bool:
        """Whether the generator has finished."""
        return self._done_event.triggered

    @property
    def result(self) -> Any:
        """The generator's return value (None until done)."""
        return self._done_event.value

    def _advance(self, send_value: Any = None) -> None:
        try:
            target = self._gen.send(send_value)
        except StopIteration as stop:
            # Account synchronously: the live-process count must be exact
            # the instant the generator finishes.  Deferring the decrement
            # through a scheduled callback would let a run(until=...) cut
            # return with the count still elevated, and a later draining
            # run() could then report a spurious deadlock.
            self.engine._process_finished(self)
            self._done_event.succeed(stop.value)
            return
        if isinstance(target, Timeout):
            self.engine._schedule(target.delay, self._advance, None)
        elif isinstance(target, Event):
            target._add_waiter(self)
        elif isinstance(target, Process):
            target._done_event._add_waiter(self)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported {target!r}"
            )


class Engine:
    """The simulation clock and event loop.

    Parameters
    ----------
    observer:
        Optional instrumentation hook object (see the module docstring).
        ``None`` (the default) disables instrumentation entirely.
    """

    def __init__(self, observer: Any = None) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Callable, Any]] = []
        self._seq = 0
        self._live_processes = 0
        self._observer = observer

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def live_processes(self) -> int:
        """Registered processes whose generators have not finished."""
        return self._live_processes

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------
    def attach_observer(self, observer: Any) -> None:
        """Attach the instrumentation observer (one per engine)."""
        if self._observer is not None:
            raise SimulationError("engine already has an observer attached")
        self._observer = observer

    def detach_observer(self) -> Any:
        """Detach and return the current observer (None if absent)."""
        observer, self._observer = self._observer, None
        return observer

    # ------------------------------------------------------------------
    # Process / event management
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh event bound to this engine."""
        return Event(self)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Register a generator as a process, starting it at the current time."""
        proc = Process(self, gen, name)
        self._live_processes += 1
        if self._observer is not None:
            self._observer.on_process_start(proc)
        self._schedule(0.0, proc._advance, None)
        return proc

    def _process_finished(self, proc: Process) -> None:
        self._live_processes -= 1
        if self._observer is not None:
            self._observer.on_process_finish(proc)

    def _schedule(self, delay: float, fn: Callable, arg: Any) -> None:
        if delay < 0:
            # Timeout.__init__ validates user-facing delays; this guards the
            # internal callers (events, joins, primitives) so nothing can
            # ever schedule into the simulated past.
            raise SimulationError(
                f"cannot schedule into the past (negative delay {delay!r})"
            )
        if self._observer is not None:
            self._observer.on_schedule(self._now, delay)
        heapq.heappush(self._heap, (self._now + delay, self._seq, fn, arg))
        self._seq += 1

    def run(self, until: float | None = None) -> float:
        """Run until the heap drains (or simulated time passes ``until``).

        Returns the final simulated time.  Raises :class:`DeadlockError` if
        events drain while registered processes are still blocked (e.g. a
        lock never released) — only for unbounded runs: a truncated
        ``run(until=...)`` legitimately returns with processes still live,
        and a subsequent ``run()`` resumes them without spurious deadlock
        reports because process accounting is synchronous.  Asking to run
        until a time before the current clock raises
        :class:`SimulationError` (the clock is monotonic).
        """
        if until is not None and until < self._now:
            raise SimulationError(
                f"run(until={until!r}) would move the clock backwards "
                f"from {self._now!r}"
            )
        while self._heap:
            t, _, fn, arg = self._heap[0]
            if until is not None and t > until:
                self._now = until
                return self._now
            heapq.heappop(self._heap)
            self._now = t
            if self._observer is not None:
                self._observer.on_advance(t)
            fn(arg)
        if self._live_processes > 0 and until is None:
            raise DeadlockError(
                f"no events left but {self._live_processes} process(es) "
                "still blocked"
            )
        return self._now
