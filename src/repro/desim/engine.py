"""Generator-based discrete-event simulation kernel.

Processes are Python generators that ``yield`` waitables:

- :class:`Timeout` — resume after a span of simulated time,
- :class:`Event` — resume when the event succeeds (possibly with a value),
- another :class:`Process` — resume when that process finishes.

The engine advances simulated time through a binary heap of scheduled
callbacks.  Ties in time are broken by insertion order, making runs fully
deterministic.

Example
-------
>>> eng = Engine()
>>> log = []
>>> def worker(name, delay):
...     yield Timeout(delay)
...     log.append((eng.now, name))
>>> _ = eng.process(worker("a", 2.0))
>>> _ = eng.process(worker("b", 1.0))
>>> eng.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import heapq
from collections.abc import Generator
from typing import Any, Callable

from repro.errors import DeadlockError, SimulationError

__all__ = ["Engine", "Event", "Timeout", "Process"]


class Timeout:
    """Waitable: resume the yielding process after ``delay`` sim-time."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        self.delay = delay


class Event:
    """One-shot event processes can wait on.

    ``succeed(value)`` wakes all waiters, delivering ``value`` as the result
    of their ``yield``.  Succeeding twice is an error; waiting on an already
    succeeded event resumes immediately.
    """

    __slots__ = ("engine", "_value", "_done", "_waiters")

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self._value: Any = None
        self._done = False
        self._waiters: list["Process"] = []

    @property
    def triggered(self) -> bool:
        """Whether the event has succeeded."""
        return self._done

    @property
    def value(self) -> Any:
        """The delivered value (only meaningful once triggered)."""
        return self._value

    def succeed(self, value: Any = None) -> None:
        """Trigger the event, waking all waiters at the current time."""
        if self._done:
            raise SimulationError("event succeeded twice")
        self._done = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self.engine._schedule(0.0, proc._advance, value)

    def _add_waiter(self, proc: "Process") -> None:
        if self._done:
            self.engine._schedule(0.0, proc._advance, self._value)
        else:
            self._waiters.append(proc)


class Process:
    """A running generator inside an :class:`Engine`.

    Exposes :attr:`done`, :attr:`result` and is itself waitable (another
    process can ``yield proc`` to join it).  The value a generator returns
    (via ``return x``) becomes its result.
    """

    __slots__ = ("engine", "_gen", "_done_event", "name")

    def __init__(self, engine: "Engine", gen: Generator, name: str = ""):
        if not isinstance(gen, Generator):
            raise SimulationError(
                f"process body must be a generator, got {type(gen).__name__}"
            )
        self.engine = engine
        self._gen = gen
        self._done_event = Event(engine)
        self.name = name or getattr(gen, "__name__", "proc")

    @property
    def done(self) -> bool:
        """Whether the generator has finished."""
        return self._done_event.triggered

    @property
    def result(self) -> Any:
        """The generator's return value (None until done)."""
        return self._done_event.value

    def _advance(self, send_value: Any = None) -> None:
        try:
            target = self._gen.send(send_value)
        except StopIteration as stop:
            self._done_event.succeed(stop.value)
            return
        if isinstance(target, Timeout):
            self.engine._schedule(target.delay, self._advance, None)
        elif isinstance(target, Event):
            target._add_waiter(self)
        elif isinstance(target, Process):
            target._done_event._add_waiter(self)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported {target!r}"
            )


class Engine:
    """The simulation clock and event loop."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Callable, Any]] = []
        self._seq = 0
        self._live_processes = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def event(self) -> Event:
        """Create a fresh event bound to this engine."""
        return Event(self)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Register a generator as a process, starting it at the current time."""
        proc = Process(self, gen, name)
        self._live_processes += 1

        def finish(_value: Any) -> None:
            self._live_processes -= 1

        proc._done_event._waiters.append(_Sentinel(finish))
        self._schedule(0.0, proc._advance, None)
        return proc

    def _schedule(self, delay: float, fn: Callable, arg: Any) -> None:
        heapq.heappush(self._heap, (self._now + delay, self._seq, fn, arg))
        self._seq += 1

    def run(self, until: float | None = None) -> float:
        """Run until the heap drains (or simulated time passes ``until``).

        Returns the final simulated time.  Raises :class:`DeadlockError` if
        events drain while registered processes are still blocked (e.g. a
        lock never released).
        """
        while self._heap:
            t, _, fn, arg = self._heap[0]
            if until is not None and t > until:
                self._now = until
                return self._now
            heapq.heappop(self._heap)
            self._now = t
            fn(arg)
        if self._live_processes > 0 and until is None:
            raise DeadlockError(
                f"no events left but {self._live_processes} process(es) "
                "still blocked"
            )
        return self._now


class _Sentinel:
    """Adapter letting plain callbacks sit in an event's waiter list."""

    __slots__ = ("_fn",)

    def __init__(self, fn: Callable[[Any], None]):
        self._fn = fn

    def _advance(self, value: Any = None) -> None:
        self._fn(value)
