"""Synchronization primitives over the DES kernel.

These model the runtime-internal primitives libomp builds on: a mutex (for
``critical`` reductions and dynamic-schedule chunk grabs), a counting
semaphore, and a cyclic barrier (fork/join and tree reductions).

All are FIFO-fair and deterministic.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Generator

from repro.desim.engine import Engine, Event, Timeout
from repro.errors import SimulationError

__all__ = ["Lock", "Semaphore", "Barrier"]


class Lock:
    """FIFO mutex.

    Usage from a process::

        yield from lock.acquire()
        ...critical section...
        lock.release()
    """

    def __init__(self, engine: Engine, hold_overhead: float = 0.0):
        self.engine = engine
        self.hold_overhead = hold_overhead
        self._held = False
        self._queue: deque[Event] = deque()
        self.acquisitions = 0
        self.contentions = 0

    @property
    def held(self) -> bool:
        """Whether the lock is currently held."""
        return self._held

    def acquire(self) -> Generator:
        """Generator to ``yield from``; returns once the lock is held."""
        if not self._held:
            self._held = True
            self.acquisitions += 1
            if self.hold_overhead:
                yield Timeout(self.hold_overhead)
            return
        self.contentions += 1
        gate = self.engine.event()
        self._queue.append(gate)
        yield gate
        self.acquisitions += 1
        if self.hold_overhead:
            yield Timeout(self.hold_overhead)

    def release(self) -> None:
        """Release; hands the lock to the oldest waiter if any."""
        if not self._held:
            raise SimulationError("release of an unheld lock")
        if self._queue:
            # Ownership transfers directly: stays held, next waiter wakes.
            self._queue.popleft().succeed()
        else:
            self._held = False


class Semaphore:
    """Counting semaphore with FIFO wakeups."""

    def __init__(self, engine: Engine, value: int):
        if value < 0:
            raise SimulationError(f"semaphore value must be >= 0, got {value}")
        self.engine = engine
        self._value = value
        self._queue: deque[Event] = deque()

    @property
    def value(self) -> int:
        """Current count."""
        return self._value

    def acquire(self) -> Generator:
        """Generator to ``yield from``; returns once a unit is held."""
        if self._value > 0:
            self._value -= 1
            return
            yield  # pragma: no cover - makes this a generator
        gate = self.engine.event()
        self._queue.append(gate)
        yield gate

    def release(self) -> None:
        """Return a unit, waking the oldest waiter if any."""
        if self._queue:
            self._queue.popleft().succeed()
        else:
            self._value += 1


class Barrier:
    """Cyclic barrier for a fixed party count.

    Tracks how many times it cycled (``generations``).  The last arriver
    releases everyone at the same timestamp, matching an idealized
    centralized barrier; per-thread arrival costs are the caller's job.
    """

    def __init__(self, engine: Engine, parties: int):
        if parties < 1:
            raise SimulationError(f"barrier parties must be >= 1, got {parties}")
        self.engine = engine
        self.parties = parties
        self._arrived = 0
        self._gate = engine.event()
        self.generations = 0

    def wait(self) -> Generator:
        """Generator to ``yield from``; returns when all parties arrived."""
        self._arrived += 1
        if self._arrived == self.parties:
            self._arrived = 0
            self.generations += 1
            gate, self._gate = self._gate, self.engine.event()
            gate.succeed()
            return
            yield  # pragma: no cover - makes this a generator
        yield self._gate
