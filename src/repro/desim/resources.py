"""Synchronization primitives over the DES kernel.

These model the runtime-internal primitives libomp builds on: a mutex (for
``critical`` reductions and dynamic-schedule chunk grabs), a counting
semaphore, and a cyclic barrier (fork/join and tree reductions).

All are FIFO-fair and deterministic.  When the owning engine carries an
observer, locks and barriers emit ``lock_acquire`` / ``lock_release`` /
``barrier_arrive`` / ``barrier_release`` notifications (see
:meth:`repro.desim.engine.Engine.notify`); the sanitizer's happens-before
tracker derives its release→acquire and all-arrivals→release edges from
exactly these.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Generator

from repro.desim.engine import Engine, Event, Timeout
from repro.errors import SimulationError

__all__ = ["Lock", "Semaphore", "Barrier"]


class Lock:
    """FIFO mutex.

    Usage from a process::

        yield from lock.acquire()
        ...critical section...
        lock.release()
    """

    def __init__(
        self, engine: Engine, hold_overhead: float = 0.0, name: str = "lock"
    ):
        self.engine = engine
        self.hold_overhead = hold_overhead
        self.name = name
        self._held = False
        self._queue: deque[Event] = deque()
        self.acquisitions = 0
        self.contentions = 0

    @property
    def held(self) -> bool:
        """Whether the lock is currently held."""
        return self._held

    def acquire(self) -> Generator:
        """Generator to ``yield from``; returns once the lock is held."""
        if not self._held:
            self._held = True
            self.acquisitions += 1
            if self.engine._observer is not None:
                self.engine.notify("lock_acquire", lock=self)
            if self.hold_overhead:
                yield Timeout(self.hold_overhead)
            return
        self.contentions += 1
        gate = self.engine.event()
        self._queue.append(gate)
        yield gate
        self.acquisitions += 1
        if self.engine._observer is not None:
            self.engine.notify("lock_acquire", lock=self)
        if self.hold_overhead:
            yield Timeout(self.hold_overhead)

    def release(self) -> None:
        """Release; hands the lock to the oldest waiter if any."""
        if not self._held:
            raise SimulationError("release of an unheld lock")
        if self.engine._observer is not None:
            # Emitted before the hand-off wake so the happens-before edge
            # (release orders before the next acquire) is established with
            # the releasing process still current.
            self.engine.notify("lock_release", lock=self)
        if self._queue:
            # Ownership transfers directly: stays held, next waiter wakes.
            self._queue.popleft().succeed()
        else:
            self._held = False


class Semaphore:
    """Counting semaphore with FIFO wakeups."""

    def __init__(self, engine: Engine, value: int, name: str = "semaphore"):
        if value < 0:
            raise SimulationError(f"semaphore value must be >= 0, got {value}")
        self.engine = engine
        self.name = name
        self._value = value
        self._queue: deque[Event] = deque()

    @property
    def value(self) -> int:
        """Current count."""
        return self._value

    def acquire(self) -> Generator:
        """Generator to ``yield from``; returns once a unit is held."""
        if self._value > 0:
            self._value -= 1
            return
            yield  # pragma: no cover - makes this a generator
        gate = self.engine.event()
        self._queue.append(gate)
        yield gate

    def release(self) -> None:
        """Return a unit, waking the oldest waiter if any."""
        if self._queue:
            self._queue.popleft().succeed()
        else:
            self._value += 1


class Barrier:
    """Cyclic barrier for a fixed party count.

    Tracks how many times it cycled (``generations``).  The last arriver
    releases everyone at the same timestamp, matching an idealized
    centralized barrier; per-thread arrival costs are the caller's job.
    """

    def __init__(self, engine: Engine, parties: int, name: str = "barrier"):
        if parties < 1:
            raise SimulationError(f"barrier parties must be >= 1, got {parties}")
        self.engine = engine
        self.parties = parties
        self.name = name
        self._arrived = 0
        self._gate = engine.event()
        self.generations = 0

    def wait(self) -> Generator:
        """Generator to ``yield from``; returns when all parties arrived."""
        self._arrived += 1
        if self.engine._observer is not None:
            self.engine.notify(
                "barrier_arrive", barrier=self, arrived=self._arrived
            )
        if self._arrived == self.parties:
            self._arrived = 0
            self.generations += 1
            gate, self._gate = self._gate, self.engine.event()
            if self.engine._observer is not None:
                # The release joins every arrival's history: emitted before
                # the gate wake so the last arriver carries the merged
                # clock into the event_wake edge.
                self.engine.notify(
                    "barrier_release", barrier=self,
                    generation=self.generations,
                )
            gate.succeed()
            return
            yield  # pragma: no cover - makes this a generator
        yield self._gate
