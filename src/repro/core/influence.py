"""Feature-influence analysis via logistic regression (paper Sec. IV-D, V).

For each group (per architecture-application, per application, per
architecture) a logistic classifier separates optimal from sub-optimal
samples; the weight-normalized absolute coefficients of the fitted model
are read as each feature's *influence* on tuning outcome.  Those rows,
stacked, are the heat maps of Figs. 2-4.

Features follow the paper: input size, thread count and the seven swept
environment variables everywhere, plus an application and/or architecture
code depending on grouping, all via the "naive numeric scheme" (ordinal
label encoding) and z-score standardization so coefficient magnitudes are
comparable.

A feature that is constant within a group (e.g. "architecture" for Sort,
which only ran on A64FX) standardizes to zero and receives zero influence
— exactly the paper's "no reliance" observation for Sort/Strassen.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SchemaError
from repro.frame.table import Table
from repro.mlkit.linreg import LinearRegression
from repro.mlkit.logreg import LogisticRegression
from repro.mlkit.preprocess import LabelEncoder, Standardizer

__all__ = [
    "FEATURE_COLUMNS",
    "GroupInfluence",
    "InfluenceMatrix",
    "influence_by_arch_application",
    "influence_by_application",
    "influence_by_architecture",
    "linear_fit_quality",
]

#: Dataset column -> heat-map feature label, in presentation order.
FEATURE_COLUMNS: dict[str, str] = {
    "arch": "Architecture",
    "app": "Application",
    "input_size": "Input Size",
    "num_threads": "OMP_NUM_THREADS",
    "places": "OMP_PLACES",
    "proc_bind": "OMP_PROC_BIND",
    "schedule": "OMP_SCHEDULE",
    "library": "KMP_LIBRARY",
    "blocktime": "KMP_BLOCKTIME",
    "force_reduction": "KMP_FORCE_REDUCTION",
    "align_alloc": "KMP_ALIGN_ALLOC",
}

_NUMERIC_COLUMNS = {"num_threads", "align_alloc"}


@dataclass(frozen=True)
class GroupInfluence:
    """One heat-map row."""

    label: tuple
    feature_names: tuple[str, ...]
    importances: np.ndarray = field(repr=False)
    accuracy: float
    n_samples: int

    def as_dict(self) -> dict[str, float]:
        """Feature label -> influence."""
        return dict(zip(self.feature_names, self.importances.tolist()))

    def top_features(self, k: int = 3) -> list[str]:
        """The ``k`` most influential feature labels, descending."""
        order = np.argsort(self.importances)[::-1]
        return [self.feature_names[i] for i in order[:k]]


@dataclass(frozen=True)
class InfluenceMatrix:
    """A full heat map: one :class:`GroupInfluence` per row."""

    grouping: str
    rows: tuple[GroupInfluence, ...]

    @property
    def feature_names(self) -> tuple[str, ...]:
        """Heat-map column labels (shared by every row)."""
        return self.rows[0].feature_names if self.rows else ()

    @property
    def row_labels(self) -> list[str]:
        """Heat-map row labels ("arch/app" style for composite keys)."""
        return ["/".join(str(p) for p in r.label) for r in self.rows]

    def matrix(self) -> np.ndarray:
        """(n_rows, n_features) influence array."""
        return np.stack([r.importances for r in self.rows])

    def mean_accuracy(self) -> float:
        """Average in-sample accuracy across groups."""
        return float(np.mean([r.accuracy for r in self.rows]))

    def to_table(self) -> Table:
        """Render as a :class:`~repro.frame.Table` (one row per group)."""
        records = []
        for r in self.rows:
            rec: dict = {"group": "/".join(str(p) for p in r.label)}
            rec.update(r.as_dict())
            rec["accuracy"] = r.accuracy
            rec["n_samples"] = r.n_samples
            records.append(rec)
        return Table.from_records(records)

    def column_mean(self, feature: str) -> float:
        """Average influence of one feature across all rows."""
        idx = self.feature_names.index(feature)
        return float(self.matrix()[:, idx].mean())


def _encode_features(
    table: Table, columns: Sequence[str]
) -> tuple[np.ndarray, list[str]]:
    """Design matrix from dataset columns (naive ordinal encoding)."""
    cols = []
    names = []
    for col in columns:
        values = table.column(col)
        if col in _NUMERIC_COLUMNS:
            cols.append(np.asarray(values, dtype=float))
        else:
            enc = LabelEncoder()
            cols.append(enc.fit_transform(list(values)).astype(float))
        names.append(FEATURE_COLUMNS.get(col, col))
    return np.stack(cols, axis=1), names


def _group_influence(
    label: tuple, sub: Table, columns: Sequence[str], l2: float
) -> GroupInfluence:
    if "optimal" not in sub:
        raise SchemaError("influence analysis needs the 'optimal' column")
    X_raw, names = _encode_features(sub, columns)
    y = np.asarray(sub.column("optimal"), dtype=float)
    if np.unique(y).shape[0] < 2:
        # Degenerate group: nothing separates optimal from sub-optimal.
        return GroupInfluence(
            label=label,
            feature_names=tuple(names),
            importances=np.zeros(len(names)),
            accuracy=1.0,
            n_samples=sub.num_rows,
        )
    X = Standardizer().fit_transform(X_raw)
    model = LogisticRegression(l2=l2, solver="newton", max_iter=100, tol=1e-7)
    model.fit(X, y)
    return GroupInfluence(
        label=label,
        feature_names=tuple(names),
        importances=model.normalized_importances(),
        accuracy=model.score(X, y),
        n_samples=sub.num_rows,
    )


def _influence(
    table: Table,
    by: Sequence[str],
    feature_cols: Sequence[str],
    grouping: str,
    l2: float,
) -> InfluenceMatrix:
    missing = [c for c in list(by) + list(feature_cols) if c not in table]
    if missing:
        raise SchemaError(f"influence analysis: missing columns {missing}")
    rows = [
        _group_influence(label, sub, feature_cols, l2)
        for label, sub in table.group_by(list(by))
    ]
    return InfluenceMatrix(grouping=grouping, rows=tuple(rows))


_ENV_FEATURES = (
    "input_size",
    "num_threads",
    "places",
    "proc_bind",
    "schedule",
    "library",
    "blocktime",
    "force_reduction",
    "align_alloc",
)


def influence_by_arch_application(table: Table, l2: float = 1.0) -> InfluenceMatrix:
    """Fig. 4 grouping: one row per (architecture, application)."""
    return _influence(
        table, ("arch", "app"), _ENV_FEATURES, "per-arch-application", l2
    )


def influence_by_application(table: Table, l2: float = 1.0) -> InfluenceMatrix:
    """Fig. 2 grouping: one row per application, architecture as feature."""
    return _influence(
        table, ("app",), ("arch",) + _ENV_FEATURES, "per-application", l2
    )


def influence_by_architecture(table: Table, l2: float = 1.0) -> InfluenceMatrix:
    """Fig. 3 grouping: one row per architecture, application as feature."""
    return _influence(
        table, ("arch",), ("app",) + _ENV_FEATURES, "per-architecture", l2
    )


def linear_fit_quality(table: Table, target: str = "runtime_mean") -> float:
    """R² of an OLS fit of ``target`` on the env features.

    Reproduces the paper's negative result: runtimes are not linear in the
    naive-encoded features, which is why the analysis pivots to
    classification.
    """
    if target not in table:
        raise SchemaError(f"linear_fit_quality: no column {target!r}")
    X_raw, _ = _encode_features(table, _ENV_FEATURES)
    y = np.asarray(table.column(target), dtype=float)
    X = Standardizer().fit_transform(X_raw)
    model = LinearRegression().fit(X, y)
    return model.score(X, y)
