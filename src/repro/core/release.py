"""Dataset release tooling.

The paper commits to open-sourcing "all our raw data ... and all tooling
used in the process".  This module packages a sweep the same way: one CSV
per (architecture, application) pair plus a machine-readable manifest and
a human-readable README, so downstream consumers can load any slice
without touching this library.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import DatasetError, SchemaError
from repro.frame.io import read_csv, write_csv
from repro.frame.table import Table

__all__ = ["ReleaseManifest", "write_release", "load_release"]

_REQUIRED = ("arch", "app", "input_size", "num_threads", "speedup")


@dataclass(frozen=True)
class ReleaseManifest:
    """Summary of a released dataset."""

    version: str
    n_samples: int
    architectures: tuple[str, ...]
    applications: tuple[str, ...]
    files: tuple[str, ...]

    def as_dict(self) -> dict:
        """JSON-serializable manifest body."""
        return {
            "version": self.version,
            "n_samples": self.n_samples,
            "architectures": list(self.architectures),
            "applications": list(self.applications),
            "files": list(self.files),
        }


def write_release(
    table: Table, directory: str | Path, version: str = "1.0"
) -> ReleaseManifest:
    """Write per-(arch, app) CSVs + manifest.json + README.md."""
    missing = [c for c in _REQUIRED if c not in table]
    if missing:
        raise SchemaError(f"release table missing columns {missing}")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    files: list[str] = []
    archs: dict[str, None] = {}
    apps: dict[str, None] = {}
    for (arch, app), sub in table.group_by(["arch", "app"]):
        archs.setdefault(str(arch))
        apps.setdefault(str(app))
        name = f"{arch}-{app}.csv"
        write_csv(sub, directory / name)
        files.append(name)

    manifest = ReleaseManifest(
        version=version,
        n_samples=table.num_rows,
        architectures=tuple(sorted(archs)),
        applications=tuple(sorted(apps)),
        files=tuple(sorted(files)),
    )
    (directory / "manifest.json").write_text(
        json.dumps(manifest.as_dict(), indent=2) + "\n", encoding="utf-8"
    )

    speedups = np.asarray(table.column("speedup"), dtype=float)
    readme = (
        f"# LLVM/OpenMP tuning sweep dataset v{version}\n\n"
        f"{table.num_rows} unique samples across "
        f"{len(manifest.architectures)} architectures and "
        f"{len(manifest.applications)} applications.\n\n"
        "One CSV per (architecture, application); columns: setting\n"
        "identity (arch, app, suite, input_size, num_threads), the seven\n"
        "swept environment variables, per-repetition runtimes\n"
        "(runtime_0..), runtime_mean, default_runtime and speedup\n"
        "(default_runtime / runtime_mean, normalized per setting).\n\n"
        f"Speedup range in this release: {speedups.min():.3f} - "
        f"{speedups.max():.3f}.\n\n"
        "See manifest.json for the file inventory.\n"
    )
    (directory / "README.md").write_text(readme, encoding="utf-8")
    return manifest


def load_release(directory: str | Path) -> tuple[ReleaseManifest, Table]:
    """Load a released dataset back into one table."""
    from repro.frame.ops import concat_tables

    directory = Path(directory)
    manifest_path = directory / "manifest.json"
    if not manifest_path.exists():
        raise DatasetError(f"no manifest.json under {directory}")
    raw = json.loads(manifest_path.read_text(encoding="utf-8"))
    manifest = ReleaseManifest(
        version=raw["version"],
        n_samples=raw["n_samples"],
        architectures=tuple(raw["architectures"]),
        applications=tuple(raw["applications"]),
        files=tuple(raw["files"]),
    )
    tables = []
    for name in manifest.files:
        path = directory / name
        if not path.exists():
            raise DatasetError(f"manifest lists missing file {name}")
        tables.append(read_csv(path))
    table = concat_tables(tables)
    if table.num_rows != manifest.n_samples:
        raise DatasetError(
            f"release corrupt: manifest says {manifest.n_samples} samples, "
            f"files contain {table.num_rows}"
        )
    return manifest, table
