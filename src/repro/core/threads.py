"""Thread-count recommendation.

The paper's conclusion punts on thread counts: "Given the importance of
thread counts, we direct the user to other studies that can recommend
thread counts given an application and architecture."  With the runtime
model, that recommendation is a cheap computation: evaluate the candidate
counts and explain the winner via the model's own structure (bandwidth
saturation point vs compute scaling).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.topology import MachineTopology
from repro.errors import ConfigError
from repro.runtime.costs import get_costs
from repro.runtime.executor import RuntimeExecutor
from repro.runtime.icv import EnvConfig
from repro.runtime.program import LoopRegion, Program

__all__ = ["ThreadRecommendation", "recommend_threads"]


@dataclass(frozen=True)
class ThreadRecommendation:
    """Recommended thread count with the model's explanation."""

    program: str
    arch: str
    best_threads: int
    best_seconds: float
    full_machine_seconds: float
    #: (threads, seconds) for every evaluated candidate.
    curve: tuple[tuple[int, float], ...]
    #: Threads beyond which the dominant region saturates memory
    #: bandwidth (None = never within the machine).
    bandwidth_saturation_threads: int | None

    @property
    def speedup_over_full_machine(self) -> float:
        """What the recommendation buys vs running on every core."""
        return self.full_machine_seconds / self.best_seconds

    @property
    def reason(self) -> str:
        """One-line model explanation of the recommendation."""
        if (
            self.bandwidth_saturation_threads is not None
            and self.best_threads <= 1.5 * self.bandwidth_saturation_threads
        ):
            return (
                f"memory-bandwidth bound: the dominant region saturates at "
                f"~{self.bandwidth_saturation_threads} threads"
            )
        return "compute bound: scales to the full machine"


def _saturation_threads(
    program: Program, machine: MachineTopology
) -> int | None:
    """Threads at which the heaviest loop region saturates its bandwidth."""
    costs = get_costs(machine.name)
    dominant: LoopRegion | None = None
    dominant_work = 0.0
    for phase in program.parallel_regions:
        if isinstance(phase, LoopRegion):
            work = phase.total_work * phase.trips
            if work > dominant_work:
                dominant, dominant_work = phase, work
    if dominant is None or dominant.bw_per_thread_gbps <= 0:
        return None
    avail = costs.unbound_bw_efficiency * machine.total_mem_bw_gbps
    saturation = int(avail / dominant.bw_per_thread_gbps)
    return saturation if saturation < machine.n_cores else None


def recommend_threads(
    program: Program,
    machine: MachineTopology,
    config: EnvConfig | None = None,
    candidates: tuple[int, ...] | None = None,
) -> ThreadRecommendation:
    """Evaluate candidate thread counts and recommend the fastest.

    Candidates default to eighth-steps of the machine (the paper's future
    work asks for "more thread counts" than its quarter-steps).
    """
    config = config or EnvConfig()
    if candidates is None:
        candidates = tuple(
            sorted(
                {
                    max(1, machine.n_cores * k // 8)
                    for k in range(1, 9)
                }
            )
        )
    if not candidates or any(t < 1 for t in candidates):
        raise ConfigError("candidates must be positive thread counts")

    curve = []
    for threads in candidates:
        runtime = RuntimeExecutor(
            machine, config.with_threads(threads)
        ).execute(program)
        curve.append((threads, runtime))
    best_threads, best_seconds = min(curve, key=lambda tr: tr[1])
    full = RuntimeExecutor(
        machine, config.with_threads(machine.n_cores)
    ).execute(program)
    return ThreadRecommendation(
        program=program.name,
        arch=machine.name,
        best_threads=best_threads,
        best_seconds=best_seconds,
        full_machine_seconds=full,
        curve=tuple(curve),
        bandwidth_saturation_threads=_saturation_threads(program, machine),
    )
