"""Discrete tuners beyond hill climbing.

The paper positions its influence analysis as a pruning aid for "discrete
search space traversal algorithms" and its related work (Bolet et al.)
compares global optimizers for OpenMP tuning.  This module provides the
standard baselines on our configuration space so the pruning claim can be
evaluated against more than one search strategy:

- :func:`random_search` — uniform sampling, the canonical baseline,
- :func:`simulated_annealing` — single-variable neighborhood moves with a
  geometric temperature schedule,
- :func:`greedy_ofat` — one pass of one-factor-at-a-time descent in a
  fixed variable order (the cheapest credible tuner),
- :func:`exhaustive_search` — ground truth on small (pruned) spaces.

All tuners share the :class:`TunerResult` shape and an evaluation-count
budget, making head-to-head comparisons (see
``benchmarks/test_bench_search.py``) one-liners.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, replace

import numpy as np

from repro.arch.topology import MachineTopology
from repro.core.envspace import EnvSpace
from repro.errors import ConfigError
from repro.runtime.executor import RuntimeExecutor
from repro.runtime.icv import EnvConfig
from repro.runtime.program import Program

__all__ = [
    "TunerResult",
    "make_evaluator",
    "random_search",
    "simulated_annealing",
    "greedy_ofat",
    "exhaustive_search",
]


@dataclass(frozen=True)
class TunerResult:
    """Outcome of one tuner run."""

    tuner: str
    best_config: EnvConfig
    best_runtime: float
    default_runtime: float
    evaluations: int

    @property
    def speedup(self) -> float:
        """Improvement over the default configuration."""
        return self.default_runtime / self.best_runtime


class _CountingEvaluator:
    """Memoizing runtime evaluator with an evaluation counter."""

    def __init__(self, fn: Callable[[EnvConfig], float]):
        self._fn = fn
        self._cache: dict[tuple, float] = {}
        self.evaluations = 0

    def __call__(self, config: EnvConfig) -> float:
        key = config.key()
        if key not in self._cache:
            self._cache[key] = self._fn(config)
            self.evaluations += 1
        return self._cache[key]


def make_evaluator(
    program: Program,
    machine: MachineTopology,
    num_threads: int | None = None,
    fidelity: str = "analytic",
) -> _CountingEvaluator:
    """Runtime-of-config evaluator for the tuners (memoized + counted)."""

    def run(config: EnvConfig) -> float:
        cfg = config if num_threads is None else config.with_threads(num_threads)
        return RuntimeExecutor(machine, cfg, fidelity=fidelity).execute(program)

    return _CountingEvaluator(run)


def _finish(
    tuner: str,
    evaluator: _CountingEvaluator,
    best_config: EnvConfig,
    best_runtime: float,
    default_runtime: float,
) -> TunerResult:
    return TunerResult(
        tuner=tuner,
        best_config=best_config,
        best_runtime=best_runtime,
        default_runtime=default_runtime,
        evaluations=evaluator.evaluations,
    )


def random_search(
    program: Program,
    machine: MachineTopology,
    space: EnvSpace,
    budget: int = 64,
    num_threads: int | None = None,
    seed: int = 0,
) -> TunerResult:
    """Sample ``budget`` uniform configurations; keep the best."""
    if budget < 1:
        raise ConfigError("budget must be >= 1")
    evaluator = make_evaluator(program, machine, num_threads)
    default = space.default_config()
    best_config, best_runtime = default, evaluator(default)
    default_runtime = best_runtime
    for config in space.random_grid(machine, budget - 1, seed=seed):
        runtime = evaluator(config)
        if runtime < best_runtime:
            best_config, best_runtime = config, runtime
    return _finish("random", evaluator, best_config, best_runtime,
                   default_runtime)


def simulated_annealing(
    program: Program,
    machine: MachineTopology,
    space: EnvSpace,
    budget: int = 64,
    num_threads: int | None = None,
    seed: int = 0,
    t0: float = 0.25,
    cooling: float = 0.92,
) -> TunerResult:
    """Metropolis search over single-variable neighbor moves.

    Temperature is relative: a move that slows the program by fraction
    ``d`` is accepted with probability ``exp(-d / T)``.
    """
    if budget < 1:
        raise ConfigError("budget must be >= 1")
    rng = np.random.default_rng(seed)
    evaluator = make_evaluator(program, machine, num_threads)
    current = space.default_config()
    current_runtime = evaluator(current)
    default_runtime = current_runtime
    best_config, best_runtime = current, current_runtime
    temperature = t0

    while evaluator.evaluations < budget:
        var = space.variables[int(rng.integers(len(space.variables)))]
        values = [
            v for v in var.values(machine)
            if v != getattr(current, var.field)
        ]
        if not values:
            continue
        candidate = replace(
            current, **{var.field: values[int(rng.integers(len(values)))]}
        )
        runtime = evaluator(candidate)
        delta = (runtime - current_runtime) / current_runtime
        if delta <= 0 or rng.random() < np.exp(-delta / max(temperature, 1e-9)):
            current, current_runtime = candidate, runtime
            if runtime < best_runtime:
                best_config, best_runtime = candidate, runtime
        temperature *= cooling
    return _finish("annealing", evaluator, best_config, best_runtime,
                   default_runtime)


def greedy_ofat(
    program: Program,
    machine: MachineTopology,
    space: EnvSpace,
    num_threads: int | None = None,
    seed: int = 0,
) -> TunerResult:
    """One randomized-order pass of one-factor-at-a-time descent."""
    rng = np.random.default_rng(seed)
    evaluator = make_evaluator(program, machine, num_threads)
    current = space.default_config()
    current_runtime = evaluator(current)
    default_runtime = current_runtime
    for vi in rng.permutation(len(space.variables)):
        var = space.variables[vi]
        for value in var.values(machine):
            if getattr(current, var.field) == value:
                continue
            candidate = replace(current, **{var.field: value})
            runtime = evaluator(candidate)
            if runtime < current_runtime:
                current, current_runtime = candidate, runtime
    return _finish("greedy-ofat", evaluator, current, current_runtime,
                   default_runtime)


def exhaustive_search(
    program: Program,
    machine: MachineTopology,
    space: EnvSpace,
    num_threads: int | None = None,
) -> TunerResult:
    """Evaluate the full grid (ground truth; use on pruned spaces)."""
    evaluator = make_evaluator(program, machine, num_threads)
    default_runtime = evaluator(space.default_config())
    best_config, best_runtime = space.default_config(), default_runtime
    for config in space.full_grid(machine):
        runtime = evaluator(config)
        if runtime < best_runtime:
            best_config, best_runtime = config, runtime
    return _finish("exhaustive", evaluator, best_config, best_runtime,
                   default_runtime)
