"""Raw sweep records -> tabular datasets (paper Sec. IV-B).

Dataset schema (one row per unique sample, matching the paper's released
tabular files):

``arch, app, suite, input_size, num_threads, places, proc_bind, schedule,
library, blocktime, force_reduction, align_alloc, runtime_0..runtime_{R-1},
runtime_mean, default_runtime, speedup``

- ``runtime_mean`` averages the repeated runs ("to mitigate variations in
  runtime of configurations, we average all runtime measurements per
  configuration"),
- ``default_runtime`` is the mean runtime of the all-default configuration
  at the *same setting* — same (arch, app, input_size, num_threads) — so
  speedups measure what the seven swept variables buy at that setting
  (the paper's Table V reports per-setting ranges like XSBench/Milan
  1.016-2.602, which is only consistent with per-setting normalization),
- ``speedup = default_runtime / runtime_mean``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.sweep import SweepRecord, sweep_block_schema
from repro.errors import DatasetError, SchemaError
from repro.frame.columns import RecordBlock
from repro.frame.table import Table
from repro.runtime.icv import UNSET
from repro.stats.descriptive import summarize

__all__ = [
    "CONFIG_COLUMNS",
    "KEY_COLUMNS",
    "records_to_table",
    "aggregate_runs",
    "enrich_with_speedup",
    "speedup_summary",
    "runtime_stats_by_run",
    "validate_dataset",
]

#: Environment-variable columns in dataset order.
CONFIG_COLUMNS = (
    "num_threads",
    "places",
    "proc_bind",
    "schedule",
    "library",
    "blocktime",
    "force_reduction",
    "align_alloc",
)

#: Identity of a setting.
KEY_COLUMNS = ("arch", "app", "suite", "input_size")


def _require(table: Table, columns: Sequence[str], op: str) -> None:
    missing = [c for c in columns if c not in table]
    if missing:
        raise SchemaError(f"{op}: missing columns {missing}")


def records_to_table(records: Sequence[SweepRecord] | RecordBlock) -> Table:
    """Flatten sweep records into the dataset table.

    Accepts either a sequence of :class:`SweepRecord` or a packed
    :class:`~repro.frame.columns.RecordBlock` straight off the sweep
    pipeline; the block path builds the table column-at-a-time without
    materializing per-row dicts and yields the same table (pinned by the
    ``columnar-pipeline-parity`` check).
    """
    if isinstance(records, RecordBlock):
        return _block_to_dataset_table(records)
    if not records:
        raise DatasetError("no sweep records to tabulate")
    n_runs = len(records[0].runtimes)
    rows = []
    for r in records:
        if len(r.runtimes) != n_runs:
            raise DatasetError(
                f"inconsistent repetition counts: {len(r.runtimes)} vs {n_runs}"
            )
        cfg = r.config
        row = {
            "arch": r.arch,
            "app": r.app,
            "suite": r.suite,
            "input_size": r.input_size,
            "num_threads": r.num_threads,
            "places": cfg.places,
            "proc_bind": cfg.proc_bind,
            "schedule": cfg.schedule,
            "library": cfg.library,
            "blocktime": cfg.blocktime,
            "force_reduction": cfg.force_reduction,
            # align None (unset) encoded as 0 so the column stays numeric.
            "align_alloc": cfg.align_alloc if cfg.align_alloc is not None else 0,
        }
        for i, rt in enumerate(r.runtimes):
            row[f"runtime_{i}"] = rt
        rows.append(row)
    return Table.from_records(rows)


def _block_to_dataset_table(block: RecordBlock) -> Table:
    """Columnar fast path of :func:`records_to_table`."""
    if len(block) == 0:
        raise DatasetError("no sweep records to tabulate")
    width = block.columns["runtimes"].width if "runtimes" in block.columns \
        else 1
    expected = {
        k: ((v, 1) if isinstance(v, str) else v)
        for k, v in sweep_block_schema(width).items()
    }
    if block.schema != expected:
        raise DatasetError(
            f"not a sweep batch block: schema {block.schema}"
        )
    table = Table.from_block(
        block,
        vector_names={"runtimes": [f"runtime_{i}" for i in range(width)]},
    ).without_columns(["cfg_num_threads"])
    # align None (unset) travels as -1 in the block; the dataset encodes
    # it as 0 so the column stays numeric (same as the dict path).
    align = table.column("align_alloc").copy()
    align[align < 0] = 0
    return table.with_column("align_alloc", align)


def run_columns(table: Table) -> list[str]:
    """The ``runtime_i`` columns present, in index order."""
    cols = [c for c in table.column_names if c.startswith("runtime_")
            and c.removeprefix("runtime_").isdigit()]
    return sorted(cols, key=lambda c: int(c.removeprefix("runtime_")))


def aggregate_runs(table: Table) -> Table:
    """Add ``runtime_mean`` averaging the per-run columns."""
    cols = run_columns(table)
    if not cols:
        raise SchemaError("aggregate_runs: no runtime_i columns")
    stacked = np.stack([np.asarray(table.column(c), dtype=float) for c in cols])
    return table.with_column("runtime_mean", stacked.mean(axis=0))


def _is_default_row(table: Table) -> np.ndarray:
    """Boolean mask of all-env-default configuration rows (any threads)."""
    n = table.num_rows
    mask = np.ones(n, dtype=bool)
    for col in ("places", "proc_bind", "schedule", "library", "blocktime",
                "force_reduction"):
        mask &= np.asarray(table.column(col) == UNSET, dtype=bool)
    mask &= np.asarray(table.column("align_alloc"), dtype=np.int64) == 0
    return mask


def _factorize(col: np.ndarray) -> tuple[np.ndarray, int]:
    """Integer codes (0..k-1) for one key column, plus k.

    Run-length based: one vectorized neighbour comparison finds the run
    boundaries, then only the (few) run-start values pass through a
    Python dict.  Sweep tables are batch-contiguous, so runs are long and
    this is effectively O(n) C work; on adversarially shuffled input it
    degrades to one dict lookup per row but stays correct.
    """
    arr = np.asarray(col)
    n = len(arr)
    if n == 0:
        return np.zeros(0, dtype=np.int64), 0
    is_start = np.empty(n, dtype=bool)
    is_start[0] = True
    np.not_equal(arr[1:], arr[:-1], out=is_start[1:])
    starts = np.nonzero(is_start)[0]
    lookup: dict = {}
    run_codes = np.empty(len(starts), dtype=np.int64)
    for j, v in enumerate(arr[starts]):
        code = lookup.get(v)
        if code is None:
            code = lookup[v] = len(lookup)
        run_codes[j] = code
    lengths = np.diff(np.append(starts, n))
    return np.repeat(run_codes, lengths), len(lookup)


def _setting_codes(*key_cols: np.ndarray) -> np.ndarray:
    """Factorize the row-wise combination of key columns into group ids.

    Equivalent to hashing each row's key tuple, but vectorized: each
    column is factorized independently and the per-column codes are mixed
    positionally.  Rows share an id iff they share every key value.
    """
    n = len(key_cols[0])
    codes = np.zeros(n, dtype=np.int64)
    for col in key_cols:
        col_codes, k = _factorize(col)
        codes = codes * (k + 1) + col_codes
    _, dense = np.unique(codes, return_inverse=True)
    return dense


def enrich_with_speedup(table: Table) -> Table:
    """Add ``default_runtime`` and ``speedup`` columns.

    Normalization is per setting: each row's ``default_runtime`` is the
    mean runtime of the all-unset configuration at the same
    (arch, app, input_size, num_threads).  Raises :class:`DatasetError`
    if any setting lacks its default row.
    """
    if "runtime_mean" not in table:
        table = aggregate_runs(table)
    _require(
        table,
        KEY_COLUMNS + ("num_threads", "runtime_mean"),
        "enrich_with_speedup",
    )
    default_mask = _is_default_row(table)

    archs = table.column("arch")
    apps = table.column("app")
    inputs = table.column("input_size")
    threads = np.asarray(table.column("num_threads"), dtype=np.int64)
    means = np.asarray(table.column("runtime_mean"), dtype=float)

    # Factorize-and-gather: one group id per setting, a per-group default
    # runtime gathered back onto every row (no per-row Python loop).
    codes = _setting_codes(archs, apps, inputs, threads)
    n_groups = int(codes.max()) + 1 if table.num_rows else 0
    default_mean = np.empty(n_groups)
    has_default = np.zeros(n_groups, dtype=bool)
    default_idx = np.nonzero(default_mask)[0]
    # Later default rows overwrite earlier ones, like the dict they replace.
    default_mean[codes[default_idx]] = means[default_idx]
    has_default[codes[default_idx]] = True

    missing = ~has_default[codes]
    if missing.any():
        i = int(np.nonzero(missing)[0][0])
        key = (archs[i], apps[i], inputs[i], int(threads[i]))
        raise DatasetError(
            f"no default-configuration row for setting {key}; every "
            "setting's batch must include the all-unset config"
        )
    default_col = default_mean[codes]

    table = table.with_column("default_runtime", default_col)
    return table.with_column("speedup", default_col / means)


def validate_dataset(table: Table) -> Table:
    """Integrity checks on a dataset table (the paper's "cleansing" step).

    Verifies the identity/config columns exist, every runtime column is
    finite and positive, and — when present — speedups are finite and
    positive.  Returns the table unchanged on success; raises
    :class:`DatasetError` naming the first offending column and row.
    Use on externally-loaded CSVs before analysis.
    """
    _require(table, KEY_COLUMNS + CONFIG_COLUMNS, "validate_dataset")
    cols = run_columns(table)
    if not cols:
        raise DatasetError("validate_dataset: no runtime_i columns")
    check = list(cols)
    for optional in ("runtime_mean", "default_runtime", "speedup"):
        if optional in table:
            check.append(optional)
    for name in check:
        values = np.asarray(table.column(name), dtype=float)
        bad = ~np.isfinite(values) | (values <= 0.0)
        if bad.any():
            row = int(np.nonzero(bad)[0][0])
            raise DatasetError(
                f"validate_dataset: column {name!r} row {row} has invalid "
                f"value {values[row]!r} (runtimes/speedups must be finite "
                "and positive)"
            )
    return table


def speedup_summary(table: Table, by: Sequence[str] = ("app",)) -> Table:
    """Best-achievable speedup per group (the Table V/VI quantity).

    For each group, reports the maximum speedup over all configurations —
    the group's tuning headroom over the default.
    """
    _require(table, tuple(by) + ("speedup",), "speedup_summary")
    return table.aggregate(list(by), {"speedup": "max"}).rename(
        {"speedup_max": "max_speedup"}
    )


def runtime_stats_by_run(table: Table) -> Table:
    """Per run-index mean/std of runtimes (the paper's Table IV)."""
    cols = run_columns(table)
    if not cols:
        raise SchemaError("runtime_stats_by_run: no runtime_i columns")
    rows = []
    for (arch, app, input_size), sub in table.group_by(
        ["arch", "app", "input_size"]
    ):
        for c in cols:
            s = summarize(np.asarray(sub.column(c), dtype=float))
            rows.append(
                {
                    "arch": arch,
                    "app": app,
                    "input_size": input_size,
                    "runtime_idx": c,
                    "mean_sec": s.mean,
                    "std_sec": s.std,
                }
            )
    return Table.from_records(rows)
