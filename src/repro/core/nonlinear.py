"""Non-linear influence analysis — the paper's stated future work.

The conclusion of the paper: *"The development of non-linear approaches
to model such data ... is a suitable path forward."*  This module is that
step: the same optimal/sub-optimal classification task, solved with a
random forest whose impurity importances replace the logistic
coefficients.  Interactions the linear model cannot express — "turnaround
only matters for task apps", "fewer threads only helps on Milan" — show
up both as higher accuracy and as redistributed importances.

:func:`compare_models` fits both model families per group and reports the
accuracy gap, quantifying how much signal the paper's "simplest-first"
linear approach leaves on the table.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.influence import (
    FEATURE_COLUMNS,
    GroupInfluence,
    InfluenceMatrix,
    _encode_features,
)
from repro.errors import SchemaError
from repro.frame.table import Table
from repro.mlkit.logreg import LogisticRegression
from repro.mlkit.metrics import roc_auc_score
from repro.mlkit.preprocess import Standardizer
from repro.mlkit.tree import RandomForestClassifier

__all__ = [
    "forest_influence",
    "ModelComparison",
    "compare_models",
]

_ENV_FEATURES = (
    "input_size",
    "num_threads",
    "places",
    "proc_bind",
    "schedule",
    "library",
    "blocktime",
    "force_reduction",
    "align_alloc",
)


def _forest_group(
    label: tuple,
    sub: Table,
    columns: Sequence[str],
    n_trees: int,
    max_depth: int,
    seed: int,
) -> GroupInfluence:
    if "optimal" not in sub:
        raise SchemaError("forest influence needs the 'optimal' column")
    X, names = _encode_features(sub, columns)
    y = np.asarray(sub.column("optimal"), dtype=float)
    if np.unique(y).shape[0] < 2:
        return GroupInfluence(
            label=label,
            feature_names=tuple(names),
            importances=np.zeros(len(names)),
            accuracy=1.0,
            n_samples=sub.num_rows,
        )
    model = RandomForestClassifier(
        n_trees=n_trees, max_depth=max_depth, seed=seed
    ).fit(X, y)
    return GroupInfluence(
        label=label,
        feature_names=tuple(names),
        importances=model.normalized_importances(),
        accuracy=model.score(X, y),
        n_samples=sub.num_rows,
    )


def forest_influence(
    table: Table,
    by: Sequence[str] = ("arch",),
    n_trees: int = 20,
    max_depth: int = 9,
    seed: int = 0,
) -> InfluenceMatrix:
    """Random-forest influence matrix under an arbitrary grouping.

    ``by = ("arch",)`` mirrors Fig. 3; ``("app",)`` mirrors Fig. 2 — with
    the contextual feature (application or architecture) added exactly as
    the linear pipeline does.
    """
    extra: tuple[str, ...] = ()
    if "arch" not in by:
        extra += ("arch",)
    if "app" not in by:
        extra += ("app",)
    feature_cols = extra + _ENV_FEATURES
    missing = [c for c in list(by) + list(feature_cols) if c not in table]
    if missing:
        raise SchemaError(f"forest influence: missing columns {missing}")
    rows = tuple(
        _forest_group(label, sub, feature_cols, n_trees, max_depth, seed)
        for label, sub in table.group_by(list(by))
    )
    return InfluenceMatrix(grouping="forest-by-" + "-".join(by), rows=rows)


@dataclass(frozen=True)
class ModelComparison:
    """Linear vs non-linear classification quality for one group."""

    label: tuple
    n_samples: int
    linear_accuracy: float
    forest_accuracy: float
    #: Threshold-free ranking quality (area under the ROC curve).
    linear_auc: float
    forest_auc: float
    #: Features whose rank moved most between the two attributions.
    top_linear: tuple[str, ...]
    top_forest: tuple[str, ...]

    @property
    def accuracy_gain(self) -> float:
        """What the non-linear model buys at the 0.5 threshold."""
        return self.forest_accuracy - self.linear_accuracy

    @property
    def auc_gain(self) -> float:
        """What the non-linear model buys in ranking quality."""
        return self.forest_auc - self.linear_auc


def compare_models(
    table: Table,
    by: Sequence[str] = ("arch",),
    n_trees: int = 20,
    max_depth: int = 9,
    seed: int = 0,
) -> list[ModelComparison]:
    """Fit logistic and forest per group; report accuracies and top
    features of each attribution."""
    extra: tuple[str, ...] = ()
    if "arch" not in by:
        extra += ("arch",)
    if "app" not in by:
        extra += ("app",)
    feature_cols = extra + _ENV_FEATURES

    out: list[ModelComparison] = []
    for label, sub in table.group_by(list(by)):
        X_raw, names = _encode_features(sub, feature_cols)
        y = np.asarray(sub.column("optimal"), dtype=float)
        if np.unique(y).shape[0] < 2:
            continue
        Xz = Standardizer().fit_transform(X_raw)
        linear = LogisticRegression(l2=1.0).fit(Xz, y)
        forest = RandomForestClassifier(
            n_trees=n_trees, max_depth=max_depth, seed=seed
        ).fit(X_raw, y)
        lin_imp = linear.normalized_importances()
        for_imp = forest.normalized_importances()
        out.append(
            ModelComparison(
                label=label,
                n_samples=sub.num_rows,
                linear_accuracy=linear.score(Xz, y),
                forest_accuracy=forest.score(X_raw, y),
                linear_auc=roc_auc_score(y, linear.predict_proba(Xz)),
                forest_auc=roc_auc_score(y, forest.predict_proba(X_raw)),
                top_linear=tuple(
                    names[i] for i in np.argsort(lin_imp)[::-1][:3]
                ),
                top_forest=tuple(
                    names[i] for i in np.argsort(for_imp)[::-1][:3]
                ),
            )
        )
    return out
