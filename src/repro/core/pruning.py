"""Search-space pruning and hill climbing (paper Sec. VI).

The conclusion argues the influence analysis can prune autotuning search:
*"not all environment variables contribute equally ... tuning a subset of
environment variables can help achieve near optimal performance"*, and
that variable-impact knowledge helps discrete tuners like hill climbers.

This module provides both pieces:

- :func:`prune_space` — keep only the variables whose influence clears a
  threshold (others stay at default), shrinking the grid by orders of
  magnitude,
- :func:`hill_climb` — the one-variable-at-a-time tuner sketched in the
  paper, with randomized variable order and restarts, usable on the full
  or a pruned space.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.arch.topology import MachineTopology
from repro.core.envspace import EnvSpace, VariableSpec
from repro.core.influence import FEATURE_COLUMNS, GroupInfluence
from repro.errors import ConfigError
from repro.runtime.executor import RuntimeExecutor
from repro.runtime.icv import EnvConfig
from repro.runtime.program import Program

__all__ = ["prune_space", "HillClimbResult", "hill_climb"]

#: Heat-map feature label -> EnvConfig field (inverse of FEATURE_COLUMNS
#: restricted to the swept variables).
_LABEL_TO_FIELD = {
    label: col
    for col, label in FEATURE_COLUMNS.items()
    if col
    in (
        "places",
        "proc_bind",
        "schedule",
        "library",
        "blocktime",
        "force_reduction",
        "align_alloc",
    )
}


def prune_space(
    space: EnvSpace,
    influence: GroupInfluence,
    threshold: float = 0.08,
) -> EnvSpace:
    """Drop variables whose influence is below ``threshold``.

    ``threshold`` is on the weight-normalized importances (which sum to 1
    across all features, environment and contextual alike).  At least one
    variable is always retained.
    """
    keep: list[VariableSpec] = []
    scores = influence.as_dict()
    for var in space.variables:
        label = FEATURE_COLUMNS.get(var.field, var.env_name)
        if scores.get(label, 0.0) >= threshold:
            keep.append(var)
    if not keep:
        # Keep the single most influential swept variable.
        best_field = None
        best_score = -1.0
        for label, field in _LABEL_TO_FIELD.items():
            score = scores.get(label, 0.0)
            if score > best_score:
                best_score, best_field = score, field
        keep = [v for v in space.variables if v.field == best_field]
    return EnvSpace(tuple(keep))


@dataclass(frozen=True)
class HillClimbResult:
    """Outcome of one hill-climbing run."""

    best_config: EnvConfig
    best_runtime: float
    evaluations: int
    #: Runtime of the starting (default) configuration.
    start_runtime: float

    @property
    def speedup(self) -> float:
        """Improvement over the start configuration."""
        return self.start_runtime / self.best_runtime


def hill_climb(
    program: Program,
    machine: MachineTopology,
    space: EnvSpace,
    num_threads: int | None = None,
    restarts: int = 2,
    seed: int = 0,
    fidelity: str = "analytic",
) -> HillClimbResult:
    """One-variable-at-a-time descent over the space.

    Each pass visits the variables in a random order; for each, every
    value is tried with the rest of the configuration fixed and the best
    kept.  Passes repeat until a full pass yields no improvement; the
    whole procedure restarts ``restarts`` extra times from random points,
    keeping the global best.  Deterministic for a given seed.
    """
    if restarts < 0:
        raise ConfigError("restarts must be >= 0")
    rng = np.random.default_rng(seed)

    def evaluate(config: EnvConfig) -> float:
        cfg = config if num_threads is None else config.with_threads(num_threads)
        return RuntimeExecutor(machine, cfg, fidelity=fidelity).execute(program)

    evaluations = 0
    start = space.default_config()
    start_runtime = evaluate(start)
    evaluations += 1

    best_config, best_runtime = start, start_runtime
    starts = [start] + space.random_grid(machine, restarts, seed=seed + 1)

    for point in starts:
        current = point
        current_runtime = evaluate(current)
        evaluations += 1
        improved = True
        while improved:
            improved = False
            order = rng.permutation(len(space.variables))
            for vi in order:
                var = space.variables[vi]
                for value in var.values(machine):
                    if getattr(current, var.field) == value:
                        continue
                    candidate = replace(current, **{var.field: value})
                    runtime = evaluate(candidate)
                    evaluations += 1
                    if runtime < current_runtime:
                        current, current_runtime = candidate, runtime
                        improved = True
        if current_runtime < best_runtime:
            best_config, best_runtime = current, current_runtime

    return HillClimbResult(
        best_config=best_config,
        best_runtime=best_runtime,
        evaluations=evaluations,
        start_runtime=start_runtime,
    )
