"""Transfer to unseen applications — the paper's closing caveat, tested.

Sec. VI: *"there is no guarantee this knowledge can be transferred to new
unseen applications or architectures"* and the future work asks for
*"methods to fine-tune these models with limited data of prior unseen
applications"*.  This module turns that caveat into a measurable
experiment:

- :func:`leave_one_app_out` — train the optimal/sub-optimal classifier on
  all-but-one application, evaluate on the held-out app; the accuracy
  drop vs in-sample quantifies (non-)transferability per app,
- :func:`recommend_for_unseen` — transfer a *configuration* instead of a
  model: take the top configurations of the k most similar seen apps
  (similarity = cosine of their influence rows) and score the regret of
  applying them to the unseen app,
- :func:`fine_tune` — the "limited data" protocol: blend the transferred
  prior with n observed samples of the new app and track how quickly the
  recommendation regret closes.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.influence import _encode_features, influence_by_arch_application
from repro.errors import DatasetError, SchemaError
from repro.frame.table import Table
from repro.mlkit.preprocess import Standardizer
from repro.mlkit.tree import RandomForestClassifier

__all__ = [
    "TransferResult",
    "leave_one_app_out",
    "UnseenRecommendation",
    "recommend_for_unseen",
    "fine_tune",
]

_FEATURES = (
    "arch",
    "input_size",
    "num_threads",
    "places",
    "proc_bind",
    "schedule",
    "library",
    "blocktime",
    "force_reduction",
    "align_alloc",
)

_CONFIG_COLS = (
    "places",
    "proc_bind",
    "schedule",
    "library",
    "blocktime",
    "force_reduction",
    "align_alloc",
)


@dataclass(frozen=True)
class TransferResult:
    """Held-out evaluation for one application."""

    app: str
    n_train: int
    n_test: int
    #: Accuracy of a model trained *with* the app included (upper bound).
    in_sample_accuracy: float
    #: Accuracy on the app when it was held out of training.
    transfer_accuracy: float

    @property
    def transfer_gap(self) -> float:
        """How much is lost by never having seen the application."""
        return self.in_sample_accuracy - self.transfer_accuracy


def _require(table: Table, op: str) -> None:
    missing = [c for c in _FEATURES + ("app", "optimal") if c not in table]
    if missing:
        raise SchemaError(f"{op}: missing columns {missing}")


def leave_one_app_out(
    table: Table,
    apps: Sequence[str] | None = None,
    n_trees: int = 15,
    max_depth: int = 8,
    seed: int = 0,
) -> list[TransferResult]:
    """Hold out each app in turn; measure classifier transfer."""
    _require(table, "leave_one_app_out")
    all_apps = table.unique("app")
    targets = list(apps) if apps is not None else all_apps
    X_all, _names = _encode_features(table, _FEATURES)
    y_all = np.asarray(table.column("optimal"), dtype=float)
    app_col = np.asarray([str(a) for a in table.column("app")], dtype=object)

    out: list[TransferResult] = []
    for app in targets:
        test_mask = app_col == app
        if not test_mask.any() or test_mask.all():
            raise DatasetError(f"cannot hold out {app!r}: degenerate split")
        X_tr, y_tr = X_all[~test_mask], y_all[~test_mask]
        X_te, y_te = X_all[test_mask], y_all[test_mask]

        transfer_model = RandomForestClassifier(
            n_trees=n_trees, max_depth=max_depth, seed=seed
        ).fit(X_tr, y_tr)
        full_model = RandomForestClassifier(
            n_trees=n_trees, max_depth=max_depth, seed=seed
        ).fit(X_all, y_all)

        out.append(
            TransferResult(
                app=app,
                n_train=int((~test_mask).sum()),
                n_test=int(test_mask.sum()),
                in_sample_accuracy=full_model.score(X_te, y_te),
                transfer_accuracy=transfer_model.score(X_te, y_te),
            )
        )
    return out


# ---------------------------------------------------------------------------
# Configuration transfer
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class UnseenRecommendation:
    """A configuration transferred to an unseen application."""

    app: str
    arch: str
    donor_apps: tuple[str, ...]
    #: The transferred configuration, as dataset config-column values.
    config: dict
    #: Speedup the config actually achieves on the unseen app.
    achieved_speedup: float
    #: Best speedup any swept config achieves on the unseen app.
    best_speedup: float

    @property
    def regret(self) -> float:
        """Fraction of the achievable speedup left on the table."""
        if self.best_speedup <= 1.0:
            return 0.0
        return max(
            0.0,
            (self.best_speedup - self.achieved_speedup)
            / (self.best_speedup - 1.0),
        )


def _config_key(row: dict) -> tuple:
    return tuple(row[c] for c in _CONFIG_COLS)


def _app_influence_vectors(table: Table, arch: str) -> dict[str, np.ndarray]:
    inf = influence_by_arch_application(table)
    return {
        r.label[1]: r.importances
        for r in inf.rows
        if r.label[0] == arch
    }


def recommend_for_unseen(
    table: Table,
    app: str,
    arch: str,
    k_donors: int = 2,
) -> UnseenRecommendation:
    """Transfer the best configuration of the most similar seen apps.

    Similarity between applications is the cosine of their influence
    rows on ``arch`` (computed *without* using the target app's rows for
    donor selection beyond its own influence signature, which a user
    could estimate from a handful of probe runs).
    """
    if "speedup" not in table:
        raise SchemaError("recommend_for_unseen needs the 'speedup' column")
    arch_mask = np.asarray([a == arch for a in table.column("arch")])
    sub = table.filter(arch_mask)
    vectors = _app_influence_vectors(sub, arch)
    if app not in vectors:
        raise DatasetError(f"no data for app {app!r} on {arch}")
    target_vec = vectors[app]

    def cosine(a: np.ndarray, b: np.ndarray) -> float:
        na, nb = np.linalg.norm(a), np.linalg.norm(b)
        if na == 0 or nb == 0:
            return 0.0
        return float(a @ b / (na * nb))

    donors = sorted(
        (other for other in vectors if other != app),
        key=lambda other: -cosine(target_vec, vectors[other]),
    )[:k_donors]
    if not donors:
        raise DatasetError("need at least two applications for transfer")

    # Donor vote: mean speedup of each config across donor apps —
    # restricted to configs the target app was actually swept with, so a
    # subsampled dataset can always score the transfer.
    app_col = np.asarray([str(a) for a in sub.column("app")], dtype=object)
    target_rows = sub.filter(app_col == app)
    target_configs: dict[tuple, float] = {}
    best = 1.0
    for row in target_rows.iter_rows():
        key = _config_key(row)
        target_configs[key] = max(target_configs.get(key, 0.0), row["speedup"])
        best = max(best, row["speedup"])

    votes: dict[tuple, list[float]] = {}
    for donor in donors:
        donor_rows = sub.filter(app_col == donor)
        for row in donor_rows.iter_rows():
            key = _config_key(row)
            if key in target_configs:
                votes.setdefault(key, []).append(row["speedup"])
    if not votes:
        raise DatasetError(
            "no overlapping configurations between donors and target"
        )
    best_config = max(votes, key=lambda key: float(np.mean(votes[key])))
    achieved = target_configs[best_config]
    return UnseenRecommendation(
        app=app,
        arch=arch,
        donor_apps=tuple(donors),
        config=dict(zip(_CONFIG_COLS, best_config)),
        achieved_speedup=float(achieved),
        best_speedup=float(best),
    )


def fine_tune(
    table: Table,
    app: str,
    arch: str,
    budgets: Sequence[int] = (0, 4, 16, 64),
    seed: int = 0,
) -> list[tuple[int, float]]:
    """The limited-data protocol: with ``n`` observed samples of the new
    app, pick the best config among {transferred prior} + {n probes}.

    Returns ``[(budget, regret), ...]`` — regret must be non-increasing
    in the budget (more probes never hurt, since the prior stays in the
    candidate set).
    """
    prior = recommend_for_unseen(table, app, arch)
    arch_mask = np.asarray([a == arch for a in table.column("arch")])
    sub = table.filter(arch_mask)
    app_col = np.asarray([str(a) for a in sub.column("app")], dtype=object)
    target = sub.filter(app_col == app)
    speedups = np.asarray(target.column("speedup"), dtype=float)
    best = float(speedups.max())

    rng = np.random.default_rng(seed)
    order = rng.permutation(target.num_rows)
    out: list[tuple[int, float]] = []
    for budget in budgets:
        probes = speedups[order[:budget]]
        achieved = max(
            prior.achieved_speedup, float(probes.max()) if budget else 0.0
        )
        regret = (
            0.0
            if best <= 1.0
            else max(0.0, (best - achieved) / (best - 1.0))
        )
        out.append((int(budget), regret))
    return out
