"""Tuning recommendations (paper Table VII, Sec. V-4).

Two extraction passes over an enriched dataset:

- :func:`best_variable_values` — for each (app, arch), look at the
  top-performing slice of configurations and report, per variable, the
  values that appear there significantly more often than chance.  That is
  the mechanical version of the paper's "most impactful performing
  variables and values" table (e.g. NQueens -> KMP_LIBRARY=turnaround on
  every architecture).
- :func:`worst_trends` — mine the worst-performing slice for recurring
  variable-value combinations; reproduces the paper's finding that
  master binding with large thread counts is reliably catastrophic.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import SchemaError
from repro.frame.table import Table
from repro.runtime.icv import UNSET

__all__ = [
    "Recommendation",
    "best_variable_values",
    "recommend",
    "worst_trends",
    "WorstTrend",
]

#: Variables inspected for recommendations.
_VARIABLES = (
    "places",
    "proc_bind",
    "schedule",
    "library",
    "blocktime",
    "force_reduction",
    "align_alloc",
)


@dataclass(frozen=True)
class Recommendation:
    """Values of one variable over-represented among top configurations."""

    app: str
    arch: str
    variable: str
    #: Values ordered by how strongly they are enriched in the top slice.
    values: tuple[str, ...]
    #: Enrichment of the strongest value: P(value | top) / P(value).
    lift: float
    #: Best speedup observed in the group.
    best_speedup: float


@dataclass(frozen=True)
class WorstTrend:
    """A variable-value pair over-represented among the worst samples."""

    variable: str
    value: str
    lift: float
    mean_speedup: float


def _top_slice(sub: Table, quantile: float) -> Table:
    speedup = np.asarray(sub.column("speedup"), dtype=float)
    cutoff = np.quantile(speedup, 1.0 - quantile)
    return sub.filter(speedup >= cutoff)


def best_variable_values(
    table: Table,
    quantile: float = 0.05,
    min_lift: float = 1.3,
) -> list[Recommendation]:
    """Mine the top ``quantile`` of each (app, arch) group for enriched
    variable values.

    A value is reported when its frequency among the top configurations
    exceeds its overall frequency by at least ``min_lift``; ``unset``
    values are skipped (recommending the default is vacuous) unless *no*
    variable clears the bar, in which case a single pseudo-recommendation
    ``defaults`` is emitted — the paper's "A64FX: defaults" row for
    NQueens.
    """
    if "speedup" not in table:
        raise SchemaError("best_variable_values needs the 'speedup' column")
    out: list[Recommendation] = []
    for (app, arch), sub in table.group_by(["app", "arch"]):
        top = _top_slice(sub, quantile)
        best_speedup = float(np.max(np.asarray(sub.column("speedup"), dtype=float)))
        group_recs: list[Recommendation] = []
        for var in _VARIABLES:
            overall = sub.column(var)
            top_vals = top.column(var)
            candidates: list[tuple[float, str]] = []
            for value in sorted(set(str(v) for v in top_vals)):
                if value in (UNSET, "0") and var != "blocktime":
                    continue
                p_top = float(np.mean([str(v) == value for v in top_vals]))
                p_all = float(np.mean([str(v) == value for v in overall]))
                if p_all == 0.0:
                    continue
                lift = p_top / p_all
                if lift >= min_lift and p_top >= 0.25:
                    candidates.append((lift, value))
            if candidates:
                candidates.sort(reverse=True)
                group_recs.append(
                    Recommendation(
                        app=app,
                        arch=arch,
                        variable=var,
                        values=tuple(v for _, v in candidates),
                        lift=candidates[0][0],
                        best_speedup=best_speedup,
                    )
                )
        if not group_recs:
            group_recs.append(
                Recommendation(
                    app=app,
                    arch=arch,
                    variable="defaults",
                    values=("defaults",),
                    lift=1.0,
                    best_speedup=best_speedup,
                )
            )
        out.extend(group_recs)
    return out


def recommend(
    table: Table, app: str, arch: str, quantile: float = 0.05
) -> list[Recommendation]:
    """Recommendations for one (app, arch) pair."""
    return [
        r
        for r in best_variable_values(table, quantile=quantile)
        if r.app == app and r.arch == arch
    ]


def worst_trends(
    table: Table,
    quantile: float = 0.05,
    min_lift: float = 2.0,
    variables: Sequence[str] = ("proc_bind", "places"),
) -> list[WorstTrend]:
    """Variable-value pairs enriched among the worst-performing samples."""
    if "speedup" not in table:
        raise SchemaError("worst_trends needs the 'speedup' column")
    speedup = np.asarray(table.column("speedup"), dtype=float)
    cutoff = np.quantile(speedup, quantile)
    worst = table.filter(speedup <= cutoff)
    worst_speedup = np.asarray(worst.column("speedup"), dtype=float)

    out: list[WorstTrend] = []
    for var in variables:
        overall = [str(v) for v in table.column(var)]
        worst_vals = [str(v) for v in worst.column(var)]
        for value in sorted(set(worst_vals)):
            p_worst = float(np.mean([v == value for v in worst_vals]))
            p_all = float(np.mean([v == value for v in overall]))
            if p_all == 0.0 or p_worst < 0.2:
                continue
            lift = p_worst / p_all
            if lift >= min_lift:
                sel = np.asarray([v == value for v in worst_vals])
                out.append(
                    WorstTrend(
                        variable=var,
                        value=value,
                        lift=lift,
                        mean_speedup=float(worst_speedup[sel].mean()),
                    )
                )
    out.sort(key=lambda t: -t.lift)
    return out
