"""The paper's primary contribution: sweep orchestration + influence analysis.

- :mod:`~repro.core.envspace` — the swept environment-variable space with
  per-architecture value sets and grid enumeration,
- :mod:`~repro.core.sweep` — batched full-factorial sweep execution over
  (workload, setting, config, repetition),
- :mod:`~repro.core.dataset` — raw records -> tabular datasets, run
  averaging, default-config enrichment, speedup computation,
- :mod:`~repro.core.labeling` — the optimal/sub-optimal classification
  labels (speedup > 1.01),
- :mod:`~repro.core.influence` — logistic-regression coefficient influence
  under the three grouping strategies (Figs. 2-4),
- :mod:`~repro.core.recommend` — best variable/value extraction (Table
  VII) and worst-trend detection (Sec. V-4),
- :mod:`~repro.core.pruning` — influence-guided search-space pruning and
  the hill-climbing tuner the conclusion sketches.
"""

from repro.core.envspace import (EnvSpace, VariableSpec, SWEPT_VARIABLES,
                                 chunked_schedule_variables,
                                 extended_variables, wait_policy_variables)
from repro.core.sweep import (BatchSpec, SweepPlan, SweepResult,
                              plan_batches, run_sweep)
from repro.core.cache import SweepCache
from repro.core.dataset import (
    aggregate_runs,
    enrich_with_speedup,
    records_to_table,
    speedup_summary,
    validate_dataset,
)
from repro.core.labeling import OPTIMAL_THRESHOLD, label_optimal
from repro.core.influence import (
    FEATURE_COLUMNS,
    GroupInfluence,
    InfluenceMatrix,
    influence_by_application,
    influence_by_arch_application,
    influence_by_architecture,
)
from repro.core.recommend import (
    Recommendation,
    best_variable_values,
    recommend,
    worst_trends,
)
from repro.core.pruning import HillClimbResult, hill_climb, prune_space
from repro.core.search import (
    TunerResult,
    exhaustive_search,
    greedy_ofat,
    random_search,
    simulated_annealing,
)
from repro.core.nonlinear import ModelComparison, compare_models, forest_influence
from repro.core.transfer import (
    TransferResult,
    UnseenRecommendation,
    fine_tune,
    leave_one_app_out,
    recommend_for_unseen,
)
from repro.core.release import ReleaseManifest, load_release, write_release
from repro.core.interactions import (
    PairInteraction,
    interaction_matrix,
    strongest_interactions,
)
from repro.core.report import generate_report
from repro.core.perkernel import PerKernelResult, RegionTuning, per_kernel_tune
from repro.core.threads import ThreadRecommendation, recommend_threads

__all__ = [
    "EnvSpace",
    "VariableSpec",
    "SWEPT_VARIABLES",
    "BatchSpec",
    "SweepPlan",
    "SweepResult",
    "SweepCache",
    "plan_batches",
    "run_sweep",
    "records_to_table",
    "aggregate_runs",
    "enrich_with_speedup",
    "speedup_summary",
    "validate_dataset",
    "OPTIMAL_THRESHOLD",
    "label_optimal",
    "FEATURE_COLUMNS",
    "GroupInfluence",
    "InfluenceMatrix",
    "influence_by_application",
    "influence_by_architecture",
    "influence_by_arch_application",
    "Recommendation",
    "recommend",
    "best_variable_values",
    "worst_trends",
    "HillClimbResult",
    "hill_climb",
    "prune_space",
    "extended_variables",
    "wait_policy_variables",
    "chunked_schedule_variables",
    "TunerResult",
    "random_search",
    "simulated_annealing",
    "greedy_ofat",
    "exhaustive_search",
    "ModelComparison",
    "compare_models",
    "forest_influence",
    "TransferResult",
    "UnseenRecommendation",
    "leave_one_app_out",
    "recommend_for_unseen",
    "fine_tune",
    "ReleaseManifest",
    "write_release",
    "load_release",
    "PairInteraction",
    "interaction_matrix",
    "strongest_interactions",
    "generate_report",
    "PerKernelResult",
    "RegionTuning",
    "per_kernel_tune",
    "ThreadRecommendation",
    "recommend_threads",
]
