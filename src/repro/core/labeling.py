"""Optimal/sub-optimal labeling (paper Sec. IV-D).

The paper side-steps poor linear-regression fits by reformulating the
analysis as classification: a sample is *optimal* when its speedup over
the default exceeds 1.01 (at least 1% improvement), *sub-optimal*
otherwise.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SchemaError
from repro.frame.table import Table

__all__ = ["OPTIMAL_THRESHOLD", "label_optimal", "optimal_fraction"]

#: Speedup above which a sample counts as optimal (>= 1% improvement).
OPTIMAL_THRESHOLD = 1.01


def label_optimal(table: Table, threshold: float = OPTIMAL_THRESHOLD) -> Table:
    """Add the 0/1 ``optimal`` column."""
    if "speedup" not in table:
        raise SchemaError("label_optimal: table lacks 'speedup' column "
                          "(run enrich_with_speedup first)")
    speedup = np.asarray(table.column("speedup"), dtype=float)
    return table.with_column("optimal", (speedup > threshold).astype(np.int64))


def optimal_fraction(table: Table) -> float:
    """Fraction of samples labeled optimal."""
    if "optimal" not in table:
        table = label_optimal(table)
    return float(np.asarray(table.column("optimal"), dtype=float).mean())
