"""Sweep orchestration (paper Sec. IV-B).

Executes the full (or scaled) configuration grid for every workload
setting, with repeated runs.  The iteration order mirrors the paper's
batching: *per setting, all configurations are explored iteratively*, and
the repetition index is the outermost loop within a setting — preserving
the relative performance of configurations within each batch.  Because
the simulator's noise streams are keyed by sample identity, results are
bit-identical under any reordering (verified by tests), which is the
property the paper's batching strategy exists to protect on real metal.

Sweeps can fan out across processes; each (workload, setting) batch is an
independent unit of work (:class:`BatchSpec`).  The parallel path runs
under the supervised executor (:mod:`repro.resilience.supervisor`): every
batch has a wall-clock deadline scaled by its size, dead or hung workers
are detected and respawned, failed attempts retry with deterministic
seeded backoff, and a batch that exhausts its retry budget is
*quarantined* — the sweep degrades gracefully (``fail_policy="degrade"``)
or fails fast (``fail_policy="raise"``).  Results still stream back in
batch order, so the ``progress`` callback fires as each batch lands and
records are bit-identical to serial execution.  A worker initializer
materializes the machine model and configuration grid once per process —
batch payloads carry only the batch identity, never the grid.  Every
failure lands in the :class:`~repro.resilience.report.FailureReport`
attached to the :class:`SweepResult`.

Passing ``cache=`` (a :class:`~repro.core.cache.SweepCache` or a
directory path) makes the sweep incremental: batches already present in
the cache are loaded instead of re-simulated, and every freshly computed
batch is persisted, so an interrupted full-scale sweep resumes where it
stopped.  Cached, parallel, and serial execution all yield bit-identical
records.
"""

from __future__ import annotations

import os
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.arch.machines import get_machine
from repro.arch.topology import MachineTopology
from repro.core.envspace import EnvSpace
from repro.errors import ConfigError, PoisonBatchError, SweepCancelledError
from repro.resilience.backends import (
    BACKEND_NAMES,
    ExecutorBackend,
    NodesBackend,
    SerialBackend,
    SerialChaosFault,
)
from repro.resilience.chaos import (
    CHAOS_CRASH_EXIT,
    CHAOS_NODE_LOST_EXIT,
    CHAOS_PARTITION_EXIT,
    ChaosPlan,
    apply_cache_fault,
    corrupted_payload,
    in_node_context,
    install_chaos,
    installed_node_fault,
    installed_worker_fault,
    trigger_node_fault,
    trigger_worker_fault,
)
from repro.resilience.policy import RetryPolicy
from repro.resilience.report import FailureLedger, FailureReport
from repro.resilience.sharding import ShardPlanner, ShardReport
from repro.resilience.supervisor import SupervisedTask, Supervisor
from repro.runtime.executor import RuntimeExecutor, apply_measurement_noise
from repro.runtime.icv import EnvConfig
from repro.workloads.base import Workload, workloads_for_arch

__all__ = [
    "BatchSpec",
    "SweepPlan",
    "SweepRecord",
    "SweepResult",
    "equivalence_groups",
    "plan_batches",
    "run_sweep",
    "sweep_block_schema",
    "sweep_records_to_block",
    "sweep_block_to_records",
]


@dataclass(frozen=True)
class SweepPlan:
    """What to sweep.

    Attributes
    ----------
    arch:
        Machine name.
    workload_names:
        Applications to include (None = every app the paper ran on
        ``arch``).
    scale:
        Grid scale (see :class:`~repro.core.envspace.EnvSpace`).
    repetitions:
        Runs per configuration (the paper records 3-4).
    inputs_limit:
        Cap on settings per workload (None = all; useful for quick runs).
    seed:
        Base seed for scaled-grid subsampling.
    fidelity:
        Task-region fidelity, ``"analytic"`` or ``"des"``.
    prune:
        Collapse ICV-equivalent configurations before simulating: the
        model is evaluated once per resolved-signature class and each
        member's own noise stream is applied to the shared result.
        Record-identical to the unpruned sweep (verified by the
        ``equivalence-pruning-parity`` differential check), so it does
        not participate in cache keys.
    """

    arch: str
    workload_names: tuple[str, ...] | None = None
    scale: str = "small"
    repetitions: int = 3
    inputs_limit: int | None = None
    seed: int = 0
    fidelity: str = "analytic"
    prune: bool = True

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ConfigError("repetitions must be >= 1")
        if self.fidelity not in ("analytic", "des"):
            raise ConfigError(
                f"fidelity must be 'analytic' or 'des', got {self.fidelity!r}"
            )


@dataclass(frozen=True)
class BatchSpec:
    """One (workload, setting): the sweep's unit of dispatch and caching.

    Deliberately tiny — this is the only payload pickled per batch when
    fanning out across processes; the configuration grid itself lives in
    per-process worker state.
    """

    app: str
    suite: str
    input_size: str
    nthreads: int


@dataclass(frozen=True)
class SweepRecord:
    """One configuration's measurements at one setting (a dataset row)."""

    arch: str
    app: str
    suite: str
    input_size: str
    num_threads: int
    config: EnvConfig
    runtimes: tuple[float, ...]

    @property
    def mean_runtime(self) -> float:
        """Average over the repeated runs (the paper's noise mitigation)."""
        return sum(self.runtimes) / len(self.runtimes)


@dataclass
class SweepResult:
    """All records of one sweep plus bookkeeping."""

    plan: SweepPlan
    records: list[SweepRecord] = field(default_factory=list)
    #: Batches served from the cache vs simulated in this call.
    n_cached_batches: int = 0
    n_computed_batches: int = 0
    #: Configurations actually executed vs fanned out from an
    #: ICV-equivalent representative (computed batches only).
    n_simulated_configs: int = 0
    n_pruned_configs: int = 0
    #: Batches that exhausted their retry budget under
    #: ``fail_policy="degrade"`` — their records are absent; a later run
    #: over the same cache retries them.
    n_quarantined_batches: int = 0
    #: Per-batch failure accounting for this run (always present).
    failure_report: FailureReport | None = None
    #: Which executor backend ran the misses ("serial", "pool", "nodes")
    #: and across how many shards; records are backend-invariant (the
    #: ``sharded-execution-parity`` check pins it).
    backend: str = "serial"
    n_shards: int = 1
    #: Steal/reassign diagnostics (nodes backend only).  Operational —
    #: depends on real execution timing, unlike ``failure_report``.
    shard_report: ShardReport | None = None

    @property
    def n_samples(self) -> int:
        """Unique samples (rows), the paper's Table II accounting unit."""
        return len(self.records)

    @property
    def n_measurements(self) -> int:
        """Individual timed runs (rows x repetitions)."""
        return sum(len(r.runtimes) for r in self.records)

    def apps(self) -> list[str]:
        """Distinct applications present."""
        seen: dict[str, None] = {}
        for r in self.records:
            seen.setdefault(r.app, None)
        return list(seen)


# ----------------------------------------------------------------------
# Columnar batch codec
# ----------------------------------------------------------------------
#: ``str`` columns of the sweep-record block schema, in record order.
_BLOCK_STR_FIELDS = (
    "arch", "app", "suite", "input_size", "places", "proc_bind",
    "schedule", "library", "blocktime", "force_reduction",
)


def sweep_block_schema(repetitions: int) -> dict:
    """The :class:`~repro.frame.columns.RecordBlock` schema of one batch.

    ``runtimes`` is a fixed-width float64 vector column (one slot per
    repetition); the two None-able ints (``cfg_num_threads``,
    ``align_alloc``) use ``-1`` sentinels — both are >= 1 when set.
    """
    return {
        "arch": "str",
        "app": "str",
        "suite": "str",
        "input_size": "str",
        "num_threads": "i8",
        "cfg_num_threads": "i8",
        "places": "str",
        "proc_bind": "str",
        "schedule": "str",
        "library": "str",
        "blocktime": "str",
        "force_reduction": "str",
        "align_alloc": "i8",
        "runtimes": ("f8", max(1, repetitions)),
    }


def sweep_records_to_block(records: "Sequence[SweepRecord]"):
    """Pack sweep records into a typed columnar block.

    Lossless and order-preserving: :func:`sweep_block_to_records` of the
    result is element-wise equal to ``records`` (pinned by the
    ``columnar-pipeline-parity`` check).  All records must share one
    repetition count — the sweep invariant.
    """
    from repro.errors import FrameError
    from repro.frame.columns import RecordBlock

    reps = len(records[0].runtimes) if records else 1
    if reps == 0:
        raise FrameError("cannot pack a record with zero runtimes")
    for r in records:
        if len(r.runtimes) != reps:
            raise FrameError(
                f"inconsistent repetition counts in one batch: "
                f"{len(r.runtimes)} vs {reps}"
            )
    block = RecordBlock(sweep_block_schema(reps))
    cols = block.columns
    cfgs = [r.config for r in records]
    # Column-at-a-time bulk appends: one C-level array extend per
    # column instead of 14 python-level appends per record.  Strings
    # therefore intern in column order (still deterministic for a given
    # record sequence, which is all the cache checksum needs).
    cols["arch"].extend_cells(r.arch for r in records)
    cols["app"].extend_cells(r.app for r in records)
    cols["suite"].extend_cells(r.suite for r in records)
    cols["input_size"].extend_cells(r.input_size for r in records)
    cols["num_threads"].extend_cells(int(r.num_threads) for r in records)
    cols["cfg_num_threads"].extend_cells(
        -1 if c.num_threads is None else int(c.num_threads) for c in cfgs
    )
    cols["places"].extend_cells(c.places for c in cfgs)
    cols["proc_bind"].extend_cells(c.proc_bind for c in cfgs)
    cols["schedule"].extend_cells(c.schedule for c in cfgs)
    cols["library"].extend_cells(c.library for c in cfgs)
    cols["blocktime"].extend_cells(c.blocktime for c in cfgs)
    cols["force_reduction"].extend_cells(c.force_reduction for c in cfgs)
    cols["align_alloc"].extend_cells(
        -1 if c.align_alloc is None else int(c.align_alloc) for c in cfgs
    )
    # A width-1 vector column stores scalar cells.
    if reps > 1:
        cols["runtimes"].extend_cells(r.runtimes for r in records)
    else:
        cols["runtimes"].extend_cells(r.runtimes[0] for r in records)
    return block


def sweep_block_to_records(block) -> list[SweepRecord]:
    """Unpack a columnar batch block back into :class:`SweepRecord` rows.

    Column-at-a-time (one ``tolist`` per column, no per-cell NumPy
    boxing); raises :class:`~repro.errors.FrameError` on any schema or
    value mismatch, which the cache maps to quarantine.
    """
    from repro.errors import FrameError

    width = block.columns["runtimes"].width if "runtimes" in block.columns \
        else 1
    expected = sweep_block_schema(width)
    if block.schema != {k: ((v, 1) if isinstance(v, str) else v)
                        for k, v in expected.items()}:
        raise FrameError(
            f"not a sweep batch block: schema {block.schema}"
        )
    cols = {name: arr.tolist() for name, arr in block.to_arrays().items()}
    for name in _BLOCK_STR_FIELDS:
        if any(v is None for v in cols[name]):
            raise FrameError(f"sweep batch block: null {name!r} cell")
    records = []
    for i in range(len(block)):
        try:
            config = EnvConfig(
                num_threads=(
                    None if cols["cfg_num_threads"][i] < 0
                    else cols["cfg_num_threads"][i]
                ),
                places=cols["places"][i],
                proc_bind=cols["proc_bind"][i],
                schedule=cols["schedule"][i],
                library=cols["library"][i],
                blocktime=cols["blocktime"][i],
                force_reduction=cols["force_reduction"][i],
                align_alloc=(
                    None if cols["align_alloc"][i] < 0
                    else cols["align_alloc"][i]
                ),
            )
        except ConfigError as exc:
            raise FrameError(
                f"sweep batch block row {i}: invalid config: {exc}"
            ) from exc
        records.append(SweepRecord(
            arch=cols["arch"][i],
            app=cols["app"][i],
            suite=cols["suite"][i],
            input_size=cols["input_size"][i],
            num_threads=cols["num_threads"][i],
            config=config,
            runtimes=(tuple(cols["runtimes"][i]) if width > 1
                      else (cols["runtimes"][i],)),
        ))
    return records


# ----------------------------------------------------------------------
# Batch execution
# ----------------------------------------------------------------------
def equivalence_groups(
    configs: Sequence[EnvConfig],
    machine: MachineTopology,
    nthreads: int | None = None,
) -> dict[tuple, list[int]]:
    """Group grid indices by resolved execution signature.

    Insertion order is grid order, so each group's first index is the
    deterministic representative.  ``nthreads``, if given, overrides the
    thread count before resolution (the per-batch setting).
    """
    from repro.runtime.icv import resolve_icvs

    groups: dict[tuple, list[int]] = {}
    for i, config in enumerate(configs):
        if nthreads is not None:
            config = config.with_threads(nthreads)
        sig = resolve_icvs(config, machine).execution_signature()
        groups.setdefault(sig, []).append(i)
    return groups


def _execute_batch(
    plan: SweepPlan,
    machine: MachineTopology,
    configs: Sequence[EnvConfig],
    batch: BatchSpec,
) -> list[SweepRecord]:
    """Run the full config grid for one (workload, setting).

    With ``plan.prune`` the grid is first collapsed into ICV-equivalence
    classes; the deterministic model is evaluated once per class and each
    member's own measurement-noise stream (keyed by its spelling) is
    applied to the shared true runtime.  Bit-identical to executing every
    member, because the model is a function of the resolved ICVs alone —
    only the expensive evaluation is shared, never the noise draws.
    """
    from repro.workloads.base import get_workload

    program = get_workload(batch.app).program(batch.input_size)
    cfgs = [config.with_threads(batch.nthreads) for config in configs]

    if plan.prune:
        groups = equivalence_groups(cfgs, machine)
    else:
        groups = {(i,): [i] for i in range(len(cfgs))}

    runtimes_of: dict[int, tuple[float, ...]] = {}
    for members in groups.values():
        executor = RuntimeExecutor(
            machine, cfgs[members[0]], fidelity=plan.fidelity
        )
        true = executor.execute(program, seed=plan.seed)
        for i in members:
            runtimes_of[i] = tuple(
                apply_measurement_noise(
                    machine, program, cfgs[i], true,
                    run_index=rep, seed=plan.seed,
                )
                for rep in range(plan.repetitions)
            )

    return [
        SweepRecord(
            arch=plan.arch,
            app=batch.app,
            suite=batch.suite,
            input_size=batch.input_size,
            num_threads=batch.nthreads,
            config=cfg,
            runtimes=runtimes_of[i],
        )
        for i, cfg in enumerate(cfgs)
    ]


#: Per-process sweep state (machine model + materialized config grid),
#: populated once by :func:`_init_worker` instead of being pickled into
#: every batch payload.
_WORKER_STATE: dict = {}


def _init_worker(
    plan: SweepPlan, space: EnvSpace, chaos: ChaosPlan | None = None
) -> None:
    install_chaos(chaos)
    machine = get_machine(plan.arch)
    _WORKER_STATE["plan"] = plan
    _WORKER_STATE["machine"] = machine
    _WORKER_STATE["configs"] = space.grid(machine, plan.scale, seed=plan.seed)


def _worker_run_batch(batch: BatchSpec):
    """Execute one batch and pack it columnar for the trip home.

    Workers ship :class:`~repro.frame.columns.RecordBlock` payloads — a
    handful of flat typed buffers plus an interning table — through the
    supervisor's spool files instead of pickling one dict-shaped object
    graph per record.  The supervisor side unpacks (and thereby
    validates) them; records are bit-identical to serial execution.
    """
    state = _WORKER_STATE
    return sweep_records_to_block(_execute_batch(
        state["plan"], state["machine"], state["configs"], batch
    ))


def _supervised_run_batch(payload: tuple, attempt: int):
    """Worker entry point: run one batch, honoring installed chaos.

    ``payload`` is ``(batch_index, batch)`` — the index keys the chaos
    plan's fault lookup, which is per ``(batch_index, attempt)`` so a
    first-attempt fault recovers on retry while a poison fault
    (``attempts=None``) defeats every attempt.

    Node-level faults fire at the transport layer inside a nodes-backend
    node (``_node_main`` injects them before this function runs); in a
    plain pool worker — no transport to sever — they degrade to a
    process death with the fault's distinctive exit code, so the pool
    backend still exercises every chaos plan.
    """
    index, batch = payload
    node_fault = installed_node_fault(index, attempt)
    if node_fault is not None and not in_node_context():
        trigger_node_fault(node_fault)  # never returns
    fault = installed_worker_fault(index, attempt)
    if fault == "corrupt-result":
        return corrupted_payload(index)
    if fault is not None:
        trigger_worker_fault(fault)  # crash never returns; hang blocks
    return _worker_run_batch(batch)


def _validate_batch_records(value: object) -> str | None:
    """Reject worker payloads that are not a batch's records.

    The supervisor treats a rejection as a ``corrupt-result`` attempt
    failure, so a worker returning garbage (bit-flipped IPC, chaos
    injection) is retried instead of poisoning the dataset.  Accepts
    either form the pipeline moves: a packed
    :class:`~repro.frame.columns.RecordBlock` (the multiprocess spool
    payload — validated by a full decode) or a plain record list (the
    serial path).
    """
    from repro.errors import FrameError
    from repro.frame.columns import RecordBlock

    if isinstance(value, RecordBlock):
        try:
            records = sweep_block_to_records(value)
        except FrameError as exc:
            return f"worker returned an undecodable batch block: {exc}"
        if records:
            return None
        return "worker returned an empty batch block"
    if (
        isinstance(value, list)
        and value
        and all(isinstance(r, SweepRecord) for r in value)
    ):
        return None
    return (
        "worker returned a corrupt payload instead of batch records: "
        f"{repr(value)[:120]}"
    )


#: Default batch deadline: a generous floor plus a per-sample allowance,
#: so the timeout scales with batch size instead of flagging big batches.
BASE_BATCH_TIMEOUT_S = 30.0
PER_SAMPLE_TIMEOUT_S = 0.01


def _batch_timeout_s(n_configs: int, repetitions: int) -> float:
    return BASE_BATCH_TIMEOUT_S + PER_SAMPLE_TIMEOUT_S * n_configs * repetitions


def _make_supervisor(
    n_workers: int,
    plan: SweepPlan,
    space: EnvSpace,
    chaos: ChaosPlan | None,
    policy: RetryPolicy,
    fail_policy: str,
) -> Supervisor:
    """The supervised worker fleet holding the sweep state (test seam)."""
    return Supervisor(
        _supervised_run_batch,
        initializer=_init_worker,
        initargs=(plan, space, chaos),
        n_workers=n_workers,
        policy=policy,
        validate=_validate_batch_records,
        fail_fast=(fail_policy == "raise"),
    )


def _make_nodes_backend(
    n_nodes: int,
    plan: SweepPlan,
    space: EnvSpace,
    chaos: ChaosPlan | None,
    policy: RetryPolicy,
    fail_policy: str,
) -> NodesBackend:
    """The simulated multi-node fleet holding the sweep state (test seam).

    One node per shard; nodes run the same entry point, initializer and
    validator as pool workers, so a batch computes identically on every
    backend — only the dispatch substrate differs.
    """
    return NodesBackend(
        _supervised_run_batch,
        initializer=_init_worker,
        initargs=(plan, space, chaos),
        n_nodes=n_nodes,
        policy=policy,
        validate=_validate_batch_records,
        fail_fast=(fail_policy == "raise"),
    )


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------
def _resolve_workloads(plan: SweepPlan) -> list[Workload]:
    if plan.workload_names is None:
        return workloads_for_arch(plan.arch)
    from repro.workloads.base import get_workload

    workloads = [get_workload(n) for n in plan.workload_names]
    for w in workloads:
        if not w.runs_on(plan.arch):
            raise ConfigError(
                f"workload {w.name!r} was not run on {plan.arch} in the "
                "paper's dataset"
            )
    return workloads


def plan_batches(plan: SweepPlan) -> list[BatchSpec]:
    """The (workload, setting) batches of a plan, in execution order."""
    machine = get_machine(plan.arch)
    out: list[BatchSpec] = []
    for workload in _resolve_workloads(plan):
        settings = workload.settings(machine)
        if plan.inputs_limit is not None:
            settings = settings[: plan.inputs_limit]
        for input_size, nthreads in settings:
            out.append(
                BatchSpec(workload.name, workload.suite, input_size, nthreads)
            )
    return out


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def run_sweep(
    plan: SweepPlan,
    space: EnvSpace | None = None,
    n_processes: int = 1,
    progress: "callable | None" = None,
    cache: "SweepCache | str | os.PathLike | None" = None,
    fail_policy: str = "raise",
    retry: RetryPolicy | None = None,
    chaos: ChaosPlan | None = None,
    batch_timeout_s: float | None = None,
    backend: str = "auto",
    n_shards: int = 1,
    cancel: "object | None" = None,
) -> SweepResult:
    """Execute a sweep plan; deterministic for a given plan.

    ``progress``, if given, is called as each (workload, setting) batch
    *lands* — incrementally, also on the multiprocess path — with
    ``(batches_done, batches_total, app, input_size, nthreads)``; useful
    feedback on full-scale grids.

    ``cache``, if given (a :class:`~repro.core.cache.SweepCache` or a
    directory path), skips batches whose records are already on disk and
    persists each newly computed batch, making interrupted sweeps
    resumable.  See ``docs/SWEEP_CACHE.md`` for the key scheme.

    Failure handling (see ``docs/RESILIENCE.md``): each batch attempt can
    crash, hang past its deadline (``batch_timeout_s``, default scaled by
    batch size), raise, or return a corrupt payload.  Attempts retry per
    ``retry`` (a :class:`~repro.resilience.policy.RetryPolicy`); a batch
    that exhausts its budget is quarantined.  Under
    ``fail_policy="degrade"`` the sweep completes without the quarantined
    batches (counted in ``n_quarantined_batches``; a later run over the
    same cache retries them); under ``fail_policy="raise"`` the first
    quarantine raises :class:`~repro.errors.PoisonBatchError` carrying
    the failure report.  ``chaos``, if given (a
    :class:`~repro.resilience.chaos.ChaosPlan`), injects that plan's
    faults — the test/rehearsal path behind ``repro-omp chaos``.

    On interruption or error, batches that finished before the failure
    are flushed to the cache before the exception propagates, so no
    landed work is ever lost.

    ``backend`` selects the executor substrate for the cache misses:
    ``"serial"`` (in-process), ``"pool"`` (supervised multiprocess
    fleet), ``"nodes"`` (simulated multi-node cluster over socket
    links, one node per shard), or ``"auto"`` — pool when
    ``n_processes > 1`` leaves more than one miss to share, else
    serial.  ``n_shards`` partitions the miss stream: homes follow the
    cache's key-prefix partitioning when a cache is present (else
    round-robin), the pool interleaves dispatch across shards, and the
    nodes backend runs one process per shard with work stealing.
    Records are bit-identical across every ``backend`` × ``n_shards``
    combination (the ``sharded-execution-parity`` check pins it).

    ``cancel``, if given, is a cooperative-cancellation handle (anything
    with ``is_set()``, typically a ``threading.Event``) checked between
    batches — never mid-batch.  Once set, the sweep flushes every landed
    batch to the cache and raises
    :class:`~repro.errors.SweepCancelledError`, so a cancelled sweep is
    always resumable from where it stopped.  This is the hook the
    serving daemon uses for request deadlines and graceful drain.
    """
    if fail_policy not in ("raise", "degrade"):
        raise ConfigError(
            f"fail_policy must be 'raise' or 'degrade', got {fail_policy!r}"
        )
    if backend not in BACKEND_NAMES + ("auto",):
        raise ConfigError(
            f"backend must be one of {('auto',) + BACKEND_NAMES}, "
            f"got {backend!r}"
        )
    if n_shards < 1:
        raise ConfigError(f"n_shards must be >= 1, got {n_shards}")
    space = space or EnvSpace()
    machine = get_machine(plan.arch)
    batches = plan_batches(plan)
    total = len(batches)
    result = SweepResult(plan=plan)
    policy = retry if retry is not None else RetryPolicy(seed=plan.seed)
    ledger = FailureLedger(policy, fail_policy)

    configs = space.grid(machine, plan.scale, seed=plan.seed)
    n_classes_at: dict[int, int] = {}

    def classes_at(nthreads: int) -> int:
        """Equivalence classes of the grid at one thread count (memoized;
        the whole batch shares it, so counting happens in the parent)."""
        if nthreads not in n_classes_at:
            if plan.prune:
                n_classes_at[nthreads] = len(
                    equivalence_groups(configs, machine, nthreads=nthreads)
                )
            else:
                n_classes_at[nthreads] = len(configs)
        return n_classes_at[nthreads]

    if cache is not None:
        from repro.core.cache import SweepCache

        if not isinstance(cache, SweepCache):
            cache = SweepCache(cache)

    # Resolve cache hits up front so only misses are dispatched to workers.
    cached: dict[int, list[SweepRecord]] = {}
    keys: dict[int, str] = {}
    if cache is not None:
        grid_fp = cache.grid_fingerprint(configs)
        machine_fp = cache.machine_fingerprint(machine)
        for i, batch in enumerate(batches):
            keys[i] = cache.batch_key(plan, grid_fp, machine_fp, batch)
            hit = cache.get(keys[i])
            if hit is not None:
                cached[i] = hit
    misses = [i for i in range(total) if i not in cached]

    def in_order(
        miss_stream: Iterator[list[SweepRecord] | None],
    ) -> Iterator[tuple[int, BatchSpec, list[SweepRecord] | None, bool]]:
        """Merge cached batches with streamed misses, in batch order."""
        for i, batch in enumerate(batches):
            if i in cached:
                yield i, batch, cached[i], True
            else:
                yield i, batch, next(miss_stream), False

    def consume(miss_stream: Iterator[list[SweepRecord] | None]) -> None:
        from repro.frame.columns import RecordBlock

        for done, (i, batch, records, was_cached) in enumerate(
            in_order(miss_stream), 1
        ):
            # Checked here as well as inside the backends so a fully
            # cached sweep (no backend at all) still honors its handle.
            if cancel is not None and cancel.is_set():
                raise SweepCancelledError(
                    f"sweep cancelled after {done - 1} of {total} batches"
                )
            # Multiprocess misses land as packed column blocks; keep the
            # block for the cache write (stored as-is under format v5)
            # and unpack once for the in-memory result.
            block = records if isinstance(records, RecordBlock) else None
            if block is not None:
                records = sweep_block_to_records(block)
            if records is None:
                # Quarantined under fail_policy="degrade": nothing lands,
                # nothing is cached, so a resume re-attempts this batch.
                result.n_quarantined_batches += 1
            elif was_cached:
                result.records.extend(records)
                result.n_cached_batches += 1
            else:
                result.records.extend(records)
                result.n_computed_batches += 1
                n_sim = classes_at(batch.nthreads)
                result.n_simulated_configs += n_sim
                result.n_pruned_configs += len(records) - n_sim
                if cache is not None:
                    cache.put(keys[i], block if block is not None
                              else records)
                    fault = (chaos.cache_fault(i) if chaos is not None
                             else None)
                    if fault is not None:
                        apply_cache_fault(cache.path_for(keys[i]), fault)
            if progress is not None:
                progress(done, total, batch.app, batch.input_size,
                         batch.nthreads)

    def _serial_attempt(payload: tuple, attempt: int):
        """In-process task function with chaos faults *simulated*.

        Faults the serial backend cannot survive for real (a genuine
        crash, hang, or node loss would take the whole sweep down with
        it) are booked as the failure they would produce under
        supervision, via :class:`~repro.resilience.backends.
        SerialChaosFault`.
        """
        i, batch = payload
        fault = (chaos.node_fault(i, attempt)
                 if chaos is not None else None)
        if fault == "node-lost":
            raise SerialChaosFault(
                "node-lost",
                f"injected node loss (serial mode, exit "
                f"{CHAOS_NODE_LOST_EXIT})",
            )
        if fault == "shard-partition":
            raise SerialChaosFault(
                "shard-partition",
                f"injected shard partition (serial mode, exit "
                f"{CHAOS_PARTITION_EXIT})",
            )
        fault = (chaos.worker_fault(i, attempt)
                 if chaos is not None else None)
        if fault == "crash":
            raise SerialChaosFault(
                "crash",
                f"injected worker crash (serial mode, exit "
                f"{CHAOS_CRASH_EXIT})",
            )
        if fault == "hang":
            raise SerialChaosFault(
                "timeout",
                "injected hang exceeded the batch deadline (serial mode)",
            )
        if fault == "corrupt-result":
            return corrupted_payload(i)
        return _execute_batch(plan, machine, configs, batch)

    def build_report(worker_respawns: int = 0) -> FailureReport:
        return ledger.build_report(
            injected=chaos.describe() if chaos is not None else (),
            cache_corrupt_keys=(cache.corrupt_keys if cache is not None
                                else ()),
            worker_respawns=worker_respawns,
        )

    resolved = backend
    if resolved == "auto":
        # Historical behavior, unchanged: fan out only when parallelism
        # was requested and more than one miss exists to share.
        resolved = ("pool" if n_processes > 1 and len(misses) > 1
                    else "serial")

    timeout = (
        batch_timeout_s if batch_timeout_s is not None
        else _batch_timeout_s(len(configs), plan.repetitions)
    )
    tasks = [
        SupervisedTask(
            task_id=t, index=i, payload=(i, batches[i]),
            timeout_s=timeout, identity=batches[i],
        )
        for t, i in enumerate(misses)
    ]

    exec_backend: ExecutorBackend | None = None
    try:
        if not tasks:
            consume(iter(()))  # everything was cached; nothing to run
        else:
            planner = ShardPlanner(n_shards)
            miss_keys = ([keys[i] for i in misses] if cache is not None
                         else None)
            if resolved == "pool":
                exec_backend = _make_supervisor(
                    min(n_processes, len(misses)), plan, space, chaos,
                    policy, fail_policy,
                )
                if n_shards > 1:
                    homes = planner.assign(tasks, miss_keys)
                    exec_backend.dispatch_order = (
                        lambda ts: planner.interleave(ts, homes)
                    )
            elif resolved == "nodes":
                exec_backend = _make_nodes_backend(
                    n_shards, plan, space, chaos, policy, fail_policy,
                )
                exec_backend.home_shards = planner.assign(tasks, miss_keys)
            else:
                exec_backend = SerialBackend(
                    _serial_attempt,
                    policy=policy,
                    validate=_validate_batch_records,
                    fail_fast=(fail_policy == "raise"),
                )
            exec_backend.cancel_event = cancel
            consume(exec_backend.stream(tasks, ledger))
    except BaseException as exc:
        # Flush batches that completed before the failure so landed work
        # survives a Ctrl-C or a poison batch under fail_policy="raise".
        if exec_backend is not None and cache is not None:
            for task_id, records in exec_backend.completed_unyielded():
                cache.put(keys[misses[task_id]], records)
        if isinstance(exc, PoisonBatchError):
            exc.report = build_report(
                exec_backend.worker_respawns
                if exec_backend is not None else 0
            )
        raise
    finally:
        if exec_backend is not None:
            exec_backend.close()
    result.failure_report = build_report(
        exec_backend.worker_respawns if exec_backend is not None else 0
    )
    result.backend = resolved
    result.n_shards = n_shards
    if isinstance(exec_backend, NodesBackend):
        result.shard_report = exec_backend.shard_report()
    return result
