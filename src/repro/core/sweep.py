"""Sweep orchestration (paper Sec. IV-B).

Executes the full (or scaled) configuration grid for every workload
setting, with repeated runs.  The iteration order mirrors the paper's
batching: *per setting, all configurations are explored iteratively*, and
the repetition index is the outermost loop within a setting — preserving
the relative performance of configurations within each batch.  Because
the simulator's noise streams are keyed by sample identity, results are
bit-identical under any reordering (verified by tests), which is the
property the paper's batching strategy exists to protect on real metal.

Sweeps can optionally fan out across processes; each (workload, setting)
batch is an independent unit of work.
"""

from __future__ import annotations

import multiprocessing
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.arch.machines import get_machine
from repro.core.envspace import EnvSpace
from repro.errors import ConfigError
from repro.runtime.executor import RuntimeExecutor
from repro.runtime.icv import EnvConfig
from repro.workloads.base import Workload, workloads_for_arch

__all__ = ["SweepPlan", "SweepRecord", "SweepResult", "run_sweep"]


@dataclass(frozen=True)
class SweepPlan:
    """What to sweep.

    Attributes
    ----------
    arch:
        Machine name.
    workload_names:
        Applications to include (None = every app the paper ran on
        ``arch``).
    scale:
        Grid scale (see :class:`~repro.core.envspace.EnvSpace`).
    repetitions:
        Runs per configuration (the paper records 3-4).
    inputs_limit:
        Cap on settings per workload (None = all; useful for quick runs).
    seed:
        Base seed for scaled-grid subsampling.
    fidelity:
        Task-region fidelity, ``"analytic"`` or ``"des"``.
    """

    arch: str
    workload_names: tuple[str, ...] | None = None
    scale: str = "small"
    repetitions: int = 3
    inputs_limit: int | None = None
    seed: int = 0
    fidelity: str = "analytic"

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ConfigError("repetitions must be >= 1")


@dataclass(frozen=True)
class SweepRecord:
    """One configuration's measurements at one setting (a dataset row)."""

    arch: str
    app: str
    suite: str
    input_size: str
    num_threads: int
    config: EnvConfig
    runtimes: tuple[float, ...]

    @property
    def mean_runtime(self) -> float:
        """Average over the repeated runs (the paper's noise mitigation)."""
        return sum(self.runtimes) / len(self.runtimes)


@dataclass
class SweepResult:
    """All records of one sweep plus bookkeeping."""

    plan: SweepPlan
    records: list[SweepRecord] = field(default_factory=list)

    @property
    def n_samples(self) -> int:
        """Unique samples (rows), the paper's Table II accounting unit."""
        return len(self.records)

    @property
    def n_measurements(self) -> int:
        """Individual timed runs (rows x repetitions)."""
        return sum(len(r.runtimes) for r in self.records)

    def apps(self) -> list[str]:
        """Distinct applications present."""
        seen: dict[str, None] = {}
        for r in self.records:
            seen.setdefault(r.app, None)
        return list(seen)


def _sweep_one_setting(
    args: tuple[SweepPlan, str, str, str, int, list[EnvConfig]],
) -> list[SweepRecord]:
    """Run the full config batch for one (workload, setting)."""
    plan, app, suite, input_size, nthreads, configs = args
    machine = get_machine(plan.arch)
    from repro.workloads.base import get_workload

    program = get_workload(app).program(input_size)
    records: list[SweepRecord] = []
    for config in configs:
        cfg = config.with_threads(nthreads)
        executor = RuntimeExecutor(machine, cfg, fidelity=plan.fidelity)
        runtimes = tuple(
            executor.observe(program, run_index=rep, seed=plan.seed)
            for rep in range(plan.repetitions)
        )
        records.append(
            SweepRecord(
                arch=plan.arch,
                app=app,
                suite=suite,
                input_size=input_size,
                num_threads=nthreads,
                config=cfg,
                runtimes=runtimes,
            )
        )
    return records


def _batches(
    plan: SweepPlan, workloads: Sequence[Workload], space: EnvSpace
) -> Iterable[tuple]:
    machine = get_machine(plan.arch)
    configs = space.grid(machine, plan.scale, seed=plan.seed)
    for workload in workloads:
        settings = workload.settings(machine)
        if plan.inputs_limit is not None:
            settings = settings[: plan.inputs_limit]
        for input_size, nthreads in settings:
            yield (
                plan,
                workload.name,
                workload.suite,
                input_size,
                nthreads,
                configs,
            )


def run_sweep(
    plan: SweepPlan,
    space: EnvSpace | None = None,
    n_processes: int = 1,
    progress: "callable | None" = None,
) -> SweepResult:
    """Execute a sweep plan; deterministic for a given plan.

    ``progress``, if given, is called after each (workload, setting)
    batch with ``(batches_done, batches_total, app, input_size,
    nthreads)`` — useful feedback on full-scale grids.
    """
    space = space or EnvSpace()
    machine = get_machine(plan.arch)
    if plan.workload_names is None:
        workloads = workloads_for_arch(plan.arch)
    else:
        from repro.workloads.base import get_workload

        workloads = [get_workload(n) for n in plan.workload_names]
        for w in workloads:
            if not w.runs_on(plan.arch):
                raise ConfigError(
                    f"workload {w.name!r} was not run on {plan.arch} in the "
                    "paper's dataset"
                )
    del machine  # validated the arch name

    batches = list(_batches(plan, workloads, space))
    result = SweepResult(plan=plan)
    if n_processes > 1 and len(batches) > 1:
        with multiprocessing.Pool(n_processes) as pool:
            for done, (batch, records) in enumerate(
                zip(batches, pool.map(_sweep_one_setting, batches)), 1
            ):
                result.records.extend(records)
                if progress is not None:
                    progress(done, len(batches), batch[1], batch[3], batch[4])
    else:
        for done, batch in enumerate(batches, 1):
            result.records.extend(_sweep_one_setting(batch))
            if progress is not None:
                progress(done, len(batches), batch[1], batch[3], batch[4])
    return result
