"""Pairwise variable-interaction analysis.

The paper's conclusion flags that hill climbing can get stuck "especially
when the dependency relationships between parameters are unclear".  This
module makes those dependencies measurable: for every pair of swept
variables it compares the *joint* effect of setting both against the sum
of their *marginal* effects, on the log-speedup scale where independent
multiplicative effects are exactly additive.

For variable values a, b with marginal mean log-speedups m(a), m(b) and
joint mean log-speedup j(a, b) (all relative to the per-setting default):

``interaction(a, b) = j(a, b) − m(a) − m(b)``

Zero means the knobs compose independently (tune them separately);
positive means synergy (e.g. places + bind); negative means redundancy or
conflict (e.g. ``KMP_LIBRARY=turnaround`` with ``KMP_BLOCKTIME=infinite``
— both buy the same active waiting, so their joint gain is *not* the sum).
The per-pair score aggregates |interaction| over the value grid, weighted
by sample counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.errors import SchemaError
from repro.frame.table import Table
from repro.runtime.icv import UNSET

__all__ = ["PairInteraction", "interaction_matrix", "strongest_interactions"]

#: The swept variables inspected for interactions.
_VARIABLES = (
    "places",
    "proc_bind",
    "schedule",
    "library",
    "blocktime",
    "force_reduction",
    "align_alloc",
)


def _default_value(var: str) -> object:
    return 0 if var == "align_alloc" else UNSET


@dataclass(frozen=True)
class PairInteraction:
    """Interaction diagnostics for one variable pair."""

    var_a: str
    var_b: str
    #: Count-weighted mean |joint − marginal_a − marginal_b| (log-speedup).
    strength: float
    #: The most synergistic (max positive interaction) value pair.
    best_synergy: tuple[str, str]
    best_synergy_value: float
    #: The most redundant/conflicting (most negative) value pair.
    worst_conflict: tuple[str, str]
    worst_conflict_value: float

    @property
    def label(self) -> str:
        """"var_a x var_b" pair label."""
        return f"{self.var_a} x {self.var_b}"


def _marginal_effects(
    table: Table,
    var: str,
    log_speedup: np.ndarray,
    default_masks: dict,
    min_samples: int,
) -> dict[object, float]:
    """Mean log-speedup of rows where only ``var`` deviates from default."""
    values = table.column(var)
    others_default = default_masks[var]
    out: dict[object, float] = {}
    for value in sorted(
        set(v.item() if isinstance(v, np.generic) else v for v in values),
        key=repr,
    ):
        if value == _default_value(var):
            continue
        mask = others_default & np.asarray([v == value for v in values])
        if mask.sum() >= min_samples:
            out[value] = float(log_speedup[mask].mean())
    return out


def interaction_matrix(
    table: Table, min_samples: int = 3
) -> list[PairInteraction]:
    """Pairwise interaction strengths over the dataset.

    Requires a dataset that contains marginal (one-variable-off-default)
    and joint (two-variables-off-default) rows — any grid at ``medium`` or
    ``full`` scale qualifies.
    """
    missing = [c for c in _VARIABLES + ("speedup",) if c not in table]
    if missing:
        raise SchemaError(f"interaction_matrix: missing columns {missing}")
    log_speedup = np.log(np.asarray(table.column("speedup"), dtype=float))

    # For each variable: mask of rows where every OTHER variable is at its
    # default (the marginal-effect rows for that variable).
    at_default = {
        var: np.asarray(
            [v == _default_value(var) for v in table.column(var)]
        )
        for var in _VARIABLES
    }
    others_default = {
        var: np.logical_and.reduce(
            [at_default[o] for o in _VARIABLES if o != var]
        )
        for var in _VARIABLES
    }

    marginals = {
        var: _marginal_effects(
            table, var, log_speedup, others_default, min_samples
        )
        for var in _VARIABLES
    }

    out: list[PairInteraction] = []
    for var_a, var_b in combinations(_VARIABLES, 2):
        pair_default = np.logical_and.reduce(
            [at_default[o] for o in _VARIABLES if o not in (var_a, var_b)]
        )
        col_a = table.column(var_a)
        col_b = table.column(var_b)

        diffs: list[tuple[float, int, object, object]] = []
        for a_val, m_a in marginals[var_a].items():
            mask_a = np.asarray([v == a_val for v in col_a])
            for b_val, m_b in marginals[var_b].items():
                mask = (
                    pair_default
                    & mask_a
                    & np.asarray([v == b_val for v in col_b])
                )
                n = int(mask.sum())
                if n < min_samples:
                    continue
                joint = float(log_speedup[mask].mean())
                diffs.append((joint - m_a - m_b, n, a_val, b_val))
        if not diffs:
            continue
        weights = np.array([n for _, n, _, _ in diffs], dtype=float)
        values = np.array([d for d, _, _, _ in diffs])
        strength = float(np.abs(values) @ weights / weights.sum())
        best = max(diffs, key=lambda d: d[0])
        worst = min(diffs, key=lambda d: d[0])
        out.append(
            PairInteraction(
                var_a=var_a,
                var_b=var_b,
                strength=strength,
                best_synergy=(str(best[2]), str(best[3])),
                best_synergy_value=best[0],
                worst_conflict=(str(worst[2]), str(worst[3])),
                worst_conflict_value=worst[0],
            )
        )
    out.sort(key=lambda p: -p.strength)
    return out


def strongest_interactions(
    table: Table, k: int = 5, min_samples: int = 3
) -> list[PairInteraction]:
    """The ``k`` strongest variable pairs (for pruning-order decisions)."""
    return interaction_matrix(table, min_samples=min_samples)[:k]
