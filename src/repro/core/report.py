"""One-shot study report generation.

Assembles everything the paper's evaluation section reports — headline
speedup statistics, Wilcoxon consistency, per-application ranges,
influence heat maps, recommendations, worst trends — into a single
Markdown document with SVG figures alongside, from one enriched dataset.

This is the "I ran a sweep, give me the paper" entry point:

    >>> from repro.core.report import generate_report
    >>> generate_report(dataset, "report/")   # doctest: +SKIP
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.dataset import run_columns, validate_dataset
from repro.core.influence import (
    influence_by_application,
    influence_by_arch_application,
    influence_by_architecture,
    linear_fit_quality,
)
from repro.core.labeling import label_optimal
from repro.core.recommend import best_variable_values, worst_trends
from repro.errors import SchemaError
from repro.frame.table import Table
from repro.stats.bootstrap import bootstrap_ci
from repro.stats.wilcoxon import wilcoxon_signed_rank
from repro.viz.heatmap import influence_heatmap

__all__ = ["generate_report"]


def _per_setting_maxima(dataset: Table) -> dict[str, np.ndarray]:
    out: dict[str, list[float]] = {}
    for (arch, _a, _i, _t), sub in dataset.group_by(
        ["arch", "app", "input_size", "num_threads"]
    ):
        out.setdefault(str(arch), []).append(
            float(np.max(np.asarray(sub["speedup"], float)))
        )
    return {k: np.asarray(v) for k, v in out.items()}


def _headline_section(dataset: Table) -> str:
    lines = ["## Headline speedup statistics", ""]
    lines.append("| architecture | best-speedup range | median | 95% CI |")
    lines.append("|---|---|---|---|")
    for arch, maxima in sorted(_per_setting_maxima(dataset).items()):
        ci = bootstrap_ci(maxima, np.median, seed=0)
        lines.append(
            f"| {arch} | {maxima.min():.3f} - {maxima.max():.3f} | "
            f"{ci.estimate:.3f} | [{ci.low:.3f}, {ci.high:.3f}] |"
        )
    lines.append("")
    return "\n".join(lines)


def _consistency_section(dataset: Table) -> str:
    cols = run_columns(dataset)
    if len(cols) < 2:
        return ""
    lines = ["## Run-to-run consistency (Wilcoxon signed-rank)", ""]
    lines.append("| architecture | pair | p-value | verdict |")
    lines.append("|---|---|---|---|")
    for (arch,), sub in dataset.group_by("arch"):
        runs = [np.asarray(sub[c], float) for c in cols]
        for i in range(len(runs) - 1):
            res = wilcoxon_signed_rank(runs[i], runs[i + 1])
            verdict = "noisy" if res.significant() else "consistent"
            lines.append(
                f"| {arch} | R{i},R{i + 1} | {res.pvalue:.3g} | {verdict} |"
            )
    lines.append("")
    return "\n".join(lines)


def _per_app_section(dataset: Table) -> str:
    lines = ["## Best speedup per application", ""]
    lines.append("| application | range across architectures |")
    lines.append("|---|---|")
    per_app: dict[str, list[float]] = {}
    for (arch, app), sub in dataset.group_by(["arch", "app"]):
        best = 0.0
        for _key, g in sub.group_by(["input_size", "num_threads"]):
            best = max(best, float(np.max(np.asarray(g["speedup"], float))))
        per_app.setdefault(str(app), []).append(best)
    for app in sorted(per_app):
        values = per_app[app]
        lines.append(f"| {app} | {min(values):.3f} - {max(values):.3f} |")
    lines.append("")
    return "\n".join(lines)


def _influence_section(dataset: Table, out: Path) -> str:
    lines = ["## Feature influence", ""]
    r2 = linear_fit_quality(dataset)
    lines.append(
        f"OLS fit of runtime on the naive-encoded features: R² = {r2:.3f}"
        " — the poor linear fit that motivates the classification"
        " reformulation."
    )
    lines.append("")
    for stem, inf in (
        ("influence_by_application", influence_by_application(dataset)),
        ("influence_by_architecture", influence_by_architecture(dataset)),
        ("influence_by_arch_application",
         influence_by_arch_application(dataset)),
    ):
        influence_heatmap(inf).save(str(out / f"{stem}.svg"))
        lines.append(
            f"![{stem}]({stem}.svg) — mean accuracy "
            f"{inf.mean_accuracy():.2f}"
        )
        lines.append("")
    return "\n".join(lines)


def _recommendation_section(dataset: Table) -> str:
    lines = ["## Recommendations", ""]
    for rec in best_variable_values(dataset):
        if rec.variable == "defaults":
            lines.append(
                f"- **{rec.app} / {rec.arch}**: defaults already good "
                f"(best {rec.best_speedup:.2f}x)"
            )
        else:
            lines.append(
                f"- **{rec.app} / {rec.arch}**: `{rec.variable}` = "
                f"{' / '.join(rec.values)} (best {rec.best_speedup:.2f}x)"
            )
    lines.append("")
    lines.append("### Worst trends")
    lines.append("")
    for trend in worst_trends(dataset):
        lines.append(
            f"- avoid `{trend.variable}={trend.value}`: "
            f"{trend.lift:.1f}x over-represented among the worst runs "
            f"(mean speedup {trend.mean_speedup:.3f}x)"
        )
    lines.append("")
    return "\n".join(lines)


def generate_report(dataset: Table, directory: str | Path,
                    title: str = "LLVM/OpenMP tuning study") -> Path:
    """Write ``REPORT.md`` (+ SVG figures) for an enriched dataset.

    The dataset must carry speedups (``enrich_with_speedup``); the
    optimal label is added here if missing.  Returns the report path.
    """
    if "speedup" not in dataset:
        raise SchemaError("generate_report needs an enriched dataset "
                          "(run enrich_with_speedup first)")
    dataset = validate_dataset(dataset)
    if "optimal" not in dataset:
        dataset = label_optimal(dataset)
    out = Path(directory)
    out.mkdir(parents=True, exist_ok=True)

    archs = ", ".join(str(a) for a in dataset.unique("arch"))
    apps = dataset.unique("app")
    header = "\n".join(
        [
            f"# {title}",
            "",
            f"{dataset.num_rows} samples | architectures: {archs} | "
            f"{len(apps)} applications",
            "",
        ]
    )
    sections = [
        header,
        _headline_section(dataset),
        _consistency_section(dataset),
        _per_app_section(dataset),
        _influence_section(dataset, out),
        _recommendation_section(dataset),
    ]
    path = out / "REPORT.md"
    path.write_text("\n".join(s for s in sections if s), encoding="utf-8")
    return path
