"""The swept environment-variable space (paper Sec. III).

Defines, for each variable, the value set the paper explores — including
the per-architecture ``KMP_ALIGN_ALLOC`` domains (cache-line-dependent) and
the exclusions the paper documents (no ``threads``/``numa_domains`` places,
no ``serial`` library mode, three ``KMP_BLOCKTIME`` points).

Grid scales:

- ``"full"`` — the complete cartesian product (4,608 configs on A64FX,
  9,216 on the x86 machines), the paper's exhaustive exploration,
- ``"medium"`` — a deterministic stratified subsample of the full product
  plus all one-factor-at-a-time (OFAT) points; a few hundred configs,
- ``"small"`` — OFAT plus a handful of random points; tens of configs,
  meant for tests and quick iteration.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, replace
from itertools import product

import numpy as np

from repro.arch.topology import MachineTopology
from repro.errors import ConfigError, UnknownVariable
from repro.runtime.icv import UNSET, EnvConfig

__all__ = ["VariableSpec", "SWEPT_VARIABLES", "EnvSpace"]


@dataclass(frozen=True)
class VariableSpec:
    """One swept environment variable."""

    env_name: str
    #: Corresponding :class:`~repro.runtime.icv.EnvConfig` field.
    field: str
    #: Values swept on machines with 64-byte cache lines (x86).
    values_x86: tuple
    #: Values swept on machines with 256-byte lines (A64FX); None = same.
    values_largeline: tuple | None = None

    def values(self, machine: MachineTopology) -> tuple:
        """The sweep domain on ``machine``."""
        if self.values_largeline is not None and machine.cache_line_bytes >= 256:
            return self.values_largeline
        return self.values_x86

    def default(self) -> object:
        """The unset/default sweep value for this variable."""
        return None if self.field == "align_alloc" else UNSET


#: The seven swept variables, in the paper's presentation order.
#: ``OMP_NUM_THREADS`` is handled separately (per-setting, Sec. IV-B).
SWEPT_VARIABLES: tuple[VariableSpec, ...] = (
    # Value order is deliberately monotone in "hardware spread" so the
    # paper's naive ordinal encoding can express each variable's effect:
    # master (worst) ... spread (widest) for binding; unbound ... widest
    # place for places.
    VariableSpec(
        "OMP_PLACES",
        "places",
        (UNSET, "cores", "ll_caches", "sockets"),
    ),
    VariableSpec(
        "OMP_PROC_BIND",
        "proc_bind",
        ("master", "false", UNSET, "close", "true", "spread"),
    ),
    VariableSpec(
        "OMP_SCHEDULE",
        "schedule",
        (UNSET, "dynamic", "guided", "auto"),
        # 'static' is the default, so UNSET covers it; sweeping the literal
        # value would duplicate a grid point.
    ),
    VariableSpec("KMP_LIBRARY", "library", (UNSET, "turnaround")),
    VariableSpec("KMP_BLOCKTIME", "blocktime", (UNSET, "0", "infinite")),
    VariableSpec(
        "KMP_FORCE_REDUCTION",
        "force_reduction",
        (UNSET, "tree", "critical", "atomic"),
    ),
    VariableSpec(
        "KMP_ALIGN_ALLOC",
        "align_alloc",
        (None, 128, 256, 512),
        values_largeline=(None, 512),
    ),
)


def extended_variables() -> tuple[VariableSpec, ...]:
    """The sweep variables with ``OMP_PLACES=numa_domains`` included.

    The paper omits ``numa_domains`` because it requires hwloc on the
    real runtime and defers it to future work; our topology model knows
    NUMA domains natively, so the extension space simply adds the value.
    """
    out = []
    for var in SWEPT_VARIABLES:
        if var.env_name == "OMP_PLACES":
            out.append(
                VariableSpec(
                    var.env_name,
                    var.field,
                    var.values_x86 + ("numa_domains",),
                )
            )
        else:
            out.append(var)
    return tuple(out)


def wait_policy_variables() -> tuple[VariableSpec, ...]:
    """Replace KMP_LIBRARY + KMP_BLOCKTIME with one OMP_WAIT_POLICY knob.

    Sec. V-3: since ``OMP_WAIT_POLICY`` is derived from both ``KMP_*``
    variables, "one may choose to optionally only tune this variable
    instead".  ``active`` maps onto an infinite blocktime, ``passive``
    onto blocktime 0, unset keeps the defaults — a 3-value knob replacing
    a 2x3 sub-grid.
    """
    out = []
    for var in SWEPT_VARIABLES:
        if var.env_name == "KMP_LIBRARY":
            continue
        if var.env_name == "KMP_BLOCKTIME":
            out.append(
                VariableSpec(
                    "OMP_WAIT_POLICY",
                    "blocktime",
                    (UNSET, "infinite", "0"),
                )
            )
        else:
            out.append(var)
    return tuple(out)


def chunked_schedule_variables() -> tuple[VariableSpec, ...]:
    """The sweep variables with chunk sizes added to ``OMP_SCHEDULE``.

    Sec. III-3: the paper considers all schedule kinds "but no chunk
    sizes".  This extension sweeps representative chunks per kind, which
    rescues ``dynamic`` on fine-grained loops (the dispatch-bound tail of
    the full-grid violins).
    """
    out = []
    for var in SWEPT_VARIABLES:
        if var.env_name == "OMP_SCHEDULE":
            out.append(
                VariableSpec(
                    var.env_name,
                    var.field,
                    (
                        UNSET,
                        "static,16",
                        "dynamic",
                        "dynamic,64",
                        "dynamic,1024",
                        "guided",
                        "guided,64",
                        "auto",
                    ),
                )
            )
        else:
            out.append(var)
    return tuple(out)


class EnvSpace:
    """Enumerable configuration space over :data:`SWEPT_VARIABLES`."""

    SCALES = ("full", "medium", "small", "twofactor")

    def __init__(self, variables: Sequence[VariableSpec] = SWEPT_VARIABLES):
        if not variables:
            raise ConfigError("EnvSpace needs at least one variable")
        names = [v.env_name for v in variables]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate variables in space: {names}")
        self.variables = tuple(variables)

    def variable(self, env_name: str) -> VariableSpec:
        """Look up a variable by its environment name."""
        for v in self.variables:
            if v.env_name == env_name:
                return v
        raise UnknownVariable(
            f"{env_name!r} not in space; have {[v.env_name for v in self.variables]}"
        )

    def size(self, machine: MachineTopology) -> int:
        """Full-grid cardinality on ``machine``."""
        n = 1
        for v in self.variables:
            n *= len(v.values(machine))
        return n

    def default_config(self) -> EnvConfig:
        """The all-unset configuration."""
        return EnvConfig()

    # ------------------------------------------------------------------
    def full_grid(self, machine: MachineTopology) -> Iterator[EnvConfig]:
        """The complete cartesian product, deterministic order."""
        domains = [v.values(machine) for v in self.variables]
        fields = [v.field for v in self.variables]
        for combo in product(*domains):
            yield EnvConfig(**dict(zip(fields, combo)))

    def ofat_grid(self, machine: MachineTopology) -> list[EnvConfig]:
        """One-factor-at-a-time points: default plus each single change."""
        out = [self.default_config()]
        for v in self.variables:
            for value in v.values(machine):
                if value == v.default():
                    continue
                out.append(replace(self.default_config(), **{v.field: value}))
        return out

    def two_factor_grid(self, machine: MachineTopology) -> list[EnvConfig]:
        """OFAT plus every pair of simultaneous single-variable deviations.

        The minimal design for estimating pairwise interactions: marginal
        effects come from the OFAT points, joint effects from the pair
        points, everything else held at default.
        """
        out = self.ofat_grid(machine)
        n_vars = len(self.variables)
        for i in range(n_vars):
            var_a = self.variables[i]
            for j in range(i + 1, n_vars):
                var_b = self.variables[j]
                for a_val in var_a.values(machine):
                    if a_val == var_a.default():
                        continue
                    for b_val in var_b.values(machine):
                        if b_val == var_b.default():
                            continue
                        out.append(
                            replace(
                                self.default_config(),
                                **{var_a.field: a_val, var_b.field: b_val},
                            )
                        )
        return out

    def random_grid(
        self, machine: MachineTopology, n: int, seed: int = 0
    ) -> list[EnvConfig]:
        """``n`` random grid points (uniform over the full product)."""
        rng = np.random.default_rng(seed)
        domains = [v.values(machine) for v in self.variables]
        fields = [v.field for v in self.variables]
        out = []
        for _ in range(n):
            combo = {
                f: d[int(rng.integers(len(d)))] for f, d in zip(fields, domains)
            }
            out.append(EnvConfig(**combo))
        return out

    def grid(
        self, machine: MachineTopology, scale: str = "full", seed: int = 0
    ) -> list[EnvConfig]:
        """Deduplicated configuration list at the requested scale."""
        if scale not in self.SCALES:
            raise ConfigError(f"unknown scale {scale!r}; have {self.SCALES}")
        if scale == "full":
            configs = list(self.full_grid(machine))
        elif scale == "twofactor":
            configs = self.two_factor_grid(machine)
        elif scale == "medium":
            configs = self.ofat_grid(machine) + self.random_grid(
                machine, 220, seed=seed
            )
        else:
            configs = self.ofat_grid(machine) + self.random_grid(
                machine, 28, seed=seed
            )
        seen: set[tuple] = set()
        unique: list[EnvConfig] = []
        for c in configs:
            key = c.key()
            if key not in seen:
                seen.add(key)
                unique.append(c)
        return unique
