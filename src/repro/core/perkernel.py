"""Per-region ("per-kernel") tuning — lifting the paper's restriction.

Sec. IV: configurations are chosen "not on a 'per-kernel', i.e., parallel
region, basis but for the entire run.  This does not only reduce the
search space considerably, but also reflects the fact that users cannot
practically tune and modify each kernel in isolation" — explicitly *not*
a conceptual requirement.  The related work (Parasyris et al.) tunes
per-kernel via record-and-replay.

This module quantifies what the practicality restriction costs: each
parallel region is tuned in isolation (its own hill climb over the space)
and the per-region optimum is compared against the whole-application
optimum.  Per-region tuning can only be at least as good; the *gap*
between the two is the price of the paper's per-application design.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.topology import MachineTopology
from repro.core.envspace import EnvSpace
from repro.core.pruning import hill_climb
from repro.errors import WorkloadError
from repro.runtime.executor import RuntimeExecutor
from repro.runtime.icv import EnvConfig
from repro.runtime.program import Program, SerialPhase

__all__ = ["RegionTuning", "PerKernelResult", "per_kernel_tune"]


@dataclass(frozen=True)
class RegionTuning:
    """Tuning outcome for one parallel region."""

    region: str
    default_seconds: float
    tuned_seconds: float
    best_config: EnvConfig

    @property
    def speedup(self) -> float:
        """Improvement of this region in isolation."""
        return self.default_seconds / self.tuned_seconds


@dataclass(frozen=True)
class PerKernelResult:
    """Whole-app vs per-kernel tuning comparison."""

    program: str
    default_seconds: float
    whole_app_seconds: float
    whole_app_config: EnvConfig
    per_kernel_seconds: float
    regions: tuple[RegionTuning, ...]
    evaluations: int

    @property
    def whole_app_speedup(self) -> float:
        """Speedup of one configuration for the entire run (the paper's
        regime)."""
        return self.default_seconds / self.whole_app_seconds

    @property
    def per_kernel_speedup(self) -> float:
        """Speedup when every region gets its own configuration."""
        return self.default_seconds / self.per_kernel_seconds

    @property
    def per_kernel_gain(self) -> float:
        """Extra factor per-kernel tuning buys over whole-app tuning."""
        return self.whole_app_seconds / self.per_kernel_seconds


def _region_program(program: Program, index: int) -> Program:
    """A single-region program around phase ``index`` (for isolation)."""
    phase = program.phases[index]
    return Program(name=f"{program.name}#{phase.name}", phases=(phase,))


def per_kernel_tune(
    program: Program,
    machine: MachineTopology,
    space: EnvSpace | None = None,
    num_threads: int | None = None,
    restarts: int = 1,
    seed: int = 0,
) -> PerKernelResult:
    """Tune each parallel region independently and compare regimes.

    The per-kernel total keeps serial phases at their whole-app-tuned
    cost (a serial phase has no knobs of its own beyond the spin
    behaviour of the surrounding config, which follows its neighbouring
    region's configuration in a real per-kernel deployment).
    """
    space = space or EnvSpace()
    if not program.parallel_regions:
        raise WorkloadError(f"program {program.name!r} has no parallel regions")

    evaluations = 0
    # Whole-application regime (the paper's).
    whole = hill_climb(
        program, machine, space, num_threads=num_threads,
        restarts=restarts, seed=seed,
    )
    evaluations += whole.evaluations

    # Per-kernel regime: isolate each parallel phase.
    default_exec = RuntimeExecutor(
        machine,
        space.default_config() if num_threads is None
        else space.default_config().with_threads(num_threads),
    )
    default_costs = default_exec.phase_costs(program)

    regions: list[RegionTuning] = []
    per_kernel_total = 0.0
    whole_exec = RuntimeExecutor(
        machine,
        whole.best_config if num_threads is None
        else whole.best_config.with_threads(num_threads),
    )
    whole_costs = whole_exec.phase_costs(program)

    for index, phase in enumerate(program.phases):
        if isinstance(phase, SerialPhase):
            per_kernel_total += whole_costs[index].seconds
            continue
        sub = _region_program(program, index)
        result = hill_climb(
            sub, machine, space, num_threads=num_threads,
            restarts=restarts, seed=seed,
        )
        evaluations += result.evaluations
        # Never accept a per-region config worse than the whole-app one
        # for that region (a real deployment would keep the better of the
        # two per kernel).
        tuned = min(result.best_runtime, whole_costs[index].seconds)
        per_kernel_total += tuned
        regions.append(
            RegionTuning(
                region=phase.name,
                default_seconds=default_costs[index].seconds,
                tuned_seconds=tuned,
                best_config=result.best_config,
            )
        )

    return PerKernelResult(
        program=program.name,
        default_seconds=whole.start_runtime,
        whole_app_seconds=whole.best_runtime,
        whole_app_config=whole.best_config,
        per_kernel_seconds=per_kernel_total,
        regions=tuple(regions),
        evaluations=evaluations,
    )
