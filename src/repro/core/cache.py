"""Persistent, content-addressed cache of sweep batches.

A sweep's unit of work is one (workload, setting) batch — the full
configuration grid at one ``(app, input_size, num_threads)`` point
(:class:`~repro.core.sweep.BatchSpec`).  This module stores each batch's
records on disk under a key that is a stable SHA-256 over everything the
batch's contents depend on:

1. **plan identity** — ``arch``, ``scale``, ``repetitions``, ``seed``,
   ``fidelity``.  ``workload_names`` and ``inputs_limit`` are deliberately
   *excluded*: they select which batches a sweep runs, not what any batch
   contains, so a capped or subset sweep warms the cache for the full one.
2. **grid fingerprint** — a digest of every configuration's identity key,
   in grid order.  Changing the environment space (extensions, chunked
   schedules, a different scale's subsample) changes the fingerprint and
   therefore invalidates nothing — old entries simply stop matching.
3. **machine fingerprint** — a digest of the architecture's model tables:
   every :class:`~repro.arch.topology.MachineTopology` field plus the
   per-arch :class:`~repro.runtime.costs.RuntimeCosts` calibration.
   Editing the machine table (a clock, a NUMA penalty, a futex latency)
   changes the records a batch would produce, so it must miss.
4. **batch identity** — ``app``, ``suite``, ``input_size``,
   ``num_threads``.

Entries are one JSON file per batch named ``<key>.json``, written
atomically (temp file + rename) so a killed sweep never leaves a torn
entry; unreadable or version-mismatched files are treated as misses and
rewritten.  Because runtimes round-trip JSON exactly (``repr``-based
float serialization), cached records are bit-identical to freshly
simulated ones.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from collections.abc import Sequence
from pathlib import Path

from repro.arch.topology import MachineTopology
from repro.core.sweep import BatchSpec, SweepPlan, SweepRecord
from repro.errors import CacheError, UnknownMachine
from repro.runtime.costs import get_costs
from repro.runtime.icv import EnvConfig

__all__ = ["CACHE_FORMAT_VERSION", "SweepCache", "batch_key",
           "grid_fingerprint", "machine_fingerprint"]

#: Bump when the on-disk payload layout or key scheme changes; old entries
#: become misses.  v2: batch keys gained the machine fingerprint.
#: v3: observation noise re-keyed from raw EnvConfig identity to the
#: resolved execution signature (ICV-equivalent configs now observe
#: identical runtimes), so v2 record contents are stale.
CACHE_FORMAT_VERSION = 3

_CONFIG_FIELDS = (
    "num_threads",
    "places",
    "proc_bind",
    "schedule",
    "library",
    "blocktime",
    "force_reduction",
    "align_alloc",
)


def grid_fingerprint(configs: Sequence[EnvConfig]) -> str:
    """Stable digest of a configuration grid's identity, order included."""
    h = hashlib.sha256()
    for config in configs:
        h.update(repr(config.key()).encode("utf-8"))
    return h.hexdigest()


def machine_fingerprint(machine: MachineTopology) -> str:
    """Stable digest of the machine model a sweep runs against.

    Covers every declared topology field plus the architecture's runtime
    cost table, so editing either invalidates cached batches.  Unregistered
    (synthetic test) machines simply contribute no cost-table component.
    """
    h = hashlib.sha256()
    for f in dataclasses.fields(machine):
        h.update(f"{f.name}={getattr(machine, f.name)!r};".encode("utf-8"))
    try:
        costs = get_costs(machine.name)
    except UnknownMachine:
        costs = None
    if costs is not None:
        for f in dataclasses.fields(costs):
            h.update(f"{f.name}={getattr(costs, f.name)!r};".encode("utf-8"))
    return h.hexdigest()


def batch_key(
    plan: SweepPlan, grid_fp: str, machine_fp: str, batch: BatchSpec
) -> str:
    """The content address of one batch (see the module docstring)."""
    identity = (
        CACHE_FORMAT_VERSION,
        plan.arch,
        plan.scale,
        plan.repetitions,
        plan.seed,
        plan.fidelity,
        grid_fp,
        machine_fp,
        batch.app,
        batch.suite,
        batch.input_size,
        batch.nthreads,
    )
    return hashlib.sha256(repr(identity).encode("utf-8")).hexdigest()


def _record_to_dict(record: SweepRecord) -> dict:
    return {
        "arch": record.arch,
        "app": record.app,
        "suite": record.suite,
        "input_size": record.input_size,
        "num_threads": record.num_threads,
        "config": {f: getattr(record.config, f) for f in _CONFIG_FIELDS},
        "runtimes": list(record.runtimes),
    }


def _record_from_dict(payload: dict) -> SweepRecord:
    try:
        return SweepRecord(
            arch=payload["arch"],
            app=payload["app"],
            suite=payload["suite"],
            input_size=payload["input_size"],
            num_threads=payload["num_threads"],
            config=EnvConfig(**payload["config"]),
            runtimes=tuple(payload["runtimes"]),
        )
    except (KeyError, TypeError) as exc:
        raise CacheError(f"malformed cache record: {exc}") from exc


class SweepCache:
    """On-disk batch cache rooted at a directory.

    Thread-model: a single writer (the orchestrating process) and any
    number of readers.  Writes are atomic renames; concurrent sweeps over
    one directory at worst recompute a batch and overwrite it with
    identical content.
    """

    #: Re-exported so callers holding a cache need not import the module.
    grid_fingerprint = staticmethod(grid_fingerprint)
    machine_fingerprint = staticmethod(machine_fingerprint)
    batch_key = staticmethod(batch_key)

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> list[SweepRecord] | None:
        """The cached records for ``key``, or None (counts as a miss)."""
        try:
            payload = json.loads(
                self._path(key).read_text(encoding="utf-8")
            )
        except (OSError, json.JSONDecodeError):
            # Missing, unreadable, or torn entry: recompute and overwrite.
            self.misses += 1
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("version") != CACHE_FORMAT_VERSION
            or "records" not in payload
        ):
            self.misses += 1
            return None
        try:
            records = [_record_from_dict(d) for d in payload["records"]]
        except CacheError:
            self.misses += 1
            return None
        self.hits += 1
        return records

    def put(self, key: str, records: Sequence[SweepRecord]) -> None:
        """Persist one batch atomically under ``key``."""
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "key": key,
            "records": [_record_to_dict(r) for r in records],
        }
        path = self._path(key)
        tmp = path.with_name(path.name + f".tmp{os.getpid()}")
        tmp.write_text(json.dumps(payload), encoding="utf-8")
        os.replace(tmp, path)
        self.writes += 1

    def __len__(self) -> int:
        """Number of batch entries currently on disk."""
        return sum(1 for _ in self.root.glob("*.json"))

    def __repr__(self) -> str:
        return (
            f"SweepCache({str(self.root)!r}: {len(self)} entries, "
            f"{self.hits} hits / {self.misses} misses this session)"
        )
