"""Persistent, content-addressed cache of sweep batches.

A sweep's unit of work is one (workload, setting) batch — the full
configuration grid at one ``(app, input_size, num_threads)`` point
(:class:`~repro.core.sweep.BatchSpec`).  This module stores each batch's
records on disk under a key that is a stable SHA-256 over everything the
batch's contents depend on:

1. **plan identity** — ``arch``, ``scale``, ``repetitions``, ``seed``,
   ``fidelity``.  ``workload_names`` and ``inputs_limit`` are deliberately
   *excluded*: they select which batches a sweep runs, not what any batch
   contains, so a capped or subset sweep warms the cache for the full one.
2. **grid fingerprint** — a digest of every configuration's identity key,
   in grid order.  Changing the environment space (extensions, chunked
   schedules, a different scale's subsample) changes the fingerprint and
   therefore invalidates nothing — old entries simply stop matching.
3. **machine fingerprint** — a digest of the architecture's model tables:
   every :class:`~repro.arch.topology.MachineTopology` field plus the
   per-arch :class:`~repro.runtime.costs.RuntimeCosts` calibration.
   Editing the machine table (a clock, a NUMA penalty, a futex latency)
   changes the records a batch would produce, so it must miss.
4. **batch identity** — ``app``, ``suite``, ``input_size``,
   ``num_threads``.

Entries are one JSON file per batch named ``<key>.json``, written
atomically (temp file + rename, optionally fsync'd) so a killed sweep
never leaves a torn entry.  Since format v5 the payload is a **packed
columnar frame** (:class:`~repro.frame.columns.RecordBlock` — flat typed
column arrays plus a string-interning table, see ``docs/COLUMNAR.md``)
instead of one JSON object per record: identity strings are stored once
each, and the entry is a fraction of the v4 size.  Every payload embeds
a SHA-256 over the canonical serialization of its frame, verified on
read: an entry that fails to parse, fails its checksum, or holds a
malformed frame is **quarantined** — moved aside to ``<key>.corrupt``
and counted in :attr:`SweepCache.stats` — never silently re-simulated,
so disk corruption is observable (and surfaces in the sweep's
:class:`~repro.resilience.report.FailureReport`).  A version-mismatched
entry (v4 and older) is a legitimate miss, not corruption.  Because
runtimes round-trip JSON exactly (``repr``-based float serialization),
cached records are bit-identical to freshly simulated ones.

Keys additionally map onto **prefix partitions**: the first
:data:`~repro.resilience.sharding.PARTITION_PREFIX_HEX` hex digits of a
key select one of :attr:`SweepCache.n_partitions` partitions, the same
function the sharded sweep uses to pick a batch's home shard.  A shard
therefore touches a stable subset of partitions, per-partition stats
show where entries and corruption live, and a corrupt entry is charged
to the partition that owns it — never to another shard's.  See
``docs/SWEEP_CACHE.md``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import re
from collections.abc import Sequence
from pathlib import Path

from repro.arch.topology import MachineTopology
from repro.core.sweep import (
    BatchSpec,
    SweepPlan,
    SweepRecord,
    sweep_block_to_records,
    sweep_records_to_block,
)
from repro.errors import CacheError, ConfigError, FrameError, UnknownMachine
from repro.frame.columns import RecordBlock
from repro.resilience.sharding import partition_for_key
from repro.runtime.costs import get_costs
from repro.runtime.icv import EnvConfig

__all__ = ["CACHE_FORMAT_VERSION", "CACHE_KEY_FIELDS",
           "CACHE_KEY_EXCLUDED", "SweepCache", "batch_key",
           "grid_fingerprint", "key_material", "machine_fingerprint"]

#: Bump when the on-disk payload layout or key scheme changes; old entries
#: become misses.  v2: batch keys gained the machine fingerprint.
#: v3: observation noise re-keyed from raw EnvConfig identity to the
#: resolved execution signature (ICV-equivalent configs now observe
#: identical runtimes), so v2 record contents are stale.
#: v4: payloads carry a content checksum (``sha256`` over the canonical
#: records serialization), verified on every read.
#: v5: payloads store one packed columnar frame (``frame``) instead of a
#: per-record dict list; the checksum now covers the canonical frame
#: serialization.  v4 entries read as plain misses.
CACHE_FORMAT_VERSION = 5

#: The named slots of a batch key's identity tuple, in hash order.
#: ``plan.*`` names are :class:`~repro.core.sweep.SweepPlan` fields,
#: ``batch.*`` names are :class:`~repro.core.sweep.BatchSpec` fields; the
#: two fingerprints digest the configuration grid and the machine model
#: (see the module docstring).  :func:`key_material` builds the tuple by
#: these names and the dependency lint plane (KEY003) proves every
#: result-altering sweep input lands in one of the slots.
CACHE_KEY_FIELDS = (
    "format_version",
    "plan.arch",
    "plan.scale",
    "plan.repetitions",
    "plan.seed",
    "plan.fidelity",
    "grid_fingerprint",
    "machine_fingerprint",
    "batch.app",
    "batch.suite",
    "batch.input_size",
    "batch.nthreads",
)

#: Plan fields deliberately *outside* the key, with the reason — the
#: KEY003 pass accepts reads of these without a key slot, so every
#: exclusion is a reviewed decision rather than an oversight.
CACHE_KEY_EXCLUDED = {
    "plan.workload_names": (
        "selects which batches run, not what any batch contains; a "
        "subset sweep warms the cache for the full one"
    ),
    "plan.inputs_limit": (
        "caps batch selection only; batch contents are keyed by the "
        "batch identity itself"
    ),
    "plan.prune": (
        "equivalence pruning is proven record-identical to exhaustive "
        "execution (equivalence-pruning-parity), so pruned and unpruned "
        "sweeps share entries"
    ),
}

_CONFIG_FIELDS = (
    "num_threads",
    "places",
    "proc_bind",
    "schedule",
    "library",
    "blocktime",
    "force_reduction",
    "align_alloc",
)


#: A live entry's file name: the SHA-256 content address plus ``.json``.
_ENTRY_NAME_RE = re.compile(r"\A[0-9a-f]{64}\.json\Z")


def grid_fingerprint(configs: Sequence[EnvConfig]) -> str:
    """Stable digest of a configuration grid's identity, order included."""
    h = hashlib.sha256()
    for config in configs:
        h.update(repr(config.key()).encode("utf-8"))
    return h.hexdigest()


def machine_fingerprint(machine: MachineTopology) -> str:
    """Stable digest of the machine model a sweep runs against.

    Covers every declared topology field plus the architecture's runtime
    cost table, so editing either invalidates cached batches.  Unregistered
    (synthetic test) machines simply contribute no cost-table component.
    """
    h = hashlib.sha256()
    for f in dataclasses.fields(machine):
        h.update(f"{f.name}={getattr(machine, f.name)!r};".encode("utf-8"))
    try:
        costs = get_costs(machine.name)
    except UnknownMachine:
        costs = None
    if costs is not None:
        for f in dataclasses.fields(costs):
            h.update(f"{f.name}={getattr(costs, f.name)!r};".encode("utf-8"))
    return h.hexdigest()


def key_material(
    plan: SweepPlan, grid_fp: str, machine_fp: str, batch: BatchSpec
) -> dict[str, object]:
    """The full key material of one batch, by slot name.

    Maps :data:`CACHE_KEY_FIELDS` onto the values :func:`batch_key`
    hashes, in hash order (``dict`` preserves insertion order).  The
    introspection the dependency lint plane and
    :meth:`SweepCache.key_fields` rest on.
    """
    identity = (
        CACHE_FORMAT_VERSION,
        plan.arch,
        plan.scale,
        plan.repetitions,
        plan.seed,
        plan.fidelity,
        grid_fp,
        machine_fp,
        batch.app,
        batch.suite,
        batch.input_size,
        batch.nthreads,
    )
    return dict(zip(CACHE_KEY_FIELDS, identity, strict=True))


def batch_key(
    plan: SweepPlan, grid_fp: str, machine_fp: str, batch: BatchSpec
) -> str:
    """The content address of one batch (see the module docstring)."""
    identity = tuple(key_material(plan, grid_fp, machine_fp, batch).values())
    return hashlib.sha256(repr(identity).encode("utf-8")).hexdigest()


def _record_to_dict(record: SweepRecord) -> dict:
    """Legacy (v4) per-record dict codec.

    No longer the storage format; kept as the reference representation
    the ``columnar-pipeline-parity`` check and the record-pipeline
    benchmarks compare the packed frame path against.
    """
    return {
        "arch": record.arch,
        "app": record.app,
        "suite": record.suite,
        "input_size": record.input_size,
        "num_threads": record.num_threads,
        "config": {f: getattr(record.config, f) for f in _CONFIG_FIELDS},
        "runtimes": list(record.runtimes),
    }


def _canonical_payload(payload: object) -> bytes:
    """The byte string the content checksum covers.

    Canonical JSON (sorted keys, no whitespace) of the frame payload:
    identical whether computed from the freshly packed frame at put time
    or from the parsed payload at get time, because JSON floats
    round-trip via ``repr`` exactly.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def _record_from_dict(payload: dict) -> SweepRecord:
    """Inverse of :func:`_record_to_dict` (legacy v4 reference codec)."""
    try:
        return SweepRecord(
            arch=payload["arch"],
            app=payload["app"],
            suite=payload["suite"],
            input_size=payload["input_size"],
            num_threads=payload["num_threads"],
            config=EnvConfig(**payload["config"]),
            runtimes=tuple(payload["runtimes"]),
        )
    except (KeyError, TypeError) as exc:
        raise CacheError(f"malformed cache record: {exc}") from exc


class SweepCache:
    """On-disk batch cache rooted at a directory.

    Thread-model: a single writer (the orchestrating process) and any
    number of readers.  Writes are atomic renames; concurrent sweeps over
    one directory at worst recompute a batch and overwrite it with
    identical content.
    """

    #: Re-exported so callers holding a cache need not import the module.
    grid_fingerprint = staticmethod(grid_fingerprint)
    machine_fingerprint = staticmethod(machine_fingerprint)
    batch_key = staticmethod(batch_key)
    key_material = staticmethod(key_material)

    @staticmethod
    def key_fields() -> tuple[str, ...]:
        """The named slots of the key-material tuple, in hash order."""
        return CACHE_KEY_FIELDS

    def __init__(
        self,
        root: str | os.PathLike,
        fsync: bool = False,
        n_partitions: int = 8,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        if n_partitions < 1:
            raise ConfigError(
                f"n_partitions must be >= 1, got {n_partitions}"
            )
        #: Key-prefix partition count (see :func:`repro.resilience.
        #: sharding.partition_for_key`).  Partitions are an *accounting
        #: view* — entries share one directory; the prefix of the key
        #: decides ownership, so shards and sweep parents agree without
        #: coordination and per-partition stats stay meaningful however
        #: many shards wrote the entries.
        self.n_partitions = n_partitions
        self.hits = 0
        self.misses = 0
        self.writes = 0
        #: Writes that found another process's entry already in place
        #: (the daemon and the CLI share one cache dir); the loser's
        #: rename lands identical content, so losing the race is
        #: harmless — but it should be *visible*, not silent.
        self.lost_races = 0
        #: Keys quarantined this session, in discovery order.
        self.corrupt_keys: list[str] = []

    def partition_for(self, key: str) -> int:
        """The key-prefix partition owning ``key``.

        Real sweep keys are 64-hex digests; the cache itself accepts any
        string, so a foreign key falls back to a deterministic hash of
        its bytes rather than failing the accounting.
        """
        try:
            return partition_for_key(key, self.n_partitions)
        except ConfigError:
            digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
            return partition_for_key(digest, self.n_partitions)

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def path_for(self, key: str) -> Path:
        """The on-disk entry path for ``key`` (fault injection, tooling)."""
        return self._path(key)

    def corrupt_path_for(self, key: str) -> Path:
        """Where a quarantined entry for ``key`` lands."""
        return self.root / f"{key}.corrupt"

    @property
    def stats(self) -> dict:
        """Session counters plus the on-disk entry count; ``corrupt``
        makes disk rot observable.

        ``partitions`` breaks entries and session corruption down by
        key-prefix partition, so a corrupt entry is charged to the
        partition that owns it and never bleeds into another shard's
        accounting.
        """
        entries = [0] * self.n_partitions
        for p in self.root.glob("*.json"):
            if _ENTRY_NAME_RE.match(p.name):
                entries[self.partition_for(p.name[:-len(".json")])] += 1
        corrupt = [0] * self.n_partitions
        for key in self.corrupt_keys:
            corrupt[self.partition_for(key)] += 1
        return {
            "entries": sum(entries),
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "lost_races": self.lost_races,
            "corrupt": len(self.corrupt_keys),
            "corrupt_keys": tuple(self.corrupt_keys),
            "partitions": tuple(
                {"partition": i, "entries": entries[i],
                 "corrupt": corrupt[i]}
                for i in range(self.n_partitions)
            ),
        }

    def _quarantine(self, key: str) -> None:
        """Move a corrupt entry to ``<key>.corrupt`` and record it.

        A quarantined key also counts as a miss (the batch will be
        re-simulated), but unlike the pre-checksum behavior the
        corruption is never invisible: it is counted, listed, and the
        poisoned bytes are preserved for inspection.
        """
        try:
            os.replace(self._path(key), self.corrupt_path_for(key))
        except OSError:
            pass  # raced away or unreadable in place; still record it
        self.corrupt_keys.append(key)
        self.misses += 1

    def get(self, key: str) -> list[SweepRecord] | None:
        """The cached records for ``key``, or None (counts as a miss).

        A missing file or a version-mismatched (stale-format) entry is a
        plain miss.  Anything else that fails — unparseable JSON (torn
        write), checksum mismatch (bit rot), malformed records — is
        quarantined via :meth:`_quarantine`.
        """
        path = self._path(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError:
            self._quarantine(key)
            return None
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError:
            self._quarantine(key)
            return None
        if not isinstance(payload, dict):
            self._quarantine(key)
            return None
        if payload.get("version") != CACHE_FORMAT_VERSION:
            # A stale on-disk format (v4 and older) is expected after
            # upgrades — a legitimate miss, not corruption.
            self.misses += 1
            return None
        frame_payload = payload.get("frame")
        digest = payload.get("sha256")
        if (
            not isinstance(frame_payload, dict)
            or digest is None
            or hashlib.sha256(
                _canonical_payload(frame_payload)
            ).hexdigest() != digest
        ):
            self._quarantine(key)
            return None
        try:
            records = sweep_block_to_records(
                RecordBlock.from_payload(frame_payload)
            )
        except (FrameError, CacheError):
            self._quarantine(key)
            return None
        self.hits += 1
        return records

    def put(
        self, key: str, records: "Sequence[SweepRecord] | RecordBlock"
    ) -> None:
        """Persist one batch atomically under ``key``.

        ``records`` is either a record list or an already-packed
        :class:`~repro.frame.columns.RecordBlock` (what multiprocess
        sweep workers spool home — stored without a re-pack).

        With ``fsync=True`` the entry is flushed to stable storage (file
        data before the rename, directory entry after) so a power cut
        cannot tear it — the durability mode for long unattended
        campaigns.
        """
        block = (records if isinstance(records, RecordBlock)
                 else sweep_records_to_block(records))
        frame_payload = block.to_payload()
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "key": key,
            "sha256": hashlib.sha256(
                _canonical_payload(frame_payload)
            ).hexdigest(),
            "frame": frame_payload,
        }
        path = self._path(key)
        # The tmp name is salted with the pid so two processes put()-ing
        # the same key never interleave on one tmp file; each composes
        # its entry privately and the two renames serialize at the
        # filesystem.  Whoever renames last wins — with identical
        # content, since the key is a content address — and the loser is
        # counted in ``lost_races``.
        tmp = path.with_name(path.name + f".tmp{os.getpid()}")
        data = json.dumps(payload)
        try:
            if self.fsync:
                with open(tmp, "w", encoding="utf-8") as handle:
                    handle.write(data)
                    handle.flush()
                    os.fsync(handle.fileno())
            else:
                tmp.write_text(data, encoding="utf-8")
            raced = path.exists()
            os.replace(tmp, path)
        except BaseException:
            # Never leave a stray tmp behind an interrupted write.
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if raced:
            self.lost_races += 1
        if self.fsync:
            dir_fd = os.open(self.root, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        self.writes += 1

    def __len__(self) -> int:
        """Number of live batch entries on disk.

        Counts only well-formed content-address names —
        ``<64-hex-key>.json``, what :func:`batch_key` produces — so a
        foreign or quarantine-adjacent file dropped into the cache
        directory (``notes.json``, tooling output, a hand-renamed
        ``.corrupt`` sibling) never inflates the entry count.
        """
        return sum(
            1 for p in self.root.glob("*.json")
            if _ENTRY_NAME_RE.match(p.name)
        )

    def __repr__(self) -> str:
        return (
            f"SweepCache({str(self.root)!r}: {len(self)} entries, "
            f"{self.hits} hits / {self.misses} misses / "
            f"{len(self.corrupt_keys)} corrupt this session)"
        )
