"""The daemon's job engine: bounded queue, workers, deadlines, drain.

Jobs move through a small, explicit state machine::

    queued -> running -> done
                      -> failed        (runner raised)
                      -> cancelled     (client asked, or pre-run cancel)
                      -> expired       (per-job deadline fired)
           -> cancelled                (cancelled before a worker took it)
    queued/running -> interrupted      (daemon drained mid-flight)

Terminal states are ``done | failed | cancelled | expired``;
``interrupted`` is deliberately non-terminal — it is the state the
drain journal persists so a restarted daemon resumes the job.

Design points:

- **bounded admission** — :meth:`JobQueue.submit` refuses past
  ``max_queued`` with a :class:`QueueFull` carrying a ``retry_after_s``
  hint, which the HTTP layer maps onto ``429 Retry-After``.  Shedding
  at admission keeps every accepted job's latency predictable,
- **cooperative deadlines** — each running job gets a
  ``threading.Timer``; on expiry it sets the job's ``cancel_event``,
  which :func:`~repro.core.sweep.run_sweep` observes *between batches*
  and unwinds after flushing landed work to the cache.  A deadline
  never kills mid-batch, so an expired job's partial work is already
  cache-warm for the next attempt,
- **graceful drain** — :meth:`begin_drain` stops admission;
  :meth:`drain` waits a grace window, then cancels what is still
  running and marks everything unfinished ``interrupted`` in the
  journal.  The journal write happens *before* the cancel, so even a
  SIGKILL inside the drain window (the ``kill-during-drain`` chaos
  fault) leaves a resumable record.

All timing flows through an injected ``clock`` plus ``threading``
primitives; this module never reads the host clock directly (SIM001
discipline — the one waived read lives in :mod:`repro.serve.limits`).
"""

from __future__ import annotations

import threading
from collections import deque
from collections.abc import Callable

from repro.errors import ServeError
from repro.serve.journal import TERMINAL_STATES, JobJournal
from repro.serve.limits import wall_clock

__all__ = ["Job", "JobQueue", "QueueFull"]


class QueueFull(ServeError):
    """Admission refused: the bounded job queue is at capacity."""

    def __init__(self, message: str, retry_after_s: float):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class Job:
    """One unit of served work (mutable by design; serve/ is outside the
    SIM004 frozen-dataclass scope precisely because operational state
    like this must mutate)."""

    def __init__(
        self,
        job_id: str,
        params: dict,
        kind: str = "sweep",
        client: str = "",
        coalesce_key: str = "",
        deadline_s: float | None = None,
    ):
        self.id = job_id
        self.kind = kind
        self.params = params
        self.client = client
        self.coalesce_key = coalesce_key
        self.deadline_s = deadline_s
        self.state = "queued"
        self.error = ""
        self.detail = ""
        #: Set to request cooperative cancellation; run_sweep observes it.
        self.cancel_event = threading.Event()
        #: Set exactly once, on reaching any terminal-or-interrupted
        #: state; responders wait on this.
        self.done_event = threading.Event()
        #: True once the deadline timer fired (distinguishes ``expired``
        #: from a client ``cancelled`` — both ride the cancel_event).
        self.deadline_hit = False
        #: Filled by the runner on success.
        self.result = None
        self.records: list | None = None
        self.summary: dict | None = None
        #: Degradation markers (see docs/SERVING.md).
        self.backend_requested = ""
        self.backend_used = ""
        self.degraded = False
        #: Progress events, append-only, seq-numbered from 0.
        self.events: list[dict] = []
        self._events_lock = threading.Lock()

    def add_event(self, payload: dict) -> None:
        """Append one progress event (seq assigned here)."""
        with self._events_lock:
            self.events.append({"seq": len(self.events), **payload})

    def events_since(self, seq: int) -> list[dict]:
        """Events with sequence number >= ``seq`` (streaming tail)."""
        with self._events_lock:
            return self.events[seq:]

    @property
    def settled(self) -> bool:
        """Whether the job has stopped moving (terminal or interrupted)."""
        return self.state in TERMINAL_STATES or self.state == "interrupted"

    def view(self) -> dict:
        """Plain-dict snapshot for :func:`repro.serve.render.job_payload`."""
        return {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "coalesce_key": self.coalesce_key,
            "backend_requested": self.backend_requested,
            "backend_used": self.backend_used,
            "degraded": self.degraded,
            "n_events": len(self.events),
            "error": self.error,
            "detail": self.detail,
            "summary": self.summary,
        }


class JobQueue:
    """Bounded queue + worker threads (see module docstring)."""

    def __init__(
        self,
        runner: Callable[[Job], None],
        max_queued: int = 16,
        workers: int = 2,
        journal: JobJournal | None = None,
        clock: Callable[[], float] = wall_clock,
        on_settled: Callable[[Job], None] | None = None,
        retry_after_s: float = 1.0,
    ):
        if max_queued < 1:
            raise ServeError(f"max_queued must be >= 1, got {max_queued}")
        if workers < 1:
            raise ServeError(f"workers must be >= 1, got {workers}")
        self.runner = runner
        self.max_queued = max_queued
        self.n_workers = workers
        self.journal = journal
        self.clock = clock
        self.on_settled = on_settled
        self.retry_after_s = retry_after_s
        self.jobs: dict[str, Job] = {}
        self._pending: deque[Job] = deque()
        self._running: dict[str, Job] = {}
        self._cond = threading.Condition()
        self._threads: list[threading.Thread] = []
        self._stopping = False
        self._draining = False
        #: Admission counters (health endpoint).
        self.n_submitted = 0
        self.n_rejected_full = 0

    # -- lifecycle -------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker threads (idempotent)."""
        if self._threads:
            return
        for n in range(self.n_workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"serve-worker-{n}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def stop(self) -> None:
        """Stop workers after their current job; does not cancel."""
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(5.0)
        self._threads = []

    # -- admission -------------------------------------------------------
    @property
    def draining(self) -> bool:
        """True once drain began — the queue admits nothing further."""
        return self._draining

    def depth(self) -> tuple[int, int]:
        """(queued, running) depths right now."""
        with self._cond:
            return len(self._pending), len(self._running)

    def submit(self, job: Job) -> None:
        """Admit one job, or raise :class:`QueueFull` / :class:`ServeError`.

        The journal's submit op lands *before* the job becomes
        runnable, so an admitted job can never be lost to a kill.
        """
        with self._cond:
            if self._stopping or self._draining:
                raise ServeError("daemon is draining; not admitting jobs")
            if len(self._pending) >= self.max_queued:
                self.n_rejected_full += 1
                raise QueueFull(
                    f"job queue is at capacity ({self.max_queued})",
                    retry_after_s=self.retry_after_s,
                )
            if job.id in self.jobs:
                raise ServeError(f"duplicate job id {job.id!r}")
            if self.journal is not None:
                self.journal.submit(
                    job.id, job.params, job.coalesce_key, job.client
                )
            self.jobs[job.id] = job
            self._pending.append(job)
            self.n_submitted += 1
            self._cond.notify()

    def get(self, job_id: str) -> Job | None:
        """The job with this id, if the daemon knows it."""
        with self._cond:
            return self.jobs.get(job_id)

    def cancel(self, job_id: str) -> bool:
        """Request cooperative cancellation; False for unknown/settled."""
        with self._cond:
            job = self.jobs.get(job_id)
            if job is None or job.settled:
                return False
            job.cancel_event.set()
            self._cond.notify_all()
            return True

    # -- worker side -----------------------------------------------------
    def _settle(self, job: Job, state: str, error: str = "",
                detail: str = "") -> None:
        """One-way transition into a settled state (+ journal + hook)."""
        with self._cond:
            if job.settled:
                return
            job.state = state
            job.error = error
            job.detail = detail
        if self.journal is not None:
            self.journal.state(job.id, state, detail or error)
        job.done_event.set()
        if self.on_settled is not None:
            self.on_settled(job)

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                while not self._pending and not self._stopping:
                    self._cond.wait(0.1)
                if self._stopping and not self._pending:
                    return
                if not self._pending:
                    continue
                job = self._pending.popleft()
                if job.cancel_event.is_set():
                    # Cancelled (or drained) before any work started.
                    state = ("interrupted" if self._draining
                             else "cancelled")
                else:
                    job.state = "running"
                    self._running[job.id] = job
                    state = None
            if state is not None:
                self._settle(job, state)
                continue
            if self.journal is not None:
                self.journal.state(job.id, "running")
            self._run_one(job)
            with self._cond:
                self._running.pop(job.id, None)
                self._cond.notify_all()

    def _expire(self, job: Job) -> None:
        """Deadline-timer callback: flag and cancel cooperatively."""
        job.deadline_hit = True
        job.cancel_event.set()

    def _run_one(self, job: Job) -> None:
        from repro.errors import SweepCancelledError

        timer = None
        if job.deadline_s is not None:
            timer = threading.Timer(job.deadline_s, self._expire, (job,))
            timer.daemon = True
            timer.start()
        try:
            self.runner(job)
        except SweepCancelledError as exc:
            if job.deadline_hit:
                self._settle(job, "expired", detail=str(exc))
            elif self._draining or self._stopping:
                self._settle(job, "interrupted", detail=str(exc))
            else:
                self._settle(job, "cancelled", detail=str(exc))
        except Exception as exc:
            self._settle(job, "failed",
                         error=f"{type(exc).__name__}: {exc}")
        else:
            self._settle(job, "done")
        finally:
            if timer is not None:
                timer.cancel()

    # -- drain -----------------------------------------------------------
    def begin_drain(self) -> None:
        """Stop admitting; running and queued jobs are untouched yet."""
        with self._cond:
            self._draining = True
            self._cond.notify_all()

    def drain(self, grace_s: float = 5.0) -> list[str]:
        """Drain to a stop; returns the ids left non-terminal.

        Waits up to ``grace_s`` for in-flight work to finish on its
        own.  Whatever remains is journaled ``interrupted`` *first* and
        cancelled *second* — so a SIGKILL between the two still leaves
        the journal resumable — then the workers are stopped.
        """
        self.begin_drain()
        deadline = self.clock() + max(grace_s, 0.0)
        with self._cond:
            while (self._pending or self._running) \
                    and self.clock() < deadline:
                self._cond.wait(0.05)
            leftovers = list(self._pending) + list(self._running.values())
        for job in leftovers:
            if self.journal is not None and not job.settled:
                self.journal.state(job.id, "interrupted", "daemon drain")
        for job in leftovers:
            job.cancel_event.set()
        # stop() joins the workers; on their way out they pop every
        # still-pending job, observe its set cancel_event under the
        # drain flag, and settle it as ``interrupted`` — so by the time
        # stop() returns, nothing is left un-settled.
        self.stop()
        stranded = []
        with self._cond:
            stranded = [job for job in self._pending if not job.settled]
            self._pending.clear()
        for job in stranded:  # safety net; normally empty
            self._settle(job, "interrupted", detail="daemon drain")
        with self._cond:
            return sorted(
                job_id for job_id, job in self.jobs.items()
                if job.state == "interrupted"
            )

    def describe(self) -> dict:
        """JSON-ready queue snapshot (health endpoint)."""
        with self._cond:
            return {
                "queued": len(self._pending),
                "running": len(self._running),
                "max_queued": self.max_queued,
                "workers": self.n_workers,
                "submitted": self.n_submitted,
                "rejected_full": self.n_rejected_full,
                "draining": self._draining,
            }
