"""Tuning-as-a-service: the daemon behind ``repro-omp serve``.

The ROADMAP's north star is serving the paper's end product — "set
``KMP_LIBRARY=turnaround`` for NQueens" — to heavy multi-tenant
traffic.  This package is that front door: a stdlib-only persistent
daemon over HTTP/JSON whose load-bearing design is robustness, not
features.

Layering (leaf to root):

- :mod:`repro.serve.limits` — token-bucket rate limiting per client
  key, and the package's **single** wall-clock read (every other module
  takes an injected clock, so the SIM001 determinism lint has exactly
  one reasoned waiver to cover).
- :mod:`repro.serve.breaker` — per-backend circuit breakers
  (closed → open on consecutive failures → half-open probes → closed)
  and the ``nodes → pool → serial`` degradation ladder.
- :mod:`repro.serve.coalesce` — request coalescing: identical in-flight
  grid requests share one sweep, keyed through the cache's
  ``key_material`` so "identical" means *record-identical by
  construction*.
- :mod:`repro.serve.journal` — the append-only drain journal that makes
  queued jobs survive SIGTERM (and SIGKILL mid-drain) across a restart.
- :mod:`repro.serve.render` — pure response-payload builders (FLOW001
  result roots: they must never reach a clock or unseeded RNG).
- :mod:`repro.serve.queue` — the bounded job queue, worker threads,
  per-job deadline timers, and graceful drain.
- :mod:`repro.serve.app` — the HTTP front end (hand-rolled on
  ``asyncio.start_server``): routing, admission control, backpressure,
  streaming progress, slow-client shedding, SIGTERM drain.
- :mod:`repro.serve.harness` — an in-process daemon handle for tests,
  checks and benchmarks.

See ``docs/SERVING.md`` for the endpoint catalog and semantics.
"""

from repro.serve.app import DaemonConfig, TuningDaemon
from repro.serve.breaker import BackendLadder, CircuitBreaker
from repro.serve.coalesce import Coalescer, sweep_request_key
from repro.serve.harness import DaemonHandle
from repro.serve.journal import JobJournal
from repro.serve.limits import TokenBucket, wall_clock
from repro.serve.queue import Job, JobQueue

__all__ = [
    "BackendLadder",
    "CircuitBreaker",
    "Coalescer",
    "DaemonConfig",
    "DaemonHandle",
    "Job",
    "JobJournal",
    "JobQueue",
    "TokenBucket",
    "TuningDaemon",
    "sweep_request_key",
    "wall_clock",
]
