"""Pure response-payload builders for the serving daemon.

Everything a client receives as a *result* — job status bodies, record
dumps, recommendation tables — is built here, and only here, from data
passed in explicitly.  These functions are registered as FLOW001
result-bearing roots (``lint/flow/passes.py``), so the interprocedural
lint proves their transitive closure never reaches a wall-clock read or
unseeded RNG: a served response can depend on what the sweep computed
and on the request, never on when the daemon happened to answer.
Timestamps deliberately do not exist anywhere in the serving protocol —
ordering is carried by job ids and event sequence numbers instead.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.sweep import SweepRecord, SweepResult

__all__ = [
    "job_payload",
    "record_payload",
    "records_payload",
    "recommend_payload",
    "sweep_summary_payload",
]

#: EnvConfig fields in record-payload order (matches the cache's legacy
#: reference codec, so parity comparisons are field-for-field).
_CONFIG_FIELDS = (
    "num_threads",
    "places",
    "proc_bind",
    "schedule",
    "library",
    "blocktime",
    "force_reduction",
    "align_alloc",
)


def record_payload(record: SweepRecord) -> dict:
    """One sweep record as a JSON-ready dict (deterministic field order)."""
    return {
        "arch": record.arch,
        "app": record.app,
        "suite": record.suite,
        "input_size": record.input_size,
        "num_threads": record.num_threads,
        "config": {f: getattr(record.config, f) for f in _CONFIG_FIELDS},
        "runtimes": list(record.runtimes),
    }


def records_payload(records: Sequence[SweepRecord]) -> dict:
    """A full record dump — the body of ``GET /jobs/<id>/records``.

    This is the payload the ``service-degrade-parity`` check compares
    against a direct :func:`~repro.core.sweep.run_sweep`, so it must be
    a pure function of the records alone.
    """
    return {
        "n_records": len(records),
        "records": [record_payload(r) for r in records],
    }


def sweep_summary_payload(result: SweepResult) -> dict:
    """The result-bearing summary attached to a finished sweep job."""
    report = result.failure_report
    return {
        "n_samples": result.n_samples,
        "n_measurements": result.n_measurements,
        "n_cached_batches": result.n_cached_batches,
        "n_computed_batches": result.n_computed_batches,
        "n_quarantined_batches": result.n_quarantined_batches,
        "backend": result.backend,
        "n_shards": result.n_shards,
        "failures": report.to_dict() if report is not None else None,
    }


def job_payload(view: dict) -> dict:
    """A job's status body — ``GET /jobs/<id>`` and the 202 response.

    ``view`` is the queue's plain-dict snapshot of one job (id, state,
    degradation markers, counters); this function only shapes it, so
    the FLOW001 guarantee covers the whole body.
    """
    payload = {
        "job_id": view["id"],
        "state": view["state"],
        "kind": view.get("kind", "sweep"),
        "coalesce_key": view.get("coalesce_key", ""),
        "backend_requested": view.get("backend_requested", ""),
        "backend_used": view.get("backend_used", ""),
        "degraded": bool(view.get("degraded", False)),
        "events": view.get("n_events", 0),
    }
    if view.get("error"):
        payload["error"] = view["error"]
    if view.get("detail"):
        payload["detail"] = view["detail"]
    if view.get("summary") is not None:
        payload["summary"] = view["summary"]
    return payload


def recommend_payload(
    settings: Sequence[dict], quantile: float, min_lift: float
) -> dict:
    """The body of ``GET /recommend``: per-variable tuning advice.

    ``settings`` is the already-computed recommendation table (one dict
    per variable), passed in so this stays a pure shaping function.
    """
    return {
        "quantile": quantile,
        "min_lift": min_lift,
        "n_recommendations": len(settings),
        "recommendations": list(settings),
    }
