"""Scripted client scenario driving the daemon through service faults.

The sweep-level chaos plane (:mod:`repro.resilience.chaos`) injects
faults *inside* one sweep; this module injects faults *around* the
daemon — the three ``SERVICE_FAULT_KINDS``:

``slow-client``
    A client opens a connection, sends half a request line, and stalls.
    The daemon must shed it with ``408`` instead of letting it pin a
    connection slot.
``backend-death-mid-request``
    A served sweep's first-choice backend dies under it (an all-attempt
    crash fault at a seeded batch index).  The daemon must trip the
    circuit breaker, fall down the ladder, finish ``degraded`` — and
    the records must still be identical to a fault-free direct sweep.
``kill-during-drain``
    SIGTERM starts a graceful drain; SIGKILL lands *inside* the drain
    window, before the polite shutdown finishes.  A restarted daemon
    must resume the journaled job and complete it, batch-for-batch
    identical, with the pre-kill batches served from cache.

The daemon under test is a **real subprocess** (``repro-omp serve``)
with zero test hooks — every fault is driven from the client side, so
the scenario exercises exactly the binary an operator runs.  Fault
placement is seeded via :class:`~repro.resilience.chaos.ServiceChaosPlan`
(``random.Random(f"svc:{seed}")``), so a seed pins the whole scenario.

Used by ``repro-omp chaos --serve`` and the CI ``serve`` job.
"""

from __future__ import annotations

import http.client
import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

from repro.core.sweep import SweepPlan, plan_batches, run_sweep
from repro.errors import ServeError
from repro.resilience.chaos import ServiceChaosPlan
from repro.serve.limits import wall_clock
from repro.serve.render import records_payload

__all__ = ["DaemonProcess", "run_service_scenario"]


class DaemonProcess:
    """One ``repro-omp serve`` subprocess with port-file discovery."""

    def __init__(
        self,
        cache_dir: str,
        state_dir: str,
        backend: str = "pool",
        deadline_s: float = 300.0,
        drain_grace_s: float = 3.0,
        header_timeout_s: float = 0.5,
        breaker_threshold: int = 1,
        start_timeout_s: float = 30.0,
    ):
        self.port_file = Path(state_dir) / "port"
        if self.port_file.exists():
            self.port_file.unlink()
        argv = [
            sys.executable, "-m", "repro.cli", "serve",
            "--host", "127.0.0.1", "--port", "0",
            "--backend", backend,
            "--cache-dir", cache_dir,
            "--state-dir", state_dir,
            "--port-file", str(self.port_file),
            "--deadline-s", str(deadline_s),
            "--drain-grace-s", str(drain_grace_s),
            "--header-timeout-s", str(header_timeout_s),
            "--breaker-threshold", str(breaker_threshold),
        ]
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_root, env.get("PYTHONPATH", "")) if p
        )
        self.proc = subprocess.Popen(
            argv, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        self.port = self._wait_for_port(start_timeout_s)

    def _wait_for_port(self, timeout_s: float) -> int:
        deadline = wall_clock() + timeout_s
        while wall_clock() < deadline:
            if self.proc.poll() is not None:
                raise ServeError(
                    f"daemon exited early with code {self.proc.returncode}"
                )
            try:
                text = self.port_file.read_text(encoding="utf-8").strip()
            except FileNotFoundError:
                text = ""
            if text:
                return int(text)
            time.sleep(0.05)
        self.proc.kill()
        raise ServeError(f"daemon did not publish a port in {timeout_s}s")

    # -- client side -----------------------------------------------------
    def request(self, method: str, path: str, body: dict | None = None,
                timeout: float = 30.0) -> tuple[int, dict]:
        conn = http.client.HTTPConnection(
            "127.0.0.1", self.port, timeout=timeout
        )
        try:
            payload = (json.dumps(body).encode("utf-8")
                       if body is not None else None)
            conn.request(method, path, body=payload,
                         headers={"Content-Type": "application/json"}
                         if payload else {})
            response = conn.getresponse()
            raw = response.read()
            parsed = json.loads(raw.decode("utf-8")) if raw else {}
            return response.status, parsed
        finally:
            conn.close()

    def wait_for_state(self, job_id: str, states: tuple[str, ...],
                       timeout_s: float = 120.0) -> dict:
        deadline = wall_clock() + timeout_s
        body: dict = {}
        while wall_clock() < deadline:
            status, body = self.request("GET", f"/jobs/{job_id}")
            if status == 200 and body.get("state") in states:
                return body
            time.sleep(0.05)
        raise ServeError(
            f"job {job_id} did not reach {states} in {timeout_s}s "
            f"(last: {body})"
        )

    def slow_client_probe(self, stall_s: float,
                          timeout_s: float = 10.0) -> int:
        """Send half a request and stall; the daemon's shed status."""
        with socket.create_connection(
            ("127.0.0.1", self.port), timeout=timeout_s
        ) as sock:
            sock.sendall(b"POST /sweep HTTP/1.1\r\nContent-")
            time.sleep(stall_s)
            sock.settimeout(timeout_s)
            raw = sock.recv(4096)
        line = raw.split(b"\r\n", 1)[0].decode("latin-1", "replace")
        parts = line.split()
        if len(parts) < 2 or not parts[1].isdigit():
            raise ServeError(f"unparseable shed response: {line!r}")
        return int(parts[1])

    # -- lifecycle -------------------------------------------------------
    def sigterm(self) -> None:
        self.proc.send_signal(signal.SIGTERM)

    def sigkill(self) -> None:
        self.proc.kill()

    def wait(self, timeout_s: float = 30.0) -> int:
        return self.proc.wait(timeout_s)

    def stop(self, timeout_s: float = 30.0) -> int:
        """Polite shutdown: SIGTERM, then wait (SIGKILL as last resort)."""
        if self.proc.poll() is None:
            self.sigterm()
            try:
                return self.proc.wait(timeout_s)
            except subprocess.TimeoutExpired:
                self.proc.kill()
        return self.proc.wait(5.0)


def run_service_scenario(
    arch: str = "milan",
    workloads: tuple[str, ...] = ("nqueens", "cg"),
    scale: str = "small",
    repetitions: int = 2,
    inputs_limit: int = 2,
    seed: int = 0,
    n_requests: int = 6,
    slow_clients: int = 1,
    backend_deaths: int = 1,
    drain_kills: int = 1,
    work_dir: str | os.PathLike = ".",
    artifact_dir: str | os.PathLike | None = None,
) -> dict:
    """Run the full scripted scenario; returns a JSON-ready verdict.

    ``verdict["ok"]`` is True iff every fault produced its required
    outcome *and* every completed served sweep was record-identical to
    the fault-free direct ``run_sweep`` ground truth.
    """
    work = Path(work_dir)
    plan = SweepPlan(
        arch=arch,
        workload_names=tuple(workloads) if workloads else None,
        scale=scale,
        repetitions=repetitions,
        inputs_limit=inputs_limit,
    )
    plan_payload = {
        "arch": arch,
        "workloads": list(workloads) if workloads else None,
        "scale": scale,
        "repetitions": repetitions,
        "inputs_limit": inputs_limit,
    }
    n_batches = len(plan_batches(plan))
    svc = ServiceChaosPlan.generate(
        n_requests, n_batches, seed=seed,
        slow_clients=slow_clients,
        backend_deaths=backend_deaths,
        drain_kills=drain_kills,
    )
    # Fault-free ground truth, computed directly — the daemon must
    # reproduce these records through every degradation path.
    truth = records_payload(run_sweep(plan).records)

    outcomes: list[dict] = []
    ok = True

    def record(kind: str, passed: bool, detail: str) -> None:
        nonlocal ok
        ok = ok and passed
        outcomes.append({"kind": kind, "ok": passed, "detail": detail})

    cache_dir = str(work / "cache")
    state_a = str(work / "state-burst")
    daemon = DaemonProcess(cache_dir, state_a)
    try:
        # -- coalesced burst: every fault-free request at once ----------
        normal = [i for i in range(n_requests)
                  if svc.fault_at(i) is None]
        burst_body = {
            "plan": plan_payload, "client": "scenario-burst",
            "throttle_s": 0.2, "backend": "serial",
        }
        job_ids = []
        coalesced = 0
        for _ in normal:
            status, resp = daemon.request("POST", "/sweep", burst_body)
            if status != 202:
                record("coalesced-burst", False, f"submit -> {status}")
                break
            job_ids.append(resp["job_id"])
            coalesced += int(bool(resp.get("coalesced")))
        if len(job_ids) == len(normal) and job_ids:
            shared = len(set(job_ids)) == 1 and coalesced == len(normal) - 1
            final = daemon.wait_for_state(job_ids[0], ("done", "failed"))
            status, records = daemon.request(
                "GET", f"/jobs/{job_ids[0]}/records"
            )
            parity = records == truth
            record(
                "coalesced-burst",
                shared and final["state"] == "done" and parity,
                f"{len(normal)} requests -> {len(set(job_ids))} job(s), "
                f"{coalesced} coalesced, state={final['state']}, "
                f"records {'identical' if parity else 'DIVERGED'}",
            )
        # -- slow clients ----------------------------------------------
        for fault in svc.faults:
            if fault.kind != "slow-client":
                continue
            status = daemon.slow_client_probe(stall_s=1.5)
            record("slow-client", status == 408,
                   f"stalled client shed with {status}")
    finally:
        daemon.stop()

    # -- backend death mid-request (cold cache, so the poisoned batch
    # really executes on the dying backend instead of hitting cache) --
    for n_death, fault in enumerate(
        f for f in svc.faults if f.kind == "backend-death-mid-request"
    ):
        state_d = str(work / f"state-death{n_death}")
        cache_d = str(work / f"cache-death{n_death}")
        daemon = DaemonProcess(cache_d, state_d)
        try:
            body = {
                "plan": plan_payload, "client": "scenario-death",
                "backend": "pool",
                "chaos": {"seed": seed, "faults": [{
                    "kind": "crash",
                    "batch_index": fault.batch_index,
                    "attempts": "all",
                }]},
            }
            status, resp = daemon.request("POST", "/sweep", body)
            if status != 202:
                record("backend-death-mid-request", False,
                       f"submit -> {status}")
                continue
            final = daemon.wait_for_state(
                resp["job_id"], ("done", "failed")
            )
            status, records = daemon.request(
                "GET", f"/jobs/{resp['job_id']}/records"
            )
            parity = records == truth
            record(
                "backend-death-mid-request",
                (final["state"] == "done" and final["degraded"]
                 and parity),
                f"state={final['state']}, "
                f"used={final.get('backend_used')}, "
                f"degraded={final.get('degraded')}, "
                f"records {'identical' if parity else 'DIVERGED'}",
            )
        finally:
            daemon.stop()

    # -- kill during drain (fresh state dir, cold cache) ---------------
    for n_kill, fault in enumerate(
        f for f in svc.faults if f.kind == "kill-during-drain"
    ):
        state_k = str(work / f"state-kill{n_kill}")
        cache_k = str(work / f"cache-kill{n_kill}")
        daemon = DaemonProcess(cache_k, state_k, drain_grace_s=5.0)
        body = {
            "plan": plan_payload, "client": "scenario-kill",
            "throttle_s": 0.3, "backend": "serial",
        }
        try:
            status, resp = daemon.request("POST", "/sweep", body)
            if status != 202:
                record("kill-during-drain", False, f"submit -> {status}")
                continue
            job_id = resp["job_id"]
            # Let at least one batch land (the throttle makes the gap
            # between batches wide enough to hit deterministically).
            deadline = wall_clock() + 60.0
            events = 0
            while wall_clock() < deadline:
                status, view = daemon.request("GET", f"/jobs/{job_id}")
                events = view.get("events", 0)
                if events >= 1:
                    break
                time.sleep(0.05)
            daemon.sigterm()          # graceful drain begins...
            time.sleep(0.5)
            daemon.sigkill()          # ...and dies inside the window
            daemon.wait(10.0)
        finally:
            if daemon.proc.poll() is None:
                daemon.proc.kill()
        revived = DaemonProcess(cache_k, state_k)
        try:
            resumed_ok = False
            detail = "journal did not resurface the job"
            status, view = revived.request("GET", f"/jobs/{job_id}")
            if status == 200:
                final = revived.wait_for_state(
                    job_id, ("done", "failed")
                )
                status, records = revived.request(
                    "GET", f"/jobs/{job_id}/records"
                )
                parity = records == truth
                warm = (final.get("summary") or {}).get(
                    "n_cached_batches", 0
                )
                resumed_ok = (final["state"] == "done" and parity
                              and events >= 1)
                detail = (
                    f"resumed after SIGKILL, state={final['state']}, "
                    f"{warm} batch(es) from pre-kill cache, records "
                    f"{'identical' if parity else 'DIVERGED'}"
                )
            record("kill-during-drain", resumed_ok, detail)
            if artifact_dir is not None:
                dest = Path(artifact_dir)
                dest.mkdir(parents=True, exist_ok=True)
                shutil.copy(
                    Path(state_k) / "jobs.journal",
                    dest / f"kill{n_kill}.journal",
                )
        finally:
            revived.stop()

    return {
        "seed": seed,
        "n_requests": n_requests,
        "n_batches": n_batches,
        "service_chaos_plan": svc.to_dict(),
        "outcomes": outcomes,
        "ok": ok,
    }
