"""Circuit breakers per executor backend, and the degradation ladder.

A long-lived tuner must survive a broken backend: if the simulated node
fleet starts losing nodes on every sweep, hammering it with more sweeps
converts one infrastructure fault into every client's problem.  The
classic answer is a circuit breaker per backend:

- **closed** — requests flow; consecutive failures are counted, and at
  ``failure_threshold`` the breaker *opens*,
- **open** — the backend is not dispatched to at all for
  ``cooldown_s``; after the cooldown the breaker moves to *half-open*,
- **half-open** — up to ``probe_budget`` trial dispatches are allowed
  through; the first success closes the breaker, a failure (or running
  out of probes without a success) re-opens it for another cooldown.

State transitions are driven by an injected ``clock`` (tests use a fake
one), and every decision is a pure function of the recorded
success/failure sequence plus the clock — no randomness, so breaker
behavior in the chaos scenarios is exactly replayable.

:class:`BackendLadder` stacks breakers into the degradation path the
daemon serves through: ``nodes → pool → serial``.  ``serial`` is the
floor — in-process execution has no fleet to lose — so the ladder
always yields a rung, and a response served below the requested rung
carries a ``degraded`` marker.
"""

from __future__ import annotations

import threading
from collections.abc import Callable

from repro.errors import ConfigError
from repro.serve.limits import wall_clock

__all__ = ["BREAKER_STATES", "CircuitBreaker", "BackendLadder", "LADDERS"]

#: The breaker's three states, in degradation order.
BREAKER_STATES = ("closed", "open", "half-open")

#: Requested backend -> the rungs tried, best first.  ``auto`` resolves
#: like the sweep layer's auto (pool when parallelism helps), so its
#: ladder matches pool's.
LADDERS = {
    "nodes": ("nodes", "pool", "serial"),
    "pool": ("pool", "serial"),
    "auto": ("pool", "serial"),
    "serial": ("serial",),
}


class CircuitBreaker:
    """One backend's breaker (see module docstring for the protocol)."""

    def __init__(
        self,
        name: str,
        failure_threshold: int = 3,
        cooldown_s: float = 30.0,
        probe_budget: int = 2,
        clock: Callable[[], float] = wall_clock,
    ):
        if failure_threshold < 1:
            raise ConfigError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_s < 0:
            raise ConfigError(f"cooldown_s must be >= 0, got {cooldown_s}")
        if probe_budget < 1:
            raise ConfigError(
                f"probe_budget must be >= 1, got {probe_budget}"
            )
        self.name = name
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.probe_budget = probe_budget
        self.clock = clock
        self._lock = threading.RLock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_left = 0
        #: Lifetime counters (health endpoint).
        self.n_failures = 0
        self.n_successes = 0
        self.n_opens = 0

    # -- state machine ---------------------------------------------------
    def _tick(self, now: float) -> None:
        """Advance time-driven transitions (open → half-open)."""
        if (self._state == "open"
                and now - self._opened_at >= self.cooldown_s):
            self._state = "half-open"
            self._probes_left = self.probe_budget

    def _open(self, now: float) -> None:
        self._state = "open"
        self._opened_at = now
        self._consecutive_failures = 0
        self._probes_left = 0
        self.n_opens += 1

    @property
    def state(self) -> str:
        """Current state, advancing open → half-open if cooled down."""
        with self._lock:
            self._tick(self.clock())
            return self._state

    def allow(self) -> bool:
        """Whether one dispatch may go to this backend right now.

        In half-open state each ``allow()`` consumes one probe; when the
        budget is spent without a success having closed the breaker, it
        re-opens for another cooldown.
        """
        with self._lock:
            now = self.clock()
            self._tick(now)
            if self._state == "closed":
                return True
            if self._state == "half-open":
                if self._probes_left > 0:
                    self._probes_left -= 1
                    return True
                self._open(now)
            return False

    def record_success(self) -> None:
        """A dispatch to this backend completed; half-open closes."""
        with self._lock:
            self._tick(self.clock())
            self.n_successes += 1
            self._consecutive_failures = 0
            if self._state == "half-open":
                self._state = "closed"

    def record_failure(self) -> None:
        """A dispatch failed (PoisonBatch, NodeLost, ResilienceError)."""
        with self._lock:
            now = self.clock()
            self._tick(now)
            self.n_failures += 1
            if self._state == "half-open":
                self._open(now)
                return
            if self._state == "closed":
                self._consecutive_failures += 1
                if self._consecutive_failures >= self.failure_threshold:
                    self._open(now)

    def describe(self) -> dict:
        """JSON-ready breaker snapshot."""
        with self._lock:
            self._tick(self.clock())
            return {
                "backend": self.name,
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "failures": self.n_failures,
                "successes": self.n_successes,
                "opens": self.n_opens,
                "probes_left": self._probes_left,
            }


class BackendLadder:
    """Breakers for every backend plus the degradation path between them.

    :meth:`rungs_for` yields the dispatchable rungs for a requested
    backend, best first, skipping rungs whose breaker refuses — except
    the final rung, which is always yielded (``serial`` cannot be
    circuit-broken away; a tuner that answers slowly beats one that
    answers 503).
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 30.0,
        probe_budget: int = 2,
        clock: Callable[[], float] = wall_clock,
    ):
        self.breakers = {
            name: CircuitBreaker(
                name,
                failure_threshold=failure_threshold,
                cooldown_s=cooldown_s,
                probe_budget=probe_budget,
                clock=clock,
            )
            for name in ("nodes", "pool", "serial")
        }

    def ladder_for(self, requested: str) -> tuple[str, ...]:
        """The full rung sequence for a requested backend."""
        try:
            return LADDERS[requested]
        except KeyError:
            raise ConfigError(
                f"unknown backend {requested!r}; have {sorted(LADDERS)}"
            ) from None

    def rungs_for(self, requested: str) -> list[str]:
        """Dispatchable rungs, best first (the floor always included)."""
        ladder = self.ladder_for(requested)
        rungs = [
            name for name in ladder[:-1] if self.breakers[name].allow()
        ]
        rungs.append(ladder[-1])
        return rungs

    def record(self, backend: str, ok: bool) -> None:
        """Book one dispatch outcome on the backend's breaker."""
        breaker = self.breakers.get(backend)
        if breaker is None:
            raise ConfigError(f"unknown backend {backend!r}")
        if ok:
            breaker.record_success()
        else:
            breaker.record_failure()

    def describe(self) -> list[dict]:
        """JSON-ready snapshot of every breaker, in ladder order."""
        return [
            self.breakers[name].describe()
            for name in ("nodes", "pool", "serial")
        ]
