"""Request coalescing: identical in-flight grid requests share one sweep.

A multi-tenant tuner sees bursts of the *same* question — a CI fleet
asking for the milan/NQueens recommendation fans out as N identical
requests within a second.  Running N identical sweeps would multiply
load by N for zero information; coalescing folds them onto one in-flight
job and hands every requester the same job id (and therefore the same
records).

"Identical" is decided by :func:`sweep_request_key`, which reuses the
sweep cache's key discipline: the key digests every batch's
``SweepCache.key_material`` (plan identity, grid fingerprint, machine
fingerprint, batch identity) plus the execution knobs that shape the
response (backend, shards, fail policy).  Two requests with equal keys
are record-identical *by construction* — the same property the cache's
content addressing rests on — so sharing a job is safe, never a guess.

Only **in-flight** (queued or running) jobs coalesce.  A finished job's
results live in the sweep cache; re-running the plan is then a pure
cache read, so folding onto completed jobs would only add staleness
questions for no savings.
"""

from __future__ import annotations

import hashlib
import threading
from collections.abc import Callable

from repro.core.envspace import EnvSpace
from repro.core.sweep import SweepPlan, plan_batches

__all__ = ["Coalescer", "sweep_request_key"]


def sweep_request_key(
    plan: SweepPlan,
    space: EnvSpace | None = None,
    backend: str = "auto",
    n_shards: int = 1,
    fail_policy: str = "degrade",
) -> str:
    """The coalescing key of one sweep request (64-hex digest).

    Built from the cache's own ``key_material`` for every batch the
    plan expands to, so it inherits the cache key scheme's completeness
    guarantees (the KEY lint plane proves every result-altering input
    lands in a slot); the execution knobs are appended because they
    shape the response body (degraded markers, failure report) even
    though they never change the records.
    """
    from repro.arch.machines import get_machine
    from repro.core.cache import SweepCache

    space = space or EnvSpace()
    machine = get_machine(plan.arch)
    configs = space.grid(machine, plan.scale, seed=plan.seed)
    grid_fp = SweepCache.grid_fingerprint(configs)
    machine_fp = SweepCache.machine_fingerprint(machine)
    h = hashlib.sha256()
    for batch in plan_batches(plan):
        material = SweepCache.key_material(plan, grid_fp, machine_fp, batch)
        h.update(repr(tuple(material.values())).encode("utf-8"))
    h.update(repr((backend, n_shards, fail_policy)).encode("utf-8"))
    return h.hexdigest()


class Coalescer:
    """In-flight request folding, keyed by :func:`sweep_request_key`.

    Thread-safe.  The factory runs *under the lock*, which is what
    makes the guarantee airtight: between "no job for this key" and
    "this job owns the key" no other thread can observe the gap, so N
    racing identical requests produce exactly one factory call.
    Factories must therefore be cheap (create-and-enqueue, never run).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: dict[str, object] = {}
        #: Requests folded onto an existing job, total.
        self.coalesced = 0
        #: Jobs created (factory calls), total.
        self.created = 0

    def get_or_create(
        self, key: str, factory: Callable[[], object]
    ) -> tuple[object, bool]:
        """The in-flight job for ``key``, creating it if absent.

        Returns ``(job, created)``; ``created`` is True for the one
        caller whose factory ran, False for every coalesced follower.
        """
        with self._lock:
            job = self._inflight.get(key)
            if job is not None:
                self.coalesced += 1
                return job, False
            job = factory()
            self._inflight[key] = job
            self.created += 1
            return job, True

    def release(self, key: str, job: object) -> None:
        """Drop ``key`` once ``job`` is terminal (idempotent; a newer
        job under the same key is left alone)."""
        with self._lock:
            if self._inflight.get(key) is job:
                del self._inflight[key]

    def inflight(self) -> int:
        """Number of keys currently folded onto in-flight jobs."""
        with self._lock:
            return len(self._inflight)

    def describe(self) -> dict:
        """JSON-ready coalescer snapshot (health endpoint)."""
        with self._lock:
            return {
                "inflight_keys": len(self._inflight),
                "coalesced": self.coalesced,
                "created": self.created,
            }
