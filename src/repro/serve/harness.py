"""In-process daemon harness for tests, checks, and benchmarks.

Runs a :class:`~repro.serve.app.TuningDaemon` on an ephemeral port in a
background thread (its own asyncio loop) and exposes a tiny synchronous
client over ``http.client``.  This is the fixture the HTTP endpoint
tests, the ``service-degrade-parity`` check, and the serving benchmarks
all share — the daemon under test is the *real* daemon, byte-for-byte
the one ``repro-omp serve`` runs; only signal delivery is replaced (the
harness calls the drain entry point directly, since POSIX signals only
reach the main thread).
"""

from __future__ import annotations

import http.client
import json
import threading

from repro.errors import ServeError
from repro.serve.app import DaemonConfig, TuningDaemon

__all__ = ["DaemonHandle"]


class DaemonHandle:
    """One daemon, started on construction, stopped via :meth:`drain`."""

    def __init__(self, config: DaemonConfig, start_timeout_s: float = 15.0):
        self.daemon = TuningDaemon(config)
        self.shutdown_summary: dict | None = None
        self._failure: BaseException | None = None
        self._started = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="serve-harness", daemon=True
        )
        self._thread.start()
        if not self._started.wait(start_timeout_s):
            raise ServeError(
                f"daemon failed to start within {start_timeout_s}s"
                + (f": {self._failure}" if self._failure else "")
            )
        if self._failure is not None:
            raise ServeError(f"daemon failed to start: {self._failure}")

    def _run(self) -> None:
        import asyncio

        try:
            self.shutdown_summary = asyncio.run(
                self.daemon.serve(started=self._started)
            )
        except BaseException as exc:  # surface in the test, not a thread
            self._failure = exc
            self._started.set()

    @property
    def port(self) -> int:
        """The daemon's bound TCP port (raises until it is listening)."""
        port = self.daemon.port
        if port is None:
            raise ServeError("daemon is not listening")
        return port

    # -- client side -----------------------------------------------------
    def request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        headers: dict | None = None,
        timeout: float = 30.0,
    ) -> tuple[int, dict]:
        """One HTTP round trip; returns ``(status, parsed_json_body)``."""
        conn = http.client.HTTPConnection(
            "127.0.0.1", self.port, timeout=timeout
        )
        try:
            payload = None
            send_headers = dict(headers or {})
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                send_headers.setdefault("Content-Type", "application/json")
            conn.request(method, path, body=payload, headers=send_headers)
            response = conn.getresponse()
            raw = response.read()
            try:
                parsed = json.loads(raw.decode("utf-8")) if raw else {}
            except (json.JSONDecodeError, UnicodeDecodeError):
                parsed = {"raw": raw.decode("utf-8", "replace")}
            return response.status, parsed
        finally:
            conn.close()

    def stream_events(self, job_id: str,
                      timeout: float = 60.0) -> list[dict]:
        """Consume ``GET /jobs/<id>/events`` to its end; parsed lines."""
        status, body = self.request(
            "GET", f"/jobs/{job_id}/events", timeout=timeout
        )
        if status != 200:
            raise ServeError(f"events stream refused: {status} {body}")
        raw = body.get("raw") if isinstance(body, dict) else None
        if raw is None:
            # http.client decoded the chunked NDJSON into one blob that
            # json.loads can only parse when a single line was sent.
            return [body]
        lines = [line for line in raw.split("\n") if line]
        return [json.loads(line) for line in lines]

    def wait_for_state(self, job_id: str, states: tuple[str, ...],
                       timeout_s: float = 60.0,
                       poll_s: float = 0.05) -> dict:
        """Poll ``GET /jobs/<id>`` until its state lands in ``states``."""
        from repro.serve.limits import wall_clock

        deadline = wall_clock() + timeout_s
        while True:
            status, body = self.request("GET", f"/jobs/{job_id}")
            if status == 200 and body.get("state") in states:
                return body
            if wall_clock() >= deadline:
                raise ServeError(
                    f"job {job_id} did not reach {states} within "
                    f"{timeout_s}s (last: {status} {body})"
                )
            threading.Event().wait(poll_s)

    def wait_for_events(self, job_id: str, n_events: int,
                        timeout_s: float = 60.0,
                        poll_s: float = 0.02) -> dict:
        """Poll until the job has streamed at least ``n_events``."""
        from repro.serve.limits import wall_clock

        deadline = wall_clock() + timeout_s
        while True:
            status, body = self.request("GET", f"/jobs/{job_id}")
            if status == 200 and body.get("events", 0) >= n_events:
                return body
            if wall_clock() >= deadline:
                raise ServeError(
                    f"job {job_id} did not reach {n_events} event(s) "
                    f"within {timeout_s}s (last: {status} {body})"
                )
            threading.Event().wait(poll_s)

    # -- lifecycle -------------------------------------------------------
    def drain(self, timeout_s: float = 30.0) -> dict:
        """Graceful drain (the SIGTERM path) and join; the summary."""
        self.daemon.request_drain_threadsafe()
        self._thread.join(timeout_s)
        if self._thread.is_alive():
            raise ServeError(f"daemon did not drain within {timeout_s}s")
        if self._failure is not None:
            raise ServeError(f"daemon crashed during drain: {self._failure}")
        return self.shutdown_summary or {}

    stop = drain
