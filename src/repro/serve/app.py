"""The serving daemon's HTTP front end (``repro-omp serve``).

Hand-rolled on ``asyncio.start_server`` — no framework, no new
dependencies — because the robustness requirements reach *below* what
``http.server`` exposes: per-read timeouts so a slow client is shed
with ``408`` instead of pinning a connection, chunked streaming for
progress events, and a drain path that must coordinate the listener,
the job queue, and the journal.

Endpoint catalog (full semantics in ``docs/SERVING.md``):

====================== ====== ========================================
``/healthz``           GET    liveness + breaker/queue/limiter snapshot
``/readyz``            GET    503 while draining or saturated
``/sweep``             POST   submit a sweep job (202 + job id)
``/jobs/<id>``         GET    job status with degradation markers
``/jobs/<id>/records`` GET    full record dump of a finished job
``/jobs/<id>/events``  GET    chunked NDJSON progress stream
``/jobs/<id>/cancel``  POST   cooperative cancellation
``/recommend``         GET    synchronous tuning advice (504 past its
                              deadline, with the job id to poll)
``/lint``              POST   environment lint without a sweep
====================== ====== ========================================

Admission control runs in a fixed order — drain gate (``503``), rate
limit (``429`` + ``Retry-After``), coalescing (an identical in-flight
request is *answered from*, not re-queued), queue capacity (``429`` +
``Retry-After``) — so overload sheds at the cheapest possible point.

Every response body is built by :mod:`repro.serve.render` (FLOW001
result roots), so served results can never absorb host time.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path
from urllib.parse import parse_qs

from repro.core.envspace import EnvSpace
from repro.core.sweep import SweepPlan, run_sweep
from repro.errors import (
    ConfigError,
    ReproError,
    ResilienceError,
    ServeError,
    SweepCancelledError,
)
from repro.resilience.chaos import ChaosPlan
from repro.serve import render
from repro.serve.breaker import BackendLadder
from repro.serve.coalesce import Coalescer, sweep_request_key
from repro.serve.journal import JobJournal
from repro.serve.limits import TokenBucket, wall_clock
from repro.serve.queue import Job, JobQueue, QueueFull

__all__ = ["DaemonConfig", "TuningDaemon"]

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout", 409: "Conflict",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 502: "Bad Gateway",
    503: "Service Unavailable", 504: "Gateway Timeout",
}


@dataclass(frozen=True)
class DaemonConfig:
    """Everything ``repro-omp serve`` can tune (see docs/SERVING.md)."""

    host: str = "127.0.0.1"
    port: int = 0
    #: Default executor backend for served sweeps (ladder top).
    backend: str = "serial"
    n_shards: int = 1
    #: Worker threads = concurrently running sweeps.
    max_inflight: int = 2
    #: Bounded queue depth beyond the in-flight jobs.
    max_queued: int = 16
    #: Default per-request deadline (a request may set its own).
    deadline_s: float = 60.0
    #: Grace window a SIGTERM drain waits before cancelling.
    drain_grace_s: float = 5.0
    #: Per-read timeout while parsing a request (slow-client shedding).
    header_timeout_s: float = 5.0
    #: Largest accepted request body.
    body_limit: int = 1 << 20
    #: Token-bucket rate limit per client key.
    rate_per_s: float = 50.0
    burst: int = 100
    #: Sweep cache directory (shared with the CLI); None disables.
    cache_dir: str | None = None
    #: State directory for the drain journal; None disables resume.
    state_dir: str | None = None
    #: Circuit-breaker tuning.
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 30.0
    breaker_probes: int = 2
    #: fsync journal appends and cache entries (durability mode).
    fsync: bool = False
    #: File the bound port is written to once listening (subprocess
    #: orchestration; the CLI also prints it).
    port_file: str | None = None


def _plan_from_payload(payload: object) -> SweepPlan:
    """A ``SweepPlan`` from a request's ``plan`` object (strict)."""
    if not isinstance(payload, dict):
        raise ServeError("'plan' must be a JSON object")
    allowed = ("arch", "workloads", "scale", "repetitions", "inputs_limit",
               "seed", "fidelity", "prune")
    for key in payload:
        if key not in allowed:
            raise ServeError(f"unknown plan field {key!r}")
    if "arch" not in payload:
        raise ServeError("'plan.arch' is required")
    workloads = payload.get("workloads")
    if workloads is not None:
        if (not isinstance(workloads, list)
                or not all(isinstance(w, str) for w in workloads)):
            raise ServeError("'plan.workloads' must be a list of names")
        workloads = tuple(workloads)
    try:
        return SweepPlan(
            arch=payload["arch"],
            workload_names=workloads,
            scale=payload.get("scale", "small"),
            repetitions=int(payload.get("repetitions", 3)),
            inputs_limit=(None if payload.get("inputs_limit") is None
                          else int(payload["inputs_limit"])),
            seed=int(payload.get("seed", 0)),
            fidelity=payload.get("fidelity", "analytic"),
            prune=bool(payload.get("prune", True)),
        )
    except (ConfigError, TypeError, ValueError) as exc:
        raise ServeError(f"invalid plan: {exc}") from exc


class TuningDaemon:
    """The tuning-as-a-service daemon (construct, then :meth:`run`)."""

    def __init__(
        self,
        config: DaemonConfig,
        clock: Callable[[], float] = wall_clock,
    ):
        self.config = config
        self.clock = clock
        self.cache = None
        if config.cache_dir is not None:
            from repro.core.cache import SweepCache

            self.cache = SweepCache(config.cache_dir, fsync=config.fsync)
        self.journal = None
        if config.state_dir is not None:
            self.journal = JobJournal(
                Path(config.state_dir) / "jobs.journal",
                fsync=config.fsync,
            )
        self.ladder = BackendLadder(
            failure_threshold=config.breaker_threshold,
            cooldown_s=config.breaker_cooldown_s,
            probe_budget=config.breaker_probes,
            clock=clock,
        )
        self.limiter = TokenBucket(
            config.rate_per_s, config.burst, clock=clock
        )
        self.coalescer = Coalescer()
        self.queue = JobQueue(
            self._run_job,
            max_queued=config.max_queued,
            workers=config.max_inflight,
            journal=self.journal,
            clock=clock,
            on_settled=self._on_settled,
        )
        self._id_lock = threading.Lock()
        self._job_seq = (self.journal.next_job_number()
                         if self.journal is not None else 1)
        self.port: int | None = None
        self.resumed_job_ids: list[str] = []
        self.interrupted_job_ids: list[str] = []
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown: asyncio.Event | None = None

    # -- job plumbing ----------------------------------------------------
    def _next_job_id(self) -> str:
        with self._id_lock:
            job_id = f"j{self._job_seq:06d}"
            self._job_seq += 1
            return job_id

    def _on_settled(self, job: Job) -> None:
        if job.coalesce_key:
            self.coalescer.release(job.coalesce_key, job)

    def _run_job(self, job: Job) -> None:
        """Worker-thread body: one served sweep through the ladder.

        The requested backend's breaker ladder decides the rung order;
        a :class:`~repro.errors.ResilienceError` (PoisonBatch, node
        loss, respawn exhaustion) books a breaker failure and falls to
        the next rung — re-running against the same cache, so work the
        broken rung landed is not repaid.  Injected chaos (the
        ``backend-death-mid-request`` service fault) rides only the
        *first* rung: fallback rungs model healthy infrastructure.
        """
        params = job.params
        plan = _plan_from_payload(params.get("plan"))
        requested = params.get("backend", self.config.backend)
        ladder = self.ladder.ladder_for(requested)
        rungs = self.ladder.rungs_for(requested)
        job.backend_requested = requested
        n_shards = int(params.get("n_shards", self.config.n_shards))
        n_processes = int(params.get("n_processes", 2))
        fail_policy = params.get("fail_policy", "raise")
        throttle_s = float(params.get("throttle_s", 0.0))
        chaos = (ChaosPlan.from_dict(params["chaos"])
                 if params.get("chaos") else None)
        last_exc: Exception | None = None
        for rung_index, rung in enumerate(rungs):
            rung_chaos = chaos if rung_index == 0 else None

            def progress(done, total, app, input_size, nthreads,
                         _rung=rung):
                job.add_event({
                    "batches_done": done,
                    "batches_total": total,
                    "app": app,
                    "input": input_size,
                    "threads": nthreads,
                    "backend": _rung,
                })
                if throttle_s > 0.0:
                    # Waiting on the cancel event sleeps *and* wakes
                    # early on cancellation — a deliberate test seam
                    # for deterministic mid-sweep drains.
                    job.cancel_event.wait(throttle_s)

            try:
                result = run_sweep(
                    plan,
                    n_processes=n_processes,
                    progress=progress,
                    cache=self.cache,
                    fail_policy=fail_policy,
                    chaos=rung_chaos,
                    backend=rung,
                    n_shards=n_shards,
                    cancel=job.cancel_event,
                )
            except SweepCancelledError:
                raise  # deadline/drain/cancel: never a backend's fault
            except ResilienceError as exc:
                self.ladder.record(rung, ok=False)
                last_exc = exc
                job.add_event({
                    "backend": rung,
                    "degrade": f"{type(exc).__name__}: {exc}",
                })
                continue
            self.ladder.record(rung, ok=True)
            job.backend_used = result.backend
            job.degraded = result.backend != ladder[0]
            job.result = result
            job.records = list(result.records)
            job.summary = render.sweep_summary_payload(result)
            return
        raise last_exc if last_exc is not None else ServeError(
            f"no dispatchable backend for {requested!r}"
        )

    def _make_sweep_job(self, params: dict, client: str,
                        coalesce_key: str) -> Job:
        job = Job(
            self._next_job_id(),
            params,
            kind="sweep",
            client=client,
            coalesce_key=coalesce_key,
            deadline_s=float(
                params.get("deadline_s", self.config.deadline_s)
            ),
        )
        return job

    def _submit_sweep(self, params: dict, client: str) -> tuple[Job, bool]:
        """Coalesce-or-enqueue one sweep request (see admission order)."""
        plan = _plan_from_payload(params.get("plan"))
        key = sweep_request_key(
            plan,
            EnvSpace(),
            backend=params.get("backend", self.config.backend),
            n_shards=int(params.get("n_shards", self.config.n_shards)),
            fail_policy=params.get("fail_policy", "raise"),
        )

        def factory() -> Job:
            job = self._make_sweep_job(params, client, key)
            self.queue.submit(job)
            return job

        job, created = self.coalescer.get_or_create(key, factory)
        return job, created

    def resume_unfinished(self) -> list[str]:
        """Re-enqueue journaled non-terminal jobs (restart path)."""
        if self.journal is None:
            return []
        resumed = []
        for view in self.journal.unfinished():
            job = Job(
                view["id"],
                view["params"],
                kind="sweep",
                client=view.get("client", ""),
                coalesce_key=view.get("coalesce_key", ""),
                deadline_s=float(
                    view["params"].get("deadline_s",
                                       self.config.deadline_s)
                ),
            )
            job.detail = "resumed from journal"
            if job.coalesce_key:
                self.coalescer.get_or_create(job.coalesce_key, lambda: job)
            self.queue.submit(job)
            resumed.append(job.id)
        self.resumed_job_ids = resumed
        return resumed

    # -- HTTP plumbing ---------------------------------------------------
    async def _respond(
        self, writer: asyncio.StreamWriter, status: int, payload: dict,
        extra_headers: tuple = (), keep: bool = True,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep else 'close'}",
        ]
        for name, value in extra_headers:
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("utf-8"))
        writer.write(body)
        await writer.drain()

    async def _read_request(self, reader: asyncio.StreamReader):
        """Parse one request; returns (method, path, qs, headers, body)
        or an int HTTP status to shed the connection with."""
        timeout = self.config.header_timeout_s
        try:
            request_line = await asyncio.wait_for(
                reader.readline(), timeout
            )
        except asyncio.TimeoutError:
            return 408
        if not request_line:
            return None  # clean EOF between keep-alive requests
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            return 400
        method, target = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            try:
                line = await asyncio.wait_for(reader.readline(), timeout)
            except asyncio.TimeoutError:
                return 408
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                return 400  # EOF mid-headers
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                return 400
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            return 400
        if length < 0:
            return 400
        if length > self.config.body_limit:
            return 413
        body = b""
        if length:
            try:
                body = await asyncio.wait_for(
                    reader.readexactly(length), timeout
                )
            except asyncio.TimeoutError:
                return 408
            except asyncio.IncompleteReadError:
                return 400
        path, _, query = target.partition("?")
        return method, path, parse_qs(query), headers, body

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                if isinstance(request, int):
                    detail = {
                        408: "client too slow: request read timed out",
                        413: "request body exceeds the size limit",
                    }.get(request, "malformed request")
                    await self._respond(
                        writer, request, {"error": detail}, keep=False
                    )
                    break
                keep = await self._dispatch(writer, *request)
                if not keep:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # CancelledError: the loop is shutting down mid-close;
                # the socket is gone either way.
                pass

    def _client_key(self, headers: dict, payload: object, peer) -> str:
        key = headers.get("x-client-key", "")
        if not key and isinstance(payload, dict):
            key = str(payload.get("client", ""))
        if not key:
            key = peer[0] if isinstance(peer, tuple) else str(peer)
        return key or "anonymous"

    async def _dispatch(self, writer, method, path, qs, headers,
                        body) -> bool:
        """Route one parsed request; True to keep the connection."""
        peer = writer.get_extra_info("peername")
        keep = headers.get("connection", "").lower() != "close"
        try:
            if path == "/healthz" and method == "GET":
                await self._respond(writer, 200, self._health_payload())
            elif path == "/readyz" and method == "GET":
                ready, payload = self._ready_payload()
                await self._respond(
                    writer, 200 if ready else 503, payload
                )
            elif path == "/sweep" and method == "POST":
                await self._post_sweep(writer, headers, body, peer)
            elif path == "/lint" and method == "POST":
                await self._post_lint(writer, body)
            elif path == "/recommend" and method == "GET":
                await self._get_recommend(writer, qs, headers, peer)
            elif path.startswith("/jobs/"):
                return await self._jobs_route(
                    writer, method, path, keep
                )
            else:
                await self._respond(
                    writer, 404, {"error": f"no route {method} {path}"}
                )
        except (ServeError, ConfigError) as exc:
            # ConfigError here means the *request* described an invalid
            # plan (bad scale, unknown workload): the client's fault.
            await self._respond(writer, 400, {"error": str(exc)})
        except ReproError as exc:
            await self._respond(
                writer, 500,
                {"error": f"{type(exc).__name__}: {exc}"},
            )
        return keep

    # -- endpoint bodies -------------------------------------------------
    def _health_payload(self) -> dict:
        payload = {
            "status": "ok",
            "draining": self.queue.draining,
            "jobs": len(self.queue.jobs),
            "queue": self.queue.describe(),
            "breakers": self.ladder.describe(),
            "limiter": self.limiter.describe(),
            "coalescer": self.coalescer.describe(),
        }
        if self.cache is not None:
            stats = self.cache.stats
            payload["cache"] = {
                "entries": stats["entries"],
                "hits": stats["hits"],
                "misses": stats["misses"],
                "writes": stats["writes"],
                "lost_races": stats["lost_races"],
                "corrupt": stats["corrupt"],
            }
        return payload

    def _ready_payload(self) -> tuple[bool, dict]:
        queued, running = self.queue.depth()
        if self.queue.draining:
            return False, {"ready": False, "reason": "draining"}
        if queued >= self.queue.max_queued:
            return False, {"ready": False, "reason": "queue full"}
        return True, {"ready": True}

    async def _admit(self, writer, headers, payload, peer) -> str | None:
        """Shared admission gates; returns the client key, or None if a
        refusal response was already sent."""
        if self.queue.draining:
            await self._respond(
                writer, 503,
                {"error": "daemon is draining; not admitting jobs"},
                extra_headers=(("Retry-After", "5"),),
            )
            return None
        client = self._client_key(headers, payload, peer)
        wait_s = self.limiter.try_acquire(client)
        if wait_s > 0.0:
            await self._respond(
                writer, 429,
                {"error": "rate limit exceeded", "client": client,
                 "retry_after_s": round(wait_s, 3)},
                extra_headers=(
                    ("Retry-After", str(max(1, int(wait_s + 0.999)))),
                ),
            )
            return None
        return client

    async def _post_sweep(self, writer, headers, body, peer) -> None:
        try:
            params = json.loads(body.decode("utf-8") or "null")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            await self._respond(
                writer, 400, {"error": f"invalid JSON body: {exc}"}
            )
            return
        if not isinstance(params, dict):
            await self._respond(
                writer, 400, {"error": "body must be a JSON object"}
            )
            return
        client = await self._admit(writer, headers, params, peer)
        if client is None:
            return
        try:
            job, created = await asyncio.to_thread(
                self._submit_sweep, params, client
            )
        except QueueFull as exc:
            await self._respond(
                writer, 429,
                {"error": str(exc),
                 "retry_after_s": exc.retry_after_s},
                extra_headers=(
                    ("Retry-After",
                     str(max(1, int(exc.retry_after_s + 0.999)))),
                ),
            )
            return
        except ServeError as exc:
            status = 503 if "draining" in str(exc) else 400
            await self._respond(writer, status, {"error": str(exc)})
            return
        payload = render.job_payload(job.view())
        payload["coalesced"] = not created
        await self._respond(writer, 202, payload)

    async def _post_lint(self, writer, body) -> None:
        from repro.lint.runner import lint_environment

        try:
            params = json.loads(body.decode("utf-8") or "null")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            await self._respond(
                writer, 400, {"error": f"invalid JSON body: {exc}"}
            )
            return
        if not isinstance(params, dict) or "arch" not in params:
            await self._respond(
                writer, 400,
                {"error": "body must be {'arch': ..., 'env': {...}}"},
            )
            return
        env = params.get("env", {})
        if not isinstance(env, dict):
            await self._respond(
                writer, 400, {"error": "'env' must be an object"}
            )
            return
        try:
            findings = await asyncio.to_thread(
                lint_environment,
                {str(k): str(v) for k, v in env.items()},
                params["arch"],
            )
        except ReproError as exc:
            await self._respond(writer, 400, {"error": str(exc)})
            return
        await self._respond(writer, 200, {
            "n_findings": len(findings),
            "n_errors": sum(1 for f in findings if f.severity.fails),
            "findings": [f.to_dict() for f in findings],
        })

    async def _get_recommend(self, writer, qs, headers, peer) -> None:
        def first(name: str, default: str | None = None) -> str | None:
            values = qs.get(name)
            return values[0] if values else default

        if first("arch") is None:
            await self._respond(
                writer, 400, {"error": "query parameter 'arch' is required"}
            )
            return
        plan_payload: dict = {"arch": first("arch")}
        if qs.get("workload"):
            plan_payload["workloads"] = qs["workload"]
        for name, cast in (("scale", str), ("repetitions", int),
                           ("inputs_limit", int), ("seed", int),
                           ("fidelity", str)):
            raw = first(name)
            if raw is not None:
                try:
                    plan_payload[name] = cast(raw)
                except ValueError:
                    await self._respond(
                        writer, 400,
                        {"error": f"invalid value for {name!r}: {raw!r}"},
                    )
                    return
        params = {"plan": plan_payload}
        backend = first("backend")
        if backend is not None:
            params["backend"] = backend
        try:
            deadline_s = float(
                first("deadline_s", str(self.config.deadline_s))
            )
            quantile = float(first("quantile", "0.05"))
            min_lift = float(first("min_lift", "1.3"))
        except ValueError as exc:
            await self._respond(
                writer, 400, {"error": f"invalid numeric parameter: {exc}"}
            )
            return
        params["deadline_s"] = deadline_s
        client = await self._admit(writer, headers, params, peer)
        if client is None:
            return
        try:
            job, _created = await asyncio.to_thread(
                self._submit_sweep, params, client
            )
        except QueueFull as exc:
            await self._respond(
                writer, 429,
                {"error": str(exc), "retry_after_s": exc.retry_after_s},
                extra_headers=(
                    ("Retry-After",
                     str(max(1, int(exc.retry_after_s + 0.999)))),
                ),
            )
            return
        # Synchronous wait under the *request's* deadline.  The job is
        # deliberately not cancelled on expiry: it keeps running (and
        # warming the cache), and the 504 body carries its id to poll.
        deadline = self.clock() + deadline_s
        while not job.done_event.is_set() and self.clock() < deadline:
            await asyncio.sleep(0.02)
        if not job.done_event.is_set():
            await self._respond(
                writer, 504,
                {"error": "recommendation not ready within the deadline",
                 "job_id": job.id, "state": job.state},
            )
            return
        if job.state != "done" or job.records is None:
            await self._respond(
                writer, 502,
                {"error": f"underlying sweep {job.state}",
                 "job": render.job_payload(job.view())},
            )
            return
        settings = await asyncio.to_thread(
            self._recommendations, job.records, quantile, min_lift
        )
        payload = render.recommend_payload(settings, quantile, min_lift)
        payload["job"] = render.job_payload(job.view())
        await self._respond(writer, 200, payload)

    @staticmethod
    def _recommendations(records, quantile: float,
                         min_lift: float) -> list[dict]:
        from repro.core.dataset import (
            aggregate_runs,
            enrich_with_speedup,
            records_to_table,
        )
        from repro.core.recommend import best_variable_values

        table = enrich_with_speedup(
            aggregate_runs(records_to_table(records))
        )
        return [
            {
                "app": rec.app,
                "arch": rec.arch,
                "variable": rec.variable,
                "values": list(rec.values),
                "lift": rec.lift,
                "best_speedup": rec.best_speedup,
            }
            for rec in best_variable_values(
                table, quantile=quantile, min_lift=min_lift
            )
        ]

    async def _jobs_route(self, writer, method, path, keep) -> bool:
        parts = path.strip("/").split("/")
        job = self.queue.get(parts[1]) if len(parts) >= 2 else None
        if job is None:
            await self._respond(
                writer, 404, {"error": f"unknown job {path!r}"}
            )
            return keep
        sub = parts[2] if len(parts) == 3 else ""
        if sub == "" and method == "GET":
            await self._respond(writer, 200, render.job_payload(job.view()))
        elif sub == "records" and method == "GET":
            if job.state != "done" or job.records is None:
                await self._respond(
                    writer, 409,
                    {"error": f"job {job.id} is {job.state}, not done",
                     "state": job.state},
                )
            else:
                await self._respond(
                    writer, 200, render.records_payload(job.records)
                )
        elif sub == "cancel" and method == "POST":
            if self.queue.cancel(job.id):
                await self._respond(
                    writer, 202, {"job_id": job.id, "cancelling": True}
                )
            else:
                await self._respond(
                    writer, 409,
                    {"error": f"job {job.id} already {job.state}"},
                )
        elif sub == "events" and method == "GET":
            await self._stream_events(writer, job)
            return False  # chunked stream ends the connection
        else:
            await self._respond(
                writer, 405, {"error": f"no route {method} {path}"}
            )
        return keep

    async def _stream_events(self, writer, job: Job) -> None:
        """Chunked NDJSON progress stream until the job settles."""
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("utf-8"))

        async def chunk(obj: dict) -> None:
            data = (json.dumps(obj) + "\n").encode("utf-8")
            writer.write(f"{len(data):x}\r\n".encode("ascii"))
            writer.write(data + b"\r\n")
            await writer.drain()

        seq = 0
        while True:
            for event in job.events_since(seq):
                await chunk(event)
                seq += 1
            if job.settled:
                await chunk({"state": job.state, "final": True})
                break
            await asyncio.sleep(0.05)
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    # -- lifecycle -------------------------------------------------------
    def request_drain(self) -> None:
        """Begin a graceful drain (signal handler / harness entry)."""
        self.queue.begin_drain()
        if self._shutdown is not None:
            self._shutdown.set()

    def request_drain_threadsafe(self) -> None:
        """Like :meth:`request_drain`, callable from any thread."""
        loop = self._loop
        if loop is not None:
            loop.call_soon_threadsafe(self.request_drain)

    async def serve(self, started: threading.Event | None = None) -> dict:
        """Run until drained; returns a shutdown summary."""
        self.queue.start()
        self.resume_unfinished()
        server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        self.port = server.sockets[0].getsockname()[1]
        if self.config.port_file:
            Path(self.config.port_file).write_text(
                str(self.port), encoding="utf-8"
            )
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(signum, self.request_drain)
            except (NotImplementedError, RuntimeError, ValueError):
                # Not the main thread (harness mode) or unsupported
                # platform: the harness drives drain directly instead.
                break
        if started is not None:
            started.set()
        try:
            await self._shutdown.wait()
        finally:
            server.close()
            await server.wait_closed()
            self.interrupted_job_ids = await asyncio.to_thread(
                self.queue.drain, self.config.drain_grace_s
            )
        return {
            "resumed": self.resumed_job_ids,
            "interrupted": self.interrupted_job_ids,
        }

    def run(self) -> dict:
        """Blocking entry point (the CLI's ``repro-omp serve``)."""
        return asyncio.run(self.serve())
