"""The drain journal: queued jobs survive SIGTERM — and SIGKILL.

When the daemon is told to drain it stops admitting, flushes landed
batches to the sweep cache, and records every non-terminal job here so
a restarted daemon resumes them.  The journal must therefore survive
the *worst* shutdown, not the polite one: the ``kill-during-drain``
chaos fault SIGKILLs the process midway through the drain window, so
the format is designed around torn tails:

- **append-only JSONL** — one JSON object per line, two op kinds::

      {"op": "submit", "id": "j000001", "params": {...},
       "coalesce_key": "...", "client": "ci"}
      {"op": "state", "id": "j000001", "state": "running"}

  A job's journal view is its ``submit`` op folded with its latest
  ``state`` op.  Appends are flushed line-at-a-time, so a kill can tear
  at most the final line,
- **torn-tail tolerance** — replay parses line by line and *silently
  drops* a trailing line that does not parse (the torn write); a
  malformed line in the interior is dropped too, but counted, because
  that is corruption rather than a tear,
- **no clocks, no RNG** — job ids are a persistent counter
  (``j%06d``), continued from the replayed maximum, so a restart never
  reuses or reorders ids and the journal is byte-reproducible for a
  given request sequence.

Jobs whose latest state is **terminal** (``done``, ``failed``,
``cancelled``, ``expired``) are not resumed.  Anything else — still
``queued``, caught ``running``, or explicitly marked ``interrupted``
by the drain — comes back.  Resumed sweeps rerun against the same
cache, so work that landed before the kill is a cache hit and only the
genuinely unfinished tail recomputes.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

__all__ = ["TERMINAL_STATES", "JobJournal"]

#: Job states that a restart must NOT resume.
TERMINAL_STATES = ("done", "failed", "cancelled", "expired")


class JobJournal:
    """Append-only JSONL journal rooted at one file.

    Not thread-safe by itself — the job queue serializes appends under
    its own lock (one writer), which also keeps line order equal to
    event order.
    """

    def __init__(self, path: str | os.PathLike, fsync: bool = False):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        #: Interior lines dropped as corrupt during the last replay.
        self.corrupt_lines = 0

    def append(self, op: dict) -> None:
        """Append one op, flushed so a later kill tears at most a tail."""
        line = json.dumps(op, sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())

    def submit(self, job_id: str, params: dict, coalesce_key: str = "",
               client: str = "") -> None:
        """Record a job's admission (its parameters travel here)."""
        self.append({
            "op": "submit",
            "id": job_id,
            "params": params,
            "coalesce_key": coalesce_key,
            "client": client,
        })

    def state(self, job_id: str, state: str, detail: str = "") -> None:
        """Record a job's state transition."""
        op = {"op": "state", "id": job_id, "state": state}
        if detail:
            op["detail"] = detail
        self.append(op)

    def replay(self) -> dict[str, dict]:
        """Fold the journal into ``{job_id: view}`` in submit order.

        Each view is the submit op's fields plus ``state`` (latest;
        ``"queued"`` if only the submit landed).  A missing journal
        file is an empty history.  The torn tail and interior
        corruption are handled per the module docstring.
        """
        self.corrupt_lines = 0
        try:
            raw = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return {}
        # A well-formed journal ends with a newline; a kill mid-append
        # leaves a final line with no terminator, which either still
        # parses (the tear hit between the bytes and the newline — keep
        # it) or does not (drop it silently below).
        lines = [line for line in raw.split("\n") if line]
        views: dict[str, dict] = {}
        last = len(lines) - 1
        for n, line in enumerate(lines):
            try:
                op = json.loads(line)
                kind = op["op"]
            except (json.JSONDecodeError, TypeError, KeyError):
                if n == last:
                    continue  # torn tail (kill mid-append): expected
                self.corrupt_lines += 1
                continue
            if kind == "submit":
                views[op["id"]] = {
                    "id": op["id"],
                    "params": op.get("params", {}),
                    "coalesce_key": op.get("coalesce_key", ""),
                    "client": op.get("client", ""),
                    "state": "queued",
                }
            elif kind == "state":
                view = views.get(op.get("id"))
                if view is not None:
                    view["state"] = op.get("state", view["state"])
                    if op.get("detail"):
                        view["detail"] = op["detail"]
        return views

    def unfinished(self) -> list[dict]:
        """Replayed views needing resume, in original submit order."""
        return [
            view for view in self.replay().values()
            if view["state"] not in TERMINAL_STATES
        ]

    def next_job_number(self) -> int:
        """One past the highest job number ever journaled (1 if none).

        Keeps ids unique across restarts without a clock or RNG.
        """
        highest = 0
        for job_id in self.replay():
            try:
                highest = max(highest, int(job_id.lstrip("j")))
            except ValueError:
                continue
        return highest + 1
