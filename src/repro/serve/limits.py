"""Admission limits: per-client token buckets, and the serve clock.

This module owns the serving package's **only** wall-clock read,
:func:`wall_clock`.  Every other serve module takes a ``clock``
callable (defaulting to it), so deadline and rate-limit logic is unit
testable with a fake clock and the SIM001 determinism lint has exactly
one reasoned waiver to point at.  Nothing read from this clock may ever
flow into records — it gates *admission and deadlines*, never results
(the FLOW001 result roots in :mod:`repro.serve.render` pin that).
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable

from repro.errors import ConfigError

__all__ = ["TokenBucket", "wall_clock"]


def wall_clock() -> float:
    """Monotonic seconds — the single host-clock read of the package."""
    return time.monotonic()


class TokenBucket:
    """Per-client-key token buckets: ``rate`` tokens/s, ``burst`` deep.

    A client key (header, body field, or peer address — the app layer
    decides) gets its own bucket lazily; a request costs one token.
    :meth:`try_acquire` returns ``0.0`` when admitted, else the seconds
    until a token will be available — the app maps that straight onto a
    ``429`` with ``Retry-After``.  Thread-safe: the HTTP layer and the
    queue's workers may consult it concurrently.
    """

    def __init__(
        self,
        rate: float,
        burst: int,
        clock: Callable[[], float] = wall_clock,
        max_clients: int = 1024,
    ):
        if rate <= 0:
            raise ConfigError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ConfigError(f"burst must be >= 1, got {burst}")
        if max_clients < 1:
            raise ConfigError(f"max_clients must be >= 1, got {max_clients}")
        self.rate = float(rate)
        self.burst = int(burst)
        self.clock = clock
        self.max_clients = max_clients
        #: key -> [tokens, last_refill] (insertion order = admission
        #: order, which is what the eviction below relies on).
        self._buckets: dict[str, list[float]] = {}
        self._lock = threading.Lock()
        #: Requests rejected for rate, total (health endpoint counter).
        self.rejected = 0

    def _refill(self, bucket: list[float], now: float) -> None:
        tokens, last = bucket
        tokens = min(self.burst, tokens + (now - last) * self.rate)
        bucket[0] = tokens
        bucket[1] = now

    def try_acquire(self, key: str) -> float:
        """Admit one request for ``key``: 0.0, or seconds to retry after."""
        now = self.clock()
        with self._lock:
            bucket = self._buckets.get(key)
            if bucket is None:
                if len(self._buckets) >= self.max_clients:
                    # Evict the longest-untouched bucket: an abandoned
                    # client must not pin memory forever.  Buckets
                    # re-created later start full, which only ever errs
                    # in the client's favor.
                    oldest = min(self._buckets,
                                 key=lambda k: self._buckets[k][1])
                    del self._buckets[oldest]
                bucket = [float(self.burst), now]
                self._buckets[key] = bucket
            self._refill(bucket, now)
            if bucket[0] >= 1.0:
                bucket[0] -= 1.0
                return 0.0
            self.rejected += 1
            return max((1.0 - bucket[0]) / self.rate, 0.001)

    def tokens(self, key: str) -> float:
        """Current token balance for ``key`` (full burst if unseen)."""
        now = self.clock()
        with self._lock:
            bucket = self._buckets.get(key)
            if bucket is None:
                return float(self.burst)
            self._refill(bucket, now)
            return bucket[0]

    def describe(self) -> dict:
        """JSON-ready limiter snapshot (health endpoint)."""
        with self._lock:
            return {
                "rate_per_s": self.rate,
                "burst": self.burst,
                "clients": len(self._buckets),
                "rejected": self.rejected,
            }
