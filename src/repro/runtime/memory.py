"""Memory-system effects: bandwidth saturation and placement locality.

The memory fraction of a region's time is exposed to two effects:

- **Bandwidth saturation.** The team demands
  ``bw_per_thread_gbps x active threads``; the placement determines the
  bandwidth actually reachable (bound teams reach the controllers of the
  NUMA nodes they occupy, unbound teams reach a scattered
  ``unbound_bw_efficiency`` of the machine).  Past saturation the time
  dilates by the demand ratio plus a machine-specific *superlinear*
  congestion term — fabric queueing — which is what makes thread-count
  tuning pay off on Milan (NPS4, gamma = 3) but not on Skylake or the
  HBM-fed A64FX.
- **Migration locality.** Unbound teams drift off their first-touch NUMA
  node; latency-sensitive (``random_access``) regions pay the machine's
  average remote-access premium weighted by a migration exposure that
  grows with the number of NUMA domains (many small domains churn more).
"""

from __future__ import annotations

from repro.arch.topology import MachineTopology
from repro.runtime.affinity import ThreadPlacement
from repro.runtime.costs import RuntimeCosts

__all__ = [
    "available_bandwidth_gbps",
    "migration_exposure",
    "memory_time_factor",
]

#: Scheduler NUMA-affinity half-saturation constant: machines with about
#: this many NUMA domains see ~50% migration exposure.
_SCHED_AFFINITY_STRENGTH = 6.0


def available_bandwidth_gbps(
    placement: ThreadPlacement, costs: RuntimeCosts
) -> float:
    """Memory bandwidth the team can actually draw on."""
    m = placement.machine
    if placement.bound:
        return placement.n_numa_used * m.mem_bw_per_numa_gbps
    return costs.unbound_bw_efficiency * m.total_mem_bw_gbps


def migration_exposure(machine: MachineTopology) -> float:
    """Fraction of runtime an unbound thread spends off its data's node.

    Grows with NUMA-domain count: Linux keeps threads near their memory on
    a 2-node Skylake far better than across Milan's 8 small nodes.
    """
    n = machine.n_numa
    if n <= 1:
        return 0.0
    random_fraction = (n - 1) / n
    scheduler_churn = n / (n + _SCHED_AFFINITY_STRENGTH)
    return random_fraction * scheduler_churn


def memory_time_factor(
    placement: ThreadPlacement,
    costs: RuntimeCosts,
    bw_per_thread_gbps: float,
    random_access: bool,
) -> float:
    """Multiplier on a region's memory-time fraction (>= 1).

    Combines the saturation dilation and, for latency-sensitive access,
    the unbound-migration premium.
    """
    factor = 1.0
    m = placement.machine

    if bw_per_thread_gbps > 0.0:
        demand = bw_per_thread_gbps * float(placement.effective_speed().sum())
        avail = available_bandwidth_gbps(placement, costs)
        ratio = demand / max(avail, 1e-9)
        if ratio > 1.0:
            factor *= ratio + costs.congestion_gamma * (ratio - 1.0) ** 2

    if random_access and not placement.bound:
        exposure = migration_exposure(m)
        remote_premium = m.mean_numa_distance() - 1.0
        factor *= 1.0 + exposure * remote_premium

    return factor
