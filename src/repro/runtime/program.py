"""Program abstraction: what an OpenMP application looks like to libomp.

The env-var sweep observes each benchmark purely through its runtime
behaviour, so a benchmark is modeled as the sequence of phases the runtime
executes:

- :class:`SerialPhase` — single-threaded work between parallel regions,
- :class:`LoopRegion` — a worksharing loop (``#pragma omp parallel for``)
  with an iteration-cost profile, memory characteristics and trailing
  reductions,
- :class:`TaskRegion` — a task-spawning region (``#pragma omp parallel``
  + recursive ``task``), described by its spawn-tree shape.

Regions carry a ``trips`` count: NPB-style apps run the same region
hundreds of times, and the executor prices one invocation and multiplies —
this compression is what makes quarter-million-sample sweeps tractable.
``gap_work`` is the serial work between consecutive invocations of the
region; together with ``KMP_BLOCKTIME`` it decides whether worker threads
fall asleep between regions (and must be woken at the next fork).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import WorkloadError

__all__ = ["LoadPattern", "SerialPhase", "LoopRegion", "TaskRegion", "Program"]


class LoadPattern(str, enum.Enum):
    """Iteration-cost profile of a worksharing loop."""

    #: All iterations cost the same (EP, XSBench-style lookup loops).
    UNIFORM = "uniform"
    #: Cost ramps linearly across the iteration space (triangular solves,
    #: LU panels); ``imbalance`` is the relative slope in [0, 2).
    LINEAR = "linear"
    #: Iteration costs are i.i.d. lognormal-ish; ``imbalance`` is the
    #: relative standard deviation (sparse rows, health-care regions).
    RANDOM = "random"


@dataclass(frozen=True)
class SerialPhase:
    """Single-threaded work (initialization, I/O, inter-region glue)."""

    work: float  # work units (reference-core seconds)
    name: str = "serial"

    def __post_init__(self) -> None:
        if self.work < 0:
            raise WorkloadError(f"serial phase {self.name!r} has negative work")


@dataclass(frozen=True)
class LoopRegion:
    """One worksharing-loop parallel region.

    Parameters
    ----------
    n_iters:
        Loop trip count of the worksharing loop.
    iter_work:
        Mean work units per iteration.
    pattern, imbalance:
        Iteration-cost profile (see :class:`LoadPattern`).
    mem_intensity:
        Fraction of the region's time that is memory traffic (0..1); that
        fraction is exposed to bandwidth/locality effects.
    bw_per_thread_gbps:
        Bandwidth one full-speed thread demands during its memory fraction.
    random_access:
        True for pointer-chasing/table-lookup access (latency sensitive,
        migration hurts), False for streaming.
    n_reductions:
        Scalar reduction variables combined at region end.
    trips:
        How many times the region executes.
    gap_work:
        Serial work units between consecutive invocations.
    fixed_schedule, fixed_chunk:
        A ``schedule(...)`` clause compiled into the loop.  When set the
        region ignores ``OMP_SCHEDULE`` entirely — only loops without a
        clause follow the environment (XSBench, for example, hard-codes
        ``schedule(dynamic, 100)``).
    """

    name: str
    n_iters: int
    iter_work: float
    pattern: LoadPattern = LoadPattern.UNIFORM
    imbalance: float = 0.0
    mem_intensity: float = 0.0
    bw_per_thread_gbps: float = 0.0
    random_access: bool = False
    n_reductions: int = 0
    trips: int = 1
    gap_work: float = 0.0
    fixed_schedule: str | None = None
    fixed_chunk: int | None = None

    def __post_init__(self) -> None:
        if self.n_iters < 1:
            raise WorkloadError(f"loop {self.name!r}: n_iters must be >= 1")
        if self.iter_work <= 0:
            raise WorkloadError(f"loop {self.name!r}: iter_work must be > 0")
        if not 0.0 <= self.mem_intensity <= 1.0:
            raise WorkloadError(f"loop {self.name!r}: mem_intensity outside [0,1]")
        if self.imbalance < 0 or (
            self.pattern is LoadPattern.LINEAR and self.imbalance >= 2.0
        ):
            raise WorkloadError(
                f"loop {self.name!r}: imbalance {self.imbalance} out of range"
            )
        if self.n_reductions < 0 or self.trips < 1 or self.gap_work < 0:
            raise WorkloadError(f"loop {self.name!r}: negative counts")
        if self.bw_per_thread_gbps < 0:
            raise WorkloadError(f"loop {self.name!r}: negative bandwidth demand")
        if self.fixed_schedule is not None and self.fixed_schedule not in (
            "static",
            "dynamic",
            "guided",
        ):
            raise WorkloadError(
                f"loop {self.name!r}: bad fixed schedule {self.fixed_schedule!r}"
            )
        if self.fixed_chunk is not None and self.fixed_chunk < 1:
            raise WorkloadError(f"loop {self.name!r}: fixed_chunk must be >= 1")

    @property
    def total_work(self) -> float:
        """Work units of one invocation."""
        return self.n_iters * self.iter_work


@dataclass(frozen=True)
class TaskRegion:
    """One task-parallel region described by its spawn tree.

    The tree has ``branching ** depth`` leaves doing ``leaf_work`` each and
    interior nodes doing ``node_work``; this is the shape of BOTS' recursive
    divide-and-conquer benchmarks.
    """

    name: str
    depth: int
    branching: int
    leaf_work: float
    node_work: float = 0.0
    #: Relative leaf-work dispersion (0 = perfectly regular tree).
    leaf_sigma: float = 0.0
    mem_intensity: float = 0.0
    bw_per_thread_gbps: float = 0.0
    random_access: bool = False
    trips: int = 1
    gap_work: float = 0.0

    def __post_init__(self) -> None:
        if self.depth < 0 or self.branching < 1:
            raise WorkloadError(f"task region {self.name!r}: bad tree shape")
        if self.leaf_work <= 0 or self.node_work < 0:
            raise WorkloadError(f"task region {self.name!r}: bad work amounts")
        if self.leaf_sigma < 0:
            raise WorkloadError(f"task region {self.name!r}: negative sigma")
        if not 0.0 <= self.mem_intensity <= 1.0:
            raise WorkloadError(f"task region {self.name!r}: mem_intensity range")
        if self.trips < 1 or self.gap_work < 0:
            raise WorkloadError(f"task region {self.name!r}: negative counts")

    @property
    def n_leaves(self) -> int:
        """Leaf count of the spawn tree."""
        return self.branching**self.depth

    @property
    def n_tasks(self) -> int:
        """Total tasks (interior + leaves)."""
        b = self.branching
        if b == 1:
            return self.depth + 1
        return (b ** (self.depth + 1) - 1) // (b - 1)

    @property
    def total_work(self) -> float:
        """Work units of one invocation."""
        interior = self.n_tasks - self.n_leaves
        return self.n_leaves * self.leaf_work + interior * self.node_work

    @property
    def critical_path_work(self) -> float:
        """Root-to-leaf work (the tasking parallelism floor)."""
        return self.depth * self.node_work + self.leaf_work


Phase = SerialPhase | LoopRegion | TaskRegion


@dataclass(frozen=True)
class Program:
    """A benchmark's runtime-visible structure."""

    name: str
    phases: tuple[Phase, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.phases:
            raise WorkloadError(f"program {self.name!r} has no phases")

    @property
    def parallel_regions(self) -> list[LoopRegion | TaskRegion]:
        """The parallel phases in order."""
        return [p for p in self.phases if not isinstance(p, SerialPhase)]

    @property
    def total_work(self) -> float:
        """Aggregate work units, all trips included."""
        total = 0.0
        for p in self.phases:
            if isinstance(p, SerialPhase):
                total += p.work
            else:
                total += (p.total_work + p.gap_work) * p.trips
        return total

    @property
    def uses_tasks(self) -> bool:
        """Whether any phase is task-parallel."""
        return any(isinstance(p, TaskRegion) for p in self.phases)
