"""Power and energy model — the energy-tuning extension.

Much of the paper's related work (Nornir, OpenMPE, EDP throttling
studies) tunes the same knobs for *energy* rather than runtime.  This
module adds the simple socket-level power model needed to reproduce that
trade-off on our simulated machines:

``P(t) = P_uncore + sum over cores of {P_active | P_spin | P_idle}``

The interesting interaction with the swept variables: active waiting
(``KMP_LIBRARY=turnaround`` / ``KMP_BLOCKTIME=infinite``) keeps worker
cores at spin power through serial gaps and barriers — often *faster but
hungrier* — while passive waiting drops them to idle power at the cost of
wake latency.  :func:`energy_profile` exposes runtime, energy and EDP so
tuners can optimize any of the three.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.topology import MachineTopology
from repro.errors import UnknownMachine
from repro.runtime.executor import RuntimeExecutor
from repro.runtime.icv import EnvConfig, WaitPolicy
from repro.runtime.program import Program, SerialPhase

__all__ = ["PowerModel", "POWER_MODELS", "get_power_model", "EnergyProfile",
           "energy_profile"]


@dataclass(frozen=True)
class PowerModel:
    """Per-core/uncore power draw for one machine (watts)."""

    arch: str
    #: A core executing application work.
    core_active_w: float
    #: A core spin-waiting (active wait policy): near full power.
    core_spin_w: float
    #: A core parked in a sleep state (passive waiting past blocktime).
    core_idle_w: float
    #: Package/uncore floor (memory controllers, fabric, caches).
    uncore_w: float

    def machine_power(
        self, machine: MachineTopology, active: int, spinning: int
    ) -> float:
        """Instantaneous watts with the given core occupancy."""
        idle = machine.n_cores - active - spinning
        if idle < 0:
            # Oversubscribed teams: cores can't be doubly powered.
            active = min(active, machine.n_cores)
            spinning = machine.n_cores - active
            idle = 0
        return (
            self.uncore_w
            + active * self.core_active_w
            + spinning * self.core_spin_w
            + idle * self.core_idle_w
        )


POWER_MODELS: dict[str, PowerModel] = {
    # A64FX: lean cores, big HBM uncore.
    "a64fx": PowerModel("a64fx", core_active_w=2.6, core_spin_w=2.2,
                        core_idle_w=0.3, uncore_w=45.0),
    # Skylake 6148: 150W TDP per socket across 20 cores + fat uncore.
    "skylake": PowerModel("skylake", core_active_w=4.6, core_spin_w=3.8,
                          core_idle_w=0.6, uncore_w=80.0),
    # Milan 7643: 225W per socket over 48 efficient cores.
    "milan": PowerModel("milan", core_active_w=2.9, core_spin_w=2.3,
                        core_idle_w=0.4, uncore_w=95.0),
}


def get_power_model(arch: str) -> PowerModel:
    """Power model for a machine name."""
    try:
        return POWER_MODELS[arch.lower()]
    except KeyError:
        raise UnknownMachine(
            f"no power model for {arch!r}; have {sorted(POWER_MODELS)}"
        ) from None


@dataclass(frozen=True)
class EnergyProfile:
    """Runtime/energy/EDP of one run."""

    runtime_s: float
    energy_j: float

    @property
    def avg_power_w(self) -> float:
        """Mean power over the run."""
        return self.energy_j / self.runtime_s if self.runtime_s else 0.0

    @property
    def edp(self) -> float:
        """Energy-delay product (J*s) — the related work's objective."""
        return self.energy_j * self.runtime_s


def energy_profile(
    program: Program,
    machine: MachineTopology,
    config: EnvConfig,
    fidelity: str = "analytic",
) -> EnergyProfile:
    """Runtime and energy of one run under the power model.

    Occupancy per phase: parallel phases run the team's threads at active
    power (capped at core count); serial phases run the master active
    while the team's workers spin (active wait policy) or idle (passive —
    blocktime-long spin residues are folded into the spin estimate).
    """
    executor = RuntimeExecutor(machine, config, fidelity=fidelity)
    power = get_power_model(machine.name)
    icvs = executor.icvs
    team = min(icvs.nthreads, machine.n_cores)
    active_wait = icvs.wait_policy is WaitPolicy.ACTIVE

    energy = 0.0
    total = 0.0
    for cost, phase in zip(executor.phase_costs(program), program.phases):
        total += cost.seconds
        if isinstance(phase, SerialPhase) or cost.kind == "serial":
            spinning = (team - 1) if active_wait else 0
            watts = power.machine_power(machine, active=1, spinning=spinning)
        else:
            # Parallel body; serial gaps inside the trips are a small
            # fraction and are treated at team power.
            watts = power.machine_power(machine, active=team, spinning=0)
        energy += cost.seconds * watts
    return EnergyProfile(runtime_s=total, energy_j=energy)
