"""Execution traces and Chrome-trace export.

Turns an executor's per-phase breakdown into a structured
:class:`ExecutionTrace` — per-phase wall times, shares, categories — and
exports it in the Chrome trace-event JSON format (``chrome://tracing`` /
Perfetto), giving users the timeline view performance engineers expect
from a runtime tool.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.arch.topology import MachineTopology
from repro.errors import SimulationError
from repro.frame.table import Table
from repro.runtime.executor import RuntimeExecutor
from repro.runtime.icv import EnvConfig
from repro.runtime.program import Program

__all__ = ["TRACE_KINDS", "TraceEvent", "ExecutionTrace", "trace_execution"]


#: The closed set of phase kinds a trace event may carry.
TRACE_KINDS = ("serial", "loop", "task")


@dataclass(frozen=True)
class TraceEvent:
    """One phase occurrence on the timeline.

    Validated at construction: ``kind`` must be one of :data:`TRACE_KINDS`,
    times must be finite and non-negative, trips at least 1.  Golden-trace
    fixtures and any other external payload go through
    :meth:`ExecutionTrace.from_dict`, so a corrupted fixture fails loudly
    here instead of producing a silently wrong comparison baseline.
    """

    name: str
    kind: str  # serial | loop | task
    start_s: float
    duration_s: float
    trips: int

    def __post_init__(self) -> None:
        if self.kind not in TRACE_KINDS:
            raise SimulationError(
                f"trace event {self.name!r}: unknown kind {self.kind!r} "
                f"(expected one of {', '.join(TRACE_KINDS)})"
            )
        # `not (x >= 0)` also rejects NaN, which every comparison fails.
        if not (self.start_s >= 0.0) or self.start_s == float("inf"):
            raise SimulationError(
                f"trace event {self.name!r}: start_s must be finite and "
                f">= 0, got {self.start_s!r}"
            )
        if not (self.duration_s >= 0.0) or self.duration_s == float("inf"):
            raise SimulationError(
                f"trace event {self.name!r}: duration_s must be finite and "
                f">= 0, got {self.duration_s!r}"
            )
        if self.trips < 1:
            raise SimulationError(
                f"trace event {self.name!r}: trips must be >= 1, "
                f"got {self.trips!r}"
            )

    @property
    def end_s(self) -> float:
        """Timeline end of the event."""
        return self.start_s + self.duration_s


@dataclass(frozen=True)
class ExecutionTrace:
    """A whole-program timeline under one configuration."""

    program: str
    arch: str
    config: dict
    events: tuple[TraceEvent, ...]

    @property
    def total_s(self) -> float:
        """End-to-end wall time."""
        return self.events[-1].end_s if self.events else 0.0

    @property
    def parallel_fraction(self) -> float:
        """Share of wall time inside parallel phases."""
        if not self.events:
            return 0.0
        par = sum(e.duration_s for e in self.events if e.kind != "serial")
        return par / self.total_s if self.total_s else 0.0

    def to_dict(self) -> dict:
        """JSON-serializable form (the golden-trace fixture format)."""
        return {
            "program": self.program,
            "arch": self.arch,
            "config": dict(self.config),
            "events": [
                {
                    "name": e.name,
                    "kind": e.kind,
                    "start_s": e.start_s,
                    "duration_s": e.duration_s,
                    "trips": e.trips,
                }
                for e in self.events
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ExecutionTrace":
        """Reconstruct a trace from :meth:`to_dict` output.

        Raises :class:`SimulationError` on malformed payloads: missing or
        mistyped fields report "malformed trace payload", while events
        that parse but violate the :class:`TraceEvent` contract (unknown
        kind, negative duration/start, trips < 1) surface that event's
        specific validation message.
        """
        try:
            events = tuple(
                TraceEvent(
                    name=e["name"],
                    kind=e["kind"],
                    start_s=float(e["start_s"]),
                    duration_s=float(e["duration_s"]),
                    trips=int(e["trips"]),
                )
                for e in payload["events"]
            )
            return cls(
                program=payload["program"],
                arch=payload["arch"],
                config=dict(payload["config"]),
                events=events,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SimulationError(f"malformed trace payload: {exc}") from exc

    def to_table(self) -> Table:
        """Per-phase breakdown as a table (name, kind, seconds, share)."""
        total = self.total_s or 1.0
        return Table.from_records(
            [
                {
                    "phase": e.name,
                    "kind": e.kind,
                    "trips": e.trips,
                    "seconds": e.duration_s,
                    "share": e.duration_s / total,
                }
                for e in self.events
            ]
        )

    def to_chrome_trace(self) -> str:
        """Chrome trace-event JSON (load in chrome://tracing or Perfetto)."""
        events = []
        for e in self.events:
            events.append(
                {
                    "name": e.name,
                    "cat": e.kind,
                    "ph": "X",  # complete event
                    "ts": e.start_s * 1e6,  # microseconds
                    "dur": e.duration_s * 1e6,
                    "pid": 0,
                    "tid": 0,
                    "args": {"trips": e.trips, "kind": e.kind},
                }
            )
        doc = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "program": self.program,
                "arch": self.arch,
                "config": self.config,
            },
        }
        return json.dumps(doc, indent=1)

    def save_chrome_trace(self, path: str | Path) -> None:
        """Write the Chrome trace JSON to a file."""
        Path(path).write_text(self.to_chrome_trace(), encoding="utf-8")


def trace_execution(
    program: Program,
    machine: MachineTopology,
    config: EnvConfig,
    fidelity: str = "analytic",
) -> ExecutionTrace:
    """Execute ``program`` and return its phase timeline."""
    executor = RuntimeExecutor(machine, config, fidelity=fidelity)
    costs = executor.phase_costs(program)
    if not costs:
        raise SimulationError("program produced no phases")
    events = []
    clock = 0.0
    for c in costs:
        events.append(
            TraceEvent(
                name=c.name,
                kind=c.kind,
                start_s=clock,
                duration_s=c.seconds,
                trips=c.trips,
            )
        )
        clock += c.seconds
    return ExecutionTrace(
        program=program.name,
        arch=machine.name,
        config=config.as_env(),
        events=tuple(events),
    )
