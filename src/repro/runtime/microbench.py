"""EPCC-style microbenchmarks of the simulated runtime.

The EPCC OpenMP microbenchmark suite is the standard way to characterize
a real OpenMP runtime's primitive overheads (PARALLEL, BARRIER, REDUCTION
per method, scheduling per kind).  This module provides the same probes
for the *simulated* runtime: each returns the per-construct overhead in
microseconds under a given machine + configuration, exactly what a user
would measure with EPCC before deciding which knobs to sweep.

The probes are built from the same cost models the executor uses, so they
double as an inspection/debugging surface: tests pin their orderings
(turnaround barriers beat throughput barriers; tree reductions beat
critical at scale; dynamic dispatch overhead grows with team size), and
``overhead_table`` renders the machine-by-machine comparison the EPCC
papers tabulate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.machines import ALL_MACHINES
from repro.arch.topology import MachineTopology
from repro.frame.table import Table
from repro.runtime.affinity import compute_placement
from repro.runtime.barrier import fork_seconds, join_seconds
from repro.runtime.costs import get_costs
from repro.runtime.icv import EnvConfig, resolve_icvs
from repro.runtime.kernel import RegionEngine
from repro.runtime.program import LoopRegion
from repro.runtime.reduction import reduction_seconds

__all__ = ["MicrobenchReport", "run_microbench", "overhead_table"]


@dataclass(frozen=True)
class MicrobenchReport:
    """Per-construct overheads (microseconds) for one machine + config."""

    arch: str
    nthreads: int
    #: PARALLEL construct: fork + join of an empty region.
    parallel_us: float
    #: BARRIER: one explicit barrier.
    barrier_us: float
    #: Wake-up after the team slept past KMP_BLOCKTIME.
    wake_us: float
    #: REDUCTION of one scalar, per method.
    reduction_tree_us: float
    reduction_critical_us: float
    reduction_atomic_us: float
    #: Scheduling overhead per iteration for a 10k-iteration empty-ish
    #: loop, per schedule kind.
    static_per_iter_ns: float
    dynamic_per_iter_ns: float
    guided_per_iter_ns: float

    def as_dict(self) -> dict:
        """Report row for table construction."""
        return {
            "arch": self.arch,
            "threads": self.nthreads,
            "parallel_us": self.parallel_us,
            "barrier_us": self.barrier_us,
            "wake_us": self.wake_us,
            "red_tree_us": self.reduction_tree_us,
            "red_critical_us": self.reduction_critical_us,
            "red_atomic_us": self.reduction_atomic_us,
            "static_ns_per_iter": self.static_per_iter_ns,
            "dynamic_ns_per_iter": self.dynamic_per_iter_ns,
            "guided_ns_per_iter": self.guided_per_iter_ns,
        }


def _schedule_overhead_ns(
    machine: MachineTopology, config: EnvConfig, schedule: str, n_iters: int
) -> float:
    """Per-iteration scheduling overhead: priced loop minus ideal compute."""
    icvs = resolve_icvs(
        EnvConfig(**{**_as_kwargs(config), "schedule": schedule}), machine
    )
    placement = compute_placement(icvs, machine)
    engine = RegionEngine(machine, icvs, placement, get_costs(machine.name))
    iter_work = 1e-7  # 100ns reference iterations, EPCC "schedbench" style
    region = LoopRegion("probe", n_iters=n_iters, iter_work=iter_work)
    total = engine.loop_region_seconds(region)
    from repro.runtime.costs import work_seconds

    ideal = work_seconds(region.total_work, machine) / min(
        icvs.nthreads, n_iters
    )
    return max(0.0, (total - ideal)) / n_iters * 1e9


def _as_kwargs(config: EnvConfig) -> dict:
    return {
        "num_threads": config.num_threads,
        "places": config.places,
        "proc_bind": config.proc_bind,
        "library": config.library,
        "blocktime": config.blocktime,
        "force_reduction": config.force_reduction,
        "align_alloc": config.align_alloc,
    }


def run_microbench(
    machine: MachineTopology, config: EnvConfig | None = None
) -> MicrobenchReport:
    """Probe every construct on ``machine`` under ``config``."""
    config = config or EnvConfig()
    icvs = resolve_icvs(config, machine)
    placement = compute_placement(icvs, machine)
    costs = get_costs(machine.name)

    fork = fork_seconds(icvs, costs, team_sleeping=False)
    # Active waiters never sleep, so their wake probe measures nothing.
    from repro.runtime.barrier import workers_asleep

    can_sleep = workers_asleep(icvs, float("inf"))
    fork_sleeping = (
        fork_seconds(icvs, costs, team_sleeping=True) if can_sleep else fork
    )
    join = join_seconds(icvs, placement, costs)

    reductions = {}
    for method in ("tree", "critical", "atomic"):
        m_icvs = resolve_icvs(
            EnvConfig(**{**_as_kwargs(config), "force_reduction": method}),
            machine,
        )
        reductions[method] = reduction_seconds(m_icvs, placement, costs, 1)

    n_iters = 10_000
    return MicrobenchReport(
        arch=machine.name,
        nthreads=icvs.nthreads,
        parallel_us=(fork + join) * 1e6,
        barrier_us=join * 1e6,
        wake_us=(fork_sleeping - fork) * 1e6,
        reduction_tree_us=reductions["tree"] * 1e6,
        reduction_critical_us=reductions["critical"] * 1e6,
        reduction_atomic_us=reductions["atomic"] * 1e6,
        static_per_iter_ns=_schedule_overhead_ns(machine, config, "static",
                                                 n_iters),
        dynamic_per_iter_ns=_schedule_overhead_ns(machine, config, "dynamic",
                                                  n_iters),
        guided_per_iter_ns=_schedule_overhead_ns(machine, config, "guided",
                                                 n_iters),
    )


def overhead_table(config: EnvConfig | None = None) -> Table:
    """EPCC-style overhead comparison across the study machines."""
    rows = [
        run_microbench(machine, config).as_dict()
        for machine in ALL_MACHINES.values()
    ]
    return Table.from_records(rows)
