"""Worksharing-loop schedule model (``OMP_SCHEDULE``).

Prices one loop-region invocation under static/dynamic/guided/auto
scheduling using closed-form approximations of libomp's chunking:

- ``static`` partitions the iteration space into ``T`` contiguous blocks;
  load imbalance falls entirely on the thread with the heaviest block,
- ``dynamic`` (default chunk 1) balances almost perfectly but pays a chunk
  grab per iteration against a shared counter that serializes under
  contention,
- ``guided`` hands out geometrically shrinking chunks — about
  ``T * log2(n/T + 2)`` grabs — balancing well at a fraction of dynamic's
  dispatch traffic,
- ``auto`` maps to static, which is what libomp does for the swept
  configurations.

The imbalance residues per :class:`~repro.runtime.program.LoadPattern` are
standard order-statistics approximations; tests validate them against
brute-force chunked simulations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.topology import MachineTopology
from repro.runtime.costs import RuntimeCosts, work_seconds
from repro.runtime.icv import ResolvedICVs, ScheduleKind
from repro.runtime.program import LoadPattern, LoopRegion

__all__ = [
    "ScheduleOutcome",
    "static_balance_factor",
    "price_loop_schedule",
    "iterate_chunks",
]


@dataclass(frozen=True)
class ScheduleOutcome:
    """Result of pricing one loop invocation's compute portion."""

    #: Wall time of the slowest thread's compute share (seconds), before
    #: memory-system effects.
    compute_seconds: float
    #: Scheduling overhead on the critical path (seconds).
    overhead_seconds: float
    #: The balance multiplier applied to the ideal per-thread share.
    balance_factor: float
    #: Number of chunk dispatches performed.
    n_chunks: int


def static_balance_factor(
    pattern: LoadPattern, imbalance: float, n_iters: int, nthreads: int
) -> float:
    """Max-block over mean-block ratio for a contiguous static split.

    - UNIFORM: only the ceil-division remainder imbalances the blocks.
    - LINEAR with slope ``s`` (cost_i = c*(1 + s*(i/n - 1/2))): the last
      block's mean cost is ``1 + s/2 * (1 - 1/T)`` times the average.
    - RANDOM with relative std ``sigma``: the expected maximum of ``T``
      block sums exceeds the mean by ``sigma * sqrt(T/n) * sqrt(2 ln T)``.
    """
    T = min(nthreads, n_iters)
    if T <= 1:
        return 1.0
    base = math.ceil(n_iters / T) / (n_iters / T)
    if pattern is LoadPattern.UNIFORM:
        return base
    if pattern is LoadPattern.LINEAR:
        return base * (1.0 + 0.5 * imbalance * (1.0 - 1.0 / T))
    if pattern is LoadPattern.RANDOM:
        block = n_iters / T
        excess = imbalance / math.sqrt(block) * math.sqrt(2.0 * math.log(T))
        return base * (1.0 + excess)
    raise ValueError(f"unhandled pattern {pattern}")  # pragma: no cover


def static_chunked_balance_factor(
    pattern: LoadPattern,
    imbalance: float,
    n_iters: int,
    nthreads: int,
    chunk: int,
) -> float:
    """Balance of ``schedule(static, chunk)`` — round-robin chunks.

    Interleaving averages out smooth (LINEAR) profiles: the per-thread
    residue shrinks to roughly one chunk's worth of the ramp.  Random
    i.i.d. costs gain nothing from interleaving (same iteration counts
    per thread), so the contiguous bound applies.  Never worse than the
    contiguous split.
    """
    T = min(nthreads, n_iters)
    if T <= 1:
        return 1.0
    contiguous = static_balance_factor(pattern, imbalance, n_iters, nthreads)
    if pattern is LoadPattern.RANDOM:
        return contiguous
    if pattern is LoadPattern.LINEAR:
        interleaved = 1.0 + imbalance * min(chunk, n_iters) * T / n_iters
    else:
        interleaved = 1.0 + min(chunk, n_iters) * T / n_iters
    return min(contiguous, max(1.0, interleaved))


def iterate_chunks(
    kind: str, n_iters: int, nthreads: int, chunk: int | None = None
):
    """Yield each chunk's half-open iteration range ``(lo, hi)``.

    The executable specification of libomp's chunk-bound rules that the
    closed forms in this module approximate — kept out of the pricing hot
    path (it is O(n_chunks), the pricing is O(1)).  ``repro.check``'s
    iteration-coverage invariant asserts the ranges tile ``[0, n_iters)``
    exactly once and cross-validates chunk counts against the closed forms.

    - ``static`` (no chunk): ``min(T, n)`` contiguous blocks, remainder
      spread one extra iteration over the leading blocks,
    - ``static`` (chunked): round-robin fixed-size chunks,
    - ``dynamic``: fixed-size chunks handed out in order,
    - ``guided``: shrinking chunks ``max(floor, ceil(remaining / 2T))``.
    """
    if n_iters < 0:
        raise ValueError(f"negative iteration count {n_iters}")
    if nthreads < 1:
        raise ValueError(f"need >= 1 thread, got {nthreads}")
    if chunk is not None and chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    n = n_iters
    if n == 0:
        return
    T = nthreads
    if kind == "static" and chunk is None:
        blocks = min(T, n)
        base, extra = divmod(n, blocks)
        lo = 0
        for b in range(blocks):
            hi = lo + base + (1 if b < extra else 0)
            yield (lo, hi)
            lo = hi
    elif kind in ("static", "dynamic"):
        size = chunk if chunk is not None else 1
        for lo in range(0, n, size):
            yield (lo, min(lo + size, n))
    elif kind == "guided":
        floor = chunk if chunk is not None else 1
        lo = 0
        while lo < n:
            remaining = n - lo
            size = max(floor, -(-remaining // (2 * T)))
            hi = min(lo + size, n)
            yield (lo, hi)
            lo = hi
    else:
        raise ValueError(f"unknown schedule kind {kind!r}")


def _guided_chunks(n_iters: int, nthreads: int) -> int:
    """Approximate number of guided chunks libomp dispatches."""
    return max(nthreads, int(math.ceil(nthreads * math.log2(n_iters / nthreads + 2))))


def _dynamic_balance_factor(
    pattern: LoadPattern,
    imbalance: float,
    n_iters: int,
    nthreads: int,
    chunk: int = 1,
) -> float:
    """Dynamic self-scheduling residue: at most one chunk of skew."""
    T = min(nthreads, n_iters)
    if T <= 1:
        return 1.0
    # The tail thread finishes at most one max-cost chunk late.
    if pattern is LoadPattern.RANDOM:
        max_iter_rel = 1.0 + 2.0 * imbalance
    elif pattern is LoadPattern.LINEAR:
        max_iter_rel = 1.0 + 0.5 * imbalance
    else:
        max_iter_rel = 1.0
    return 1.0 + max_iter_rel * min(chunk, n_iters) * T / n_iters


def _guided_balance_factor(
    pattern: LoadPattern, imbalance: float, n_iters: int, nthreads: int
) -> float:
    """Guided residue: the final (smallest) chunks smooth most imbalance."""
    T = min(nthreads, n_iters)
    if T <= 1:
        return 1.0
    if pattern is LoadPattern.UNIFORM:
        return 1.0 + T / n_iters
    # Residual skew is roughly the last chunk's share of the imbalance.
    return 1.0 + 0.25 * imbalance / math.sqrt(T) + T / n_iters


def price_loop_schedule(
    region: LoopRegion,
    icvs: ResolvedICVs,
    machine: MachineTopology,
    costs: RuntimeCosts,
    effective_parallelism: float,
    slowest_thread_factor: float,
) -> ScheduleOutcome:
    """Price one invocation of ``region``'s compute under the schedule.

    Parameters
    ----------
    effective_parallelism:
        Sum of per-thread speed factors (the team's aggregate rate) —
        self-scheduling (dynamic/guided) runs at this rate.
    slowest_thread_factor:
        ``1 / min(thread speed)`` — static scheduling is bound by its
        slowest thread because shares are fixed up front.
    """
    T = icvs.nthreads
    n = region.n_iters
    total_sec = work_seconds(region.total_work, machine)
    if region.fixed_schedule is not None:
        # A compiled-in schedule clause overrides the environment.
        kind = ScheduleKind(region.fixed_schedule)
        chunk = region.fixed_chunk
    else:
        kind = icvs.schedule
        chunk = icvs.schedule_chunk
    if kind is ScheduleKind.AUTO:
        kind = ScheduleKind.STATIC  # libomp's auto resolution

    if T == 1:
        return ScheduleOutcome(total_sec, 0.0, 1.0, 1)

    ideal_share = total_sec / min(T, n)

    if kind is ScheduleKind.STATIC:
        if chunk is None:
            balance = static_balance_factor(
                region.pattern, region.imbalance, n, T
            )
            n_chunks = min(T, n)
        else:
            balance = static_chunked_balance_factor(
                region.pattern, region.imbalance, n, T, chunk
            )
            n_chunks = max(1, -(-n // chunk))
        compute = ideal_share * balance * slowest_thread_factor
        # Chunks are assigned round-robin up front: no dispatch traffic.
        return ScheduleOutcome(compute, 0.0, balance, n_chunks)

    dispatch_sec = costs.dispatch_ns * 1e-9
    # Self-scheduling runs at the team's aggregate rate, but no more
    # workers than iterations can ever be busy at once.
    p_eff = min(max(effective_parallelism, 1e-12), float(n))
    static_bal = static_balance_factor(region.pattern, region.imbalance, n, T)

    if kind is ScheduleKind.DYNAMIC:
        chunk = chunk or 1  # libomp default dynamic chunk is 1
        # Self-scheduling never balances worse than a static split.
        balance = min(
            _dynamic_balance_factor(region.pattern, region.imbalance, n, T, chunk),
            static_bal,
        )
        n_chunks = max(1, -(-n // chunk))
        compute = total_sec / p_eff * balance
        # Chunk grabs hit one shared counter: concurrent grabs serialize,
        # with mild line-bouncing growth in team size.
        serial_grab = dispatch_sec * (1.0 + 0.02 * T)
        parallel_overhead = n_chunks * dispatch_sec / min(T, n)
        contention_floor = n_chunks * serial_grab
        work_floor = compute + parallel_overhead
        if contention_floor > work_floor:
            # Dispatch-bound loop: the counter is the bottleneck.
            return ScheduleOutcome(
                compute, contention_floor - compute, balance, n_chunks
            )
        return ScheduleOutcome(compute, parallel_overhead, balance, n_chunks)

    if kind is ScheduleKind.GUIDED:
        balance = min(
            _guided_balance_factor(region.pattern, region.imbalance, n, T),
            static_bal,
        )
        # A chunk argument to guided sets the minimum chunk, reducing the
        # number of dispatches for large values.
        n_chunks = min(_guided_chunks(n, T), n)
        if chunk is not None and chunk > 1:
            n_chunks = min(n_chunks, max(T, -(-n // chunk)))
        compute = total_sec / p_eff * balance
        overhead = n_chunks * dispatch_sec / min(T, n)
        return ScheduleOutcome(compute, overhead, balance, n_chunks)

    raise ValueError(f"unhandled schedule {kind}")  # pragma: no cover
