"""Simulated LLVM/OpenMP CPU runtime.

This package models the behaviour the paper sweeps: how libomp turns the
environment (``OMP_*`` / ``KMP_*`` variables) into Internal Control
Variables and how those ICVs shape the execution time of parallel regions
on a given machine.

Pipeline per application run:

1. :mod:`~repro.runtime.icv` resolves an :class:`~repro.runtime.icv.EnvConfig`
   into :class:`~repro.runtime.icv.ResolvedICVs`, reproducing libomp's
   default derivations (PROC_BIND unset -> false, or spread when PLACES is
   set; ALIGN_ALLOC -> cache line; FORCE_REDUCTION heuristic; WAIT_POLICY
   derived from KMP_LIBRARY + KMP_BLOCKTIME),
2. :mod:`~repro.runtime.affinity` turns places + binding into a
   :class:`~repro.runtime.affinity.ThreadPlacement` (thread -> core map with
   oversubscription accounting),
3. :mod:`~repro.runtime.kernel` prices each region —
   :mod:`~repro.runtime.schedule` for worksharing loops,
   the analytic/DES task models for task regions,
   :mod:`~repro.runtime.reduction` for cross-thread reductions,
   :mod:`~repro.runtime.barrier` for fork/join/wait-policy costs,
   :mod:`~repro.runtime.alloc` for KMP_ALIGN_ALLOC effects,
4. :mod:`~repro.runtime.executor` sums a whole
   :class:`~repro.runtime.program.Program` and applies the architecture
   noise model to produce observed runtimes.
"""

from repro.runtime.icv import (
    BindPolicy,
    EnvConfig,
    LibraryMode,
    ReductionMethod,
    ResolvedICVs,
    ScheduleKind,
    WaitPolicy,
    resolve_icvs,
)
from repro.runtime.affinity import ThreadPlacement, compute_placement
from repro.runtime.program import (
    LoadPattern,
    LoopRegion,
    Program,
    SerialPhase,
    TaskRegion,
)
from repro.runtime.executor import RuntimeExecutor, execute, observe
from repro.runtime.power import EnergyProfile, PowerModel, energy_profile, get_power_model
from repro.runtime.microbench import MicrobenchReport, overhead_table, run_microbench
from repro.runtime.trace import ExecutionTrace, TraceEvent, trace_execution

__all__ = [
    "EnvConfig",
    "ResolvedICVs",
    "resolve_icvs",
    "BindPolicy",
    "ScheduleKind",
    "LibraryMode",
    "WaitPolicy",
    "ReductionMethod",
    "ThreadPlacement",
    "compute_placement",
    "Program",
    "SerialPhase",
    "LoopRegion",
    "TaskRegion",
    "LoadPattern",
    "RuntimeExecutor",
    "execute",
    "observe",
    "PowerModel",
    "EnergyProfile",
    "energy_profile",
    "get_power_model",
    "MicrobenchReport",
    "run_microbench",
    "overhead_table",
    "ExecutionTrace",
    "TraceEvent",
    "trace_execution",
]
