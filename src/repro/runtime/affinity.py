"""Thread placement: ``OMP_PLACES`` x ``OMP_PROC_BIND`` -> cores.

Reproduces libomp's distribution rules:

- ``false`` (or everything unset): threads are *unbound*.  The OS load
  balancer spreads them across all cores — modeled as round-robin over the
  machine — but they migrate over time, which costs locality (see
  :attr:`ThreadPlacement.bound`).
- ``master``: every thread is bound to the master thread's place, i.e. the
  place containing core 0.  With more threads than that place has cores the
  team is oversubscribed — the "worst trend" of paper Sec. V-4.
- ``close``: consecutive threads pack into consecutive places (blocked
  distribution).
- ``spread`` (and ``true``, which libomp maps to the same distribution in
  the swept configurations — the paper's Table VII groups "spread/true"):
  threads interleave across places (cyclic distribution), maximizing the
  hardware spread.

When ``OMP_PROC_BIND`` requests binding but ``OMP_PLACES`` is unset, libomp
synthesizes a per-core place list; we do the same.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.topology import MachineTopology, Place, PlaceKind
from repro.errors import ConfigError
from repro.runtime.icv import BindPolicy, ResolvedICVs

__all__ = ["ThreadPlacement", "compute_placement"]


@dataclass(frozen=True)
class ThreadPlacement:
    """Resolved thread -> hardware mapping for one team.

    Attributes
    ----------
    cores:
        Core id per thread (the core the thread runs on / starts on).
    bound:
        Whether threads are pinned.  Unbound threads migrate, paying the
        locality penalties the kernel cost model charges.
    oversubscription:
        Per-thread count of team threads sharing its core (>= 1).
    """

    machine: MachineTopology
    cores: np.ndarray = field(repr=False)
    bound: bool

    def __post_init__(self) -> None:
        if self.cores.ndim != 1 or self.cores.shape[0] < 1:
            raise ConfigError("placement needs at least one thread")

    @property
    def nthreads(self) -> int:
        """Team size."""
        return int(self.cores.shape[0])

    @property
    def oversubscription(self) -> np.ndarray:
        """Per-thread number of team threads mapped to the same core."""
        _, inverse, counts = np.unique(
            self.cores, return_inverse=True, return_counts=True
        )
        return counts[inverse]

    @property
    def max_oversubscription(self) -> int:
        """Worst per-core thread pile-up (1 = no sharing)."""
        return int(self.oversubscription.max())

    @property
    def numa_nodes(self) -> np.ndarray:
        """NUMA node per thread."""
        return self.cores // self.machine.cores_per_numa

    @property
    def sockets(self) -> np.ndarray:
        """Socket per thread."""
        return self.cores // self.machine.cores_per_socket

    @property
    def llcs(self) -> np.ndarray:
        """LLC group per thread."""
        return self.cores // self.machine.cores_per_llc

    @property
    def n_numa_used(self) -> int:
        """Distinct NUMA nodes the team touches."""
        return int(np.unique(self.numa_nodes).shape[0])

    @property
    def n_llc_used(self) -> int:
        """Distinct LLC groups the team touches."""
        return int(np.unique(self.llcs).shape[0])

    def effective_speed(self) -> np.ndarray:
        """Per-thread execution-rate multiplier from core sharing.

        A core timeshared by ``k`` team threads runs each at ``1/k``.
        """
        return 1.0 / self.oversubscription.astype(float)

    def mean_numa_distance_to_local_data(self) -> float:
        """Average access cost assuming each thread's data was first-touched
        on its *initial* node.

        Bound teams keep distance 1.0; unbound teams migrate and end up a
        blend of local and machine-average distance.
        """
        if self.bound:
            return 1.0
        m = self.machine
        # Unbound: a migrated thread's pages stay behind. Weight: threads
        # spend ~half their life off their first-touch node on a busy box.
        return 0.5 * 1.0 + 0.5 * m.mean_numa_distance()


def _round_robin_cores(place: Place, count: int, start: int = 0) -> list[int]:
    """Assign ``count`` threads to a place's cores round-robin."""
    width = place.width
    return [place.cores[(start + i) % width] for i in range(count)]


def compute_placement(
    icvs: ResolvedICVs, machine: MachineTopology
) -> ThreadPlacement:
    """Map a resolved team onto cores per places + binding policy."""
    nthreads = icvs.nthreads
    bind = icvs.bind

    if bind is BindPolicy.FALSE:
        # Unbound: the OS balances across all cores; migration modeled via
        # bound=False downstream.
        cores = np.arange(nthreads) % machine.n_cores
        return ThreadPlacement(machine=machine, cores=cores, bound=False)

    # Binding requested: materialize the place list. An unset OMP_PLACES
    # with an explicit binding policy synthesizes per-core places.
    place_kind = icvs.places
    if place_kind is PlaceKind.UNSET:
        place_kind = PlaceKind.CORES
    places = machine.places(place_kind)
    n_places = len(places)

    if bind is BindPolicy.MASTER:
        # All threads to the master's place (the one holding core 0).
        master_place = next(p for p in places if 0 in p.cores)
        cores = np.asarray(_round_robin_cores(master_place, nthreads))
        return ThreadPlacement(machine=machine, cores=cores, bound=True)

    if bind is BindPolicy.CLOSE:
        # Blocked: consecutive threads fill each place before the next.
        per_place = -(-nthreads // n_places)  # ceil
        cores = np.empty(nthreads, dtype=np.int64)
        fill: dict[int, int] = {}
        for t in range(nthreads):
            p = min(t // per_place, n_places - 1)
            k = fill.get(p, 0)
            fill[p] = k + 1
            cores[t] = places[p].cores[k % places[p].width]
        return ThreadPlacement(machine=machine, cores=cores, bound=True)

    if bind in (BindPolicy.SPREAD, BindPolicy.TRUE):
        # Sparse distribution: thread t -> place floor(t*P/T), which spaces
        # threads across the place list when T < P and degenerates to the
        # same block distribution as close when T >= P (the place list is
        # subpartitioned, per the OpenMP spec).
        cores = np.empty(nthreads, dtype=np.int64)
        fill = {}
        for t in range(nthreads):
            p = min(t * n_places // nthreads, n_places - 1)
            k = fill.get(p, 0)
            fill[p] = k + 1
            cores[t] = places[p].cores[k % places[p].width]
        return ThreadPlacement(machine=machine, cores=cores, bound=True)

    raise ConfigError(f"unresolvable bind policy {bind}")
