"""Region pricing engine: one parallel region -> seconds.

Combines the schedule, reduction, barrier, alignment and memory models
into per-invocation costs for loop and task regions.

Task regions support two fidelity modes:

- ``"analytic"`` (default): a closed-form work-stealing estimate —
  aggregate work plus per-task scheduling overhead over the team's
  effective parallelism, floored by the spawn tree's critical path plus a
  steal-driven ramp-up.  Microseconds to evaluate; used for sweeps.
- ``"des"``: the full :class:`~repro.desim.stealing.WorkStealingSimulator`
  at per-task granularity.  Used for validation and detailed study.

The per-task *acquisition cost* is where ``KMP_LIBRARY`` and
``KMP_BLOCKTIME`` bite: spinning (turnaround/active) threads grab remote
work in a few hundred nanoseconds, yielding (throughput/passive) threads
burn sched_yield rounds, and with a zero blocktime they oscillate through
futex sleep/wake cycles.
"""

from __future__ import annotations

import math

import numpy as np

from repro.arch.topology import MachineTopology
from repro.desim.stealing import TaskGraph, WorkStealingSimulator
from repro.errors import SimulationError
from repro.runtime.affinity import ThreadPlacement
from repro.runtime.alloc import sync_alignment_factor
from repro.runtime.barrier import join_seconds
from repro.runtime.costs import RuntimeCosts, work_seconds
from repro.runtime.icv import ResolvedICVs, WaitPolicy
from repro.runtime.memory import memory_time_factor
from repro.runtime.program import LoopRegion, TaskRegion
from repro.runtime.reduction import reduction_seconds
from repro.runtime.schedule import price_loop_schedule

__all__ = ["RegionEngine", "task_acquire_seconds"]

#: Fraction of task acquisitions that miss the local deque (taskwait-driven
#: stealing in divide-and-conquer trees).
_REMOTE_ACQUIRE_FRACTION = 0.30
#: sched_yield rounds a passive thread spends per remote acquisition.
_PASSIVE_YIELD_ROUNDS = 2.0


def task_acquire_seconds(icvs: ResolvedICVs, costs: RuntimeCosts) -> float:
    """Cost of one remote task acquisition under the wait policy."""
    if icvs.wait_policy is WaitPolicy.ACTIVE:
        return costs.spin_steal_us * 1e-6
    if icvs.blocktime_ms == 0.0:
        # Immediate sleep: every idle period ends in a futex wake.
        return (costs.os_yield_us + 0.5 * costs.wake_latency_us) * 1e-6
    return _PASSIVE_YIELD_ROUNDS * costs.os_yield_us * 1e-6


class RegionEngine:
    """Prices regions for one (machine, config, placement) triple."""

    def __init__(
        self,
        machine: MachineTopology,
        icvs: ResolvedICVs,
        placement: ThreadPlacement,
        costs: RuntimeCosts,
    ):
        self.machine = machine
        self.icvs = icvs
        self.placement = placement
        self.costs = costs
        speeds = placement.effective_speed()
        #: Aggregate execution rate of the team (self-scheduling rate).
        self.effective_parallelism = float(speeds.sum())
        #: Penalty of the slowest team member (static scheduling bound).
        self.slowest_thread_factor = float(1.0 / speeds.min())
        self.align_factor = sync_alignment_factor(icvs, costs)

    # ------------------------------------------------------------------
    def loop_region_seconds(self, region: LoopRegion) -> float:
        """One invocation of a worksharing-loop region (body + sync)."""
        sched = price_loop_schedule(
            region,
            self.icvs,
            self.machine,
            self.costs,
            self.effective_parallelism,
            self.slowest_thread_factor,
        )
        mem_factor = memory_time_factor(
            self.placement,
            self.costs,
            region.bw_per_thread_gbps,
            region.random_access,
        )
        cpu_part = sched.compute_seconds * (1.0 - region.mem_intensity)
        mem_part = sched.compute_seconds * region.mem_intensity * mem_factor
        body = cpu_part + mem_part + sched.overhead_seconds

        sync = reduction_seconds(
            self.icvs, self.placement, self.costs, region.n_reductions
        )
        sync += join_seconds(self.icvs, self.placement, self.costs)
        return body + sync * self.align_factor

    # ------------------------------------------------------------------
    def task_region_seconds(
        self,
        region: TaskRegion,
        fidelity: str = "analytic",
        seed: int = 0,
    ) -> float:
        """One invocation of a task region (body + sync)."""
        if fidelity == "analytic":
            body = self._task_analytic(region)
        elif fidelity == "des":
            body = self._task_des(region, seed)
        else:
            raise SimulationError(f"unknown task fidelity {fidelity!r}")
        sync = join_seconds(self.icvs, self.placement, self.costs)
        return body + sync * self.align_factor

    def _per_task_overhead(self, passive_wake: bool = True) -> float:
        """Scheduling cost charged to each task's execution."""
        costs = self.costs
        icvs = self.icvs
        acquire = task_acquire_seconds(icvs, costs)
        overhead = costs.spawn_us * 1e-6 + _REMOTE_ACQUIRE_FRACTION * acquire
        if passive_wake and icvs.wait_policy is WaitPolicy.PASSIVE:
            frac = (
                costs.wake_fraction_blocktime0
                if icvs.blocktime_ms == 0.0
                else costs.wake_fraction_passive
            )
            overhead += frac * costs.wake_latency_us * 1e-6 * _REMOTE_ACQUIRE_FRACTION
        return overhead

    @staticmethod
    def _max_leaf_factor(sigma: float, n_leaves: int) -> float:
        """Expected max/mean ratio of ``n`` lognormal(sigma) leaf costs.

        Approximates the (1 - 1/n) quantile of the lognormal relative to
        its mean — the straggler that pins the region's tail.
        """
        if sigma <= 0.0 or n_leaves < 2:
            return 1.0
        from scipy.stats import norm

        z = float(norm.ppf(1.0 - 1.0 / n_leaves))
        # Mean of lognormal exceeds its median by exp(sigma^2 / 2).
        return math.exp(sigma * z) / math.exp(0.5 * sigma * sigma)

    def _task_analytic(self, region: TaskRegion) -> float:
        mem_factor = memory_time_factor(
            self.placement,
            self.costs,
            region.bw_per_thread_gbps,
            region.random_access,
        )
        scale = 1.0 - region.mem_intensity + region.mem_intensity * mem_factor
        work_sec = work_seconds(region.total_work, self.machine) * scale

        n_tasks = region.n_tasks
        overhead = self._per_task_overhead()
        total = work_sec + n_tasks * overhead
        p_eff = min(self.effective_parallelism, float(n_tasks))
        # Straggler tail: the largest leaf lands on some worker near the
        # end; roughly half of it sticks out past the balanced finish.
        leaf_sec = work_seconds(region.leaf_work, self.machine) * scale
        straggler = 0.5 * leaf_sec * self._max_leaf_factor(
            region.leaf_sigma, region.n_leaves
        )
        throughput_bound = total / max(p_eff, 1e-12) + straggler

        # Parallelism floor: the critical path plus one steal per tree
        # level to fan the work out.
        acquire = task_acquire_seconds(self.icvs, self.costs)
        cp_sec = work_seconds(region.critical_path_work, self.machine)
        ramp = region.depth * acquire
        return max(throughput_bound, cp_sec + ramp)

    def _task_des(self, region: TaskRegion, seed: int) -> float:
        graph = self._build_graph(region, seed)
        sim = WorkStealingSimulator(
            n_workers=self.icvs.nthreads,
            steal_latency=task_acquire_seconds(self.icvs, self.costs),
            spawn_overhead=self._per_task_overhead(passive_wake=True)
            - _REMOTE_ACQUIRE_FRACTION
            * task_acquire_seconds(self.icvs, self.costs),
            seed=seed,
        )
        result = sim.run(graph, worker_speeds=self.placement.effective_speed())
        return result.makespan

    def _build_graph(self, region: TaskRegion, seed: int) -> TaskGraph:
        """Materialize the spawn tree with per-leaf work dispersion."""
        rng = np.random.default_rng(seed)
        mem_factor = memory_time_factor(
            self.placement,
            self.costs,
            region.bw_per_thread_gbps,
            region.random_access,
        )
        scale = 1.0 - region.mem_intensity + region.mem_intensity * mem_factor
        leaf_sec = work_seconds(region.leaf_work, self.machine) * scale
        node_sec = work_seconds(region.node_work, self.machine) * scale
        graph = TaskGraph()

        def build(level: int) -> int:
            if level == region.depth:
                w = leaf_sec
                if region.leaf_sigma > 0:
                    w *= float(
                        np.exp(region.leaf_sigma * rng.standard_normal())
                    )
                return graph.add(w)
            children = tuple(
                build(level + 1) for _ in range(region.branching)
            )
            return graph.add(node_sec, children)

        graph.root = build(0)
        return graph
