"""Fork/join and wait-policy costs (``KMP_BLOCKTIME`` / ``KMP_LIBRARY``).

Models the lifecycle around every parallel region:

- **fork**: the master releases the team.  If the workers fell asleep
  during the preceding serial gap (gap longer than ``KMP_BLOCKTIME`` under
  passive waiting), the fork pays a tree of futex wakes.
- **join**: a log-depth barrier; active (spinning) waiters notice the last
  arrival faster than passive (yielding) ones.
- **spin tax**: with an infinite blocktime the team spins through serial
  gaps.  That is free when every thread owns its core, but once any team
  thread shares the master's core, the master's serial work is slowed by
  the competing spinner.
"""

from __future__ import annotations

import math

from repro.runtime.affinity import ThreadPlacement
from repro.runtime.costs import RuntimeCosts
from repro.runtime.icv import ResolvedICVs, WaitPolicy

__all__ = ["fork_seconds", "join_seconds", "serial_gap_seconds", "workers_asleep"]

#: Relative barrier latency of active (spin) vs passive (yield) waiting.
ACTIVE_BARRIER_FACTOR = 0.6
PASSIVE_BARRIER_FACTOR = 1.0


def workers_asleep(icvs: ResolvedICVs, gap_seconds: float) -> bool:
    """Whether the team slept during a serial gap of ``gap_seconds``.

    Active waiters never sleep; passive waiters sleep once the gap exceeds
    the blocktime.
    """
    if icvs.wait_policy is WaitPolicy.ACTIVE:
        return False
    return gap_seconds > icvs.blocktime_ms * 1e-3


def fork_seconds(
    icvs: ResolvedICVs,
    costs: RuntimeCosts,
    team_sleeping: bool,
) -> float:
    """Cost of activating the team for one region."""
    T = icvs.nthreads
    base = costs.fork_base_us * 1e-6 + costs.fork_per_thread_us * 1e-6 * T
    if team_sleeping and T > 1:
        # Tree wake: each level's futex wakes proceed in parallel, so the
        # critical path is one wake per level.
        base += costs.wake_latency_us * 1e-6 * math.ceil(math.log2(T))
    return base


def join_seconds(
    icvs: ResolvedICVs,
    placement: ThreadPlacement,
    costs: RuntimeCosts,
) -> float:
    """Cost of the end-of-region barrier."""
    T = icvs.nthreads
    if T == 1:
        return 0.0
    factor = (
        ACTIVE_BARRIER_FACTOR
        if icvs.wait_policy is WaitPolicy.ACTIVE
        else PASSIVE_BARRIER_FACTOR
    )
    levels = math.ceil(math.log2(T))
    base = costs.barrier_step_us * 1e-6 * levels * factor
    # Oversubscribed teams straggle into barriers: the slowest thread's
    # core is timeshared, stretching every rendezvous.
    over = placement.max_oversubscription
    if over > 1:
        base *= over
    return base


def serial_gap_seconds(
    icvs: ResolvedICVs,
    placement: ThreadPlacement,
    gap_seconds: float,
) -> float:
    """Wall time of a serial gap of nominal length ``gap_seconds``.

    Spinning teammates sharing the master's core steal cycles from the
    serial section; passive waiters yield and cost (almost) nothing.
    """
    if gap_seconds <= 0.0:
        return 0.0
    if icvs.wait_policy is WaitPolicy.PASSIVE:
        return gap_seconds
    # Active waiting: count team threads co-located with the master core.
    master_core = int(placement.cores[0])
    sharers = int((placement.cores == master_core).sum())
    if not placement.bound:
        # Unbound spinners drift away from the master quickly; the OS keeps
        # interference minor.
        return gap_seconds * (1.05 if icvs.nthreads > placement.machine.n_cores else 1.0)
    return gap_seconds * sharers
