"""``KMP_ALIGN_ALLOC`` model: alignment of runtime-internal structures.

``__kmp_allocate`` aligns internal structures (per-thread barrier flags,
lock cells, reduction scratch) to ``KMP_ALIGN_ALLOC`` bytes, default one
cache line.  Consequences the model captures:

- alignment *below* the line size packs several hot structures into one
  line and threads false-share them: every barrier/reduction operation
  pays proportionally (only reachable on A64FX-like machines if a user
  forced e.g. 64 on a 256-byte-line part — the swept values never go
  below the line size, matching the paper),
- alignment *above* the line size gives each structure a private line plus
  padding, removing occasional adjacent-structure conflicts; a small
  benefit that only shows on synchronization-heavy applications (the
  paper's CG-on-Skylake row in Table VII).
"""

from __future__ import annotations

from repro.runtime.costs import RuntimeCosts
from repro.runtime.icv import ResolvedICVs

__all__ = ["sync_alignment_factor"]

#: Cap on the adjacent-structure benefit from extra-wide alignment.
_MAX_PAD_BENEFIT = 0.06
#: False-sharing penalty per extra structure packed into one line.
_FS_PENALTY_PER_NEIGHBOR = 0.35


def sync_alignment_factor(icvs: ResolvedICVs, costs: RuntimeCosts) -> float:
    """Multiplier on synchronization costs from structure alignment.

    1.0 at the default (line-sized) alignment; > 1 when structures are
    packed below a line; slightly < 1 when padded beyond a line.
    """
    align = icvs.align_alloc
    line = icvs.cache_line
    if align < line:
        neighbors = line // align - 1
        return 1.0 + _FS_PENALTY_PER_NEIGHBOR * neighbors
    if align > line:
        # Doubling alignment removes about half the residual adjacent-line
        # conflicts; quadrupling most of the rest.
        ratio = min(align // line, 8)
        benefit = _MAX_PAD_BENEFIT * (1.0 - 1.0 / ratio)
        return 1.0 - benefit
    return 1.0
