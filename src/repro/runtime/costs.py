"""Per-architecture runtime-internal cost constants.

These calibrate the simulated libomp's primitive operations on each study
machine.  Magnitudes follow published microbenchmark lore (EPCC OpenMP
microbenchmarks, futex wake latencies, cache-line transfer costs) with two
architecture-level regularities that drive the paper's shapes:

- **A64FX** has weak scalar cores and slow syscall/futex paths, so anything
  involving the OS (passive waiting, wakes after blocktime) is several times
  more expensive than on the x86 servers — the root of NQueens' huge
  ``KMP_LIBRARY=turnaround`` win there,
- **Milan**'s many small NUMA domains give it a high memory-congestion
  exponent: oversaturating its per-NUMA bandwidth degrades superlinearly,
  which is why thread-count/binding tuning pays most on Milan.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.arch.topology import MachineTopology
from repro.errors import UnknownMachine

__all__ = [
    "RuntimeCosts",
    "RUNTIME_COSTS",
    "TIME_COST_FIELDS",
    "get_costs",
    "scale_costs",
    "work_seconds",
]


@dataclass(frozen=True)
class RuntimeCosts:
    """Primitive-operation costs for one machine (microseconds unless noted)."""

    arch: str
    #: Fork: team activation base cost and per-thread release cost.
    fork_base_us: float
    fork_per_thread_us: float
    #: Join barrier: per-tree-level cost (multiplied by log2(T)).
    barrier_step_us: float
    #: Futex wake of one sleeping worker (amortized over a tree wake).
    wake_latency_us: float
    #: Dynamic-schedule chunk grab (uncontended), nanoseconds.
    dispatch_ns: float
    #: Contended atomic read-modify-write on a shared line, nanoseconds.
    atomic_ns: float
    #: Critical-section handoff (lock transfer between cores), nanoseconds.
    critical_ns: float
    #: One level of a tree reduction (partner line transfer), microseconds.
    tree_step_us: float
    #: Steal attempt while spinning (turnaround / active waiting).
    spin_steal_us: float
    #: Steal attempt in yielding mode (throughput / passive waiting).
    os_yield_us: float
    #: Task spawn bookkeeping (push to deque).
    spawn_us: float
    #: Probability a task spawn must futex-wake a sleeping worker under
    #: passive waiting (0 under active waiting).
    wake_fraction_passive: float
    #: Same with KMP_BLOCKTIME=0 (threads sleep immediately, so nearly
    #: every idle period ends in a wake).
    wake_fraction_blocktime0: float
    #: Superlinear memory-congestion exponent coefficient (dimensionless).
    congestion_gamma: float
    #: Fraction of machine bandwidth reachable by an unbound team (pages
    #: scattered by the OS; some traffic crosses NUMA links).
    unbound_bw_efficiency: float


RUNTIME_COSTS: dict[str, RuntimeCosts] = {
    # Weak cores, slow OS paths, fat HBM: runtime overheads loom large,
    # memory almost never saturates.
    "a64fx": RuntimeCosts(
        arch="a64fx",
        fork_base_us=4.0,
        fork_per_thread_us=0.10,
        barrier_step_us=1.4,
        wake_latency_us=30.0,
        dispatch_ns=160.0,
        atomic_ns=180.0,
        critical_ns=700.0,
        tree_step_us=1.1,
        spin_steal_us=0.55,
        os_yield_us=4.5,
        spawn_us=0.45,
        wake_fraction_passive=0.28,
        wake_fraction_blocktime0=0.55,
        congestion_gamma=0.8,
        unbound_bw_efficiency=0.90,
    ),
    # Two fat sockets, big shared L3s, ample per-socket bandwidth for 20
    # cores: a forgiving machine.
    "skylake": RuntimeCosts(
        arch="skylake",
        fork_base_us=1.2,
        fork_per_thread_us=0.05,
        barrier_step_us=0.55,
        wake_latency_us=6.0,
        dispatch_ns=45.0,
        atomic_ns=60.0,
        critical_ns=260.0,
        tree_step_us=0.40,
        spin_steal_us=0.20,
        os_yield_us=1.6,
        spawn_us=0.22,
        wake_fraction_passive=0.22,
        wake_fraction_blocktime0=0.45,
        congestion_gamma=1.2,
        unbound_bw_efficiency=0.88,
    ),
    # 96 cores over 8 NUMA nodes at NPS4: fabric congestion punishes
    # bandwidth oversubscription hard.
    "milan": RuntimeCosts(
        arch="milan",
        fork_base_us=1.6,
        fork_per_thread_us=0.045,
        barrier_step_us=0.65,
        wake_latency_us=6.0,
        dispatch_ns=55.0,
        atomic_ns=75.0,
        critical_ns=330.0,
        tree_step_us=0.55,
        spin_steal_us=0.22,
        os_yield_us=1.3,
        spawn_us=0.24,
        wake_fraction_passive=0.15,
        wake_fraction_blocktime0=0.40,
        congestion_gamma=2.6,
        unbound_bw_efficiency=0.75,
    ),
}


#: The time-valued fields of :class:`RuntimeCosts` — everything measured in
#: seconds-derived units.  Excludes the dimensionless knobs (wake fractions,
#: congestion exponent, bandwidth efficiency), which describe *probabilities
#: and shapes*, not durations.
TIME_COST_FIELDS = (
    "fork_base_us",
    "fork_per_thread_us",
    "barrier_step_us",
    "wake_latency_us",
    "dispatch_ns",
    "atomic_ns",
    "critical_ns",
    "tree_step_us",
    "spin_steal_us",
    "os_yield_us",
    "spawn_us",
)


def scale_costs(costs: RuntimeCosts, factor: float) -> RuntimeCosts:
    """A copy of ``costs`` with every time-valued field multiplied by
    ``factor`` (dimensionless fields untouched).

    The runtime-overhead model is linear in these primitives, so scaling
    them by ``k`` scales every overhead component by exactly ``k`` — the
    homogeneity law the ``repro.check`` metamorphic suite asserts.
    """
    if factor <= 0:
        raise ValueError(f"cost scale factor must be positive, got {factor}")
    return replace(
        costs, **{f: getattr(costs, f) * factor for f in TIME_COST_FIELDS}
    )


def get_costs(arch: str) -> RuntimeCosts:
    """Cost table for a machine name."""
    try:
        return RUNTIME_COSTS[arch.lower()]
    except KeyError:
        raise UnknownMachine(
            f"no runtime cost table for {arch!r}; have {sorted(RUNTIME_COSTS)}"
        ) from None


def work_seconds(work_units: float, machine: MachineTopology) -> float:
    """Convert abstract work units to seconds on one core of ``machine``.

    One work unit is defined as one second of execution on a reference
    core (``core_perf == 1.0``) at 1 GHz; real cores scale by
    ``core_perf * clock_ghz``.
    """
    return work_units / (machine.core_perf * machine.clock_ghz)
