"""Whole-program execution: Program x machine x EnvConfig -> runtime.

:func:`execute` returns the *modeled* (noise-free) runtime;
:func:`observe` layers the architecture's measurement-noise model on top,
keyed by the full sample identity so sweeps are reproducible in any
execution order (the property the paper's batching strategy protects).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.noise import get_noise_model, sample_seed
from repro.arch.topology import MachineTopology
from repro.errors import SimulationError
from repro.runtime.affinity import ThreadPlacement, compute_placement
from repro.runtime.barrier import (
    fork_seconds,
    serial_gap_seconds,
    workers_asleep,
)
from repro.runtime.costs import RuntimeCosts, get_costs, work_seconds
from repro.runtime.icv import EnvConfig, ResolvedICVs, resolve_icvs
from repro.runtime.kernel import RegionEngine
from repro.runtime.program import LoopRegion, Program, SerialPhase, TaskRegion

__all__ = [
    "RuntimeExecutor",
    "apply_measurement_noise",
    "execute",
    "observe",
]


@dataclass(frozen=True)
class _PhaseCost:
    """Per-phase wall-time breakdown (for traces and ablation studies)."""

    name: str
    kind: str
    seconds: float
    trips: int


class RuntimeExecutor:
    """Reusable executor for one (machine, config) pair.

    Caches ICV resolution, placement and the region engine so sweeping many
    programs under one configuration costs a handful of scalar evaluations
    per region.
    """

    def __init__(
        self,
        machine: MachineTopology,
        config: EnvConfig,
        fidelity: str = "analytic",
        costs: RuntimeCosts | None = None,
    ):
        if fidelity not in ("analytic", "des"):
            raise SimulationError(f"unknown fidelity {fidelity!r}")
        self.machine = machine
        self.config = config
        self.fidelity = fidelity
        self.icvs: ResolvedICVs = resolve_icvs(config, machine)
        self.placement: ThreadPlacement = compute_placement(self.icvs, machine)
        # A custom cost table (e.g. scale_costs output) overrides the
        # machine's calibrated one — the metamorphic harness's entry point.
        self.costs: RuntimeCosts = costs if costs is not None else get_costs(
            machine.name
        )
        self.engine = RegionEngine(machine, self.icvs, self.placement, self.costs)

    # ------------------------------------------------------------------
    def phase_costs(self, program: Program, seed: int = 0) -> list[_PhaseCost]:
        """Per-phase wall times (one entry per phase, trips folded in)."""
        out: list[_PhaseCost] = []
        for i, phase in enumerate(program.phases):
            if isinstance(phase, SerialPhase):
                sec = serial_gap_seconds(
                    self.icvs,
                    self.placement,
                    work_seconds(phase.work, self.machine),
                )
                out.append(_PhaseCost(phase.name, "serial", sec, 1))
                continue

            gap_nominal = work_seconds(phase.gap_work, self.machine)
            gap_sec = serial_gap_seconds(self.icvs, self.placement, gap_nominal)
            sleeping = workers_asleep(self.icvs, gap_nominal)
            fork = fork_seconds(self.icvs, self.costs, sleeping)

            if isinstance(phase, LoopRegion):
                body = self.engine.loop_region_seconds(phase)
                kind = "loop"
            elif isinstance(phase, TaskRegion):
                body = self.engine.task_region_seconds(
                    phase, fidelity=self.fidelity, seed=sample_seed(seed, i)
                )
                kind = "task"
            else:  # pragma: no cover - exhaustive over Phase union
                raise SimulationError(f"unknown phase type {type(phase)!r}")

            per_trip = gap_sec + fork + body
            out.append(_PhaseCost(phase.name, kind, per_trip * phase.trips, phase.trips))
        return out

    def execute(self, program: Program, seed: int = 0) -> float:
        """Modeled (noise-free) wall time of ``program`` in seconds."""
        return sum(c.seconds for c in self.phase_costs(program, seed))

    def observe(
        self, program: Program, run_index: int = 0, seed: int = 0
    ) -> float:
        """One noisy runtime observation, as a measurement would see it.

        The *modeled* runtime is a function of the resolved ICVs alone, so
        env-var spellings with equal execution signatures share it — that
        determinism is what lets the sweep evaluate the model once per
        ICV-equivalence class.  The noise stream, by contrast, is keyed by
        the configuration spelling: every grid point is a separate
        measurement with its own draw, as it would be on a real machine.
        """
        return apply_measurement_noise(
            self.machine, program, self.config,
            self.execute(program, seed), run_index, seed,
        )


def apply_measurement_noise(
    machine: MachineTopology,
    program: Program,
    config: EnvConfig,
    true_runtime: float,
    run_index: int = 0,
    seed: int = 0,
) -> float:
    """Turn a modeled runtime into one noisy observation of ``config``.

    The seed contract of every observation in the simulator: the noise
    stream is keyed by ``(machine, program, config spelling, seed)``.  The
    pruned sweep relies on this split — it evaluates the model once per
    ICV-equivalence class and applies each member's own noise stream to
    the shared true runtime, which is bit-identical to exhaustive
    execution because the model is deterministic in the resolved ICVs.
    """
    noise = get_noise_model(machine.name)
    obs_seed = sample_seed(machine.name, program.name, config.key(), seed)
    return noise.apply(true_runtime, run_index, obs_seed)


def execute(
    program: Program,
    machine: MachineTopology,
    config: EnvConfig,
    fidelity: str = "analytic",
    seed: int = 0,
    costs: RuntimeCosts | None = None,
) -> float:
    """Convenience one-shot wrapper around :class:`RuntimeExecutor`."""
    return RuntimeExecutor(machine, config, fidelity, costs=costs).execute(
        program, seed
    )


def observe(
    program: Program,
    machine: MachineTopology,
    config: EnvConfig,
    run_index: int = 0,
    fidelity: str = "analytic",
    seed: int = 0,
) -> float:
    """One-shot noisy observation."""
    return RuntimeExecutor(machine, config, fidelity).observe(
        program, run_index, seed
    )
