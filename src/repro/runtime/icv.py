"""Environment variables -> Internal Control Variables (ICVs).

Implements the exact default-derivation logic the paper documents in
Sec. III (confirmed with libomp's maintainers):

- ``OMP_PROC_BIND``: unset corresponds to ``false``; but if ``OMP_PLACES``
  is set, the default becomes ``spread``.
- ``OMP_SCHEDULE`` defaults to ``static`` (runtime-chosen chunk).
- ``KMP_LIBRARY`` defaults to ``throughput``.
- ``KMP_BLOCKTIME`` defaults to 200 ms; ``infinite`` disables sleeping,
  ``0`` sleeps immediately.
- ``KMP_FORCE_REDUCTION`` unset selects the runtime heuristic: 1 thread ->
  a no-synchronization fast path, 2..4 threads -> ``critical``, more ->
  ``tree``.
- ``KMP_ALIGN_ALLOC`` defaults to the architecture cache-line size
  (256 B on A64FX, 64 B on the x86 machines).
- ``OMP_WAIT_POLICY`` is *derived* from ``KMP_LIBRARY`` + ``KMP_BLOCKTIME``
  (the reason the paper sweeps the two ``KMP_*`` variables instead):
  ``turnaround``/``infinite`` -> ACTIVE spinning, ``throughput`` with a
  finite blocktime -> PASSIVE-after-blocktime.
"""

from __future__ import annotations

import enum
import math
from collections.abc import Mapping
from dataclasses import dataclass, replace
from typing import ClassVar

from repro.arch.topology import MachineTopology, PlaceKind
from repro.errors import InvalidEnvValue, UnknownVariable

__all__ = [
    "UNSET",
    "ENV_FIELDS",
    "BindPolicy",
    "ScheduleKind",
    "LibraryMode",
    "WaitPolicy",
    "ReductionMethod",
    "EnvConfig",
    "ResolvedICVs",
    "resolve_icvs",
]

#: Sentinel string meaning "environment variable not set".
UNSET = "unset"


class BindPolicy(str, enum.Enum):
    """``OMP_PROC_BIND`` values (Sec. III-2)."""

    UNSET = "unset"
    FALSE = "false"
    TRUE = "true"
    MASTER = "master"
    CLOSE = "close"
    SPREAD = "spread"


class ScheduleKind(str, enum.Enum):
    """``OMP_SCHEDULE`` kinds (Sec. III-3; chunk sizes not swept)."""

    STATIC = "static"
    DYNAMIC = "dynamic"
    GUIDED = "guided"
    AUTO = "auto"


class LibraryMode(str, enum.Enum):
    """``KMP_LIBRARY`` execution modes (Sec. III-4; ``serial`` excluded
    from sweeps but supported by the model)."""

    SERIAL = "serial"
    THROUGHPUT = "throughput"
    TURNAROUND = "turnaround"


class WaitPolicy(str, enum.Enum):
    """Derived ``OMP_WAIT_POLICY``."""

    ACTIVE = "active"
    PASSIVE = "passive"


class ReductionMethod(str, enum.Enum):
    """``KMP_FORCE_REDUCTION`` methods (Sec. III-6)."""

    UNSET = "unset"
    TREE = "tree"
    CRITICAL = "critical"
    ATOMIC = "atomic"
    #: Resolved-only: single-thread fast path (never set via env).
    NONE = "none"


#: Legal KMP_BLOCKTIME sweep values; any int in [0, INT32_MAX] is accepted.
BLOCKTIME_INFINITE = "infinite"

#: Environment-variable name -> :class:`EnvConfig` field, in Sec. III order.
ENV_FIELDS: dict[str, str] = {
    "OMP_NUM_THREADS": "num_threads",
    "OMP_PLACES": "places",
    "OMP_PROC_BIND": "proc_bind",
    "OMP_SCHEDULE": "schedule",
    "KMP_LIBRARY": "library",
    "KMP_BLOCKTIME": "blocktime",
    "KMP_FORCE_REDUCTION": "force_reduction",
    "KMP_ALIGN_ALLOC": "align_alloc",
}


def _parse_schedule(value: str) -> tuple[ScheduleKind, int | None]:
    """Parse an ``OMP_SCHEDULE`` string: ``kind`` or ``kind,chunk``.

    The paper sweeps kinds only ("but no chunk sizes"); the chunk syntax
    is supported so the restriction can be lifted (see
    ``repro.core.envspace.chunked_schedule_variables``).
    """
    parts = [p.strip() for p in str(value).split(",")]
    if len(parts) > 2 or not parts[0]:
        raise InvalidEnvValue(
            "OMP_SCHEDULE", value, "kind[,chunk] with kind in "
            f"{[s.value for s in ScheduleKind]}"
        )
    try:
        kind = ScheduleKind(parts[0])
    except ValueError:
        raise InvalidEnvValue(
            "OMP_SCHEDULE", value, [s.value for s in ScheduleKind]
        ) from None
    chunk: int | None = None
    if len(parts) == 2:
        try:
            chunk = int(parts[1])
        except ValueError:
            raise InvalidEnvValue(
                "OMP_SCHEDULE", value, "chunk must be an integer"
            ) from None
        if chunk < 1:
            raise InvalidEnvValue("OMP_SCHEDULE", value, "chunk must be >= 1")
    return kind, chunk


@dataclass(frozen=True)
class EnvConfig:
    """One point in the environment-variable space, as a user would set it.

    ``None`` / ``"unset"`` entries mean the variable is absent from the
    environment and libomp's default derivation applies.
    """

    num_threads: int | None = None
    places: str = UNSET
    proc_bind: str = UNSET
    schedule: str = UNSET
    library: str = UNSET
    blocktime: str = UNSET
    force_reduction: str = UNSET
    align_alloc: int | None = None

    def __post_init__(self) -> None:
        # KMP_ALIGN_ALLOC is validated at parse time: a non-power-of-two
        # alignment would otherwise surface only deep inside the
        # runtime/alloc.py false-sharing model, long after the config was
        # built (and on A64FX-shaped machines only).
        self._check_align_alloc()

    def _check_align_alloc(self) -> None:
        if self.align_alloc is not None:
            if (
                not isinstance(self.align_alloc, int)
                or self.align_alloc < 8
                or self.align_alloc & (self.align_alloc - 1)
            ):
                raise InvalidEnvValue(
                    "KMP_ALIGN_ALLOC", self.align_alloc, "power of two >= 8"
                )

    @classmethod
    def from_env(cls, env: Mapping[str, str]) -> "EnvConfig":
        """Parse an environment mapping (as a user would ``export`` it).

        Unknown ``OMP_*``/``KMP_*`` keys raise :class:`UnknownVariable`;
        other keys are ignored (a real environment carries hundreds of
        unrelated variables).  The result is fully validated — every
        domain error surfaces here, at parse time.
        """
        kwargs: dict[str, object] = {}
        for name, raw in env.items():
            if name not in ENV_FIELDS:
                if name.startswith(("OMP_", "KMP_")):
                    raise UnknownVariable(
                        f"{name!r} is not a modeled environment variable; "
                        f"have {sorted(ENV_FIELDS)}"
                    )
                continue
            field_name = ENV_FIELDS[name]
            if field_name in ("num_threads", "align_alloc"):
                try:
                    kwargs[field_name] = int(str(raw).strip())
                except ValueError:
                    raise InvalidEnvValue(name, raw, "an integer") from None
            else:
                kwargs[field_name] = str(raw).strip()
        config = cls(**kwargs)
        config.validate()
        return config

    def validate(self) -> None:
        """Raise :class:`InvalidEnvValue` on any illegal setting."""
        if self.num_threads is not None and self.num_threads < 1:
            raise InvalidEnvValue("OMP_NUM_THREADS", self.num_threads, ">= 1")
        if self.places != UNSET:
            try:
                PlaceKind(self.places)
            except ValueError:
                raise InvalidEnvValue(
                    "OMP_PLACES", self.places, [k.value for k in PlaceKind]
                ) from None
        if self.proc_bind != UNSET:
            try:
                BindPolicy(self.proc_bind)
            except ValueError:
                raise InvalidEnvValue(
                    "OMP_PROC_BIND", self.proc_bind, [b.value for b in BindPolicy]
                ) from None
        if self.schedule != UNSET:
            kind, _chunk = _parse_schedule(self.schedule)
            del kind  # raises InvalidEnvValue on malformed input
        if self.library != UNSET:
            try:
                LibraryMode(self.library)
            except ValueError:
                raise InvalidEnvValue(
                    "KMP_LIBRARY", self.library, [m.value for m in LibraryMode]
                ) from None
        if self.blocktime != UNSET and self.blocktime != BLOCKTIME_INFINITE:
            try:
                bt = int(self.blocktime)
            except (TypeError, ValueError):
                raise InvalidEnvValue(
                    "KMP_BLOCKTIME", self.blocktime, "int in [0, 2^31) or 'infinite'"
                ) from None
            if not 0 <= bt < 2**31:
                raise InvalidEnvValue(
                    "KMP_BLOCKTIME", self.blocktime, "int in [0, 2^31) or 'infinite'"
                )
        if self.force_reduction != UNSET:
            if self.force_reduction not in ("tree", "critical", "atomic"):
                raise InvalidEnvValue(
                    "KMP_FORCE_REDUCTION",
                    self.force_reduction,
                    ["tree", "critical", "atomic"],
                )
        self._check_align_alloc()

    def with_threads(self, num_threads: int) -> "EnvConfig":
        """Copy with a different thread count."""
        return replace(self, num_threads=num_threads)

    def as_env(self) -> dict[str, str]:
        """Render as the environment a user would export (unset vars absent)."""
        out: dict[str, str] = {}
        if self.num_threads is not None:
            out["OMP_NUM_THREADS"] = str(self.num_threads)
        if self.places != UNSET:
            out["OMP_PLACES"] = self.places
        if self.proc_bind != UNSET:
            out["OMP_PROC_BIND"] = self.proc_bind
        if self.schedule != UNSET:
            out["OMP_SCHEDULE"] = self.schedule
        if self.library != UNSET:
            out["KMP_LIBRARY"] = self.library
        if self.blocktime != UNSET:
            out["KMP_BLOCKTIME"] = str(self.blocktime)
        if self.force_reduction != UNSET:
            out["KMP_FORCE_REDUCTION"] = self.force_reduction
        if self.align_alloc is not None:
            out["KMP_ALIGN_ALLOC"] = str(self.align_alloc)
        return out

    def key(self) -> tuple:
        """Hashable identity used to seed noise streams and index datasets."""
        return (
            self.num_threads,
            self.places,
            self.proc_bind,
            self.schedule,
            self.library,
            self.blocktime,
            self.force_reduction,
            self.align_alloc,
        )


#: The per-architecture default configuration: every variable unset, thread
#: count left to the runtime (= all cores).
DEFAULT_CONFIG = EnvConfig()


@dataclass(frozen=True)
class ResolvedICVs:
    """Fully derived control variables for one run on one machine."""

    nthreads: int
    places: PlaceKind
    #: Whether the user set OMP_PLACES explicitly (affects bind default).
    places_explicit: bool
    bind: BindPolicy  # never UNSET after resolution
    schedule: ScheduleKind
    #: Chunk from "kind,chunk" syntax; None = runtime-chosen default.
    schedule_chunk: int | None
    library: LibraryMode
    blocktime_ms: float  # math.inf for 'infinite'
    reduction: ReductionMethod  # never UNSET after resolution
    align_alloc: int
    cache_line: int

    #: The named slots of :meth:`execution_signature`, in tuple order.
    #: ``wait_policy`` is the derived property; the other names are
    #: fields.  The dependency lint plane (KEY002) checks every slot is
    #: read by reachable model code, and this tuple's arity is pinned
    #: against the returned tuple's.
    SIGNATURE_COMPONENTS: ClassVar[tuple[str, ...]] = (
        "nthreads",
        "places",
        "bind",
        "schedule",
        "schedule_chunk",
        "wait_policy",
        "blocktime_ms",
        "reduction",
        "align_alloc",
        "cache_line",
    )

    #: The dead-field normalization table: field -> (guard, reason).
    #: A field listed here is *not* independently folded into
    #: :meth:`execution_signature`.  ``guard`` names the attribute whose
    #: value makes the field irrelevant: model code may read the field
    #: only at sites conditioned on that attribute (``None`` = the field
    #: must not be read by the evaluation cone at all).  The dependency
    #: lint plane (KEY004) enforces exactly this, so the table cannot
    #: drift from the code; ``docs/LINTING.md`` renders it.
    SIGNATURE_DEAD_FIELDS: ClassVar[dict[str, tuple[str | None, str]]] = {
        "library": (
            None,
            "acts only through the derived wait policy (serial's thread "
            "forcing is applied at resolution)",
        ),
        "places_explicit": (
            None,
            "only shifts the bind default, which resolution already "
            "applied",
        ),
        "blocktime_ms": (
            "wait_policy",
            "read only under PASSIVE waiting (sleep threshold, wake "
            "fractions); canonicalized out under ACTIVE",
        ),
        "places": (
            "bind",
            "consulted only when threads are bound; a bound team with "
            "unset places canonicalizes to cores",
        ),
    }

    @property
    def wait_policy(self) -> WaitPolicy:
        """``OMP_WAIT_POLICY`` as libomp derives it.

        ``turnaround`` or an infinite blocktime keep waiters spinning
        (ACTIVE); ``throughput`` with a finite blocktime eventually yields
        and sleeps (PASSIVE).
        """
        if self.library is LibraryMode.TURNAROUND:
            return WaitPolicy.ACTIVE
        if math.isinf(self.blocktime_ms):
            return WaitPolicy.ACTIVE
        return WaitPolicy.PASSIVE

    @property
    def threads_bound(self) -> bool:
        """Whether threads are pinned (any policy except false)."""
        return self.bind is not BindPolicy.FALSE

    def execution_signature(self) -> tuple:
        """Canonical identity of everything execution reads.

        Two configurations with equal signatures are *behaviourally
        identical*: every model component (placement, schedule pricing,
        barriers, reductions, alignment) receives the same inputs, so they
        produce bit-identical modeled runtimes.  The sweep's equivalence
        pruning (``repro.lint.equivalence``) evaluates the model once per
        signature and applies each member's own measurement-noise stream
        (keyed by the spelling, :meth:`EnvConfig.key`) on top; the
        ``equivalence-pruning-parity`` differential check verifies the
        claim against unpruned execution.

        The tuple's slots are named by :data:`SIGNATURE_COMPONENTS`.
        Dead fields are normalized away per the machine-readable table
        :data:`SIGNATURE_DEAD_FIELDS` (field -> guard making it
        irrelevant), which the dependency lint plane enforces against
        the code (KEY004) — so the canonicalizations below (``blocktime``
        dropped under ACTIVE waiting, ``places`` dropped when unbound,
        ``library`` and ``places_explicit`` carried only through their
        derived values) are proven, not just documented.  One value
        normalization rides along: ``true`` binding distributes
        identically to ``spread`` (libomp groups them too — the paper's
        Table VII "spread/true" rows).
        """
        bind = BindPolicy.SPREAD if self.bind is BindPolicy.TRUE else self.bind
        if bind is BindPolicy.FALSE:
            places = PlaceKind.UNSET
        elif self.places is PlaceKind.UNSET:
            places = PlaceKind.CORES
        else:
            places = self.places
        wait = self.wait_policy
        blocktime = None if wait is WaitPolicy.ACTIVE else self.blocktime_ms
        return (
            self.nthreads,
            places.value,
            bind.value,
            self.schedule.value,
            self.schedule_chunk,
            wait.value,
            blocktime,
            self.reduction.value,
            self.align_alloc,
            self.cache_line,
        )


def _heuristic_reduction(nthreads: int) -> ReductionMethod:
    """libomp's reduction-method heuristic (paper Sec. III-6)."""
    if nthreads == 1:
        return ReductionMethod.NONE
    if nthreads <= 4:
        return ReductionMethod.CRITICAL
    return ReductionMethod.TREE


def resolve_icvs(config: EnvConfig, machine: MachineTopology) -> ResolvedICVs:
    """Resolve an :class:`EnvConfig` against a machine, libomp-style."""
    config.validate()

    nthreads = config.num_threads if config.num_threads is not None else machine.n_cores
    # libomp caps the default at available cores but honours explicit
    # oversubscription requests.
    places_explicit = config.places != UNSET
    places = PlaceKind(config.places) if places_explicit else PlaceKind.UNSET

    if config.proc_bind != UNSET:
        bind = BindPolicy(config.proc_bind)
        if bind is BindPolicy.UNSET:
            bind = BindPolicy.SPREAD if places_explicit else BindPolicy.FALSE
    elif places_explicit:
        bind = BindPolicy.SPREAD
    else:
        bind = BindPolicy.FALSE

    if config.schedule != UNSET:
        schedule, schedule_chunk = _parse_schedule(config.schedule)
    else:
        schedule, schedule_chunk = ScheduleKind.STATIC, None

    library = (
        LibraryMode(config.library) if config.library != UNSET else LibraryMode.THROUGHPUT
    )
    if library is LibraryMode.SERIAL:
        # Sec. III-4: serial mode "forces parallel applications to run in
        # a serial manner" (excluded from sweeps, honoured by the model).
        nthreads = 1

    if config.blocktime == UNSET:
        blocktime_ms = 200.0
    elif config.blocktime == BLOCKTIME_INFINITE:
        blocktime_ms = math.inf
    else:
        blocktime_ms = float(int(config.blocktime))

    if config.force_reduction == UNSET:
        reduction = _heuristic_reduction(nthreads)
    else:
        reduction = ReductionMethod(config.force_reduction)

    align = (
        config.align_alloc
        if config.align_alloc is not None
        else machine.cache_line_bytes
    )

    return ResolvedICVs(
        nthreads=nthreads,
        places=places,
        places_explicit=places_explicit,
        bind=bind,
        schedule=schedule,
        schedule_chunk=schedule_chunk,
        library=library,
        blocktime_ms=blocktime_ms,
        reduction=reduction,
        align_alloc=align,
        cache_line=machine.cache_line_bytes,
    )
