"""Cross-thread reduction cost model (``KMP_FORCE_REDUCTION``).

libomp combines per-thread partial results with one of three methods
(Sec. III-6):

- ``tree``: pairwise combining over ``ceil(log2 T)`` rounds — each round
  is a partner cache-line transfer,
- ``critical``: every thread enters one critical section — ``T`` serialized
  lock handoffs,
- ``atomic``: every thread issues an atomic RMW per reduction variable on a
  shared line — cheap per op but the line ping-pongs, so cost grows mildly
  superlinearly with the team,
- the unset heuristic resolves to none/critical/tree by team size (handled
  during ICV resolution).

Cross-socket teams pay a distance multiplier on line transfers.
"""

from __future__ import annotations

import math

from repro.errors import ConfigError
from repro.runtime.affinity import ThreadPlacement
from repro.runtime.costs import RuntimeCosts
from repro.runtime.icv import ReductionMethod, ResolvedICVs

__all__ = ["reduction_seconds"]


def _team_distance_factor(placement: ThreadPlacement) -> float:
    """Line-transfer multiplier for the team's hardware spread.

    1.0 for a single-LLC team, rising toward the machine's cross-socket
    penalty as the team spans more sockets/NUMA nodes.
    """
    m = placement.machine
    if placement.nthreads == 1:
        return 1.0
    n_sockets_used = int(len(set(placement.sockets.tolist())))
    n_numa_used = placement.n_numa_used
    if n_sockets_used > 1:
        return 0.5 * (1.0 + m.numa_penalty_cross_socket)
    if n_numa_used > 1:
        return 0.5 * (1.0 + m.numa_penalty_same_socket)
    return 1.0


def reduction_seconds(
    icvs: ResolvedICVs,
    placement: ThreadPlacement,
    costs: RuntimeCosts,
    n_vars: int,
) -> float:
    """Seconds one region-end reduction of ``n_vars`` scalars takes."""
    if n_vars < 0:
        raise ConfigError(f"negative reduction variable count {n_vars}")
    if n_vars == 0:
        return 0.0
    T = icvs.nthreads
    method = icvs.reduction
    if T == 1 or method is ReductionMethod.NONE:
        return 0.0
    dist = _team_distance_factor(placement)

    if method is ReductionMethod.TREE:
        rounds = math.ceil(math.log2(T))
        # All variables ride the same partner exchange; extra vars add a
        # small per-var combine cost.
        per_round = costs.tree_step_us * 1e-6 * dist
        return rounds * per_round * (1.0 + 0.15 * (n_vars - 1))

    if method is ReductionMethod.CRITICAL:
        # T serialized handoffs of the lock line, combining all vars inside.
        handoff = costs.critical_ns * 1e-9 * dist
        return T * handoff * (1.0 + 0.10 * (n_vars - 1))

    if method is ReductionMethod.ATOMIC:
        # One contended RMW per thread per variable; the target line
        # ping-pongs, growing cost mildly with team size.
        rmw = costs.atomic_ns * 1e-9 * dist * (1.0 + 0.015 * T)
        return T * rmw * n_vars

    raise ConfigError(f"unresolved reduction method {method}")
