"""Descriptive statistics used throughout the analysis pipeline.

Backs Table IV (per-run-index mean/std of runtimes) and the headline
speedup-range/median numbers in Sec. V-1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import StatsError

__all__ = ["Summary", "summarize", "geometric_mean", "coefficient_of_variation"]


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float

    @property
    def iqr(self) -> float:
        """Interquartile range."""
        return self.q3 - self.q1

    @property
    def range(self) -> float:
        """Max minus min."""
        return self.maximum - self.minimum

    def as_dict(self) -> dict[str, float]:
        """Summary as a plain dict (for table construction)."""
        return {
            "n": self.n,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "q1": self.q1,
            "median": self.median,
            "q3": self.q3,
            "max": self.maximum,
        }


def summarize(values: np.ndarray) -> Summary:
    """Compute a :class:`Summary` of a 1-D numeric sample.

    Uses the sample standard deviation (ddof=1) like the paper's Table IV;
    a single observation reports ``std == 0``.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 1 or values.shape[0] == 0:
        raise StatsError(f"need a non-empty 1-D sample, got shape {values.shape}")
    if np.isnan(values).any():
        raise StatsError("sample contains NaN")
    q1, med, q3 = np.percentile(values, [25.0, 50.0, 75.0])
    std = float(np.std(values, ddof=1)) if values.shape[0] > 1 else 0.0
    return Summary(
        n=int(values.shape[0]),
        mean=float(np.mean(values)),
        std=std,
        minimum=float(np.min(values)),
        q1=float(q1),
        median=float(med),
        q3=float(q3),
        maximum=float(np.max(values)),
    )


def geometric_mean(values: np.ndarray) -> float:
    """Geometric mean of a strictly positive sample (natural for speedups)."""
    values = np.asarray(values, dtype=float)
    if values.ndim != 1 or values.shape[0] == 0:
        raise StatsError(f"need a non-empty 1-D sample, got shape {values.shape}")
    if (values <= 0).any():
        raise StatsError("geometric mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(values))))


def coefficient_of_variation(values: np.ndarray) -> float:
    """Sample std over mean — the noise metric used to compare machines."""
    s = summarize(values)
    if s.mean == 0:
        raise StatsError("coefficient of variation undefined for zero mean")
    return s.std / abs(s.mean)
