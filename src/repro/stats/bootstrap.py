"""Bootstrap confidence intervals.

The paper reports point estimates (speedup ranges, medians) from a single
sweep; bootstrap resampling adds the uncertainty the point estimates hide.
Used by the benchmark harness to attach confidence intervals to the
Table V/VI reproduction and by users comparing configurations.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.errors import StatsError

__all__ = ["BootstrapCI", "bootstrap_ci", "bootstrap_speedup_ratio"]


@dataclass(frozen=True)
class BootstrapCI:
    """A point estimate with a percentile-bootstrap confidence interval."""

    estimate: float
    low: float
    high: float
    confidence: float
    n_resamples: int

    def __contains__(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.low <= value <= self.high

    @property
    def width(self) -> float:
        """Interval width."""
        return self.high - self.low

    def __str__(self) -> str:
        pct = int(round(self.confidence * 100))
        return (
            f"{self.estimate:.4g} [{self.low:.4g}, {self.high:.4g}] "
            f"({pct}% CI)"
        )


def bootstrap_ci(
    sample: np.ndarray,
    statistic: Callable[[np.ndarray], float] = np.median,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> BootstrapCI:
    """Percentile-bootstrap CI of ``statistic`` over a 1-D sample."""
    sample = np.asarray(sample, dtype=float)
    if sample.ndim != 1 or sample.shape[0] == 0:
        raise StatsError("bootstrap needs a non-empty 1-D sample")
    if not 0.0 < confidence < 1.0:
        raise StatsError(f"confidence must be in (0, 1), got {confidence}")
    if n_resamples < 10:
        raise StatsError("need at least 10 resamples")
    rng = np.random.default_rng(seed)
    n = sample.shape[0]
    stats = np.empty(n_resamples)
    for i in range(n_resamples):
        stats[i] = statistic(sample[rng.integers(0, n, size=n)])
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(stats, [alpha, 1.0 - alpha])
    return BootstrapCI(
        estimate=float(statistic(sample)),
        low=float(low),
        high=float(high),
        confidence=confidence,
        n_resamples=n_resamples,
    )


def bootstrap_speedup_ratio(
    baseline_runtimes: np.ndarray,
    tuned_runtimes: np.ndarray,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> BootstrapCI:
    """CI on ``mean(baseline) / mean(tuned)`` from repeated measurements.

    The right tool for "is this configuration really faster, given the
    machine's noise?" — a speedup whose CI includes 1.0 is not
    established.
    """
    baseline = np.asarray(baseline_runtimes, dtype=float)
    tuned = np.asarray(tuned_runtimes, dtype=float)
    if baseline.size == 0 or tuned.size == 0:
        raise StatsError("need non-empty baseline and tuned samples")
    if (baseline <= 0).any() or (tuned <= 0).any():
        raise StatsError("runtimes must be positive")
    rng = np.random.default_rng(seed)
    ratios = np.empty(n_resamples)
    for i in range(n_resamples):
        b = baseline[rng.integers(0, baseline.size, size=baseline.size)]
        t = tuned[rng.integers(0, tuned.size, size=tuned.size)]
        ratios[i] = b.mean() / t.mean()
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(ratios, [alpha, 1.0 - alpha])
    return BootstrapCI(
        estimate=float(baseline.mean() / tuned.mean()),
        low=float(low),
        high=float(high),
        confidence=confidence,
        n_resamples=n_resamples,
    )
