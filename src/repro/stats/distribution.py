"""Distribution estimation backing the violin plots (Figs. 1, 5-7).

A violin plot is a box plot whose sides are a mirrored kernel density
estimate.  We implement a gaussian KDE with Scott's-rule bandwidth (the
matplotlib default the paper's figures used) and package the quantities a
violin needs — evaluation grid, density, and quartiles — into
:class:`ViolinStats`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import StatsError

__all__ = ["GaussianKDE", "ViolinStats", "violin_stats"]


class GaussianKDE:
    """Gaussian kernel density estimator for 1-D samples.

    Bandwidth follows Scott's rule, ``n**(-1/5) * sigma``, with a floor so
    near-degenerate samples (e.g. a configuration whose runtimes are all
    equal up to float noise) still produce a finite, plottable density.
    """

    def __init__(self, sample: np.ndarray, bw_factor: float = 1.0):
        sample = np.asarray(sample, dtype=float)
        if sample.ndim != 1 or sample.shape[0] == 0:
            raise StatsError(f"KDE needs a non-empty 1-D sample, got {sample.shape}")
        if np.isnan(sample).any():
            raise StatsError("KDE sample contains NaN")
        self.sample = sample
        n = sample.shape[0]
        sigma = float(np.std(sample, ddof=1)) if n > 1 else 0.0
        spread = float(np.ptp(sample))
        scale = max(sigma, 1e-3 * max(spread, abs(float(np.mean(sample))), 1e-12))
        self.bandwidth = bw_factor * scale * n ** (-0.2)

    def __call__(self, grid: np.ndarray) -> np.ndarray:
        """Evaluate the density on ``grid`` (vectorized)."""
        grid = np.asarray(grid, dtype=float)
        h = self.bandwidth
        z = (grid[:, None] - self.sample[None, :]) / h
        k = np.exp(-0.5 * z * z)
        norm = self.sample.shape[0] * h * math.sqrt(2.0 * math.pi)
        return k.sum(axis=1) / norm

    def support(self, cut: float = 3.0) -> tuple[float, float]:
        """Interval covering the sample plus ``cut`` bandwidths each side."""
        return (
            float(self.sample.min()) - cut * self.bandwidth,
            float(self.sample.max()) + cut * self.bandwidth,
        )


@dataclass(frozen=True)
class ViolinStats:
    """Everything a renderer needs to draw one violin."""

    label: str
    grid: np.ndarray = field(repr=False)
    density: np.ndarray = field(repr=False)
    q1: float
    median: float
    q3: float
    minimum: float
    maximum: float
    n: int

    @property
    def peak_density(self) -> float:
        """Maximum of the density curve (used to normalize widths)."""
        return float(self.density.max())


def violin_stats(
    sample: np.ndarray,
    label: str = "",
    grid_points: int = 128,
    cut: float = 2.0,
) -> ViolinStats:
    """Compute the KDE shape and quartiles for one violin.

    The evaluation grid is clipped to the sample range extended by ``cut``
    bandwidths, mirroring matplotlib's ``violinplot`` behaviour.
    """
    sample = np.asarray(sample, dtype=float)
    if grid_points < 8:
        raise StatsError("grid_points must be >= 8 for a drawable violin")
    kde = GaussianKDE(sample)
    lo, hi = kde.support(cut)
    grid = np.linspace(lo, hi, grid_points)
    density = kde(grid)
    q1, med, q3 = np.percentile(sample, [25.0, 50.0, 75.0])
    return ViolinStats(
        label=label,
        grid=grid,
        density=density,
        q1=float(q1),
        median=float(med),
        q3=float(q3),
        minimum=float(sample.min()),
        maximum=float(sample.max()),
        n=int(sample.shape[0]),
    )
