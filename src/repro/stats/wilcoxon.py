"""Wilcoxon signed-rank test.

The paper (Sec. IV-C, Table III) applies the Wilcoxon signed-rank test to
pairs of repeated runs (R0, R1), (R1, R2), ... of every configuration to
decide whether repeated measurements of the same configuration differ
significantly — high p-values indicate consistent (low-noise) machines
(A64FX), low p-values indicate noisy ones (Skylake/Milan X86).

This module implements the test from scratch:

- zero-differences are discarded (Wilcoxon's original treatment, matching
  ``scipy.stats.wilcoxon(zero_method="wilcox")``),
- ties are mid-ranked with the standard tie correction to the variance,
- for small samples (n <= 25) without ties an exact p-value is computed by
  dynamic programming over the distribution of the signed-rank statistic,
- otherwise the normal approximation with continuity correction is used.

The returned statistic is ``W = min(W+, W-)`` as in the two-sided test,
matching scipy's convention; tests cross-validate against scipy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import StatsError

__all__ = ["WilcoxonResult", "wilcoxon_signed_rank", "rankdata"]


def rankdata(values: np.ndarray) -> np.ndarray:
    """Rank data, averaging the ranks of ties (1-based, "midranks").

    Equivalent to ``scipy.stats.rankdata(values, method="average")``.
    """
    values = np.asarray(values, dtype=float)
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(values.shape[0], dtype=float)
    sorted_vals = values[order]
    i = 0
    n = values.shape[0]
    while i < n:
        j = i
        while j + 1 < n and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        avg_rank = 0.5 * (i + j) + 1.0  # mean of 1-based ranks i+1..j+1
        ranks[order[i:j + 1]] = avg_rank
        i = j + 1
    return ranks


def _exact_sf(n: int, w_small: float) -> float:
    """Exact two-sided p-value for the signed-rank statistic, no ties.

    Computes ``P(W <= w_small)`` by dynamic programming over the number of
    subsets of {1..n} with each possible rank-sum, then doubles it (capped at
    1.0), matching the classical two-sided exact test.
    """
    max_sum = n * (n + 1) // 2
    # counts[s] = number of sign assignments with positive-rank-sum == s
    counts = np.zeros(max_sum + 1, dtype=float)
    counts[0] = 1.0
    for rank in range(1, n + 1):
        shifted = np.zeros_like(counts)
        shifted[rank:] = counts[:max_sum + 1 - rank]
        counts = counts + shifted
    total = 2.0 ** n
    w = int(math.floor(w_small + 1e-12))
    cdf = counts[: w + 1].sum() / total
    return float(min(1.0, 2.0 * cdf))


@dataclass(frozen=True)
class WilcoxonResult:
    """Outcome of a Wilcoxon signed-rank test.

    Attributes
    ----------
    statistic:
        ``min(W+, W-)`` — the smaller of the positive/negative rank sums.
    pvalue:
        Two-sided p-value.
    n_used:
        Number of non-zero differences actually ranked.
    zstat:
        Normal-approximation z statistic (``nan`` when the exact path ran).
    method:
        ``"exact"`` or ``"approx"``.
    """

    statistic: float
    pvalue: float
    n_used: int
    zstat: float
    method: str

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether the paired samples differ at level ``alpha``."""
        return self.pvalue < alpha


def wilcoxon_signed_rank(
    x: np.ndarray,
    y: np.ndarray | None = None,
    *,
    exact_threshold: int = 25,
) -> WilcoxonResult:
    """Two-sided Wilcoxon signed-rank test on paired samples.

    Parameters
    ----------
    x, y:
        Paired measurement vectors.  If ``y`` is omitted, ``x`` is taken to
        be the vector of differences directly.
    exact_threshold:
        Largest ``n`` (after zero removal) for which the exact distribution
        is used when there are no ties.

    Raises
    ------
    StatsError
        If inputs mismatch in length or all differences are zero.
    """
    x = np.asarray(x, dtype=float)
    if y is not None:
        y = np.asarray(y, dtype=float)
        if x.shape != y.shape:
            raise StatsError(
                f"paired samples differ in shape: {x.shape} vs {y.shape}"
            )
        d = x - y
    else:
        d = x
    if d.ndim != 1:
        raise StatsError(f"expected 1-D samples, got shape {d.shape}")

    d = d[d != 0.0]
    n = d.shape[0]
    if n == 0:
        raise StatsError("all paired differences are zero; test undefined")

    abs_d = np.abs(d)
    ranks = rankdata(abs_d)
    w_plus = float(ranks[d > 0].sum())
    w_minus = float(ranks[d < 0].sum())
    statistic = min(w_plus, w_minus)

    has_ties = len(np.unique(abs_d)) != n
    if n <= exact_threshold and not has_ties:
        p = _exact_sf(n, statistic)
        return WilcoxonResult(statistic, p, n, float("nan"), "exact")

    mean = n * (n + 1) / 4.0
    var = n * (n + 1) * (2 * n + 1) / 24.0
    # Tie correction: subtract sum(t^3 - t)/48 over tie groups.
    _, counts = np.unique(abs_d, return_counts=True)
    tie_term = float(((counts.astype(float) ** 3) - counts).sum()) / 48.0
    var -= tie_term
    if var <= 0:
        raise StatsError("zero variance in signed-rank statistic (all ties)")
    # Continuity correction of 0.5 toward the mean.
    z = (statistic - mean + 0.5) / math.sqrt(var)
    p = float(min(1.0, 2.0 * _norm_sf(abs(z))))
    return WilcoxonResult(statistic, p, n, z, "approx")


def _norm_sf(z: float) -> float:
    """Standard normal survival function via erfc."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))
