"""Statistics substrate.

Implements the statistical machinery the paper's methodology section uses:

- :func:`~repro.stats.wilcoxon.wilcoxon_signed_rank` — the Wilcoxon
  signed-rank test (Table III) with exact small-sample and tie-corrected
  normal-approximation p-values,
- :mod:`~repro.stats.descriptive` — mean/std/median/percentile summaries
  (Table IV),
- :mod:`~repro.stats.distribution` — gaussian KDE and violin-shape
  computation backing the violin plots (Figs. 1, 5-7).
"""

from repro.stats.wilcoxon import WilcoxonResult, wilcoxon_signed_rank
from repro.stats.descriptive import Summary, summarize, geometric_mean
from repro.stats.distribution import GaussianKDE, ViolinStats, violin_stats
from repro.stats.bootstrap import BootstrapCI, bootstrap_ci, bootstrap_speedup_ratio

__all__ = [
    "WilcoxonResult",
    "wilcoxon_signed_rank",
    "Summary",
    "summarize",
    "geometric_mean",
    "GaussianKDE",
    "ViolinStats",
    "violin_stats",
    "BootstrapCI",
    "bootstrap_ci",
    "bootstrap_speedup_ratio",
]
