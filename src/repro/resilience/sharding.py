"""Shard planning for multi-backend sweep execution.

A *shard* is one lane of sweep execution: the serial backend has one,
the pool and nodes backends have one per worker/node.  The planner in
this module answers three questions deterministically — so the parity
checks can pin the answers — without touching any executor:

1. **Home assignment** — which shard a batch starts on.  When cache
   keys are available the assignment follows the cache's key-prefix
   partitioning (:func:`partition_for_key`), so a shard touches a
   stable subset of cache partitions and a corrupt entry quarantines
   inside the partition that owns it.  Without keys, batches deal
   round-robin by index.
2. **Dispatch order** — :meth:`ShardPlanner.interleave` permutes the
   batch stream round-robin across shards while preserving each
   shard's internal order.  Backends execute in this order; results
   are still yielded in submission order, so records never depend on
   the shard count.
3. **Rebalance** — :func:`simulate_rebalance` runs the work-stealing
   arbitration rule in virtual time, producing the steal schedule a
   backend with the given queue shapes and speeds would follow.

The arbitration rule is a *specification*, fixed and seed-independent
(the same stance PR 4 took for the loopsim work-stealing heap): an idle
shard steals from the richest backlog, ties broken by lowest shard id,
taking from the victim's queue **tail** so the victim keeps its
cache-partition-local head.  ``tiebreak_scope`` seeds perturb the
discrete-event engine, not this rule — the steal log for a given
scenario is identical under every seed, and the sharding tests pin
that.

Import discipline: this module is a leaf (stdlib + :mod:`repro.errors`
only) so :mod:`repro.core.cache` can import :func:`partition_for_key`
without creating a cycle.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import ConfigError

__all__ = [
    "PARTITION_PREFIX_HEX",
    "partition_for_key",
    "ShardPlanner",
    "StealEvent",
    "ReassignEvent",
    "ShardReport",
    "simulate_rebalance",
]

#: Hex digits of the cache key that select a partition.  Eight digits
#: (32 bits) of a uniform sha256 prefix spread keys evenly across any
#: practical partition count.
PARTITION_PREFIX_HEX = 8


def partition_for_key(key: str, n_partitions: int) -> int:
    """The cache partition owning ``key`` (a 64-hex sweep-cache key).

    Deterministic in the key alone, so every process — sweep parent,
    pool worker, node — agrees on ownership without coordination.
    """
    if n_partitions < 1:
        raise ConfigError(f"n_partitions must be >= 1, got {n_partitions}")
    prefix = key[:PARTITION_PREFIX_HEX]
    try:
        value = int(prefix, 16)
    except ValueError:
        raise ConfigError(
            f"cache key {key!r} does not start with "
            f"{PARTITION_PREFIX_HEX} hex digits"
        ) from None
    return value % n_partitions


@dataclass(frozen=True)
class StealEvent:
    """One work-steal: ``thief`` took ``task_index`` from ``victim``."""

    thief: int
    victim: int
    task_index: int

    def to_dict(self) -> dict:
        """JSON-ready form of this steal event."""
        return {
            "thief": self.thief,
            "victim": self.victim,
            "task_index": self.task_index,
        }


@dataclass(frozen=True)
class ReassignEvent:
    """One recovery reassignment: ``task_index`` moved from the lost
    ``shard`` to surviving ``target``."""

    shard: int
    target: int
    task_index: int

    def to_dict(self) -> dict:
        """JSON-ready form of this reassignment event."""
        return {
            "shard": self.shard,
            "target": self.target,
            "task_index": self.task_index,
        }


@dataclass(frozen=True)
class ShardReport:
    """Operational diagnostics from a sharded run.

    Deliberately *not* part of :class:`~repro.resilience.report.
    FailureReport`: steal/reassign schedules depend on wall-clock
    execution speed, and the failure report must stay bit-identical
    across runs (see ``docs/RESILIENCE.md``).
    """

    n_shards: int
    assignments: tuple[int, ...] = ()
    steals: tuple[StealEvent, ...] = ()
    reassignments: tuple[ReassignEvent, ...] = ()
    node_respawns: int = 0

    @property
    def n_steals(self) -> int:
        """Number of work-steal events."""
        return len(self.steals)

    @property
    def n_reassignments(self) -> int:
        """Number of recovery reassignments."""
        return len(self.reassignments)

    def to_dict(self) -> dict:
        """JSON-ready form of this report."""
        return {
            "n_shards": self.n_shards,
            "assignments": list(self.assignments),
            "steals": [s.to_dict() for s in self.steals],
            "reassignments": [r.to_dict() for r in self.reassignments],
            "node_respawns": self.node_respawns,
        }


@dataclass(frozen=True)
class ShardPlanner:
    """Deterministic partitioner for a batch stream over ``n_shards``."""

    n_shards: int

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ConfigError(
                f"n_shards must be >= 1, got {self.n_shards}"
            )

    def shard_for_key(self, key: str) -> int:
        """Home shard of a batch addressed by its cache key."""
        return partition_for_key(key, self.n_shards)

    def shard_for_index(self, index: int) -> int:
        """Home shard of a batch with no cache key: round-robin."""
        return index % self.n_shards

    def assign(
        self,
        tasks: Sequence[object],
        keys: Sequence[str] | None = None,
    ) -> tuple[int, ...]:
        """Home shard per task position.

        With ``keys`` (one cache key per task), assignment follows the
        cache's key-prefix partitioning so each shard's working set
        maps onto a stable subset of cache partitions.  Without keys,
        tasks deal round-robin.
        """
        if keys is not None:
            if len(keys) != len(tasks):
                raise ConfigError(
                    f"got {len(keys)} keys for {len(tasks)} tasks"
                )
            return tuple(self.shard_for_key(k) for k in keys)
        return tuple(self.shard_for_index(i) for i in range(len(tasks)))

    def interleave(
        self,
        tasks: Sequence[object],
        shards: Sequence[int] | None = None,
    ) -> list[object]:
        """Round-robin permutation of ``tasks`` across their shards.

        Shard 0's first task, shard 1's first, ..., then the second
        pass, skipping exhausted shards.  Within a shard, submission
        order is preserved.  With one shard this is the identity, so
        ``--shards 1`` matches the unsharded dispatch order exactly.
        """
        if shards is None:
            shards = self.assign(tasks)
        elif len(shards) != len(tasks):
            raise ConfigError(
                f"got {len(shards)} shard assignments for "
                f"{len(tasks)} tasks"
            )
        lanes: list[list[object]] = [[] for _ in range(self.n_shards)]
        for task, shard in zip(tasks, shards):
            if not 0 <= shard < self.n_shards:
                raise ConfigError(
                    f"shard {shard} out of range for "
                    f"{self.n_shards} shard(s)"
                )
            lanes[shard].append(task)
        ordered: list[object] = []
        cursor = 0
        while len(ordered) < len(tasks):
            progressed = False
            for lane in lanes:
                if cursor < len(lane):
                    ordered.append(lane[cursor])
                    progressed = True
            if not progressed:  # pragma: no cover - cursor math guard
                break
            cursor += 1
        return ordered


def simulate_rebalance(
    queues: Sequence[Sequence[int]],
    costs: Callable[[int], float] | None = None,
    speeds: Sequence[float] | None = None,
) -> tuple[list[tuple[int, int]], list[StealEvent], float]:
    """Run the work-stealing arbitration rule in virtual time.

    ``queues[s]`` is shard *s*'s home queue of task indices; ``costs``
    maps a task index to its virtual duration (default 1.0);
    ``speeds[s]`` scales shard *s*'s throughput (default 1.0 — a slow
    shard has speed < 1).  Returns ``(completions, steals, makespan)``
    where ``completions`` is the ordered ``(shard, task_index)``
    schedule.

    The rule, normative for every backend:

    - an idle shard takes the head of its own queue first;
    - with an empty home queue it steals from the shard with the
      **largest remaining backlog**, ties broken by **lowest shard
      id**, taking from the victim's **tail** (the victim keeps its
      partition-local head);
    - virtual-time ties in completion order resolve by lowest shard
      id.

    Pure and deterministic: no wall clock, no RNG, no discrete-event
    engine — ``tiebreak_scope`` seeds cannot perturb it, which the
    sharding tests pin.
    """
    n = len(queues)
    if n < 1:
        raise ConfigError("simulate_rebalance needs at least one shard")
    if speeds is not None and len(speeds) != n:
        raise ConfigError(
            f"got {len(speeds)} speeds for {n} shard(s)"
        )
    cost_of = costs if costs is not None else (lambda _i: 1.0)
    speed_of = list(speeds) if speeds is not None else [1.0] * n
    for s, spd in enumerate(speed_of):
        if spd <= 0:
            raise ConfigError(f"shard {s} speed must be > 0, got {spd}")

    backlog: list[list[int]] = [list(q) for q in queues]
    completions: list[tuple[int, int]] = []
    steals: list[StealEvent] = []
    # Heap of (virtual finish time, shard id): shard id is the total
    # tie-break, so same-instant completions pop lowest-id-first.
    ready: list[tuple[float, int]] = [(0.0, s) for s in range(n)]
    heapq.heapify(ready)
    clock = 0.0

    def take(shard: int) -> int | None:
        if backlog[shard]:
            return backlog[shard].pop(0)
        victim = -1
        richest = 0
        for v in range(n):
            if v != shard and len(backlog[v]) > richest:
                victim, richest = v, len(backlog[v])
        if victim < 0:
            return None
        stolen = backlog[victim].pop()
        steals.append(StealEvent(shard, victim, stolen))
        return stolen

    while ready:
        now, shard = heapq.heappop(ready)
        clock = max(clock, now)
        task = take(shard)
        if task is None:
            continue  # shard retires; remaining heap entries drain
        completions.append((shard, task))
        heapq.heappush(
            ready, (now + cost_of(task) / speed_of[shard], shard)
        )
    return completions, steals, clock
