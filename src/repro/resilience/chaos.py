"""Deterministic chaos injection for the supervised sweep path.

A :class:`ChaosPlan` is a seeded, fully explicit list of faults keyed by
batch index (and, for worker faults, by attempt number), so every failure
scenario is *replayable*: the same plan against the same sweep produces
the same :class:`~repro.resilience.report.FailureReport`, which is what
the chaos determinism tests and the ``resilience-degrade-parity``
differential check rely on.

Seven fault kinds:

- ``crash`` — the worker process dies mid-batch (``os._exit``),
- ``hang`` — the worker sleeps past its deadline; the supervisor must
  kill and respawn it,
- ``corrupt-result`` — the worker returns a garbage payload; the
  supervisor's validation must catch it,
- ``cache-torn-write`` — the batch's cache entry is truncated after the
  write (a simulated power cut mid-``rename``-less write),
- ``cache-bit-flip`` — one byte of the entry is flipped on disk (media
  corruption); both cache faults must be detected by the cache's content
  checksum on the next read and quarantined to ``<key>.corrupt``,
- ``node-lost`` — a node of the nodes backend dies *mid-message*: it
  sends half a result frame and exits, so the parent sees a
  :class:`~repro.errors.TruncatedFrameError` and must respawn or
  reassign the node's shard (the pool backend degrades this to a plain
  worker crash; the serial path simulates it),
- ``shard-partition`` — a node's link is severed between messages
  (abrupt socket close), the frame-boundary flavor of node loss.

Worker faults default to attempt 0 only, so a retry succeeds; a fault
with ``attempts=None`` applies to *every* attempt, which is how a poison
batch (quarantined after the retry budget) is modeled.

Service faults
--------------
The serving daemon (``repro-omp serve``) adds a second fault surface —
the request path rather than the batch path — modeled by
:class:`ServiceChaosPlan` with three kinds:

- ``slow-client`` — the client trickles its request (or stalls reading
  the response) past the daemon's header/body deadline; the daemon must
  shed it with ``408`` instead of pinning a connection slot,
- ``backend-death-mid-request`` — the executor backend dies while a
  served sweep is in flight (injected as a worker ``crash`` fault on a
  seeded batch); the breaker must count it and the job must still land
  correct records via retry or the degradation ladder,
- ``kill-during-drain`` — SIGTERM arrives mid-sweep and the process is
  killed again *during* the drain window; the journal must make the
  queued work resumable on restart.

Like batch chaos, service plans are seeded and fully explicit, so the
``service-degrade-parity`` check and the CLI scenario replay exactly.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigError

__all__ = [
    "WORKER_FAULT_KINDS",
    "NODE_FAULT_KINDS",
    "CACHE_FAULT_KINDS",
    "FAULT_KINDS",
    "SERVICE_FAULT_KINDS",
    "ServiceFault",
    "ServiceChaosPlan",
    "CHAOS_CRASH_EXIT",
    "CHAOS_NODE_LOST_EXIT",
    "CHAOS_PARTITION_EXIT",
    "HANG_SLEEP_S",
    "CORRUPT_MARKER",
    "ChaosFault",
    "ChaosPlan",
    "install_chaos",
    "installed_worker_fault",
    "installed_node_fault",
    "trigger_worker_fault",
    "trigger_node_fault",
    "enter_node_context",
    "in_node_context",
    "corrupted_payload",
    "apply_cache_fault",
]

WORKER_FAULT_KINDS = ("crash", "hang", "corrupt-result")
NODE_FAULT_KINDS = ("node-lost", "shard-partition")
CACHE_FAULT_KINDS = ("cache-torn-write", "cache-bit-flip")
FAULT_KINDS = WORKER_FAULT_KINDS + NODE_FAULT_KINDS + CACHE_FAULT_KINDS
#: Request-path fault kinds of the serving daemon (see module docstring).
SERVICE_FAULT_KINDS = (
    "slow-client",
    "backend-death-mid-request",
    "kill-during-drain",
)

#: Exit code a chaos-crashed worker dies with (shows up in the report).
CHAOS_CRASH_EXIT = 13
#: Exit code of a node that died mid-message (``node-lost`` fault).
CHAOS_NODE_LOST_EXIT = 23
#: Exit code of a node severed between messages (``shard-partition``).
CHAOS_PARTITION_EXIT = 24
#: How long a chaos hang sleeps — far past any sane batch deadline.
HANG_SLEEP_S = 3600.0
#: Sentinel in a chaos-corrupted worker payload.
CORRUPT_MARKER = "<chaos-corrupted>"


@dataclass(frozen=True)
class ChaosFault:
    """One planned fault.

    ``attempts`` is the tuple of attempt numbers the fault fires on
    (default: first attempt only), or None for every attempt (poison).
    Cache faults ignore ``attempts`` — they corrupt the entry once,
    after it is written.
    """

    kind: str
    batch_index: int
    attempts: tuple[int, ...] | None = (0,)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown chaos fault kind {self.kind!r}; have {FAULT_KINDS}"
            )
        if self.batch_index < 0:
            raise ConfigError("batch_index must be >= 0")

    def applies(self, attempt: int) -> bool:
        """Whether this fault fires on the given attempt number."""
        return self.attempts is None or attempt in self.attempts

    def describe(self) -> dict:
        """JSON-ready form of this fault."""
        return {
            "kind": self.kind,
            "batch_index": self.batch_index,
            "attempts": ("all" if self.attempts is None
                         else list(self.attempts)),
        }


@dataclass(frozen=True)
class ChaosPlan:
    """A seeded, replayable set of faults for one sweep."""

    seed: int = 0
    faults: tuple[ChaosFault, ...] = ()

    @classmethod
    def generate(
        cls,
        n_batches: int,
        seed: int = 0,
        crashes: int = 1,
        hangs: int = 1,
        corrupt_results: int = 0,
        cache_faults: int = 1,
        poison: int = 0,
        node_lost: int = 0,
        shard_partitions: int = 0,
    ) -> "ChaosPlan":
        """Draw a plan with the given fault counts on distinct batches.

        Deterministic for a given ``(seed, n_batches, counts)``: the
        target indices come from ``random.Random(f"chaos:{seed}")``,
        never from global RNG state.  Poison faults are crashes with
        ``attempts=None`` — they defeat every retry.
        """
        counts = {
            "crashes": crashes,
            "hangs": hangs,
            "corrupt_results": corrupt_results,
            "cache_faults": cache_faults,
            "poison": poison,
            "node_lost": node_lost,
            "shard_partitions": shard_partitions,
        }
        for name, count in counts.items():
            if count < 0:
                raise ConfigError(f"{name} must be >= 0")
        needed = sum(counts.values())
        if needed > n_batches:
            raise ConfigError(
                f"plan needs {needed} distinct batches but the sweep has "
                f"only {n_batches}"
            )
        rng = random.Random(f"chaos:{seed}")
        indices = iter(rng.sample(range(n_batches), needed))
        faults = []
        for _ in range(crashes):
            faults.append(ChaosFault("crash", next(indices)))
        for _ in range(hangs):
            faults.append(ChaosFault("hang", next(indices)))
        for _ in range(corrupt_results):
            faults.append(ChaosFault("corrupt-result", next(indices)))
        for _ in range(cache_faults):
            faults.append(
                ChaosFault(rng.choice(CACHE_FAULT_KINDS), next(indices),
                           attempts=None)
            )
        for _ in range(poison):
            faults.append(ChaosFault("crash", next(indices), attempts=None))
        for _ in range(node_lost):
            faults.append(ChaosFault("node-lost", next(indices)))
        for _ in range(shard_partitions):
            faults.append(ChaosFault("shard-partition", next(indices)))
        ordered = tuple(
            sorted(faults, key=lambda f: (f.batch_index, f.kind))
        )
        return cls(seed=seed, faults=ordered)

    def worker_fault(self, batch_index: int, attempt: int) -> str | None:
        """The worker-side fault kind to inject for this attempt, if any."""
        for fault in self.faults:
            if (fault.kind in WORKER_FAULT_KINDS
                    and fault.batch_index == batch_index
                    and fault.applies(attempt)):
                return fault.kind
        return None

    def node_fault(self, batch_index: int, attempt: int) -> str | None:
        """The node-level fault kind to inject for this attempt, if any."""
        for fault in self.faults:
            if (fault.kind in NODE_FAULT_KINDS
                    and fault.batch_index == batch_index
                    and fault.applies(attempt)):
                return fault.kind
        return None

    def cache_fault(self, batch_index: int) -> str | None:
        """The cache-entry fault to apply after this batch's put, if any."""
        for fault in self.faults:
            if (fault.kind in CACHE_FAULT_KINDS
                    and fault.batch_index == batch_index):
                return fault.kind
        return None

    def describe(self) -> list[dict]:
        """JSON-ready fault list (the report's ``injected`` section)."""
        return [f.describe() for f in self.faults]

    def to_dict(self) -> dict:
        """JSON-ready form; invert with :meth:`from_dict`."""
        return {"seed": self.seed, "faults": self.describe()}

    @classmethod
    def from_dict(cls, payload: dict) -> "ChaosPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        try:
            faults = tuple(
                ChaosFault(
                    kind=f["kind"],
                    batch_index=f["batch_index"],
                    attempts=(None if f.get("attempts") == "all"
                              else tuple(f.get("attempts", (0,)))),
                )
                for f in payload["faults"]
            )
            return cls(seed=payload["seed"], faults=faults)
        except (KeyError, TypeError) as exc:
            raise ConfigError(f"malformed chaos plan: {exc}") from exc


# ----------------------------------------------------------------------
# Worker-side injection
# ----------------------------------------------------------------------
#: The plan installed in this process (workers install it at init).
_INSTALLED: ChaosPlan | None = None
#: Whether this process is a *node* of the nodes backend.  Node faults
#: fire at the transport layer inside a node (half-frame, abrupt
#: close); in a plain pool worker — which has no transport — they
#: degrade to a process death so every backend still exercises the
#: fault (see ``_supervised_run_batch``).
_NODE_CONTEXT = False


def install_chaos(plan: ChaosPlan | None) -> None:
    """Install (or clear) the chaos plan for this process's workers."""
    global _INSTALLED
    _INSTALLED = plan


def enter_node_context() -> None:
    """Mark this process as a nodes-backend node (set at node startup)."""
    global _NODE_CONTEXT
    _NODE_CONTEXT = True


def in_node_context() -> bool:
    """Whether this process is a nodes-backend node."""
    return _NODE_CONTEXT


def installed_worker_fault(batch_index: int, attempt: int) -> str | None:
    """The installed plan's worker fault for this attempt, if any."""
    if _INSTALLED is None:
        return None
    return _INSTALLED.worker_fault(batch_index, attempt)


def installed_node_fault(batch_index: int, attempt: int) -> str | None:
    """The installed plan's node fault for this attempt, if any."""
    if _INSTALLED is None:
        return None
    return _INSTALLED.node_fault(batch_index, attempt)


def trigger_worker_fault(kind: str) -> None:
    """Execute a worker-side fault *inside the worker process*."""
    if kind == "crash":
        os._exit(CHAOS_CRASH_EXIT)
    if kind == "hang":
        time.sleep(HANG_SLEEP_S)


def trigger_node_fault(kind: str) -> None:
    """Die the way the given node fault dies (process-death flavor).

    Used by pool workers — which have no socket transport — to degrade
    a node fault to a plain process death with the fault's distinctive
    exit code.  Inside a real node, ``_node_main`` injects the fault at
    the transport layer instead (half-frame or abrupt close) *before*
    exiting with the same code.
    """
    if kind == "node-lost":
        os._exit(CHAOS_NODE_LOST_EXIT)
    if kind == "shard-partition":
        os._exit(CHAOS_PARTITION_EXIT)
    raise ConfigError(f"unknown node fault kind {kind!r}")


def corrupted_payload(batch_index: int) -> list:
    """What a chaos-corrupted worker returns instead of records."""
    return [CORRUPT_MARKER, batch_index]


# ----------------------------------------------------------------------
# Service-layer chaos (request path of the serving daemon)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ServiceFault:
    """One planned request-path fault.

    ``request_index`` is the 0-based position in the scenario's request
    sequence the fault attaches to; ``batch_index`` (only meaningful for
    ``backend-death-mid-request``) is the sweep batch the injected
    worker crash targets.
    """

    kind: str
    request_index: int
    batch_index: int = 0

    def __post_init__(self) -> None:
        if self.kind not in SERVICE_FAULT_KINDS:
            raise ConfigError(
                f"unknown service fault kind {self.kind!r}; "
                f"have {SERVICE_FAULT_KINDS}"
            )
        if self.request_index < 0:
            raise ConfigError("request_index must be >= 0")
        if self.batch_index < 0:
            raise ConfigError("batch_index must be >= 0")

    def describe(self) -> dict:
        """JSON-ready form of this fault."""
        return {
            "kind": self.kind,
            "request_index": self.request_index,
            "batch_index": self.batch_index,
        }


@dataclass(frozen=True)
class ServiceChaosPlan:
    """A seeded, replayable set of request-path faults for one scenario.

    The daemon never consults this plan itself — the *client* side of
    the chaos scenario (``repro-omp chaos --serve`` and the CI scenario
    script) drives it: a ``slow-client`` fault makes the scripted client
    trickle bytes, a ``backend-death-mid-request`` fault rides in as a
    worker :class:`ChaosPlan` on the request's sweep, and a
    ``kill-during-drain`` fault SIGTERMs then SIGKILLs the daemon
    process.  Keeping the plan client-side means the daemon under test
    is the exact production code path, with zero test hooks.
    """

    seed: int = 0
    faults: tuple[ServiceFault, ...] = ()

    @classmethod
    def generate(
        cls,
        n_requests: int,
        n_batches: int,
        seed: int = 0,
        slow_clients: int = 1,
        backend_deaths: int = 1,
        drain_kills: int = 1,
    ) -> "ServiceChaosPlan":
        """Draw a plan with the given fault counts on distinct requests.

        Deterministic for a given ``(seed, n_requests, n_batches,
        counts)``: targets come from ``random.Random(f"svc:{seed}")``,
        never from global RNG state — same discipline as
        :meth:`ChaosPlan.generate`.
        """
        counts = {
            "slow_clients": slow_clients,
            "backend_deaths": backend_deaths,
            "drain_kills": drain_kills,
        }
        for name, count in counts.items():
            if count < 0:
                raise ConfigError(f"{name} must be >= 0")
        needed = sum(counts.values())
        if needed > n_requests:
            raise ConfigError(
                f"plan needs {needed} distinct requests but the "
                f"scenario has only {n_requests}"
            )
        if n_batches < 1:
            raise ConfigError("n_batches must be >= 1")
        rng = random.Random(f"svc:{seed}")
        indices = iter(rng.sample(range(n_requests), needed))
        faults = []
        for _ in range(slow_clients):
            faults.append(ServiceFault("slow-client", next(indices)))
        for _ in range(backend_deaths):
            faults.append(ServiceFault(
                "backend-death-mid-request", next(indices),
                batch_index=rng.randrange(n_batches),
            ))
        for _ in range(drain_kills):
            faults.append(ServiceFault("kill-during-drain", next(indices)))
        ordered = tuple(
            sorted(faults, key=lambda f: (f.request_index, f.kind))
        )
        return cls(seed=seed, faults=ordered)

    def fault_at(self, request_index: int) -> ServiceFault | None:
        """The fault attached to one scenario request, if any."""
        for fault in self.faults:
            if fault.request_index == request_index:
                return fault
        return None

    def describe(self) -> list[dict]:
        """JSON-ready fault list (the scenario report's section)."""
        return [f.describe() for f in self.faults]

    def to_dict(self) -> dict:
        """JSON-ready form; invert with :meth:`from_dict`."""
        return {"seed": self.seed, "faults": self.describe()}

    @classmethod
    def from_dict(cls, payload: dict) -> "ServiceChaosPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        try:
            faults = tuple(
                ServiceFault(
                    kind=f["kind"],
                    request_index=f["request_index"],
                    batch_index=f.get("batch_index", 0),
                )
                for f in payload["faults"]
            )
            return cls(seed=payload["seed"], faults=faults)
        except (KeyError, TypeError) as exc:
            raise ConfigError(
                f"malformed service chaos plan: {exc}"
            ) from exc


def apply_cache_fault(path: str | os.PathLike, kind: str) -> None:
    """Corrupt one on-disk cache entry in place (supervisor side)."""
    path = Path(path)
    data = path.read_bytes()
    if kind == "cache-torn-write":
        path.write_bytes(data[: max(1, len(data) // 2)])
    elif kind == "cache-bit-flip":
        mid = len(data) // 2
        flipped = bytes([data[mid] ^ 0x08])
        path.write_bytes(data[:mid] + flipped + data[mid + 1:])
    else:
        raise ConfigError(f"unknown cache fault kind {kind!r}")
