"""Supervised multiprocess execution: deadlines, respawn, retry.

This replaces the bare ``multiprocessing.Pool.imap`` dispatch the sweep
engine used to rely on.  A pool stream has three failure modes that each
kill an entire 240k-sample campaign: a worker exception aborts the whole
``imap`` iterator, a crashed worker loses its in-flight chunk forever,
and a hung worker stalls the stream with no diagnosis.  The
:class:`Supervisor` instead tracks every batch as its own assignment:

- each task runs under a wall-clock **deadline**; a worker that blows it
  is killed and respawned, and the task is retried,
- **worker death** (crash, OOM-kill, chaos ``os._exit``) is detected by
  liveness polling; the dead worker's assignment is retried on a fresh
  process,
- failed attempts back off per the deterministic
  :class:`~repro.resilience.policy.RetryPolicy`; once the budget is
  exhausted the task is quarantined as *poison* and the stream degrades
  gracefully (yields None) or fails fast
  (:class:`~repro.errors.PoisonBatchError`), per ``fail_fast``,
- results stream back **in task order** regardless of completion order,
  so the consumer's records and progress callbacks are bit-identical to
  serial execution.

Every failure lands in the shared
:class:`~repro.resilience.report.FailureLedger`; completed-but-unconsumed
results stay available through :meth:`Supervisor.completed_unyielded` so
an interrupted sweep can flush landed work to its cache before
re-raising.

Two IPC decisions exist specifically to survive abrupt worker death
(``os._exit``, OOM-kill, SIGTERM on a blown deadline), which a shared
``multiprocessing.Queue`` does not:

- **one outbox per worker** — a queue's write lock lives in shared
  memory, so a worker killed mid-``put`` leaves it held forever and
  every sibling's ``put`` deadlocks behind it (the failure that makes
  ``concurrent.futures`` declare its whole pool broken).  Private
  outboxes contain the jam to the dying worker, whose queue dies with
  it and is replaced on respawn,
- **results spool through files** — bulky payloads are pickled to a
  spool file and only the path travels through the queue, keeping every
  frame far below the pipe's atomic-write size (``PIPE_BUF``).  A worker
  killed mid-result can therefore never leave a *partial* frame that
  would block the supervisor's reader mid-``recv`` forever; it leaves
  either a complete tiny message or nothing.  Sweep workers hand the
  spool packed :class:`~repro.frame.columns.RecordBlock` batches
  (``array.array`` buffers pickle as raw bytes — see
  ``docs/COLUMNAR.md``), so spool files stay compact at full-grid
  batch sizes.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import pickle
import queue as _queue
import shutil
import tempfile
import time
from collections import deque
from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass, field

from repro.errors import PoisonBatchError, ResilienceError
from repro.resilience.policy import RetryPolicy
from repro.resilience.report import FailureLedger

__all__ = ["SupervisedTask", "Supervisor"]


@dataclass(frozen=True)
class SupervisedTask:
    """One unit of supervised work.

    ``task_id`` is the submission position (results stream in this
    order); ``index`` is the caller-facing identity used for retry
    jitter, chaos lookup and the failure report; ``identity`` is the
    duck-typed batch the report describes (a ``BatchSpec``).
    """

    task_id: int
    index: int
    payload: object
    timeout_s: float
    identity: object = None


def _spool_result(spool_dir: str, worker_id: int, result: object) -> str:
    """Pickle one result to a spool file; the queue carries only the path.

    The file lands via atomic rename, so the supervisor only ever sees a
    complete spool file — a worker killed mid-pickle leaves a stray
    ``.tmp`` that the spool-directory cleanup removes.
    """
    fd, tmp = tempfile.mkstemp(dir=spool_dir, prefix=f"w{worker_id}-",
                               suffix=".tmp")
    with os.fdopen(fd, "wb") as handle:
        pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
    final = tmp[: -len(".tmp")] + ".result"
    os.replace(tmp, final)
    return final


def _detach_inherited_signals() -> None:
    """Restore default signal handling in a forked child process.

    A parent embedding this fleet in an asyncio loop (the serving
    daemon) registers SIGTERM/SIGINT handlers backed by a wakeup-fd
    self-pipe.  A forked worker inherits both the handler and the pipe,
    so a ``terminate()`` aimed at the worker would write into the pipe
    *shared with the parent's loop* — the parent then observes a
    phantom SIGTERM and begins draining itself.  Detaching the wakeup
    fd and restoring ``SIG_DFL`` makes child kills land on the child
    alone (and lets plain ``terminate()`` actually kill it).
    """
    import signal

    try:
        signal.set_wakeup_fd(-1)
    except (ValueError, OSError):
        pass  # not the main thread of the child, or already detached
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, signal.SIG_DFL)
        except (ValueError, OSError):
            pass


def _worker_main(worker_id, fn, initializer, initargs, inbox, outbox,
                 spool_dir):
    """Worker process body: initialize once, then serve assignments."""
    _detach_inherited_signals()
    try:
        if initializer is not None:
            initializer(*initargs)
    except BaseException as exc:
        # A worker that cannot initialize must say so rather than make
        # every assignment look like a crash.
        outbox.put((worker_id, None, "init-error",
                    f"{type(exc).__name__}: {exc}"))
        return
    try:
        while True:
            message = inbox.get()
            if message is None:
                return
            task_id, payload, attempt = message
            try:
                result = fn(payload, attempt)
                path = _spool_result(spool_dir, worker_id, result)
            except Exception as exc:
                outbox.put((worker_id, task_id, "error",
                            f"{type(exc).__name__}: {exc}"))
            else:
                outbox.put((worker_id, task_id, "ok", path))
    except KeyboardInterrupt:
        # Ctrl-C reaches the whole process group; exit quietly and let
        # the supervisor's own interrupt handling clean up.
        return


@dataclass
class _WorkerSlot:
    """One supervised worker process and what it is currently running."""

    worker_id: int
    inbox: multiprocessing.Queue
    outbox: multiprocessing.Queue
    process: multiprocessing.Process
    #: (task, attempt, deadline) while busy, None while idle.
    current: tuple | None = None


class Supervisor:
    """Dispatch tasks to supervised worker processes.

    :meth:`stream` yields one outcome per task, in task order: the worker
    function's return value, or None for a task quarantined after
    exhausting its retries (``fail_fast=False``).  With
    ``fail_fast=True`` the first quarantine raises
    :class:`~repro.errors.PoisonBatchError` instead.

    ``validate``, if given, is called on every successful result and
    returns an error string (the attempt is treated as failed with kind
    ``corrupt-result``) or None.

    The supervisor is the *pool* implementation of the
    :class:`~repro.resilience.backends.ExecutorBackend` protocol
    (registered as a virtual subclass there); ``dispatch_order`` is the
    seam the sharded sweep uses to interleave the batch stream across
    shards without changing yield order.
    """

    #: Backend name under the ExecutorBackend protocol.
    name = "pool"
    #: Optional cooperative-cancellation handle (anything with
    #: ``is_set()``).  Checked at the top of every stream tick — between
    #: batches, never mid-batch — so a served request's deadline or a
    #: daemon drain can stop the fleet while landed results stay
    #: flushable through :meth:`completed_unyielded`.
    cancel_event = None

    def __init__(
        self,
        fn: Callable,
        initializer: Callable | None = None,
        initargs: Sequence = (),
        n_workers: int = 2,
        policy: RetryPolicy | None = None,
        validate: Callable | None = None,
        fail_fast: bool = False,
        poll_interval_s: float = 0.05,
        max_worker_respawns: int = 32,
    ):
        self.fn = fn
        self.initializer = initializer
        self.initargs = tuple(initargs)
        self.n_workers = max(1, n_workers)
        self.policy = policy or RetryPolicy()
        self.validate = validate
        self.fail_fast = fail_fast
        self.poll_interval_s = poll_interval_s
        self.max_worker_respawns = max_worker_respawns
        self.ledger: FailureLedger | None = None
        self.worker_respawns = 0
        #: Optional callable ``tasks -> ordered tasks`` applied before
        #: dispatch (e.g. ShardPlanner.interleave).  Results still
        #: yield in task_id order, so this only shapes *execution*
        #: order, never the record stream.
        self.dispatch_order: Callable | None = None
        self._workers: list[_WorkerSlot] = []
        self._spool_dir: str | None = None
        self._pending: deque = deque()
        self._retry_heap: list = []
        self._retry_seq = 0
        self._outcomes: dict[int, tuple[str, object]] = {}
        self._yielded = 0
        self._closed = True

    # -- worker lifecycle ------------------------------------------------
    def _spawn(self, worker_id: int) -> _WorkerSlot:
        inbox: multiprocessing.Queue = multiprocessing.Queue()
        outbox: multiprocessing.Queue = multiprocessing.Queue()
        process = multiprocessing.Process(
            target=_worker_main,
            args=(worker_id, self.fn, self.initializer, self.initargs,
                  inbox, outbox, self._spool_dir),
            daemon=True,
        )
        process.start()
        return _WorkerSlot(worker_id, inbox, outbox, process)

    def _kill(self, slot: _WorkerSlot) -> None:
        process = slot.process
        if process.is_alive():
            process.terminate()
            process.join(1.0)
            if process.is_alive():
                process.kill()
                process.join(1.0)
        for q in (slot.inbox, slot.outbox):
            q.cancel_join_thread()
            q.close()

    def _respawn(self, slot: _WorkerSlot) -> None:
        self.worker_respawns += 1
        if self.worker_respawns > self.max_worker_respawns:
            raise ResilienceError(
                f"worker respawn budget exhausted "
                f"({self.max_worker_respawns}): the fleet is crash-looping"
            )
        self._kill(slot)
        fresh = self._spawn(slot.worker_id)
        slot.inbox, slot.outbox, slot.process = (
            fresh.inbox, fresh.outbox, fresh.process
        )
        slot.current = None

    # -- event loop ------------------------------------------------------
    def stream(
        self,
        tasks: Sequence[SupervisedTask],
        ledger: FailureLedger | None = None,
    ) -> Iterator[object]:
        """Run all tasks; yield outcomes in task order (see class doc)."""
        tasks = list(tasks)
        if [t.task_id for t in tasks] != list(range(len(tasks))):
            raise ResilienceError(
                "task_ids must be the contiguous sequence 0..n-1 in "
                "submission order"
            )
        self.ledger = ledger if ledger is not None else FailureLedger(
            self.policy, "raise" if self.fail_fast else "degrade"
        )
        self._spool_dir = tempfile.mkdtemp(prefix="repro-supervisor-")
        ordered = (list(self.dispatch_order(tasks))
                   if self.dispatch_order is not None else tasks)
        self._pending = deque((task, 0) for task in ordered)
        self._retry_heap = []
        self._outcomes = {}
        self._yielded = 0
        self.worker_respawns = 0
        self._workers = [
            self._spawn(i)
            for i in range(min(self.n_workers, max(1, len(tasks))))
        ]
        self._closed = False
        try:
            while self._yielded < len(tasks):
                if (self.cancel_event is not None
                        and self.cancel_event.is_set()):
                    from repro.errors import SweepCancelledError

                    raise SweepCancelledError(
                        "sweep cancelled while streaming on the pool "
                        "backend"
                    )
                self._dispatch()
                self._drain(self._wait_budget())
                self._reap_dead_workers()
                self._enforce_deadlines()
                while self._yielded in self._outcomes:
                    status, value = self._outcomes.pop(self._yielded)
                    self._yielded += 1
                    yield value if status == "ok" else None
        finally:
            self.close()

    def _dispatch(self) -> None:
        now = time.monotonic()
        while self._retry_heap and self._retry_heap[0][0] <= now:
            _, _, task, attempt = heapq.heappop(self._retry_heap)
            # Retries jump the queue: a flaky batch should resolve (or
            # quarantine) promptly rather than languish behind the tail.
            self._pending.appendleft((task, attempt))
        for slot in self._workers:
            if not self._pending:
                return
            if slot.current is not None or not slot.process.is_alive():
                continue
            task, attempt = self._pending.popleft()
            slot.inbox.put((task.task_id, task.payload, attempt))
            slot.current = (task, attempt, now + task.timeout_s)

    def _wait_budget(self) -> float:
        """How long to block on the result queue this tick."""
        now = time.monotonic()
        budget = self.poll_interval_s
        for slot in self._workers:
            if slot.current is not None:
                budget = min(budget, slot.current[2] - now)
        if self._retry_heap:
            budget = min(budget, self._retry_heap[0][0] - now)
        return max(budget, 0.005)

    def _drain(self, timeout_s: float) -> None:
        """Poll every worker's private outbox for up to ``timeout_s``.

        Returns after the first sweep that yields any message (so
        deadlines and dead workers are re-examined promptly), or after
        the timeout if all outboxes stay empty.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            handled = False
            for slot in self._workers:
                while True:
                    try:
                        message = slot.outbox.get_nowait()
                    except (_queue.Empty, OSError, ValueError):
                        # Empty, or a queue torn down by a concurrent
                        # respawn — either way nothing to read here.
                        break
                    handled = True
                    self._handle_message(message)
            if handled:
                return
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return
            time.sleep(min(0.01, remaining))

    def _load_spooled(self, path: str) -> tuple[object, str | None]:
        """Read one spooled result; (value, error-description or None)."""
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError,
                AttributeError) as exc:
            return None, f"spooled result unreadable: {exc}"
        try:
            os.unlink(path)
        except OSError:
            pass
        return value, None

    def _handle_message(self, message) -> None:
        worker_id, task_id, status, value = message
        if status == "init-error":
            raise ResilienceError(f"worker initialization failed: {value}")
        slot = self._workers[worker_id]
        if slot.current is None or slot.current[0].task_id != task_id:
            # Stale result: the assignment was already timed out and
            # retried elsewhere.  Batch execution is deterministic, so
            # dropping it loses nothing (but do drop its spool file).
            if status == "ok":
                try:
                    os.unlink(value)
                except OSError:
                    pass
            return
        task, attempt, _deadline = slot.current
        slot.current = None
        if status == "ok":
            value, spool_error = self._load_spooled(value)
            error = (spool_error if spool_error is not None
                     else self.validate(value) if self.validate else None)
            if error is None:
                self.ledger.record_success(task.index)
                self._outcomes[task.task_id] = ("ok", value)
            else:
                self._record_failure(task, attempt, "corrupt-result", error)
        else:
            self._record_failure(task, attempt, "error", value)

    def _record_failure(self, task: SupervisedTask, attempt: int,
                        kind: str, cause: str) -> None:
        retry = self.ledger.record_failure(
            task.index, task.identity, attempt, kind, cause
        )
        if retry:
            delay = self.policy.delay_s(task.index, attempt + 1)
            self._retry_seq += 1
            heapq.heappush(
                self._retry_heap,
                (time.monotonic() + delay, self._retry_seq, task,
                 attempt + 1),
            )
            return
        self._outcomes[task.task_id] = ("poison", None)
        if self.fail_fast:
            raise PoisonBatchError(
                f"batch {task.index} quarantined after {attempt + 1} "
                f"failed attempt(s) (last: {kind}: {cause}) under "
                "fail_policy='raise'"
            )

    def _reap_dead_workers(self) -> None:
        for slot in self._workers:
            if slot.process.is_alive():
                continue
            task_info, slot.current = slot.current, None
            exitcode = slot.process.exitcode
            self._respawn(slot)
            if task_info is not None:
                task, attempt, _deadline = task_info
                self._record_failure(
                    task, attempt, "crash",
                    f"worker exited with code {exitcode}"
                    if exitcode is not None else "worker died mid-batch",
                )

    def _enforce_deadlines(self) -> None:
        now = time.monotonic()
        for slot in self._workers:
            if slot.current is None or slot.current[2] > now:
                continue
            task, attempt, _deadline = slot.current
            slot.current = None
            self._respawn(slot)  # kills the hung process first
            self._record_failure(
                task, attempt, "timeout",
                f"exceeded the {task.timeout_s:.1f}s batch deadline",
            )

    # -- interruption support -------------------------------------------
    def completed_unyielded(self) -> list[tuple[int, object]]:
        """Results that landed but were not yet consumed from the stream.

        On an interrupted sweep the caller flushes these to the batch
        cache so completed work is never lost.
        """
        return [
            (task_id, value)
            for task_id, (status, value) in sorted(self._outcomes.items())
            if status == "ok"
        ]

    def close(self) -> None:
        """Stop every worker; idempotent, safe mid-stream."""
        if self._closed:
            return
        self._closed = True
        for slot in self._workers:
            if slot.process.is_alive() and slot.current is None:
                try:
                    slot.inbox.put_nowait(None)
                except (ValueError, OSError):
                    pass
        deadline = time.monotonic() + 1.0
        for slot in self._workers:
            slot.process.join(max(0.0, deadline - time.monotonic()))
        for slot in self._workers:
            self._kill(slot)
        if self._spool_dir is not None:
            shutil.rmtree(self._spool_dir, ignore_errors=True)
            self._spool_dir = None
