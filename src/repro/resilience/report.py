"""Failure accounting for supervised sweeps.

Both execution paths — the multiprocess :class:`Supervisor` and the
serial inline loop in :func:`repro.core.sweep.run_sweep` — record every
failed attempt in a :class:`FailureLedger`; the ledger condenses into a
:class:`FailureReport` attached to the :class:`~repro.core.sweep.SweepResult`
(and carried by :class:`~repro.errors.PoisonBatchError` under
``fail_policy="raise"``).  The report is rendered through the shared
:mod:`repro.reporting` serializer (``--format json|text``), alongside the
lint/check/sanitize artifacts.

Reports deliberately contain no wall-clock timestamps or worker ids:
given one :class:`~repro.resilience.chaos.ChaosPlan`, the report content
is bit-identical across runs (verified by the chaos determinism tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "FAILURE_KINDS",
    "BatchAttempt",
    "BatchFailure",
    "FailureReport",
    "FailureLedger",
]

#: How one attempt of one batch can fail.  ``node-lost`` and
#: ``shard-partition`` are nodes-backend kinds: the node carrying the
#: batch died mid-message / was severed between messages.
FAILURE_KINDS = (
    "crash", "timeout", "error", "corrupt-result",
    "node-lost", "shard-partition",
)


@dataclass(frozen=True)
class BatchAttempt:
    """One failed attempt of one batch."""

    attempt: int
    kind: str
    cause: str

    def to_dict(self) -> dict:
        """JSON-ready form of this attempt."""
        return {"attempt": self.attempt, "kind": self.kind,
                "cause": self.cause}


@dataclass
class BatchFailure:
    """Everything that went wrong with one batch.

    A batch appears here as soon as one attempt fails; ``recovered``
    means a later attempt succeeded, ``quarantined`` means the retry
    budget ran out and the batch was declared poison.
    """

    index: int
    app: str
    input_size: str
    num_threads: int
    attempts: list[BatchAttempt] = field(default_factory=list)
    quarantined: bool = False
    recovered: bool = False

    @property
    def label(self) -> str:
        """Human-readable batch identity for report lines."""
        return f"{self.app}.{self.input_size}/T={self.num_threads}"

    def to_dict(self) -> dict:
        """JSON-ready form of this batch's failure history."""
        return {
            "index": self.index,
            "app": self.app,
            "input_size": self.input_size,
            "num_threads": self.num_threads,
            "attempts": [a.to_dict() for a in self.attempts],
            "quarantined": self.quarantined,
            "recovered": self.recovered,
        }


@dataclass
class FailureReport:
    """What failed during one sweep, and how the sweep coped.

    ``injected`` lists the chaos faults the run was asked to inject (empty
    for production runs), so a chaos report names every planned fault even
    when some — cache faults in particular — only become observable on a
    later resume.
    """

    fail_policy: str = "raise"
    max_retries: int = 0
    batches: list[BatchFailure] = field(default_factory=list)
    injected: list[dict] = field(default_factory=list)
    cache_corrupt_keys: list[str] = field(default_factory=list)
    worker_respawns: int = 0

    @property
    def n_failed_batches(self) -> int:
        """Batches with at least one failed attempt."""
        return len(self.batches)

    @property
    def n_quarantined(self) -> int:
        """Batches declared poison after exhausting their retries."""
        return sum(1 for b in self.batches if b.quarantined)

    @property
    def n_recovered(self) -> int:
        """Batches that failed at least once but eventually succeeded."""
        return sum(1 for b in self.batches if b.recovered)

    @property
    def n_attempts(self) -> int:
        """Failed attempts across all batches."""
        return sum(len(b.attempts) for b in self.batches)

    @property
    def clean(self) -> bool:
        """No failures and no cache corruption observed."""
        return not self.batches and not self.cache_corrupt_keys

    def quarantined_batches(self) -> list[BatchFailure]:
        """The poison batches (missing from a degrade-mode dataset)."""
        return [b for b in self.batches if b.quarantined]

    def to_dict(self) -> dict:
        """JSON-ready form (the ``failure_report`` report section)."""
        return {
            "fail_policy": self.fail_policy,
            "max_retries": self.max_retries,
            "n_failed_batches": self.n_failed_batches,
            "n_quarantined": self.n_quarantined,
            "n_recovered": self.n_recovered,
            "n_attempts": self.n_attempts,
            "worker_respawns": self.worker_respawns,
            "batches": [b.to_dict() for b in self.batches],
            "injected": list(self.injected),
            "cache_corrupt_keys": list(self.cache_corrupt_keys),
        }

    def format_text(self) -> str:
        """Human-readable report (the ``--format text`` section)."""
        if self.clean:
            return ("failure report: clean (no failed batches, no cache "
                    "corruption)")
        lines = [
            f"failure report (fail_policy={self.fail_policy}, "
            f"max_retries={self.max_retries}):"
        ]
        for b in self.batches:
            verdict = (
                "QUARANTINED" if b.quarantined
                else "recovered" if b.recovered
                else "unresolved"
            )
            lines.append(
                f"  batch {b.index:3d} {b.label:24s} {verdict} after "
                f"{len(b.attempts)} failed attempt(s)"
            )
            for a in b.attempts:
                lines.append(f"      #{a.attempt} {a.kind}: {a.cause}")
        if self.cache_corrupt_keys:
            lines.append(
                f"  cache: {len(self.cache_corrupt_keys)} corrupt "
                "entry(ies) quarantined to <key>.corrupt:"
            )
            for key in self.cache_corrupt_keys:
                lines.append(f"      {key}")
        if self.injected:
            spelled = ", ".join(
                f"{f['kind']}@{f['batch_index']}"
                + ("(poison)"
                   if f.get("attempts") == "all"
                   and not f["kind"].startswith("cache-") else "")
                for f in self.injected
            )
            lines.append(f"  injected chaos: {spelled}")
        if self.worker_respawns:
            lines.append(f"  workers respawned: {self.worker_respawns}")
        lines.append(
            f"{self.n_failed_batches} batch(es) failed at least once: "
            f"{self.n_recovered} recovered, {self.n_quarantined} "
            f"quarantined ({self.n_attempts} failed attempts)"
        )
        return "\n".join(lines)


class FailureLedger:
    """Shared failure bookkeeping for the inline and supervised paths.

    ``record_failure`` returns whether another retry is allowed under the
    policy; once it returns False the batch is quarantined.  The ledger
    itself never raises — strictness (``fail_policy="raise"``) is the
    caller's decision.
    """

    def __init__(self, policy, fail_policy: str = "raise"):
        self.policy = policy
        self.fail_policy = fail_policy
        self._by_index: dict[int, BatchFailure] = {}

    def record_failure(self, index: int, batch, attempt: int,
                       kind: str, cause: str) -> bool:
        """Record one failed attempt; True if a retry is still allowed.

        ``batch`` is duck-typed: anything with ``app``, ``input_size``
        and ``nthreads`` (a :class:`~repro.core.sweep.BatchSpec`).
        """
        entry = self._by_index.get(index)
        if entry is None:
            entry = self._by_index[index] = BatchFailure(
                index=index,
                app=getattr(batch, "app", "?"),
                input_size=getattr(batch, "input_size", "?"),
                num_threads=getattr(batch, "nthreads", 0),
            )
        entry.attempts.append(BatchAttempt(attempt, kind, cause))
        if attempt >= self.policy.max_retries:
            entry.quarantined = True
            return False
        return True

    def record_success(self, index: int) -> None:
        """Mark a previously failing batch as recovered."""
        entry = self._by_index.get(index)
        if entry is not None:
            entry.recovered = True
            entry.quarantined = False

    @property
    def quarantined_indices(self) -> list[int]:
        """Batch indices declared poison so far, ascending."""
        return sorted(
            i for i, b in self._by_index.items() if b.quarantined
        )

    def build_report(
        self,
        injected=(),
        cache_corrupt_keys=(),
        worker_respawns: int = 0,
    ) -> FailureReport:
        """Condense the ledger into a :class:`FailureReport`."""
        return FailureReport(
            fail_policy=self.fail_policy,
            max_retries=self.policy.max_retries,
            batches=[self._by_index[i] for i in sorted(self._by_index)],
            injected=list(injected),
            cache_corrupt_keys=list(cache_corrupt_keys),
            worker_respawns=worker_respawns,
        )
