"""Fault-tolerant sweep execution (``repro.resilience``).

The paper's 240k+-sample campaigns are long-horizon measurement runs
where partial failure is the norm: workers crash, hang, or return
garbage, and on-disk cache entries rot.  This package keeps the sweep
engine producing results under all of it (see ``docs/RESILIENCE.md``):

- :mod:`repro.resilience.supervisor` — supervised worker processes with
  per-batch deadlines, death/hang detection, respawn, and in-order
  result streaming,
- :mod:`repro.resilience.policy` — deterministic exponential backoff
  with seeded jitter (SIM002-clean: no global RNG),
- :mod:`repro.resilience.report` — per-batch failure accounting
  (attempts, causes, quarantine/recovery) rendered through the shared
  :mod:`repro.reporting` serializer,
- :mod:`repro.resilience.chaos` — seeded, replayable fault injection
  (worker crash/hang/corrupt payloads, cache torn-writes/bit-flips),
  surfaced as ``repro-omp chaos`` and ``pytest -m chaos``.
"""

from repro.resilience.chaos import (
    CACHE_FAULT_KINDS,
    CHAOS_CRASH_EXIT,
    FAULT_KINDS,
    WORKER_FAULT_KINDS,
    ChaosFault,
    ChaosPlan,
    apply_cache_fault,
    corrupted_payload,
    install_chaos,
    installed_worker_fault,
    trigger_worker_fault,
)
from repro.resilience.policy import RetryPolicy
from repro.resilience.report import (
    FAILURE_KINDS,
    BatchAttempt,
    BatchFailure,
    FailureLedger,
    FailureReport,
)
from repro.resilience.supervisor import SupervisedTask, Supervisor

__all__ = [
    "RetryPolicy",
    "BatchAttempt",
    "BatchFailure",
    "FailureLedger",
    "FailureReport",
    "FAILURE_KINDS",
    "ChaosFault",
    "ChaosPlan",
    "FAULT_KINDS",
    "WORKER_FAULT_KINDS",
    "CACHE_FAULT_KINDS",
    "CHAOS_CRASH_EXIT",
    "apply_cache_fault",
    "corrupted_payload",
    "install_chaos",
    "installed_worker_fault",
    "trigger_worker_fault",
    "SupervisedTask",
    "Supervisor",
]
