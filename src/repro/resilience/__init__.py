"""Fault-tolerant sweep execution (``repro.resilience``).

The paper's 240k+-sample campaigns are long-horizon measurement runs
where partial failure is the norm: workers crash, hang, or return
garbage, and on-disk cache entries rot.  This package keeps the sweep
engine producing results under all of it (see ``docs/RESILIENCE.md``):

- :mod:`repro.resilience.backends` — the executor-backend protocol and
  its three substrates: in-process serial (the parity reference), the
  supervised pool, and a simulated multi-node cluster over socket
  links,
- :mod:`repro.resilience.supervisor` — supervised worker processes with
  per-batch deadlines, death/hang detection, respawn, and in-order
  result streaming (the *pool* backend),
- :mod:`repro.resilience.sharding` — deterministic shard planning:
  key-prefix cache partitioning, round-robin interleave, and the
  normative work-stealing arbitration rule,
- :mod:`repro.resilience.transport` — the length-prefixed, checksummed
  frame protocol between the sweep parent and its nodes, with every
  failure mode typed and deadline-bounded,
- :mod:`repro.resilience.policy` — deterministic exponential backoff
  with seeded jitter (SIM002-clean: no global RNG),
- :mod:`repro.resilience.report` — per-batch failure accounting
  (attempts, causes, quarantine/recovery) rendered through the shared
  :mod:`repro.reporting` serializer,
- :mod:`repro.resilience.chaos` — seeded, replayable fault injection
  (worker crash/hang/corrupt payloads, node loss/partition, cache
  torn-writes/bit-flips), surfaced as ``repro-omp chaos`` and
  ``pytest -m chaos``.
"""

from repro.resilience.backends import (
    BACKEND_NAMES,
    ExecutorBackend,
    NodesBackend,
    SerialBackend,
    SerialChaosFault,
)
from repro.resilience.chaos import (
    CACHE_FAULT_KINDS,
    CHAOS_CRASH_EXIT,
    CHAOS_NODE_LOST_EXIT,
    CHAOS_PARTITION_EXIT,
    FAULT_KINDS,
    NODE_FAULT_KINDS,
    WORKER_FAULT_KINDS,
    ChaosFault,
    ChaosPlan,
    apply_cache_fault,
    corrupted_payload,
    enter_node_context,
    in_node_context,
    install_chaos,
    installed_node_fault,
    installed_worker_fault,
    trigger_node_fault,
    trigger_worker_fault,
)
from repro.resilience.policy import RetryPolicy
from repro.resilience.report import (
    FAILURE_KINDS,
    BatchAttempt,
    BatchFailure,
    FailureLedger,
    FailureReport,
)
from repro.resilience.sharding import (
    PARTITION_PREFIX_HEX,
    ReassignEvent,
    ShardPlanner,
    ShardReport,
    StealEvent,
    partition_for_key,
    simulate_rebalance,
)
from repro.resilience.supervisor import SupervisedTask, Supervisor

__all__ = [
    "RetryPolicy",
    "BatchAttempt",
    "BatchFailure",
    "FailureLedger",
    "FailureReport",
    "FAILURE_KINDS",
    "ChaosFault",
    "ChaosPlan",
    "FAULT_KINDS",
    "WORKER_FAULT_KINDS",
    "NODE_FAULT_KINDS",
    "CACHE_FAULT_KINDS",
    "CHAOS_CRASH_EXIT",
    "CHAOS_NODE_LOST_EXIT",
    "CHAOS_PARTITION_EXIT",
    "apply_cache_fault",
    "corrupted_payload",
    "install_chaos",
    "installed_worker_fault",
    "installed_node_fault",
    "trigger_worker_fault",
    "trigger_node_fault",
    "enter_node_context",
    "in_node_context",
    "SupervisedTask",
    "Supervisor",
    "BACKEND_NAMES",
    "ExecutorBackend",
    "SerialBackend",
    "SerialChaosFault",
    "NodesBackend",
    "PARTITION_PREFIX_HEX",
    "partition_for_key",
    "ShardPlanner",
    "ShardReport",
    "StealEvent",
    "ReassignEvent",
    "simulate_rebalance",
]
