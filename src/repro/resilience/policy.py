"""Deterministic retry policy for the supervised sweep path.

A failed batch is retried with exponential backoff plus *seeded* jitter:
the jitter draw is keyed by ``(seed, batch_index, attempt)``, so the full
backoff schedule of any batch is a pure function of the policy — two runs
of the same plan produce identical schedules (and therefore identical
:class:`~repro.resilience.report.FailureReport` timings-free contents),
which is what makes chaos scenarios replayable.  No process-global RNG is
ever touched (the SIM002 self-lint covers this package).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How often, and how patiently, a failed batch is retried.

    Attributes
    ----------
    max_retries:
        Retries after the first attempt; a batch is quarantined as
        *poison* after ``1 + max_retries`` failed attempts.
    base_delay_s:
        Backoff before the first retry.
    backoff_factor:
        Multiplier per further retry (exponential backoff).
    max_delay_s:
        Cap on the un-jittered backoff delay.
    jitter:
        Symmetric jitter fraction in ``[0, 1]``: the delay is scaled by a
        seeded draw from ``[1 - jitter, 1 + jitter]``.
    seed:
        Base seed of the jitter stream (sweeps default it to the plan
        seed).
    """

    max_retries: int = 2
    base_delay_s: float = 0.05
    backoff_factor: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.base_delay_s < 0:
            raise ConfigError("base_delay_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigError("backoff_factor must be >= 1")
        if self.max_delay_s < self.base_delay_s:
            raise ConfigError("max_delay_s must be >= base_delay_s")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError("jitter must be in [0, 1]")

    def delay_s(self, batch_index: int, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based) of one batch.

        Deterministic: the jitter RNG is seeded from
        ``(seed, batch_index, attempt)``, never from global state.
        """
        if attempt < 1:
            raise ConfigError(f"retry attempt must be >= 1, got {attempt}")
        base = min(
            self.base_delay_s * self.backoff_factor ** (attempt - 1),
            self.max_delay_s,
        )
        if self.jitter == 0.0 or base == 0.0:
            return base
        rng = random.Random(f"backoff:{self.seed}:{batch_index}:{attempt}")
        return base * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))

    def schedule(self, batch_index: int) -> tuple[float, ...]:
        """The full backoff schedule one batch would experience."""
        return tuple(
            self.delay_s(batch_index, attempt)
            for attempt in range(1, self.max_retries + 1)
        )
