"""Length-prefixed, checksummed frame protocol for the nodes backend.

The simulated multi-node executor (:class:`repro.resilience.backends.
NodesBackend`) moves tasks and packed :class:`~repro.frame.columns.
RecordBlock` results over local ``socket.socketpair()`` links.  Unlike
the pool backend's spool files — which sidestep partial IPC frames by
keeping queue messages below ``PIPE_BUF`` — a stream socket *can* deliver
half a message, so partial delivery must be **detected**, not avoided.
Every frame is therefore::

    magic (2 bytes) | payload length (u32 BE) | crc32 (u32 BE) | payload

and every way a read can go wrong surfaces as a *typed* error
(:class:`~repro.errors.TransportError` subclasses), never a hang:

- :class:`~repro.errors.NodeLostError` — the connection dropped at a
  frame boundary (the node died between messages),
- :class:`~repro.errors.TruncatedFrameError` — EOF or a blown deadline
  in the middle of a frame (the node died, or stalled, mid-message),
- :class:`~repro.errors.MalformedFrameError` — bad magic, implausible
  length, checksum mismatch, or an undecodable payload (a peer that is
  not speaking the protocol, or bytes that rotted in flight).

All reads are deadline-bounded: :func:`recv_frame` with a timeout never
blocks past it.  A timeout with *zero* bytes read is not an error — it
returns None so an event loop can poll — but a timeout after the first
byte of a frame is a truncation, because a healthy peer never pauses
mid-frame.

Payloads are pickled with the highest protocol; ``array.array`` column
buffers pickle as raw bytes, so a sweep batch's ``RecordBlock`` crosses
the shard boundary columnar, without a per-record object graph (see
``docs/COLUMNAR.md``).
"""

from __future__ import annotations

import pickle
import socket
import struct
import time
import zlib

from repro.errors import (
    MalformedFrameError,
    NodeLostError,
    TruncatedFrameError,
)

__all__ = [
    "FRAME_MAGIC",
    "MAX_FRAME_BYTES",
    "encode_frame",
    "send_frame",
    "recv_frame",
    "send_truncated_frame",
]

#: First two bytes of every frame ("repro nodes").
FRAME_MAGIC = b"RN"
#: Refuse frames past this size: a length field this large is corruption
#: (the full-grid batch blocks the sweep ships are a few MB).
MAX_FRAME_BYTES = 256 * 1024 * 1024

_HEADER = struct.Struct(">2sII")


def encode_frame(message: object) -> bytes:
    """The wire bytes of one frame carrying ``message``."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:
        raise MalformedFrameError(
            f"refusing to send a {len(payload)}-byte frame "
            f"(limit {MAX_FRAME_BYTES})"
        )
    return _HEADER.pack(FRAME_MAGIC, len(payload), zlib.crc32(payload)) \
        + payload


def send_frame(sock: socket.socket, message: object) -> None:
    """Send one complete frame; a dead peer raises ``NodeLostError``."""
    try:
        sock.sendall(encode_frame(message))
    except OSError as exc:
        raise NodeLostError(f"peer unreachable during send: {exc}") from exc


def send_truncated_frame(
    sock: socket.socket, message: object, fraction: float = 0.5
) -> None:
    """Send only the leading ``fraction`` of a frame (chaos injection).

    This is how the ``node-lost`` chaos fault models a node dying
    mid-message: the peer's next read must surface
    :class:`~repro.errors.TruncatedFrameError`, never block forever.
    """
    data = encode_frame(message)
    cut = max(1, min(len(data) - 1, int(len(data) * fraction)))
    try:
        sock.sendall(data[:cut])
    except OSError as exc:
        raise NodeLostError(f"peer unreachable during send: {exc}") from exc


def _recv_exact(
    sock: socket.socket,
    n: int,
    deadline: float | None,
    mid_frame: bool,
) -> bytes | None:
    """Read exactly ``n`` bytes, bounded by ``deadline`` (monotonic).

    Returns None on a timeout with zero bytes read at a frame boundary
    (``mid_frame=False``); any other shortfall raises the matching typed
    error.
    """
    buf = bytearray()

    def partial() -> bool:
        return mid_frame or bool(buf)

    while len(buf) < n:
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                if partial():
                    raise TruncatedFrameError(
                        f"peer stalled mid-frame: {len(buf)}/{n} bytes "
                        "before the read deadline"
                    )
                return None
            sock.settimeout(remaining)
        else:
            sock.settimeout(None)
        try:
            chunk = sock.recv(n - len(buf))
        except socket.timeout:
            if partial():
                raise TruncatedFrameError(
                    f"peer stalled mid-frame: {len(buf)}/{n} bytes "
                    "before the read deadline"
                ) from None
            return None
        except OSError as exc:
            if partial():
                raise TruncatedFrameError(
                    f"connection failed mid-frame after {len(buf)}/{n} "
                    f"bytes: {exc}"
                ) from exc
            raise NodeLostError(
                f"connection lost at a frame boundary: {exc}"
            ) from exc
        if not chunk:
            if partial():
                raise TruncatedFrameError(
                    f"peer closed the connection mid-frame after "
                    f"{len(buf)}/{n} bytes"
                )
            raise NodeLostError(
                "peer closed the connection at a frame boundary"
            )
        buf += chunk
    return bytes(buf)


def recv_frame(
    sock: socket.socket, timeout_s: float | None = None
) -> object | None:
    """Read one frame and return its decoded message.

    Returns None if ``timeout_s`` elapses before the first byte of a
    frame arrives (poll semantics).  Messages in this protocol are
    always tuples, so None is unambiguous.  Raises the typed transport
    errors described in the module docstring; never blocks past the
    deadline.
    """
    deadline = (None if timeout_s is None
                else time.monotonic() + max(timeout_s, 0.001))
    header = _recv_exact(sock, _HEADER.size, deadline, mid_frame=False)
    if header is None:
        return None
    magic, length, crc = _HEADER.unpack(header)
    if magic != FRAME_MAGIC:
        raise MalformedFrameError(
            f"bad frame magic {magic!r} (expected {FRAME_MAGIC!r})"
        )
    if length > MAX_FRAME_BYTES:
        raise MalformedFrameError(
            f"implausible frame length {length} (limit {MAX_FRAME_BYTES})"
        )
    payload = _recv_exact(sock, length, deadline, mid_frame=True)
    if zlib.crc32(payload) != crc:
        raise MalformedFrameError(
            "frame checksum mismatch: payload corrupted in flight"
        )
    try:
        return pickle.loads(payload)
    except Exception as exc:  # pickle raises a zoo of types on garbage
        raise MalformedFrameError(
            f"undecodable frame payload: {type(exc).__name__}: {exc}"
        ) from exc
