"""Executor backends: one dispatch protocol, three execution substrates.

PR 5 built fault-tolerant sweep execution around exactly one substrate —
the supervised multiprocess pool.  This module generalizes that into an
:class:`ExecutorBackend` protocol with three implementations, so the
sweep engine (and the ``sharded-execution-parity`` check) can run the
same task stream on any of them and demand bit-identical records:

- ``serial`` (:class:`SerialBackend`) — in-process, no subprocesses.
  The reference implementation: every other backend is defined as
  "produces exactly what serial produces".
- ``pool`` (:class:`~repro.resilience.supervisor.Supervisor`) — the
  existing supervised worker fleet, registered here as a virtual
  subclass; nothing about it changed.
- ``nodes`` (:class:`NodesBackend`) — a simulated multi-node cluster:
  one OS process per *shard*, each owning one end of a
  ``socket.socketpair()`` and speaking the length-prefixed frame
  protocol in :mod:`repro.resilience.transport`.  This models the
  failure surface a real distributed sweep would have — truncated
  frames, severed links, lost nodes — on a single machine, where the
  chaos harness can script it deterministically.

The contract every backend honors (the supervisor defined it):

- ``stream(tasks, ledger)`` yields one outcome per task **in task_id
  order** regardless of completion order — a successful result, or
  None for a batch quarantined after its retry budget,
- every failed attempt lands in the shared
  :class:`~repro.resilience.report.FailureLedger`,
- ``completed_unyielded()`` exposes landed-but-unconsumed results so an
  interrupted sweep can flush them to cache,
- ``close()`` is idempotent and safe mid-stream.

Sharding (nodes backend)
------------------------
Each node is one shard.  Tasks start on their **home** shard — by
default the :class:`~repro.resilience.sharding.ShardPlanner` round-robin
assignment; the sweep layer overrides it with the cache key-prefix
partitioning so a shard's working set maps onto stable cache
partitions.  An idle node with an empty home queue *steals* from the
richest backlog (ties to the lowest shard id, taking the victim's tail)
— the arbitration rule :func:`~repro.resilience.sharding.
simulate_rebalance` specifies.

Node loss runs a budgeted recovery ladder: the in-flight task is
retried under the normal :class:`~repro.resilience.policy.RetryPolicy`;
the node is respawned while the ``max_node_respawns`` budget lasts;
past it the node is *abandoned* and its backlog reassigned round-robin
to the survivors (``max_reassignments`` abandonments allowed, logged as
:class:`~repro.resilience.sharding.ReassignEvent`); with no survivors
the stream raises :class:`~repro.errors.ResilienceError`.  Steal and
reassign schedules depend on real execution timing, so they live in the
:class:`~repro.resilience.sharding.ShardReport` (see
:meth:`NodesBackend.shard_report`) and never in the deterministic
:class:`~repro.resilience.report.FailureReport`.

Results cross the node boundary as pickled frames; sweep workers send
packed :class:`~repro.frame.columns.RecordBlock` batches whose
``array.array`` columns pickle as raw bytes, so the pipeline stays
columnar end to end (see ``docs/COLUMNAR.md``).
"""

from __future__ import annotations

import abc
import heapq
import multiprocessing
import selectors
import socket
import time
from collections import deque
from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass

from repro.errors import (
    MalformedFrameError,
    PoisonBatchError,
    ResilienceError,
    TransportError,
    TruncatedFrameError,
)
from repro.resilience.chaos import (
    CHAOS_NODE_LOST_EXIT,
    CHAOS_PARTITION_EXIT,
    enter_node_context,
    installed_node_fault,
)
from repro.resilience.policy import RetryPolicy
from repro.resilience.report import FailureLedger
from repro.resilience.sharding import (
    ReassignEvent,
    ShardPlanner,
    ShardReport,
    StealEvent,
)
from repro.resilience.supervisor import SupervisedTask, Supervisor
from repro.resilience.transport import (
    recv_frame,
    send_frame,
    send_truncated_frame,
)

__all__ = [
    "BACKEND_NAMES",
    "ExecutorBackend",
    "SerialBackend",
    "SerialChaosFault",
    "NodesBackend",
    "probe_backend",
]

#: The backend axis the parity checks and the CLI iterate over.
BACKEND_NAMES = ("serial", "pool", "nodes")


def _probe_task(payload, attempt):
    """Echo task used by :func:`probe_backend` — any result proves the
    substrate can round-trip a dispatch."""
    return payload


def probe_backend(name: str, timeout_s: float = 5.0) -> bool:
    """Health-probe one execution substrate with a single echo task.

    Used by the serving layer's circuit breaker in half-open state: a
    cheap end-to-end dispatch (spawn, send, execute, receive) proves the
    backend can currently do work, without committing a real batch to a
    possibly-broken fleet.  Returns True when the echo round-trips
    within ``timeout_s``; False on any error or mismatch.  ``serial``
    always probes healthy — it is the floor of the degradation ladder.
    """
    if name not in BACKEND_NAMES:
        raise ResilienceError(
            f"unknown backend {name!r} (expected one of {BACKEND_NAMES})"
        )
    if name == "serial":
        return True
    task = SupervisedTask(
        task_id=0, index=0, payload="probe", identity="probe:0",
        timeout_s=timeout_s,
    )
    policy = RetryPolicy(max_retries=0, base_delay_s=0.0)
    if name == "pool":
        backend: ExecutorBackend = Supervisor(
            _probe_task, n_workers=1, policy=policy, fail_fast=False,
        )
    else:
        backend = NodesBackend(
            _probe_task, n_nodes=1, policy=policy, fail_fast=False,
            frame_timeout_s=timeout_s,
        )
    try:
        outcomes = list(backend.stream([task]))
    except (ResilienceError, OSError):
        return False
    finally:
        backend.close()
    return outcomes == ["probe"]


class ExecutorBackend(abc.ABC):
    """The dispatch protocol shared by serial, pool and nodes backends.

    :class:`~repro.resilience.supervisor.Supervisor` predates this
    protocol and is registered below as a virtual subclass rather than
    rebased onto it — its public surface already matches.
    """

    #: Short identifier ("serial", "pool", "nodes").
    name = "backend"
    #: Worker/node respawns performed so far (failure-report field).
    worker_respawns = 0
    #: Optional cooperative-cancellation handle (anything with
    #: ``is_set()``, typically a ``threading.Event``).  When set, the
    #: backend raises :class:`~repro.errors.SweepCancelledError` at the
    #: next safe point — between attempts, never mid-batch — so the
    #: sweep layer can flush landed batches before unwinding.  This is
    #: how a served request's deadline reaches all the way down to the
    #: worker fleet.
    cancel_event = None

    def _check_cancelled(self) -> None:
        """Raise if the installed cancel handle has been set."""
        from repro.errors import SweepCancelledError

        if self.cancel_event is not None and self.cancel_event.is_set():
            raise SweepCancelledError(
                f"sweep cancelled while streaming on the {self.name} "
                "backend"
            )

    @abc.abstractmethod
    def stream(
        self,
        tasks: Sequence[SupervisedTask],
        ledger: FailureLedger | None = None,
    ) -> Iterator[object]:
        """Run all tasks; yield outcomes in ``task_id`` order."""

    def completed_unyielded(self) -> list[tuple[int, object]]:
        """Landed-but-unconsumed ``(task_id, value)`` pairs."""
        return []

    def close(self) -> None:
        """Release all execution resources; idempotent."""


ExecutorBackend.register(Supervisor)


class SerialChaosFault(Exception):
    """Raised by a serial-mode task function to simulate a fault the
    in-process backend cannot survive for real (a crash, a hang, a lost
    node).  Carries the failure ``kind`` and ``cause`` the ledger
    records — the serial path *books* the failure instead of dying."""

    def __init__(self, kind: str, cause: str):
        super().__init__(f"{kind}: {cause}")
        self.kind = kind
        self.cause = cause


class SerialBackend(ExecutorBackend):
    """In-process reference backend: no subprocesses, no IPC.

    Mirrors the supervisor's retry/quarantine semantics exactly —
    deterministic backoff sleeps, validation as ``corrupt-result``,
    poison on budget exhaustion — so its record stream is the parity
    reference the other backends are measured against.
    """

    name = "serial"

    def __init__(
        self,
        fn: Callable,
        policy: RetryPolicy | None = None,
        validate: Callable | None = None,
        fail_fast: bool = False,
    ):
        self.fn = fn
        self.policy = policy or RetryPolicy()
        self.validate = validate
        self.fail_fast = fail_fast
        self.ledger: FailureLedger | None = None
        self.worker_respawns = 0
        self._outcomes: dict[int, tuple[str, object]] = {}
        self._yielded = 0

    def stream(
        self,
        tasks: Sequence[SupervisedTask],
        ledger: FailureLedger | None = None,
    ) -> Iterator[object]:
        """Run all tasks in-process; yield outcomes in task order."""
        tasks = list(tasks)
        if [t.task_id for t in tasks] != list(range(len(tasks))):
            raise ResilienceError(
                "task_ids must be the contiguous sequence 0..n-1 in "
                "submission order"
            )
        self.ledger = ledger if ledger is not None else FailureLedger(
            self.policy, "raise" if self.fail_fast else "degrade"
        )
        self._outcomes = {}
        self._yielded = 0
        for task in tasks:
            self._check_cancelled()
            attempt = 0
            while True:
                kind = cause = None
                value = None
                try:
                    value = self.fn(task.payload, attempt)
                except SerialChaosFault as fault:
                    kind, cause = fault.kind, fault.cause
                except Exception as exc:
                    kind, cause = "error", f"{type(exc).__name__}: {exc}"
                else:
                    error = self.validate(value) if self.validate else None
                    if error is not None:
                        kind, cause, value = "corrupt-result", error, None
                if kind is None:
                    self.ledger.record_success(task.index)
                    self._outcomes[task.task_id] = ("ok", value)
                    break
                if self.ledger.record_failure(
                    task.index, task.identity, attempt, kind, cause
                ):
                    time.sleep(self.policy.delay_s(task.index, attempt + 1))
                    attempt += 1
                    continue
                self._outcomes[task.task_id] = ("poison", None)
                if self.fail_fast:
                    raise PoisonBatchError(
                        f"batch {task.index} quarantined after "
                        f"{attempt + 1} failed attempt(s) (last: {kind}: "
                        f"{cause}) under fail_policy='raise'"
                    )
                break
            while self._yielded in self._outcomes:
                status, out = self._outcomes.pop(self._yielded)
                self._yielded += 1
                yield out if status == "ok" else None

    def completed_unyielded(self) -> list[tuple[int, object]]:
        """Landed-but-unconsumed ``(task_id, value)`` pairs."""
        return [
            (task_id, value)
            for task_id, (status, value) in sorted(self._outcomes.items())
            if status == "ok"
        ]


# ----------------------------------------------------------------------
# Nodes backend
# ----------------------------------------------------------------------
def _node_main(node_id, fn, initializer, initargs, sock):
    """Node process body: initialize once, then serve framed tasks.

    Node-level chaos faults fire *here, at the transport layer* —
    a ``node-lost`` fault sends half a result frame before dying, a
    ``shard-partition`` fault severs the link between messages — so the
    parent exercises the real truncated-frame / boundary-EOF recovery
    paths rather than a polite error message.
    """
    import os as _os

    from repro.resilience.supervisor import _detach_inherited_signals

    _detach_inherited_signals()
    enter_node_context()
    try:
        if initializer is not None:
            initializer(*initargs)
    except BaseException as exc:
        try:
            send_frame(sock, ("init-error", f"{type(exc).__name__}: {exc}"))
        except TransportError:
            pass
        return
    try:
        while True:
            try:
                message = recv_frame(sock)
            except TransportError:
                return  # parent went away; nothing left to serve
            if message is None:
                return
            kind = message[0]
            if kind == "stop":
                return
            if kind != "task":
                continue  # unknown kind: skip rather than misinterpret
            _tag, task_id, index, payload, attempt = message
            fault = installed_node_fault(index, attempt)
            if fault == "node-lost":
                try:
                    send_truncated_frame(
                        sock, ("result", task_id, "ok", None)
                    )
                finally:
                    _os._exit(CHAOS_NODE_LOST_EXIT)
            if fault == "shard-partition":
                sock.close()
                _os._exit(CHAOS_PARTITION_EXIT)
            try:
                result = fn(payload, attempt)
            except Exception as exc:
                send_frame(sock, ("result", task_id, "error",
                                  f"{type(exc).__name__}: {exc}"))
            else:
                send_frame(sock, ("result", task_id, "ok", result))
    except KeyboardInterrupt:
        return


@dataclass
class _NodeSlot:
    """One node process, its link, and what it is currently running."""

    node_id: int
    sock: socket.socket | None
    process: multiprocessing.Process | None
    #: (task, attempt, deadline) while busy, None while idle.
    current: tuple | None = None
    #: False once the node is abandoned (respawn budget exhausted).
    alive: bool = False


class NodesBackend(ExecutorBackend):
    """Simulated multi-node executor: one process per shard over
    socketpair links (see module docstring for the full model)."""

    name = "nodes"

    def __init__(
        self,
        fn: Callable,
        initializer: Callable | None = None,
        initargs: Sequence = (),
        n_nodes: int = 2,
        policy: RetryPolicy | None = None,
        validate: Callable | None = None,
        fail_fast: bool = False,
        poll_interval_s: float = 0.05,
        max_node_respawns: int = 16,
        max_reassignments: int | None = None,
        frame_timeout_s: float = 5.0,
    ):
        self.fn = fn
        self.initializer = initializer
        self.initargs = tuple(initargs)
        self.n_nodes = max(1, n_nodes)
        self.policy = policy or RetryPolicy()
        self.validate = validate
        self.fail_fast = fail_fast
        self.poll_interval_s = poll_interval_s
        self.max_node_respawns = max_node_respawns
        self.max_reassignments = (
            max_reassignments if max_reassignments is not None
            else max(0, self.n_nodes - 1)
        )
        self.frame_timeout_s = frame_timeout_s
        self.planner = ShardPlanner(self.n_nodes)
        #: Optional per-task home shard override (e.g. cache key-prefix
        #: partitioning); set before ``stream``, one shard id per task.
        self.home_shards: Sequence[int] | None = None
        self.ledger: FailureLedger | None = None
        self.worker_respawns = 0
        self._slots: list[_NodeSlot] = []
        self._selector: selectors.BaseSelector | None = None
        self._queues: list[deque] = []
        self._home: list[int] = []
        self._steals: list[StealEvent] = []
        self._reassigns: list[ReassignEvent] = []
        self._abandoned = 0
        self._retry_heap: list = []
        self._retry_seq = 0
        self._outcomes: dict[int, tuple[str, object]] = {}
        self._yielded = 0
        self._closed = True

    # -- node lifecycle --------------------------------------------------
    def _spawn(self, node_id: int) -> _NodeSlot:
        parent_sock, child_sock = socket.socketpair()
        process = multiprocessing.Process(
            target=_node_main,
            args=(node_id, self.fn, self.initializer, self.initargs,
                  child_sock),
            daemon=True,
        )
        process.start()
        # The parent's copy of the child end closes immediately, so the
        # node process is the *only* holder: node death is EOF here.
        child_sock.close()
        self._selector.register(parent_sock, selectors.EVENT_READ, node_id)
        return _NodeSlot(node_id, parent_sock, process, alive=True)

    def _kill(self, slot: _NodeSlot) -> None:
        if slot.sock is not None:
            try:
                self._selector.unregister(slot.sock)
            except (KeyError, ValueError):
                pass
            slot.sock.close()
            slot.sock = None
        process = slot.process
        if process is not None and process.is_alive():
            process.terminate()
            process.join(1.0)
            if process.is_alive():
                process.kill()
                process.join(1.0)
        slot.alive = False
        slot.current = None

    def _exitcode(self, slot: _NodeSlot) -> int | None:
        if slot.process is None:
            return None
        slot.process.join(1.0)
        return slot.process.exitcode

    def _survivors(self) -> list[_NodeSlot]:
        return [s for s in self._slots if s.alive]

    def _recover_node(self, slot: _NodeSlot) -> None:
        """Respawn while the budget lasts; abandon and reassign past it."""
        self._kill(slot)
        self.worker_respawns += 1
        if self.worker_respawns <= self.max_node_respawns:
            fresh = self._spawn(slot.node_id)
            slot.sock, slot.process = fresh.sock, fresh.process
            slot.alive = True
            return
        self._abandon(slot)

    def _abandon(self, slot: _NodeSlot) -> None:
        if self._abandoned >= self.max_reassignments:
            raise ResilienceError(
                f"shard reassignment budget exhausted "
                f"({self.max_reassignments}): nodes keep getting lost"
            )
        self._abandoned += 1
        survivors = self._survivors()
        if not survivors:
            raise ResilienceError(
                "every node is lost; no shard can take the backlog"
            )
        backlog = self._queues[slot.node_id]
        for position, (task, attempt) in enumerate(backlog):
            target = survivors[position % len(survivors)]
            self._queues[target.node_id].append((task, attempt))
            self._home[task.task_id] = target.node_id
            self._reassigns.append(
                ReassignEvent(slot.node_id, target.node_id, task.index)
            )
        backlog.clear()

    def _route(self, task: SupervisedTask, attempt: int) -> None:
        """Queue a (re)tried task on its home shard, re-homing it to a
        survivor if the home was abandoned."""
        home = self._home[task.task_id]
        if not self._slots[home].alive:
            survivors = self._survivors()
            if not survivors:
                raise ResilienceError(
                    "every node is lost; no shard can take the backlog"
                )
            target = survivors[task.task_id % len(survivors)]
            self._reassigns.append(
                ReassignEvent(home, target.node_id, task.index)
            )
            self._home[task.task_id] = home = target.node_id
        self._queues[home].appendleft((task, attempt))

    # -- event loop ------------------------------------------------------
    def stream(
        self,
        tasks: Sequence[SupervisedTask],
        ledger: FailureLedger | None = None,
    ) -> Iterator[object]:
        """Run all tasks; yield outcomes in task order (see class doc)."""
        tasks = list(tasks)
        if [t.task_id for t in tasks] != list(range(len(tasks))):
            raise ResilienceError(
                "task_ids must be the contiguous sequence 0..n-1 in "
                "submission order"
            )
        self.ledger = ledger if ledger is not None else FailureLedger(
            self.policy, "raise" if self.fail_fast else "degrade"
        )
        homes = (list(self.home_shards) if self.home_shards is not None
                 else list(self.planner.assign(tasks)))
        if len(homes) != len(tasks):
            raise ResilienceError(
                f"got {len(homes)} home shards for {len(tasks)} tasks"
            )
        self._home = homes
        self._queues = [deque() for _ in range(self.n_nodes)]
        for task, home in zip(tasks, homes):
            self._queues[home].append((task, 0))
        self._retry_heap = []
        self._outcomes = {}
        self._yielded = 0
        self._steals = []
        self._reassigns = []
        self._abandoned = 0
        self.worker_respawns = 0
        self._selector = selectors.DefaultSelector()
        self._slots = [self._spawn(i) for i in range(self.n_nodes)]
        self._closed = False
        try:
            while self._yielded < len(tasks):
                self._check_cancelled()
                self._dispatch()
                self._poll(self._wait_budget())
                self._enforce_deadlines()
                while self._yielded in self._outcomes:
                    status, value = self._outcomes.pop(self._yielded)
                    self._yielded += 1
                    yield value if status == "ok" else None
        finally:
            self.close()

    def _dispatch(self) -> None:
        now = time.monotonic()
        while self._retry_heap and self._retry_heap[0][0] <= now:
            _, _, task, attempt = heapq.heappop(self._retry_heap)
            # Retries jump their home queue, mirroring the supervisor.
            self._route(task, attempt)
        for slot in self._slots:
            if not slot.alive or slot.current is not None:
                continue
            item = self._take_for(slot)
            if item is None:
                continue
            task, attempt = item
            try:
                send_frame(slot.sock,
                           ("task", task.task_id, task.index,
                            task.payload, attempt))
            except TransportError:
                # The node died before taking the task: put it back on
                # this shard (recovery reassigns it if the shard is
                # abandoned), surface any final frames the node flushed
                # before the link dropped, then recover the node.
                self._queues[slot.node_id].appendleft((task, attempt))
                self._drain_final(slot)
                self._recover_node(slot)
                continue
            slot.current = (task, attempt, now + task.timeout_s)

    def _take_for(self, slot: _NodeSlot) -> tuple | None:
        """Own queue head, else steal the richest backlog's tail."""
        own = self._queues[slot.node_id]
        if own:
            return own.popleft()
        victim = None
        richest = 0
        for other in self._slots:
            backlog = len(self._queues[other.node_id])
            if other.node_id != slot.node_id and backlog > richest:
                victim, richest = other, backlog
        if victim is None:
            return None
        task, attempt = self._queues[victim.node_id].pop()
        self._home[task.task_id] = slot.node_id
        self._steals.append(
            StealEvent(slot.node_id, victim.node_id, task.index)
        )
        return task, attempt

    def _drain_final(self, slot: _NodeSlot) -> None:
        """Read frames a dead node flushed before its link dropped.

        A node that failed initialization sends one ``init-error``
        frame and exits; that frame sits in the socket buffer and must
        surface (as :class:`~repro.errors.ResilienceError`) rather than
        vanish when recovery closes the socket.
        """
        if slot.sock is None:
            return
        while True:
            try:
                message = recv_frame(slot.sock, 0.05)
            except TransportError:
                return
            if message is None:
                return
            self._handle_message(slot, message)

    def _wait_budget(self) -> float:
        now = time.monotonic()
        budget = self.poll_interval_s
        for slot in self._slots:
            if slot.current is not None:
                budget = min(budget, slot.current[2] - now)
        if self._retry_heap:
            budget = min(budget, self._retry_heap[0][0] - now)
        return max(budget, 0.005)

    def _poll(self, timeout_s: float) -> None:
        """Wait for node frames for up to ``timeout_s``; handle them."""
        events = self._selector.select(max(timeout_s, 0.0))
        for key, _mask in events:
            node_id = key.data
            slot = self._slots[node_id]
            if not slot.alive or slot.sock is not key.fileobj:
                continue  # a slot recovered earlier in this same pass
            try:
                message = recv_frame(slot.sock, self.frame_timeout_s)
            except TransportError as exc:
                self._on_transport_failure(slot, exc)
                continue
            if message is not None:
                self._handle_message(slot, message)

    def _handle_message(self, slot: _NodeSlot, message: tuple) -> None:
        kind = message[0]
        if kind == "init-error":
            raise ResilienceError(
                f"node initialization failed: {message[1]}"
            )
        if kind != "result":
            return  # unknown kind: drop rather than misinterpret
        _tag, task_id, status, value = message
        if slot.current is None or slot.current[0].task_id != task_id:
            return  # stale result from an assignment already retried
        task, attempt, _deadline = slot.current
        slot.current = None
        if status == "ok":
            error = self.validate(value) if self.validate else None
            if error is None:
                self.ledger.record_success(task.index)
                self._outcomes[task.task_id] = ("ok", value)
            else:
                self._record_failure(task, attempt, "corrupt-result", error)
        else:
            self._record_failure(task, attempt, "error", value)

    def _on_transport_failure(
        self, slot: _NodeSlot, exc: TransportError
    ) -> None:
        """Classify a broken link, book the in-flight task, recover.

        The failure *kind* prefers the node's exit code — chaos faults
        die with distinctive codes — and falls back to the transport
        error's shape: a truncated frame is a mid-message death
        (``node-lost``), a boundary EOF is a severed link
        (``shard-partition``).
        """
        exitcode = self._exitcode(slot)
        if exitcode == CHAOS_NODE_LOST_EXIT:
            kind = "node-lost"
        elif exitcode == CHAOS_PARTITION_EXIT:
            kind = "shard-partition"
        elif isinstance(exc, (TruncatedFrameError, MalformedFrameError)):
            kind = "node-lost"
        else:
            kind = "shard-partition"
        cause = f"{type(exc).__name__}: {exc}"
        if exitcode is not None:
            cause += f" (node exit code {exitcode})"
        task_info, slot.current = slot.current, None
        self._recover_node(slot)
        if task_info is not None:
            task, attempt, _deadline = task_info
            self._record_failure(task, attempt, kind, cause)

    def _record_failure(self, task: SupervisedTask, attempt: int,
                        kind: str, cause: str) -> None:
        retry = self.ledger.record_failure(
            task.index, task.identity, attempt, kind, cause
        )
        if retry:
            delay = self.policy.delay_s(task.index, attempt + 1)
            self._retry_seq += 1
            heapq.heappush(
                self._retry_heap,
                (time.monotonic() + delay, self._retry_seq, task,
                 attempt + 1),
            )
            return
        self._outcomes[task.task_id] = ("poison", None)
        if self.fail_fast:
            raise PoisonBatchError(
                f"batch {task.index} quarantined after {attempt + 1} "
                f"failed attempt(s) (last: {kind}: {cause}) under "
                "fail_policy='raise'"
            )

    def _enforce_deadlines(self) -> None:
        now = time.monotonic()
        for slot in self._slots:
            if slot.current is None or slot.current[2] > now:
                continue
            task, attempt, _deadline = slot.current
            slot.current = None
            self._recover_node(slot)  # kills the hung node first
            self._record_failure(
                task, attempt, "timeout",
                f"exceeded the {task.timeout_s:.1f}s batch deadline",
            )

    # -- interruption support -------------------------------------------
    def completed_unyielded(self) -> list[tuple[int, object]]:
        """Landed-but-unconsumed ``(task_id, value)`` pairs."""
        return [
            (task_id, value)
            for task_id, (status, value) in sorted(self._outcomes.items())
            if status == "ok"
        ]

    def shard_report(self) -> ShardReport:
        """Operational steal/reassign diagnostics for the last stream."""
        return ShardReport(
            n_shards=self.n_nodes,
            assignments=tuple(self._home),
            steals=tuple(self._steals),
            reassignments=tuple(self._reassigns),
            node_respawns=self.worker_respawns,
        )

    def close(self) -> None:
        """Stop every node; idempotent, safe mid-stream."""
        if self._closed:
            return
        self._closed = True
        for slot in self._slots:
            if (slot.alive and slot.sock is not None
                    and slot.current is None):
                try:
                    send_frame(slot.sock, ("stop",))
                except TransportError:
                    pass
        deadline = time.monotonic() + 1.0
        for slot in self._slots:
            if slot.process is not None:
                slot.process.join(max(0.0, deadline - time.monotonic()))
        for slot in self._slots:
            self._kill(slot)
        if self._selector is not None:
            self._selector.close()
            self._selector = None
