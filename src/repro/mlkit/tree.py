"""Decision-tree classification (CART) — the paper's proposed next step.

The paper's conclusion names "the development of non-linear approaches to
model such data" as the path forward, because linear models cannot
capture interactions like *turnaround only matters for task apps* or
*fewer threads only helps on Milan*.  This module provides a CART
classifier with gini impurity, depth/size regularization and
impurity-based feature importances — the non-linear counterpart to
:class:`~repro.mlkit.logreg.LogisticRegression` used by
:mod:`repro.core.nonlinear`.

Implementation notes: splits are exhaustive over midpoints of the sorted
unique values per feature, with vectorized class-count prefix sums per
candidate feature, giving O(n log n) per node per feature.  Ordinal
(label-encoded) categorical features work naturally; ties in gain break
toward the lowest feature index for determinism.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import FitError, NotFittedError

__all__ = ["DecisionTreeClassifier", "RandomForestClassifier"]


@dataclass
class _Node:
    """One tree node; leaves carry a class probability."""

    prediction: float  # P(y=1) among this node's training samples
    n_samples: int
    feature: int = -1  # -1 for leaves
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0


def _gini(p: float) -> float:
    """Binary gini impurity for positive-class probability ``p``."""
    return 2.0 * p * (1.0 - p)


class DecisionTreeClassifier:
    """Binary CART with gini splits.

    Parameters
    ----------
    max_depth:
        Depth cap (root = depth 0).
    min_samples_split:
        Nodes smaller than this become leaves.
    min_gain:
        Minimum impurity decrease to accept a split.
    max_features:
        If set, consider only this many randomly chosen features per node
        (used by the forest); ``None`` = all features.
    seed:
        Feature-subsampling seed.
    """

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_split: int = 10,
        min_gain: float = 1e-7,
        max_features: int | None = None,
        seed: int = 0,
    ):
        if max_depth < 1:
            raise FitError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_split < 2:
            raise FitError("min_samples_split must be >= 2")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_gain = min_gain
        self.max_features = max_features
        self.seed = seed
        self.root_: _Node | None = None
        self.n_features_: int = 0
        self._importance_gain: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _best_split(
        self, X: np.ndarray, y: np.ndarray, features: np.ndarray
    ) -> tuple[float, int, float]:
        """(gain, feature, threshold) of the best split, gain <= 0 if none."""
        n = y.shape[0]
        parent = _gini(float(y.mean()))
        best = (0.0, -1, 0.0)
        for f in features:
            order = np.argsort(X[:, f], kind="mergesort")
            xs = X[order, f]
            ys = y[order]
            # Candidate cut positions: where consecutive x values differ.
            cuts = np.nonzero(np.diff(xs) > 0)[0]
            if cuts.shape[0] == 0:
                continue
            pos_prefix = np.cumsum(ys)
            n_left = cuts + 1
            n_right = n - n_left
            pos_left = pos_prefix[cuts]
            pos_right = pos_prefix[-1] - pos_left
            p_left = pos_left / n_left
            p_right = pos_right / n_right
            impurity = (
                n_left * _gini_vec(p_left) + n_right * _gini_vec(p_right)
            ) / n
            gains = parent - impurity
            k = int(np.argmax(gains))
            if gains[k] > best[0] + 1e-15:
                threshold = 0.5 * (xs[cuts[k]] + xs[cuts[k] + 1])
                best = (float(gains[k]), int(f), float(threshold))
        return best

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int,
               rng: np.random.Generator) -> _Node:
        node = _Node(prediction=float(y.mean()), n_samples=y.shape[0])
        if (
            depth >= self.max_depth
            or y.shape[0] < self.min_samples_split
            or node.prediction in (0.0, 1.0)
        ):
            return node
        if self.max_features is not None and self.max_features < self.n_features_:
            features = rng.choice(
                self.n_features_, size=self.max_features, replace=False
            )
            features.sort()
        else:
            features = np.arange(self.n_features_)
        gain, feature, threshold = self._best_split(X, y, features)
        if feature < 0 or gain < self.min_gain:
            return node
        mask = X[:, feature] <= threshold
        assert self._importance_gain is not None
        self._importance_gain[feature] += gain * y.shape[0]
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], depth + 1, rng)
        node.right = self._build(X[~mask], y[~mask], depth + 1, rng)
        return node

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        """Fit on (n_samples, n_features) design ``X`` and 0/1 labels."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2:
            raise FitError(f"expected 2-D design matrix, got {X.shape}")
        if y.shape != (X.shape[0],):
            raise FitError("labels must align with samples")
        if X.shape[0] == 0:
            raise FitError("cannot fit on zero samples")
        if not np.all(np.isin(np.unique(y), [0.0, 1.0])):
            raise FitError("labels must be 0/1")
        self.n_features_ = X.shape[1]
        self._importance_gain = np.zeros(self.n_features_)
        rng = np.random.default_rng(self.seed)
        self.root_ = self._build(X, y, 0, rng)
        return self

    # ------------------------------------------------------------------
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """(n, 2) class probabilities."""
        if self.root_ is None:
            raise NotFittedError("DecisionTreeClassifier used before fit")
        X = np.asarray(X, dtype=float)
        p1 = np.empty(X.shape[0])
        for i in range(X.shape[0]):
            node = self.root_
            while not node.is_leaf:
                node = (
                    node.left
                    if X[i, node.feature] <= node.threshold
                    else node.right
                )
            p1[i] = node.prediction
        return np.stack([1.0 - p1, p1], axis=1)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """0/1 predictions at the 0.5 threshold."""
        return (self.predict_proba(X)[:, 1] >= 0.5).astype(np.int64)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy."""
        y = np.asarray(y)
        return float(np.mean(self.predict(X) == y.astype(np.int64)))

    def normalized_importances(self) -> np.ndarray:
        """Impurity-decrease feature importances, normalized to sum 1."""
        if self._importance_gain is None:
            raise NotFittedError("DecisionTreeClassifier used before fit")
        total = self._importance_gain.sum()
        if total == 0.0:
            return np.full(self.n_features_, 1.0 / max(self.n_features_, 1))
        return self._importance_gain / total

    @property
    def depth(self) -> int:
        """Realized tree depth."""
        if self.root_ is None:
            raise NotFittedError("DecisionTreeClassifier used before fit")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self.root_)

    @property
    def n_leaves(self) -> int:
        """Leaf count."""
        if self.root_ is None:
            raise NotFittedError("DecisionTreeClassifier used before fit")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return walk(node.left) + walk(node.right)

        return walk(self.root_)


def _gini_vec(p: np.ndarray) -> np.ndarray:
    return 2.0 * p * (1.0 - p)


class RandomForestClassifier:
    """Bagged ensemble of CART trees with feature subsampling."""

    def __init__(
        self,
        n_trees: int = 30,
        max_depth: int = 10,
        min_samples_split: int = 6,
        max_features: int | str | None = "sqrt",
        seed: int = 0,
    ):
        if n_trees < 1:
            raise FitError("need at least one tree")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.seed = seed
        self.trees_: list[DecisionTreeClassifier] = []
        self.n_features_: int = 0

    def _resolve_max_features(self, p: int) -> int | None:
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(p)))
        if self.max_features is None:
            return None
        return int(self.max_features)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        """Fit the ensemble (bootstrap rows, subsampled features)."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or y.shape != (X.shape[0],):
            raise FitError("bad shapes for forest fit")
        n, p = X.shape
        self.n_features_ = p
        mf = self._resolve_max_features(p)
        rng = np.random.default_rng(self.seed)
        self.trees_ = []
        for t in range(self.n_trees):
            idx = rng.integers(0, n, size=n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                max_features=mf,
                seed=self.seed * 1_000_003 + t,
            )
            tree.fit(X[idx], y[idx])
            self.trees_.append(tree)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Ensemble-averaged class probabilities."""
        if not self.trees_:
            raise NotFittedError("RandomForestClassifier used before fit")
        p1 = np.mean(
            [t.predict_proba(X)[:, 1] for t in self.trees_], axis=0
        )
        return np.stack([1.0 - p1, p1], axis=1)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Majority-probability predictions."""
        return (self.predict_proba(X)[:, 1] >= 0.5).astype(np.int64)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy."""
        y = np.asarray(y)
        return float(np.mean(self.predict(X) == y.astype(np.int64)))

    def normalized_importances(self) -> np.ndarray:
        """Mean of the trees' impurity importances (sums to 1)."""
        if not self.trees_:
            raise NotFittedError("RandomForestClassifier used before fit")
        imp = np.mean(
            [t.normalized_importances() for t in self.trees_], axis=0
        )
        total = imp.sum()
        return imp / total if total else imp
