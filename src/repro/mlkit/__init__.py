"""Linear-models ML substrate (scikit-learn substitute).

The paper's analysis (Sec. IV-D) fits linear and logistic regression with
scikit-learn and reads weight-normalized absolute coefficients as feature
influence.  This package provides exactly that toolchain:

- :class:`~repro.mlkit.preprocess.Standardizer`,
  :class:`~repro.mlkit.preprocess.LabelEncoder`,
  :class:`~repro.mlkit.preprocess.OneHotEncoder` — feature preparation
  (the paper's "naive numeric scheme" is ``LabelEncoder``),
- :class:`~repro.mlkit.linreg.LinearRegression` — OLS with R² scoring
  (used to demonstrate the poor linear fit the paper reports),
- :class:`~repro.mlkit.logreg.LogisticRegression` — L2-regularized binary
  logistic regression with Newton/IRLS and gradient-descent solvers,
- :mod:`~repro.mlkit.metrics` and :mod:`~repro.mlkit.model_select` —
  accuracy/R²/confusion and deterministic train/test splitting.
"""

from repro.mlkit.preprocess import LabelEncoder, OneHotEncoder, Standardizer
from repro.mlkit.linreg import LinearRegression
from repro.mlkit.logreg import LogisticRegression
from repro.mlkit.metrics import (
    accuracy_score,
    confusion_matrix,
    f1_score,
    log_loss,
    precision_score,
    r2_score,
    recall_score,
    roc_auc_score,
)
from repro.mlkit.model_select import KFold, train_test_split
from repro.mlkit.tree import DecisionTreeClassifier, RandomForestClassifier

__all__ = [
    "Standardizer",
    "LabelEncoder",
    "OneHotEncoder",
    "LinearRegression",
    "LogisticRegression",
    "accuracy_score",
    "confusion_matrix",
    "precision_score",
    "recall_score",
    "f1_score",
    "log_loss",
    "r2_score",
    "roc_auc_score",
    "KFold",
    "train_test_split",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
]
