"""Feature preprocessing: standardization and categorical encoders.

The paper encodes applications, architectures and categorical environment
variables with a "naive numeric scheme" — ordinal integer codes — which is
:class:`LabelEncoder` here.  :class:`OneHotEncoder` is provided as the more
robust alternative the paper mentions, and :class:`Standardizer` implements
z-score normalization so logistic coefficients are magnitude-comparable
across features (a prerequisite for reading them as influence).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.errors import FitError, NotFittedError

__all__ = ["Standardizer", "LabelEncoder", "OneHotEncoder"]


class Standardizer:
    """Per-feature z-score scaling: ``(x - mean) / std``.

    Constant features (std == 0) are centered but not scaled, so they map to
    all-zeros instead of NaN — matching scikit-learn's ``StandardScaler``
    handling of zero variance.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "Standardizer":
        """Learn per-column mean and scale from ``X`` (n_samples, n_features)."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise FitError(f"expected 2-D design matrix, got shape {X.shape}")
        if X.shape[0] == 0:
            raise FitError("cannot fit Standardizer on zero samples")
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0.0] = 1.0
        self.scale_ = std
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Apply the learned scaling."""
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("Standardizer.transform before fit")
        X = np.asarray(X, dtype=float)
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        """Undo the scaling."""
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("Standardizer.inverse_transform before fit")
        return np.asarray(X, dtype=float) * self.scale_ + self.mean_


class LabelEncoder:
    """Ordinal encoder: category -> integer code by first appearance.

    This is the paper's "naive numeric scheme" for applications and
    architectures.  Unknown categories at transform time raise unless a
    default is configured.
    """

    def __init__(self, unknown_code: int | None = None):
        self.classes_: list[Any] | None = None
        self._index: dict[Any, int] = {}
        self.unknown_code = unknown_code

    def fit(self, values: Sequence[Any]) -> "LabelEncoder":
        """Learn the category -> code mapping (order of first appearance)."""
        self._index = {}
        for v in values:
            if isinstance(v, np.generic):
                v = v.item()
            if v not in self._index:
                self._index[v] = len(self._index)
        self.classes_ = list(self._index)
        return self

    def transform(self, values: Sequence[Any]) -> np.ndarray:
        """Map categories to their integer codes."""
        if self.classes_ is None:
            raise NotFittedError("LabelEncoder.transform before fit")
        out = np.empty(len(values), dtype=np.int64)
        for i, v in enumerate(values):
            if isinstance(v, np.generic):
                v = v.item()
            code = self._index.get(v)
            if code is None:
                if self.unknown_code is None:
                    raise FitError(f"unknown category {v!r}")
                code = self.unknown_code
            out[i] = code
        return out

    def fit_transform(self, values: Sequence[Any]) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(values).transform(values)

    def inverse_transform(self, codes: Sequence[int]) -> list:
        """Map integer codes back to categories."""
        if self.classes_ is None:
            raise NotFittedError("LabelEncoder.inverse_transform before fit")
        out = []
        for c in codes:
            c = int(c)
            if not 0 <= c < len(self.classes_):
                raise FitError(f"code {c} out of range")
            out.append(self.classes_[c])
        return out


class OneHotEncoder:
    """Dense one-hot encoding of a single categorical column."""

    def __init__(self) -> None:
        self.classes_: list[Any] | None = None
        self._index: dict[Any, int] = {}

    def fit(self, values: Sequence[Any]) -> "OneHotEncoder":
        """Learn the category set (order of first appearance)."""
        self._index = {}
        for v in values:
            if isinstance(v, np.generic):
                v = v.item()
            if v not in self._index:
                self._index[v] = len(self._index)
        self.classes_ = list(self._index)
        return self

    def transform(self, values: Sequence[Any]) -> np.ndarray:
        """(n, n_classes) indicator matrix."""
        if self.classes_ is None:
            raise NotFittedError("OneHotEncoder.transform before fit")
        out = np.zeros((len(values), len(self.classes_)))
        for i, v in enumerate(values):
            if isinstance(v, np.generic):
                v = v.item()
            j = self._index.get(v)
            if j is None:
                raise FitError(f"unknown category {v!r}")
            out[i, j] = 1.0
        return out

    def fit_transform(self, values: Sequence[Any]) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(values).transform(values)

    def feature_names(self, prefix: str) -> list[str]:
        """Column names for the indicator matrix, ``prefix=value`` style."""
        if self.classes_ is None:
            raise NotFittedError("OneHotEncoder.feature_names before fit")
        return [f"{prefix}={c}" for c in self.classes_]
