"""Classification and regression metrics."""

from __future__ import annotations

import numpy as np

from repro.errors import StatsError

__all__ = [
    "accuracy_score",
    "confusion_matrix",
    "precision_score",
    "recall_score",
    "f1_score",
    "log_loss",
    "r2_score",
    "roc_auc_score",
]


def _check_pair(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape or y_true.ndim != 1:
        raise StatsError(
            f"metric inputs must be equal-length 1-D arrays, "
            f"got {y_true.shape} vs {y_pred.shape}"
        )
    if y_true.shape[0] == 0:
        raise StatsError("metric of empty arrays is undefined")
    return y_true, y_pred


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exactly matching predictions."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
    """2x2 confusion matrix ``[[tn, fp], [fn, tp]]`` for 0/1 labels."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    y_true = y_true.astype(np.int64)
    y_pred = y_pred.astype(np.int64)
    if not np.all(np.isin(y_true, [0, 1])) or not np.all(np.isin(y_pred, [0, 1])):
        raise StatsError("confusion_matrix expects binary 0/1 labels")
    out = np.zeros((2, 2), dtype=np.int64)
    for t, p in ((0, 0), (0, 1), (1, 0), (1, 1)):
        out[t, p] = int(np.sum((y_true == t) & (y_pred == p)))
    return out


def precision_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """tp / (tp + fp); returns 0 when nothing was predicted positive."""
    cm = confusion_matrix(y_true, y_pred)
    denom = cm[1, 1] + cm[0, 1]
    return float(cm[1, 1] / denom) if denom else 0.0


def recall_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """tp / (tp + fn); returns 0 when there are no positives."""
    cm = confusion_matrix(y_true, y_pred)
    denom = cm[1, 1] + cm[1, 0]
    return float(cm[1, 1] / denom) if denom else 0.0


def f1_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Harmonic mean of precision and recall."""
    p = precision_score(y_true, y_pred)
    r = recall_score(y_true, y_pred)
    return 2 * p * r / (p + r) if (p + r) else 0.0


def log_loss(y_true: np.ndarray, proba: np.ndarray, eps: float = 1e-12) -> float:
    """Mean negative log-likelihood of 0/1 labels under P(y=1) = proba."""
    y_true = np.asarray(y_true, dtype=float)
    proba = np.asarray(proba, dtype=float)
    if proba.ndim == 2:  # accept predict_proba output
        proba = proba[:, 1]
    if y_true.shape != proba.shape:
        raise StatsError(
            f"log_loss shapes mismatch: {y_true.shape} vs {proba.shape}"
        )
    p = np.clip(proba, eps, 1.0 - eps)
    return -float(np.mean(y_true * np.log(p) + (1 - y_true) * np.log(1 - p)))


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination; 0 for a constant-target sample when
    predictions equal it, else can be negative for bad fits."""
    y_true, y_pred = _check_pair(
        np.asarray(y_true, dtype=float), np.asarray(y_pred, dtype=float)
    )
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - y_true.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def roc_auc_score(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve for 0/1 labels and real-valued scores.

    Computed via the rank statistic (equivalent to the Mann-Whitney U):
    ``AUC = (R_pos - n_pos(n_pos+1)/2) / (n_pos * n_neg)`` where
    ``R_pos`` is the sum of positive-sample midranks — exact under ties.
    """
    from repro.stats.wilcoxon import rankdata

    y_true = np.asarray(y_true, dtype=float)
    scores = np.asarray(scores, dtype=float)
    if scores.ndim == 2:  # accept predict_proba output
        scores = scores[:, 1]
    if y_true.shape != scores.shape or y_true.ndim != 1:
        raise StatsError("roc_auc_score: shapes mismatch")
    pos = y_true == 1.0
    n_pos = int(pos.sum())
    n_neg = y_true.shape[0] - n_pos
    if n_pos == 0 or n_neg == 0:
        raise StatsError("roc_auc_score needs both classes present")
    ranks = rankdata(scores)
    r_pos = float(ranks[pos].sum())
    return (r_pos - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg)
