"""Deterministic data splitting for model evaluation."""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.errors import FitError

__all__ = ["train_test_split", "KFold"]


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    test_fraction: float = 0.25,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle-split into train/test partitions.

    Returns ``(X_train, X_test, y_train, y_test)``.  Deterministic for a
    given ``seed``; guarantees at least one sample on each side.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    n = X.shape[0]
    if y.shape[0] != n:
        raise FitError(f"X has {n} samples but y has {y.shape[0]}")
    if not 0.0 < test_fraction < 1.0:
        raise FitError(f"test_fraction must be in (0, 1), got {test_fraction}")
    if n < 2:
        raise FitError("need at least 2 samples to split")
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    n_test = min(max(int(round(n * test_fraction)), 1), n - 1)
    test_idx = perm[:n_test]
    train_idx = perm[n_test:]
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]


class KFold:
    """K-fold cross-validation index generator (deterministic shuffle)."""

    def __init__(self, n_splits: int = 5, seed: int = 0):
        if n_splits < 2:
            raise FitError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = n_splits
        self.seed = seed

    def split(self, n_samples: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_idx, test_idx)`` pairs covering all samples."""
        if n_samples < self.n_splits:
            raise FitError(
                f"cannot make {self.n_splits} folds from {n_samples} samples"
            )
        rng = np.random.default_rng(self.seed)
        perm = rng.permutation(n_samples)
        folds = np.array_split(perm, self.n_splits)
        for k in range(self.n_splits):
            test_idx = folds[k]
            train_idx = np.concatenate(
                [folds[j] for j in range(self.n_splits) if j != k]
            )
            yield train_idx, test_idx

    def cross_val_accuracy(self, model_factory, X: np.ndarray, y: np.ndarray) -> float:
        """Mean held-out accuracy of ``model_factory()`` over the folds."""
        X = np.asarray(X)
        y = np.asarray(y)
        scores = []
        for train_idx, test_idx in self.split(X.shape[0]):
            model = model_factory()
            model.fit(X[train_idx], y[train_idx])
            scores.append(model.score(X[test_idx], y[test_idx]))
        return float(np.mean(scores))
