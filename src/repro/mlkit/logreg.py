"""L2-regularized binary logistic regression.

This is the workhorse of the paper's analysis: samples are labeled
optimal/sub-optimal and a logistic classifier is fitted; the magnitudes of
its coefficients, weight-normalized, become the "influence" heat-map cells
of Figs. 2-4.

Two solvers are provided:

- ``"newton"`` (default) — iteratively reweighted least squares with a
  Levenberg-style damping fallback; converges in a handful of iterations on
  the standardized, moderately-sized designs the analysis produces,
- ``"gd"`` — plain batch gradient descent with backtracking line search;
  slower but simple, used in tests as an independent cross-check that both
  solvers reach the same optimum (the loss is strictly convex for l2 > 0).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError, FitError, NotFittedError

__all__ = ["LogisticRegression"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


class LogisticRegression:
    """Binary logistic regression minimizing

    ``mean(log-loss) + l2/(2 n) * ||w||²`` (intercept unpenalized).

    Parameters
    ----------
    l2:
        Ridge penalty strength (equivalent to scikit-learn's ``1/C``).
        Must be > 0 for the ``"newton"`` solver's Hessian to stay well
        conditioned on separable data.
    solver:
        ``"newton"`` or ``"gd"``.
    max_iter, tol:
        Iteration budget and gradient-norm convergence tolerance.
    """

    def __init__(
        self,
        l2: float = 1.0,
        solver: str = "newton",
        max_iter: int = 200,
        tol: float = 1e-8,
        fit_intercept: bool = True,
    ):
        if l2 < 0:
            raise FitError(f"l2 penalty must be >= 0, got {l2}")
        if solver not in ("newton", "gd"):
            raise FitError(f"unknown solver {solver!r}")
        self.l2 = l2
        self.solver = solver
        self.max_iter = max_iter
        self.tol = tol
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.n_iter_: int = 0
        self.converged_: bool = False

    # ------------------------------------------------------------------
    def _design(self, X: np.ndarray) -> np.ndarray:
        if self.fit_intercept:
            return np.hstack([X, np.ones((X.shape[0], 1))])
        return X

    def _penalty_vector(self, p_aug: int) -> np.ndarray:
        pen = np.full(p_aug, self.l2)
        if self.fit_intercept:
            pen[-1] = 0.0
        return pen

    def _loss_grad(
        self, w: np.ndarray, Xa: np.ndarray, y: np.ndarray, pen: np.ndarray
    ) -> tuple[float, np.ndarray, np.ndarray]:
        n = Xa.shape[0]
        z = Xa @ w
        p = _sigmoid(z)
        eps = 1e-12
        loss = -float(
            np.mean(y * np.log(p + eps) + (1 - y) * np.log(1 - p + eps))
        ) + 0.5 * float(pen @ (w * w)) / n
        grad = Xa.T @ (p - y) / n + pen * w / n
        return loss, grad, p

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        """Fit on (n_samples, n_features) design ``X`` and 0/1 labels ``y``."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2:
            raise FitError(f"expected 2-D design matrix, got shape {X.shape}")
        if y.shape != (X.shape[0],):
            raise FitError(
                f"labels shape {y.shape} does not match {X.shape[0]} samples"
            )
        uniq = np.unique(y)
        if not np.all(np.isin(uniq, [0.0, 1.0])):
            raise FitError(f"labels must be 0/1, got values {uniq}")
        if X.shape[0] == 0:
            raise FitError("cannot fit on zero samples")

        Xa = self._design(X)
        pen = self._penalty_vector(Xa.shape[1])
        w = np.zeros(Xa.shape[1])

        if uniq.shape[0] == 1:
            # Degenerate single-class fit: zero weights, intercept at the
            # logit of the (clipped) class prior — mirrors what a maximum
            # likelihood fit would run off to; keeps the pipeline total.
            prior = float(np.clip(y.mean(), 1e-6, 1 - 1e-6))
            if self.fit_intercept:
                w[-1] = np.log(prior / (1 - prior))
            self._store(w)
            self.converged_ = True
            return self

        if self.solver == "newton":
            self._fit_newton(w, Xa, y, pen)
        else:
            self._fit_gd(w, Xa, y, pen)
        return self

    def _store(self, w: np.ndarray) -> None:
        if self.fit_intercept:
            self.coef_ = w[:-1].copy()
            self.intercept_ = float(w[-1])
        else:
            self.coef_ = w.copy()
            self.intercept_ = 0.0

    def _fit_newton(
        self, w: np.ndarray, Xa: np.ndarray, y: np.ndarray, pen: np.ndarray
    ) -> None:
        n = Xa.shape[0]
        damping = 1e-8
        for it in range(1, self.max_iter + 1):
            loss, grad, p = self._loss_grad(w, Xa, y, pen)
            gnorm = float(np.linalg.norm(grad))
            if gnorm < self.tol:
                self.n_iter_ = it
                self.converged_ = True
                self._store(w)
                return
            r = p * (1 - p)
            H = (Xa.T * r) @ Xa / n + np.diag(pen / n)
            # Damped Newton: escalate damping until the step decreases loss.
            step_ok = False
            local_damping = damping
            for _ in range(30):
                try:
                    delta = np.linalg.solve(
                        H + local_damping * np.eye(H.shape[0]), grad
                    )
                except np.linalg.LinAlgError:
                    local_damping = max(local_damping * 10, 1e-10)
                    continue
                new_w = w - delta
                new_loss, _, _ = self._loss_grad(new_w, Xa, y, pen)
                if new_loss <= loss + 1e-12:
                    w = new_w
                    step_ok = True
                    break
                local_damping = max(local_damping * 10, 1e-10)
            if not step_ok:
                # Cannot improve further — accept current point as optimum.
                self.n_iter_ = it
                self.converged_ = gnorm < 1e-4
                self._store(w)
                return
        self.n_iter_ = self.max_iter
        _, grad, _ = self._loss_grad(w, Xa, y, pen)
        self.converged_ = float(np.linalg.norm(grad)) < max(self.tol, 1e-4)
        self._store(w)
        if not self.converged_:
            raise ConvergenceError(
                f"newton solver failed to converge in {self.max_iter} iterations "
                f"(grad norm {float(np.linalg.norm(grad)):.3g})"
            )

    def _fit_gd(
        self, w: np.ndarray, Xa: np.ndarray, y: np.ndarray, pen: np.ndarray
    ) -> None:
        lr = 1.0
        loss, grad, _ = self._loss_grad(w, Xa, y, pen)
        for it in range(1, self.max_iter + 1):
            gnorm = float(np.linalg.norm(grad))
            if gnorm < self.tol:
                self.n_iter_ = it
                self.converged_ = True
                self._store(w)
                return
            # Backtracking line search on the Armijo condition.
            step = lr
            for _ in range(50):
                new_w = w - step * grad
                new_loss, new_grad, _ = self._loss_grad(new_w, Xa, y, pen)
                if new_loss <= loss - 1e-4 * step * gnorm * gnorm:
                    break
                step *= 0.5
            else:
                self.n_iter_ = it
                self.converged_ = gnorm < 1e-3
                self._store(w)
                return
            w, loss, grad = new_w, new_loss, new_grad
            lr = min(step * 2.0, 1e3)
        self.n_iter_ = self.max_iter
        self.converged_ = float(np.linalg.norm(grad)) < max(self.tol, 1e-3)
        self._store(w)

    # ------------------------------------------------------------------
    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Linear scores ``X @ coef_ + intercept_``."""
        if self.coef_ is None:
            raise NotFittedError("LogisticRegression used before fit")
        X = np.asarray(X, dtype=float)
        return X @ self.coef_ + self.intercept_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """(n, 2) class probabilities ``[P(y=0), P(y=1)]``."""
        p1 = _sigmoid(self.decision_function(X))
        return np.stack([1.0 - p1, p1], axis=1)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """0/1 class predictions at the 0.5 threshold."""
        return (self.decision_function(X) >= 0.0).astype(np.int64)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy on ``(X, y)``."""
        y = np.asarray(y)
        return float(np.mean(self.predict(X) == y.astype(np.int64)))

    def normalized_importances(self) -> np.ndarray:
        """Weight-normalized absolute coefficients (the paper's influence).

        ``|coef| / sum(|coef|)``; an all-zero coefficient vector returns the
        uniform distribution so downstream heat maps stay well defined.
        """
        if self.coef_ is None:
            raise NotFittedError("LogisticRegression used before fit")
        mags = np.abs(self.coef_)
        total = mags.sum()
        if total == 0.0:
            return np.full(mags.shape[0], 1.0 / max(mags.shape[0], 1))
        return mags / total
