"""Ordinary least squares linear regression.

The paper first attempts a linear regression of runtime on the feature
vector and reports poor fits ("low confidence scores associated with poor
model fitting"), motivating the switch to classification.  We reproduce
that step: :class:`LinearRegression` exposes ``coef_``, ``intercept_`` and
an R² ``score`` exactly like scikit-learn's estimator.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FitError, NotFittedError
from repro.mlkit.metrics import r2_score

__all__ = ["LinearRegression"]


class LinearRegression:
    """OLS via lstsq (minimum-norm solution for rank-deficient designs).

    Parameters
    ----------
    fit_intercept:
        If true (default) an intercept column is handled implicitly by
        centering, so ``coef_`` excludes it and ``intercept_`` carries it.
    l2:
        Optional ridge penalty (not applied to the intercept).
    """

    def __init__(self, fit_intercept: bool = True, l2: float = 0.0):
        if l2 < 0:
            raise FitError(f"l2 penalty must be >= 0, got {l2}")
        self.fit_intercept = fit_intercept
        self.l2 = l2
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearRegression":
        """Fit to (n_samples, n_features) design ``X`` and targets ``y``."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2:
            raise FitError(f"expected 2-D design matrix, got shape {X.shape}")
        if y.ndim != 1 or y.shape[0] != X.shape[0]:
            raise FitError(
                f"targets shape {y.shape} does not match {X.shape[0]} samples"
            )
        if X.shape[0] == 0:
            raise FitError("cannot fit on zero samples")

        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = float(y.mean())
            Xc = X - x_mean
            yc = y - y_mean
        else:
            x_mean = np.zeros(X.shape[1])
            y_mean = 0.0
            Xc, yc = X, y

        if self.l2 > 0.0:
            n, p = Xc.shape
            aug_X = np.vstack([Xc, np.sqrt(self.l2) * np.eye(p)])
            aug_y = np.concatenate([yc, np.zeros(p)])
            beta, *_ = np.linalg.lstsq(aug_X, aug_y, rcond=None)
        else:
            beta, *_ = np.linalg.lstsq(Xc, yc, rcond=None)

        self.coef_ = beta
        self.intercept_ = y_mean - float(x_mean @ beta) if self.fit_intercept else 0.0
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted targets for ``X``."""
        if self.coef_ is None:
            raise NotFittedError("LinearRegression.predict before fit")
        X = np.asarray(X, dtype=float)
        return X @ self.coef_ + self.intercept_

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Coefficient of determination R² on ``(X, y)``."""
        return r2_score(np.asarray(y, dtype=float), self.predict(X))
