"""Typed columnar record storage: the block layer under the frame.

At production sweep scale the list-of-dicts record path dominates memory
and (de)serialization: every row repeats its keys, every cell is a boxed
Python object, and every hop (worker -> supervisor spool -> cache ->
table) re-serializes the same strings.  This module provides the packed
alternative the whole pipeline now moves:

- :class:`StringTable` — an interning table mapping each distinct string
  to a small integer code, so a million-row ``app`` column stores one
  ``"xsbench"`` plus a flat int array,
- :class:`ColumnBlock` — one typed column backed by :class:`array.array`
  (``q`` for int64, ``d`` for float64, interned codes for strings), with
  an optional fixed ``width`` for vector cells (a row's repeated-run
  runtimes) and a byte-level ``extend`` fast path,
- :class:`RecordBlock` — an ordered set of equal-length columns sharing
  one string table; the unit that sweep workers spool, the cache stores
  (format v5), and :meth:`repro.frame.Table.from_block` consumes.

Zero-copy boundaries: ``array.array`` pickles as its machine
representation (compact spool files), converts to NumPy via
:func:`numpy.frombuffer` without copying, and extends from a sibling
block via ``frombytes`` — one memcpy, no per-element boxing.  See
``docs/COLUMNAR.md`` for the layout and format notes.
"""

from __future__ import annotations

import array
from collections.abc import Iterable, Mapping, Sequence
from typing import Any

import numpy as np

from repro.errors import FrameError

__all__ = [
    "COLUMN_KINDS",
    "StringTable",
    "ColumnBlock",
    "RecordBlock",
    "infer_schema",
]

#: Column kind -> ``array.array`` typecode.  ``str`` columns store int64
#: interning codes; ``f8``/``i8`` store the values themselves.
COLUMN_KINDS: dict[str, str] = {"i8": "q", "f8": "d", "str": "q"}

#: Interning code for ``None`` in a ``str`` column (real codes are >= 0).
NONE_CODE = -1


class StringTable:
    """Bidirectional string <-> dense-int-code interning table.

    Codes are assigned in first-add order, so two blocks filled in the
    same record order build identical tables — the property the cache
    checksum and the differential parity check rely on.
    """

    __slots__ = ("_codes", "_strings")

    def __init__(self, strings: Iterable[str] = ()):
        self._strings: list[str] = []
        self._codes: dict[str, int] = {}
        for s in strings:
            self.add(s)

    def add(self, value: str) -> int:
        """Intern ``value``; returns its (new or existing) code."""
        code = self._codes.get(value)
        if code is None:
            if not isinstance(value, str):
                raise FrameError(
                    f"string table cannot intern {type(value).__name__}: "
                    f"{value!r}"
                )
            code = len(self._strings)
            self._codes[value] = code
            self._strings.append(value)
        return code

    def __getitem__(self, code: int) -> str:
        return self._strings[code]

    def __len__(self) -> int:
        return len(self._strings)

    def __contains__(self, value: str) -> bool:
        return value in self._codes

    def to_list(self) -> list[str]:
        """The strings in code order (the JSON payload representation)."""
        return list(self._strings)

    def lookup_array(self) -> np.ndarray:
        """Object array mapping code -> string, for vectorized gathers."""
        arr = np.empty(len(self._strings), dtype=object)
        arr[:] = self._strings
        return arr


def _typecode_for(kind: str) -> str:
    try:
        return COLUMN_KINDS[kind]
    except KeyError:
        raise FrameError(
            f"unknown column kind {kind!r}; have {sorted(COLUMN_KINDS)}"
        ) from None


class ColumnBlock:
    """One typed column of a :class:`RecordBlock`.

    Parameters
    ----------
    name:
        Column name.
    kind:
        ``"i8"`` (int64), ``"f8"`` (float64) or ``"str"`` (interned).
    strings:
        The owning block's shared :class:`StringTable` (``str`` columns
        only).
    width:
        Cells per row; ``width > 1`` stores fixed-size vectors (e.g. the
        per-repetition runtimes) flattened row-major.
    """

    __slots__ = ("name", "kind", "width", "data", "strings")

    def __init__(self, name: str, kind: str,
                 strings: StringTable | None = None, width: int = 1):
        if width < 1:
            raise FrameError(f"column {name!r}: width must be >= 1")
        if kind == "str" and strings is None:
            raise FrameError(f"str column {name!r} needs a string table")
        self.name = name
        self.kind = kind
        self.width = width
        self.data = array.array(_typecode_for(kind))
        self.strings = strings if kind == "str" else None

    def __len__(self) -> int:
        return len(self.data) // self.width

    def _encode(self, value: Any) -> Any:
        if self.kind == "str":
            if value is None:
                return NONE_CODE
            return self.strings.add(value)
        if self.kind == "i8":
            return int(value)
        return float(value)

    def _decode(self, raw: Any) -> Any:
        if self.kind == "str":
            return None if raw == NONE_CODE else self.strings[raw]
        return raw

    def append(self, value: Any) -> None:
        """Append one cell (a ``width``-sized sequence when width > 1)."""
        if self.width == 1:
            self.data.append(self._encode(value))
        else:
            if len(value) != self.width:
                raise FrameError(
                    f"column {self.name!r}: cell has {len(value)} "
                    f"elements, width is {self.width}"
                )
            self.data.extend(self._encode(v) for v in value)

    def cell(self, i: int) -> Any:
        """Row ``i``'s cell (a tuple when width > 1)."""
        if self.width == 1:
            return self._decode(self.data[i])
        off = i * self.width
        return tuple(
            self._decode(v) for v in self.data[off:off + self.width]
        )

    def extend_cells(self, values: Iterable[Any]) -> None:
        """Append many cells with one C-level ``array.extend`` pass.

        The bulk counterpart of :meth:`append`: callers that already
        hold a whole column of cells (the sweep batch packer) skip the
        per-cell method dispatch.  Numeric cells must already be the
        column's type (``array.array`` coerces int -> float but rejects
        lossy conversions); width > 1 cells are width-sized sequences.
        On a bad cell the column is rolled back to its prior length.
        """
        start = len(self.data)
        try:
            if self.kind == "str":
                add = self.strings.add
                self.data.extend(
                    NONE_CODE if v is None else add(v) for v in values
                )
            elif self.width == 1:
                self.data.extend(values)
            else:
                self.data.extend(self._flat_cells(values))
        except FrameError:
            del self.data[start:]
            raise
        except TypeError as exc:
            del self.data[start:]
            raise FrameError(
                f"column {self.name!r}: cannot bulk-append cells: {exc}"
            ) from exc

    def _flat_cells(self, values: Iterable[Any]):
        for v in values:
            if len(v) != self.width:
                raise FrameError(
                    f"column {self.name!r}: cell has {len(v)} "
                    f"elements, width is {self.width}"
                )
            yield from v

    def extend_block(self, other: "ColumnBlock",
                     code_map: Sequence[int] | None = None) -> None:
        """Append ``other``'s cells: one ``frombytes`` memcpy when the
        string codes need no remapping, else a vectorized gather."""
        if (other.kind, other.width) != (self.kind, self.width):
            raise FrameError(
                f"column {self.name!r}: cannot extend "
                f"{self.kind}/w{self.width} from "
                f"{other.kind}/w{other.width}"
            )
        if self.kind == "str" and code_map is not None:
            codes = np.frombuffer(other.data, dtype=np.int64)
            remap = np.asarray(code_map, dtype=np.int64)
            # NONE_CODE survives remapping untouched.
            out = np.where(codes >= 0, remap[np.maximum(codes, 0)], codes)
            self.data.frombytes(out.tobytes())
        else:
            self.data.frombytes(other.data.tobytes())

    def to_numpy(self) -> np.ndarray:
        """The column as a NumPy array (rows x width when width > 1).

        Numeric columns are zero-copy views over the ``array.array``
        buffer; ``str`` columns gather through the interning table into
        an object array (matching :class:`repro.frame.Table`'s dtype
        conventions).  Treat the result as read-only.
        """
        raw = np.frombuffer(self.data, dtype=np.int64 if
                            self.kind != "f8" else np.float64)
        if self.kind == "str":
            lookup = self.strings.lookup_array()
            out = np.empty(len(raw), dtype=object)
            valid = raw >= 0
            out[valid] = lookup[raw[valid]]
            out[~valid] = None
        else:
            out = raw
        if self.width > 1:
            out = out.reshape(-1, self.width)
        return out

    def payload_data(self) -> list:
        """The raw cells as a JSON-safe flat list (codes for strings)."""
        return self.data.tolist()


def infer_schema(record: Mapping[str, Any]) -> dict[str, tuple[str, int]]:
    """Schema (name -> (kind, width)) from one exemplar record.

    ``bool`` is deliberately unsupported (it would round-trip as int);
    mixed-type columns belong on the generic dict path.
    """
    schema: dict[str, tuple[str, int]] = {}
    for name, value in record.items():
        if isinstance(value, str) or value is None:
            schema[name] = ("str", 1)
        elif isinstance(value, bool):
            raise FrameError(f"column {name!r}: bool cells not supported")
        elif isinstance(value, int):
            schema[name] = ("i8", 1)
        elif isinstance(value, float):
            schema[name] = ("f8", 1)
        elif isinstance(value, (tuple, list)) and value and all(
            isinstance(v, float) for v in value
        ):
            schema[name] = ("f8", len(value))
        else:
            raise FrameError(
                f"column {name!r}: cannot infer a typed column from "
                f"{type(value).__name__} cell {value!r}"
            )
    return schema


class RecordBlock:
    """Equal-length typed columns sharing one string table.

    The pipeline's packed record batch: build with :meth:`append` /
    :meth:`from_records`, combine with :meth:`extend`, ship as a payload
    dict (:meth:`to_payload` / :meth:`from_payload`) or hand to
    :meth:`repro.frame.Table.from_block`.
    """

    def __init__(self, schema: Mapping[str, tuple[str, int] | str]):
        self.strings = StringTable()
        self.columns: dict[str, ColumnBlock] = {}
        for name, spec in schema.items():
            kind, width = (spec, 1) if isinstance(spec, str) else spec
            self.columns[str(name)] = ColumnBlock(
                str(name), kind, strings=self.strings, width=width
            )
        if not self.columns:
            raise FrameError("a RecordBlock needs at least one column")

    @property
    def schema(self) -> dict[str, tuple[str, int]]:
        """Normalized schema: column name -> ``(kind, width)``."""
        return {c.name: (c.kind, c.width) for c in self.columns.values()}

    @property
    def column_names(self) -> list[str]:
        """Column names in schema order."""
        return list(self.columns)

    def __len__(self) -> int:
        return len(next(iter(self.columns.values())))

    def __repr__(self) -> str:
        return (f"RecordBlock({len(self)} rows x {len(self.columns)} cols, "
                f"{len(self.strings)} interned strings)")

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def append(self, record: Mapping[str, Any]) -> None:
        """Append one record; keys must match the schema exactly."""
        if len(record) != len(self.columns):
            raise FrameError(
                f"record has {len(record)} fields, schema has "
                f"{len(self.columns)}"
            )
        for name, col in self.columns.items():
            try:
                col.append(record[name])
            except KeyError:
                raise FrameError(
                    f"record missing column {name!r}"
                ) from None

    @classmethod
    def from_records(
        cls,
        records: Sequence[Mapping[str, Any]],
        schema: Mapping[str, tuple[str, int] | str] | None = None,
    ) -> "RecordBlock":
        """Pack dict records (schema inferred from the first record)."""
        if schema is None:
            if not records:
                raise FrameError(
                    "cannot infer a schema from zero records; pass one"
                )
            schema = infer_schema(records[0])
        block = cls(schema)
        for rec in records:
            block.append(rec)
        return block

    def extend(self, other: "RecordBlock") -> None:
        """Append all of ``other``'s rows (schemas must match).

        Numeric columns extend with one memcpy each.  String columns
        remap ``other``'s codes through a merged table — also a single
        vectorized gather, and skipped entirely when ``other`` shares
        this block's table object (the same-producer fast path).
        """
        if other.schema != self.schema:
            raise FrameError(
                f"cannot extend: schema mismatch ({self.schema} vs "
                f"{other.schema})"
            )
        code_map: list[int] | None = None
        if other.strings is not self.strings:
            code_map = [self.strings.add(s) for s in other.strings.to_list()]
        for name, col in self.columns.items():
            col.extend_block(
                other.columns[name],
                code_map=code_map if col.kind == "str" else None,
            )

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def record(self, i: int) -> dict[str, Any]:
        """Row ``i`` as a plain dict."""
        return {name: col.cell(i) for name, col in self.columns.items()}

    def to_records(self) -> list[dict[str, Any]]:
        """All rows as dicts (the unpacked representation)."""
        return [self.record(i) for i in range(len(self))]

    def to_arrays(self) -> dict[str, np.ndarray]:
        """Every column as a NumPy array (see
        :meth:`ColumnBlock.to_numpy`)."""
        return {name: col.to_numpy() for name, col in self.columns.items()}

    def nbytes(self) -> int:
        """Packed payload size: column buffers plus the interned strings."""
        return sum(
            c.data.itemsize * len(c.data) for c in self.columns.values()
        ) + sum(len(s) for s in self.strings.to_list())

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """A JSON-safe dict: schema, interned strings, flat cell lists.

        Floats serialize via ``repr`` under :func:`json.dumps`, so a
        payload round-trips bit-identically — the property cache format
        v5's content checksum depends on.
        """
        return {
            "n": len(self),
            "strings": self.strings.to_list(),
            "columns": [
                {
                    "name": c.name,
                    "kind": c.kind,
                    "width": c.width,
                    "data": c.payload_data(),
                }
                for c in self.columns.values()
            ],
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "RecordBlock":
        """Rebuild a block from :meth:`to_payload` output.

        Raises :class:`~repro.errors.FrameError` on any malformed
        payload — the cache maps that to quarantine.
        """
        try:
            strings = payload["strings"]
            columns = payload["columns"]
            n = payload["n"]
            if not isinstance(strings, list) or not isinstance(columns, list):
                raise FrameError("columnar payload: malformed fields")
            schema = {
                c["name"]: (c["kind"], c["width"]) for c in columns
            }
        except (KeyError, TypeError) as exc:
            raise FrameError(f"columnar payload: {exc!r}") from exc
        block = cls(schema)
        for s in strings:
            block.strings.add(s)
        if len(block.strings) != len(strings):
            raise FrameError("columnar payload: duplicate interned string")
        for spec in columns:
            col = block.columns[spec["name"]]
            try:
                col.data.fromlist(spec["data"])
            except (TypeError, OverflowError) as exc:
                raise FrameError(
                    f"columnar payload: column {spec['name']!r}: {exc}"
                ) from exc
            if col.kind == "str":
                codes = np.frombuffer(col.data, dtype=np.int64)
                if len(codes) and (
                    int(codes.max(initial=NONE_CODE)) >= len(block.strings)
                    or int(codes.min(initial=0)) < NONE_CODE
                ):
                    raise FrameError(
                        f"columnar payload: column {spec['name']!r} has "
                        "out-of-range string codes"
                    )
            if len(col) != n:
                raise FrameError(
                    f"columnar payload: column {spec['name']!r} has "
                    f"{len(col)} rows, header says {n}"
                )
        return block
