"""Minimal columnar dataframe substrate (pandas substitute).

The paper's analysis pipeline uses Pandas for cleaning, aggregation and
normalization.  This package provides the small relational core the
reproduction actually needs:

- :class:`~repro.frame.table.Table` — an immutable-by-convention columnar
  table backed by NumPy arrays with ``filter``/``sort_by``/``group_by``/
  ``join``/``pivot`` and friends,
- :func:`~repro.frame.io.read_csv` / :func:`~repro.frame.io.write_csv` —
  type-inferring CSV round-tripping,
- :mod:`~repro.frame.ops` — aggregation helpers shared by ``Table`` methods,
- :mod:`~repro.frame.columns` — typed columnar record blocks
  (:class:`~repro.frame.columns.RecordBlock`) with string interning and
  zero-copy extend: the packed form sweep batches travel and persist in
  (see ``docs/COLUMNAR.md``).
"""

from repro.frame.table import Table
from repro.frame.io import read_csv, write_csv
from repro.frame.ops import AGGREGATORS, aggregate_column, concat_tables
from repro.frame.columns import ColumnBlock, RecordBlock, StringTable

__all__ = [
    "Table",
    "read_csv",
    "write_csv",
    "AGGREGATORS",
    "aggregate_column",
    "concat_tables",
    "ColumnBlock",
    "RecordBlock",
    "StringTable",
]
