"""Columnar table backed by NumPy arrays.

:class:`Table` stores each column as a 1-D :class:`numpy.ndarray`.  Numeric
columns use native dtypes; string / mixed columns use ``object`` arrays.
All transforming methods return *new* tables; the underlying arrays may be
shared (views) where that is safe, so treat tables as immutable.

The design intentionally mirrors the subset of the pandas API the paper's
analysis scripts rely on (``groupby`` + aggregate, boolean filtering,
sorting, merging, pivoting) without attempting to be a general dataframe.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Mapping, Sequence
from typing import Any

import numpy as np

from repro.errors import ColumnError, LengthMismatch
from repro.frame import ops
from repro.frame.columns import RecordBlock

__all__ = ["Table"]


def _as_column(values: Any) -> np.ndarray:
    """Coerce ``values`` into a 1-D column array.

    Numeric sequences become native numeric arrays; anything containing
    strings or mixed types becomes an ``object`` array so we never silently
    stringify numbers the way ``np.array(["a", 1])`` would.
    """
    if isinstance(values, np.ndarray):
        arr = values
    else:
        values = list(values)
        try:
            arr = np.asarray(values)
        except (ValueError, TypeError):  # ragged input
            arr = np.empty(len(values), dtype=object)
            arr[:] = values
    if arr.ndim != 1:
        raise LengthMismatch(f"columns must be 1-D, got shape {arr.shape}")
    if arr.dtype.kind in ("U", "S"):
        # Keep strings as object arrays: uniform behaviour for group keys and
        # no silent truncation when longer strings are appended later.
        arr = arr.astype(object)
    return arr


def _nan_for_missing(values: list) -> Any:
    """Turn a numeric-except-``None`` record column into a float column.

    ``None`` placeholders (missing record keys, unmatched join rows)
    become ``nan`` so the column keeps a float dtype instead of silently
    degrading to ``object``.  Columns with any non-numeric value — or no
    numeric value at all — are returned untouched.
    """
    has_none = False
    has_number = False
    for v in values:
        if v is None:
            has_none = True
        elif isinstance(v, (int, float, np.integer, np.floating)) and not isinstance(
            v, (bool, np.bool_)
        ):
            has_number = True
        else:
            return values
    if not (has_none and has_number):
        return values
    return np.asarray(
        [np.nan if v is None else float(v) for v in values], dtype=float
    )


def _group_key(row_values: tuple) -> tuple:
    """Normalize a tuple of cell values into a hashable group key."""
    out = []
    for v in row_values:
        if isinstance(v, (np.integer,)):
            out.append(int(v))
        elif isinstance(v, (np.floating,)):
            out.append(float(v))
        elif isinstance(v, np.str_):
            out.append(str(v))
        else:
            out.append(v)
    return tuple(out)


def _factorize(arr: np.ndarray) -> tuple[np.ndarray, int] | None:
    """First-appearance integer codes for a key column.

    Returns ``(codes, n_distinct)`` where equal cells share a code and
    codes are numbered by order of first appearance, or ``None`` when the
    column cannot be factorized without changing key semantics (floats
    containing ``nan``, object columns holding anything but ``str``).
    Callers fall back to the hash-based python path, which defines the
    reference behaviour.
    """
    if arr.dtype == object:
        if not all(type(v) is str for v in arr):
            return None
    elif arr.dtype.kind == "f":
        if np.isnan(arr).any():
            return None
    elif arr.dtype.kind not in ("i", "u", "b", "U", "S"):
        return None
    uniques, inverse = np.unique(arr, return_inverse=True)
    inverse = inverse.reshape(-1)
    k = int(uniques.shape[0])
    n = arr.shape[0]
    # np.unique numbers codes in sorted order; renumber by first
    # appearance so downstream group order matches the insertion-ordered
    # dict of the python path.
    first_pos = np.full(k, n, dtype=np.int64)
    np.minimum.at(first_pos, inverse, np.arange(n, dtype=np.int64))
    rank = np.empty(k, dtype=np.int64)
    rank[np.argsort(first_pos, kind="stable")] = np.arange(k, dtype=np.int64)
    return rank[inverse], k


def _composite_codes(cols: Sequence[np.ndarray]) -> np.ndarray | None:
    """First-appearance codes over row *tuples* of the key columns.

    ``None`` when any column is not safely factorizable — distinct tuples
    get distinct codes, equal tuples share one, and codes are numbered by
    the tuple's first appearance.
    """
    if not cols:
        return None
    combined: np.ndarray | None = None
    cardinality = 1
    for col in cols:
        res = _factorize(col)
        if res is None:
            return None
        codes, k = res
        if combined is None:
            combined, cardinality = codes, max(k, 1)
        else:
            if cardinality * max(k, 1) > 2**62:
                return None  # composite code would overflow int64
            combined = combined * k + codes
            cardinality *= max(k, 1)
    if len(cols) == 1:
        return combined
    refactored = _factorize(combined)  # restore first-appearance numbering
    return None if refactored is None else refactored[0]


class Table:
    """A columnar table: ordered mapping of column name -> 1-D array.

    Parameters
    ----------
    columns:
        Mapping of column name to array-like.  All columns must share one
        length.

    Examples
    --------
    >>> t = Table({"app": ["cg", "cg", "bt"], "runtime": [1.0, 1.2, 3.0]})
    >>> t.num_rows
    3
    >>> t.filter(t["runtime"] > 1.1).column("app").tolist()
    ['cg', 'bt']
    """

    def __init__(self, columns: Mapping[str, Any] | None = None):
        self._columns: dict[str, np.ndarray] = {}
        self._length = 0
        if columns:
            first = True
            for name, values in columns.items():
                arr = _as_column(values)
                if first:
                    self._length = arr.shape[0]
                    first = False
                elif arr.shape[0] != self._length:
                    raise LengthMismatch(
                        f"column {name!r} has length {arr.shape[0]}, "
                        f"expected {self._length}"
                    )
                self._columns[str(name)] = arr

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_records(cls, records: Iterable[Mapping[str, Any]]) -> "Table":
        """Build a table from an iterable of dict rows.

        Missing keys become ``None`` in object columns / ``nan`` in float
        columns: a column whose present values are all numeric is coerced
        to float64 with ``nan`` filling the gaps, so it stays usable in
        arithmetic and round-trips through CSV.  Column order follows
        first appearance.
        """
        records = list(records)
        names: list[str] = []
        seen: set[str] = set()
        for rec in records:
            for key in rec:
                if key not in seen:
                    seen.add(key)
                    names.append(key)
        cols: dict[str, list] = {n: [] for n in names}
        for rec in records:
            for n in names:
                cols[n].append(rec.get(n))
        return cls({n: _nan_for_missing(cols[n]) for n in names})

    @classmethod
    def from_block(
        cls,
        block: RecordBlock,
        vector_names: Mapping[str, Sequence[str]] | None = None,
    ) -> "Table":
        """Build a table directly from a packed :class:`RecordBlock`.

        Numeric columns are zero-copy views over the block's machine
        buffers; string columns decode through the block's interning
        table into ``object`` arrays (``None`` for null codes).  A vector
        column of width ``w > 1`` expands into ``w`` scalar columns named
        per ``vector_names[name]`` (default ``f"{name}_{j}"``), matching
        what :meth:`from_records` infers from exploded rows.
        """
        vector_names = dict(vector_names or {})
        cols: dict[str, np.ndarray] = {}
        for name, arr in block.to_arrays().items():
            if arr.ndim == 1:
                if name in vector_names:  # width-1 vector column
                    arr = arr.reshape(-1, 1)
                else:
                    cols[name] = arr
                    continue
            sub = vector_names.get(name) or [
                f"{name}_{j}" for j in range(arr.shape[1])
            ]
            if len(sub) != arr.shape[1]:
                raise ColumnError(
                    f"vector column {name!r} has width {arr.shape[1]}, "
                    f"got {len(sub)} names"
                )
            for j, sub_name in enumerate(sub):
                cols[str(sub_name)] = arr[:, j]
        return cls(cols)

    @classmethod
    def empty(cls, names: Sequence[str]) -> "Table":
        """An empty table with the given column names."""
        return cls({n: np.empty(0, dtype=object) for n in names})

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def column_names(self) -> list[str]:
        """Column names in insertion order."""
        return list(self._columns)

    @property
    def num_rows(self) -> int:
        """Number of rows."""
        return self._length

    @property
    def num_columns(self) -> int:
        """Number of columns."""
        return len(self._columns)

    @property
    def shape(self) -> tuple[int, int]:
        """``(num_rows, num_columns)``."""
        return (self._length, len(self._columns))

    def __len__(self) -> int:
        return self._length

    def __contains__(self, name: object) -> bool:
        return name in self._columns

    def column(self, name: str) -> np.ndarray:
        """The array backing column ``name`` (do not mutate)."""
        try:
            return self._columns[name]
        except KeyError:
            raise ColumnError(
                f"no column {name!r}; have {self.column_names}"
            ) from None

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name)

    def row(self, index: int) -> dict[str, Any]:
        """Row ``index`` as a plain dict of Python scalars."""
        if not -self._length <= index < self._length:
            raise IndexError(f"row {index} out of range for {self._length} rows")
        out: dict[str, Any] = {}
        for name, arr in self._columns.items():
            v = arr[index]
            if isinstance(v, np.generic):
                v = v.item()
            out[name] = v
        return out

    def iter_rows(self) -> Iterator[dict[str, Any]]:
        """Iterate over rows as dicts (slow path — prefer column ops)."""
        for i in range(self._length):
            yield self.row(i)

    def to_records(self) -> list[dict[str, Any]]:
        """All rows as a list of dicts (column-at-a-time fast path)."""
        names = self.column_names
        lists = []
        for arr in self._columns.values():
            if arr.dtype == object:
                lists.append(
                    [v.item() if isinstance(v, np.generic) else v for v in arr]
                )
            else:
                lists.append(arr.tolist())
        return [dict(zip(names, row)) for row in zip(*lists)]

    def to_dict(self) -> dict[str, list]:
        """Columns as plain Python lists."""
        return {n: [x.item() if isinstance(x, np.generic) else x for x in arr]
                for n, arr in self._columns.items()}

    def __repr__(self) -> str:
        return f"Table({self._length} rows x {len(self._columns)} cols: {self.column_names})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        if self.column_names != other.column_names or len(self) != len(other):
            return False
        for name in self.column_names:
            a, b = self._columns[name], other._columns[name]
            if a.dtype.kind == "f" and b.dtype.kind == "f":
                if not np.allclose(a, b, equal_nan=True):
                    return False
            elif not all(x == y for x, y in zip(a, b)):
                return False
        return True

    # ------------------------------------------------------------------
    # Column-level transforms
    # ------------------------------------------------------------------
    def with_column(self, name: str, values: Any) -> "Table":
        """A new table with column ``name`` added or replaced."""
        arr = _as_column(values)
        if self._columns and arr.shape[0] != self._length:
            raise LengthMismatch(
                f"new column {name!r} has length {arr.shape[0]}, "
                f"table has {self._length} rows"
            )
        cols = dict(self._columns)
        cols[name] = arr
        t = Table.__new__(Table)
        t._columns = cols
        t._length = arr.shape[0] if not self._columns else self._length
        return t

    def without_columns(self, names: Iterable[str]) -> "Table":
        """A new table with the given columns removed."""
        drop = set(names)
        missing = drop - set(self._columns)
        if missing:
            raise ColumnError(f"cannot drop missing columns {sorted(missing)}")
        t = Table.__new__(Table)
        t._columns = {n: a for n, a in self._columns.items() if n not in drop}
        t._length = self._length
        return t

    def select(self, names: Sequence[str]) -> "Table":
        """A new table with only the given columns, in the given order."""
        t = Table.__new__(Table)
        t._columns = {n: self.column(n) for n in names}
        t._length = self._length
        return t

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        """A new table with columns renamed per ``mapping``."""
        missing = set(mapping) - set(self._columns)
        if missing:
            raise ColumnError(f"cannot rename missing columns {sorted(missing)}")
        t = Table.__new__(Table)
        t._columns = {mapping.get(n, n): a for n, a in self._columns.items()}
        t._length = self._length
        if len(t._columns) != len(self._columns):
            raise ColumnError("rename would collapse two columns into one")
        return t

    def map_column(self, name: str, fn: Callable[[Any], Any]) -> "Table":
        """A new table with ``fn`` applied elementwise to column ``name``."""
        arr = self.column(name)
        return self.with_column(name, [fn(v) for v in arr])

    # ------------------------------------------------------------------
    # Row-level transforms
    # ------------------------------------------------------------------
    def filter(self, mask: Any) -> "Table":
        """Rows where boolean ``mask`` is true."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self._length,):
            raise LengthMismatch(
                f"mask has shape {mask.shape}, expected ({self._length},)"
            )
        return self.take(np.nonzero(mask)[0])

    def take(self, indices: Any) -> "Table":
        """Rows at the given integer positions, in that order."""
        indices = np.asarray(indices, dtype=np.intp)
        t = Table.__new__(Table)
        t._columns = {n: a[indices] for n, a in self._columns.items()}
        t._length = int(indices.shape[0])
        return t

    def head(self, n: int = 5) -> "Table":
        """First ``n`` rows."""
        return self.take(np.arange(min(n, self._length)))

    def sort_by(self, names: str | Sequence[str], descending: bool = False) -> "Table":
        """Stable sort by one or more columns.

        Rows with equal keys keep their original relative order in *both*
        directions: ``descending=True`` inverts the keys themselves
        (negated numerics, rank-inverted strings) rather than reversing
        the sorted row order, which would also flip tied rows.  ``nan``
        keys sort last in both directions.
        """
        if isinstance(names, str):
            names = [names]
        # np.lexsort sorts by the *last* key primarily, so feed reversed.
        keys = []
        for n in reversed(list(names)):
            col = self.column(n)
            if col.dtype == object:
                col = np.asarray([str(v) for v in col])
            if descending:
                if col.dtype.kind in ("i", "f"):
                    col = -col
                else:
                    uniques, inverse = np.unique(col, return_inverse=True)
                    col = -inverse.reshape(-1)
            keys.append(col)
        order = np.lexsort(keys) if keys else np.arange(self._length)
        return self.take(order)

    def unique(self, name: str) -> list:
        """Distinct values of a column, in order of first appearance."""
        seen: dict[Any, None] = {}
        for v in self.column(name):
            if isinstance(v, np.generic):
                v = v.item()
            seen.setdefault(v, None)
        return list(seen)

    # ------------------------------------------------------------------
    # Group-by / aggregation
    # ------------------------------------------------------------------
    def group_by(self, names: str | Sequence[str]) -> list[tuple[tuple, "Table"]]:
        """Group rows by one or more key columns.

        Returns ``[(key_tuple, subtable), ...]`` with groups ordered by first
        appearance.  ``key_tuple`` always has one element per key column even
        for a single key.

        Runs a vectorized factorize-and-gather fast path; key columns it
        cannot factorize safely (``nan`` floats, non-string object cells)
        fall back to :meth:`_group_by_python`, which defines the
        reference semantics.
        """
        if isinstance(names, str):
            names = [names]
        names = list(names)
        cols = [self.column(n) for n in names]
        codes = _composite_codes(cols)
        if codes is None:
            return self._group_by_python(names)
        if self._length == 0:
            return []
        order = np.argsort(codes, kind="stable")
        boundaries = np.nonzero(np.diff(codes[order]))[0] + 1
        out: list[tuple[tuple, Table]] = []
        for idx in np.split(order, boundaries):
            first = int(idx[0])  # rows within a group keep table order
            key = _group_key(tuple(c[first] for c in cols))
            out.append((key, self.take(idx)))
        return out

    def _group_by_python(
        self, names: Sequence[str]
    ) -> list[tuple[tuple, "Table"]]:
        """Hash-based reference implementation of :meth:`group_by`."""
        cols = [self.column(n) for n in names]
        groups: dict[tuple, list[int]] = {}
        for i in range(self._length):
            key = _group_key(tuple(c[i] for c in cols))
            groups.setdefault(key, []).append(i)
        return [(key, self.take(np.asarray(idx))) for key, idx in groups.items()]

    def aggregate(
        self,
        by: str | Sequence[str],
        aggs: Mapping[str, str | Callable[[np.ndarray], Any]],
    ) -> "Table":
        """Group by ``by`` and aggregate value columns.

        ``aggs`` maps column name -> aggregator, either one of the names in
        :data:`repro.frame.ops.AGGREGATORS` (``"mean"``, ``"min"``, ...) or a
        callable taking the group's column array.  The output contains the
        key columns followed by one column per aggregation, named
        ``f"{col}_{agg}"`` for string aggregators and ``col`` for callables.
        """
        if isinstance(by, str):
            by = [by]
        groups = self.group_by(by)
        records: list[dict[str, Any]] = []
        for key, sub in groups:
            rec: dict[str, Any] = dict(zip(by, key))
            for col_name, agg in aggs.items():
                if isinstance(agg, str):
                    out_name = f"{col_name}_{agg}"
                    value = ops.aggregate_column(sub.column(col_name), agg)
                else:
                    out_name = col_name
                    value = agg(sub.column(col_name))
                if isinstance(value, np.generic):
                    value = value.item()
                rec[out_name] = value
            records.append(rec)
        return Table.from_records(records)

    # ------------------------------------------------------------------
    # Relational
    # ------------------------------------------------------------------
    def join(self, other: "Table", on: str | Sequence[str], how: str = "inner") -> "Table":
        """Join with ``other`` on equal key columns.

        Supports ``how="inner"`` and ``how="left"``.  Non-key columns present
        in both tables take the right table's values under a ``_right``
        suffix.  Left join fills unmatched right columns with ``None``
        (``nan`` when the column is otherwise numeric).

        Runs a vectorized factorize-and-gather fast path; key columns it
        cannot factorize safely fall back to :meth:`_join_python`, which
        defines the reference semantics.
        """
        if how not in ("inner", "left"):
            raise ValueError(f"unsupported join type {how!r}")
        if isinstance(on, str):
            on = [on]
        on = list(on)
        fast = self._join_fast(other, on, how)
        if fast is not None:
            return fast
        return self._join_python(other, on, how)

    def _join_fast(
        self, other: "Table", on: list[str], how: str
    ) -> "Table | None":
        """Vectorized factorize-and-gather join.

        Returns ``None`` when any key column cannot be factorized safely
        (the python path then defines the semantics).
        """
        n_left, n_right = self._length, other.num_rows
        merged_keys = []
        for name in on:
            lk, rk = self.column(name), other.column(name)
            if lk.dtype == object or rk.dtype == object:
                both = np.empty(n_left + n_right, dtype=object)
                both[:n_left] = lk
                both[n_left:] = rk
            else:
                both = np.concatenate([lk, rk])
            merged_keys.append(both)
        codes = _composite_codes(merged_keys)
        if codes is None:
            return None
        lcode, rcode = codes[:n_left], codes[n_left:]
        k = int(codes.max()) + 1 if codes.shape[0] else 0

        # Right rows grouped by key code, original order within a group.
        rorder = np.argsort(rcode, kind="stable")
        rcount = np.bincount(rcode, minlength=k)
        rstart = np.zeros(k, dtype=np.int64)
        if k:
            rstart[1:] = np.cumsum(rcount)[:-1]

        matches = rcount[lcode] if k else np.zeros(n_left, dtype=np.int64)
        out_count = np.maximum(matches, 1) if how == "left" else matches
        total = int(out_count.sum())
        right_value_cols = [n for n in other.column_names if n not in on]
        out_right_names = {
            n: (f"{n}_right" if n in self._columns else n)
            for n in right_value_cols
        }
        if total == 0:
            names = self.column_names + [
                out_right_names[n] for n in right_value_cols
            ]
            return Table.empty(names)

        # Expand each left row into its run of output rows, then walk the
        # matching right-group slice with a per-run offset ramp.
        left_idx = np.repeat(np.arange(n_left, dtype=np.int64), out_count)
        run_starts = np.cumsum(out_count) - out_count
        offsets = (
            np.arange(total, dtype=np.int64) - np.repeat(run_starts, out_count)
        )
        matched = np.repeat(matches > 0, out_count)
        right_row = np.full(total, -1, dtype=np.int64)
        pos = (np.repeat(rstart[lcode], out_count) + offsets)[matched]
        right_row[matched] = rorder[pos]

        cols: dict[str, Any] = {
            name: arr[left_idx] for name, arr in self._columns.items()
        }
        all_matched = bool(matched.all())
        for name in right_value_cols:
            arr = other.column(name)
            if all_matched:
                cols[out_right_names[name]] = arr[right_row]
                continue
            if len(arr) == 0:  # empty right side: every row is unmatched
                cols[out_right_names[name]] = _nan_for_missing(
                    [None] * total
                )
                continue
            gathered = arr[np.maximum(right_row, 0)]
            values = [
                None if j < 0 else v
                for j, v in zip(right_row.tolist(), gathered)
            ]
            cols[out_right_names[name]] = _nan_for_missing(values)
        return Table(cols)

    def _join_python(
        self, other: "Table", on: list[str], how: str
    ) -> "Table":
        """Hash-based reference implementation of :meth:`join`."""
        right_index: dict[tuple, list[int]] = {}
        rcols = [other.column(n) for n in on]
        for j in range(other.num_rows):
            key = _group_key(tuple(c[j] for c in rcols))
            right_index.setdefault(key, []).append(j)

        right_value_cols = [n for n in other.column_names if n not in on]
        out_right_names = {
            n: (f"{n}_right" if n in self._columns else n) for n in right_value_cols
        }

        lcols = [self.column(n) for n in on]
        records: list[dict[str, Any]] = []
        for i in range(self._length):
            key = _group_key(tuple(c[i] for c in lcols))
            matches = right_index.get(key)
            if matches is None:
                if how == "left":
                    rec = self.row(i)
                    for n in right_value_cols:
                        rec[out_right_names[n]] = None
                    records.append(rec)
                continue
            for j in matches:
                rec = self.row(i)
                rrow = other.row(j)
                for n in right_value_cols:
                    rec[out_right_names[n]] = rrow[n]
                records.append(rec)
        if not records:
            names = self.column_names + [out_right_names[n] for n in right_value_cols]
            return Table.empty(names)
        return Table.from_records(records)

    def pivot(self, index: str, columns: str, values: str,
              agg: str = "mean", fill: Any = None) -> "Table":
        """Spread ``columns``'s values into columns, aggregated by ``agg``.

        The result has one row per distinct ``index`` value, a first column
        named after ``index``, and one column per distinct value of
        ``columns`` holding the aggregated ``values``.
        """
        row_keys = self.unique(index)
        col_keys = self.unique(columns)
        cells: dict[tuple, list] = {}
        idx_col, col_col, val_col = (
            self.column(index), self.column(columns), self.column(values))
        for i in range(self._length):
            key = _group_key((idx_col[i], col_col[i]))
            cells.setdefault(key, []).append(val_col[i])
        out: dict[str, list] = {index: row_keys}
        for ck in col_keys:
            column = []
            for rk in row_keys:
                bucket = cells.get(_group_key((rk, ck)))
                if bucket is None:
                    column.append(fill)
                else:
                    column.append(ops.aggregate_column(np.asarray(bucket), agg))
            out[str(ck)] = column
        return Table(out)

    def describe(self) -> "Table":
        """Summary statistics of every numeric column (one row each)."""
        from repro.stats.descriptive import summarize

        records = []
        for name, arr in self._columns.items():
            if arr.dtype.kind not in ("f", "i", "u") or arr.shape[0] == 0:
                continue
            s = summarize(np.asarray(arr, dtype=float))
            rec = {"column": name}
            rec.update(s.as_dict())
            records.append(rec)
        return Table.from_records(records)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def to_text(self, max_rows: int = 40, float_fmt: str = "{:.4g}") -> str:
        """A fixed-width text rendering (for CLI reports and docs)."""
        names = self.column_names
        shown = min(self._length, max_rows)

        def fmt(v: Any) -> str:
            if isinstance(v, (float, np.floating)):
                return float_fmt.format(float(v))
            return str(v)

        body = [[fmt(self._columns[n][i]) for n in names] for i in range(shown)]
        widths = [
            max(len(n), *(len(r[k]) for r in body)) if body else len(n)
            for k, n in enumerate(names)
        ]
        lines = [
            "  ".join(n.ljust(w) for n, w in zip(names, widths)),
            "  ".join("-" * w for w in widths),
        ]
        lines += ["  ".join(c.ljust(w) for c, w in zip(r, widths)) for r in body]
        if shown < self._length:
            lines.append(f"... ({self._length - shown} more rows)")
        return "\n".join(lines)
