"""Aggregation helpers and table combinators for :mod:`repro.frame`."""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from typing import Any, Callable

import numpy as np

from repro.errors import FrameError

__all__ = ["AGGREGATORS", "aggregate_column", "concat_tables"]


def _numeric(arr: np.ndarray) -> np.ndarray:
    """Coerce a column to float, raising a clear error for non-numeric data."""
    try:
        return np.asarray(arr, dtype=float)
    except (ValueError, TypeError) as exc:
        raise FrameError(f"non-numeric column cannot be aggregated: {exc}") from exc


#: Stand-in key for missing cells in ``nunique``: ``nan != nan``, so a set
#: of raw cells counts every ``nan`` occurrence as a distinct value.
_MISSING = object()


def _nunique(arr: np.ndarray) -> int:
    seen = set()
    for x in arr:
        if isinstance(x, np.generic):
            x = x.item()
        if x is None or (isinstance(x, float) and math.isnan(x)):
            x = _MISSING
        seen.add(x)
    return len(seen)


def _first(arr: np.ndarray) -> Any:
    if arr.shape[0] == 0:
        raise FrameError("'first' of an empty column")
    return arr[0]


def _last(arr: np.ndarray) -> Any:
    if arr.shape[0] == 0:
        raise FrameError("'last' of an empty column")
    return arr[-1]


#: Named aggregators usable in :meth:`repro.frame.Table.aggregate` and
#: :meth:`repro.frame.Table.pivot`.
AGGREGATORS: dict[str, Callable[[np.ndarray], Any]] = {
    "mean": lambda a: float(np.mean(_numeric(a))),
    "median": lambda a: float(np.median(_numeric(a))),
    "std": lambda a: float(np.std(_numeric(a), ddof=1)) if a.shape[0] > 1 else 0.0,
    "var": lambda a: float(np.var(_numeric(a), ddof=1)) if a.shape[0] > 1 else 0.0,
    "min": lambda a: float(np.min(_numeric(a))),
    "max": lambda a: float(np.max(_numeric(a))),
    "sum": lambda a: float(np.sum(_numeric(a))),
    "count": lambda a: int(a.shape[0]),
    "nunique": _nunique,
    "first": _first,
    "last": _last,
}


def aggregate_column(arr: np.ndarray, agg: str) -> Any:
    """Apply the named aggregator to a column array."""
    try:
        fn = AGGREGATORS[agg]
    except KeyError:
        raise FrameError(
            f"unknown aggregator {agg!r}; have {sorted(AGGREGATORS)}"
        ) from None
    if arr.shape[0] == 0 and agg not in ("count", "nunique"):
        raise FrameError(f"cannot {agg!r}-aggregate an empty column")
    return fn(arr)


def concat_tables(tables: Iterable["Table"]) -> "Table":  # noqa: F821
    """Vertically concatenate tables sharing the same column names.

    Column order follows the first table; every table must have exactly the
    same set of columns (order may differ).
    """
    from repro.frame.table import Table

    tables = [t for t in tables if t.num_rows or t.num_columns]
    if not tables:
        return Table()
    names = tables[0].column_names
    name_set = set(names)
    for t in tables[1:]:
        if set(t.column_names) != name_set:
            raise FrameError(
                f"cannot concat tables with differing columns: "
                f"{names} vs {t.column_names}"
            )
    cols: dict[str, np.ndarray] = {}
    for n in names:
        parts = [t.column(n) for t in tables]
        if any(p.dtype == object for p in parts):
            merged = np.empty(sum(p.shape[0] for p in parts), dtype=object)
            pos = 0
            for p in parts:
                merged[pos:pos + p.shape[0]] = p
                pos += p.shape[0]
            cols[n] = merged
        else:
            cols[n] = np.concatenate(parts)
    return Table(cols)
