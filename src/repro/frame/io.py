"""CSV round-tripping for :class:`repro.frame.Table`.

The paper open-sources its sweep data as tabular files; this module provides
the corresponding serialization.  Types are inferred on read: a column whose
every non-empty cell parses as int becomes int64, else float64 if every cell
parses as float, else an object (string) column.  Empty cells become ``None``
in object columns and ``nan`` in float columns (an otherwise-int column with
empties is promoted to float).
"""

from __future__ import annotations

import csv
import io
import os
from typing import Any

import numpy as np

from repro.errors import FrameError
from repro.frame.table import Table

__all__ = ["read_csv", "write_csv", "table_to_csv_text", "table_from_csv_text"]


def _infer_column(cells: list[str]) -> np.ndarray:
    """Infer the best dtype for a list of raw CSV strings."""
    has_empty = any(c == "" for c in cells)
    non_empty = [c for c in cells if c != ""]

    def _try(parse) -> list | None:
        out = []
        for c in non_empty:
            try:
                out.append(parse(c))
            except ValueError:
                return None
        return out

    if non_empty and not has_empty:
        ints = _try(int)
        if ints is not None:
            return np.asarray(ints, dtype=np.int64)
    if non_empty:
        floats = _try(float)
        if floats is not None:
            out = np.full(len(cells), np.nan)
            j = 0
            for i, c in enumerate(cells):
                if c != "":
                    out[i] = floats[j]
                    j += 1
            return out
    arr = np.empty(len(cells), dtype=object)
    arr[:] = [None if c == "" else c for c in cells]
    return arr


def table_from_csv_text(text: str) -> Table:
    """Parse CSV text into a :class:`Table` with inferred column types."""
    reader = csv.reader(io.StringIO(text))
    rows = list(reader)
    if not rows:
        raise FrameError("empty CSV input (no header)")
    header = rows[0]
    if len(set(header)) != len(header):
        raise FrameError(f"duplicate column names in CSV header: {header}")
    body = [r for r in rows[1:] if r]  # csv yields [] for blank lines
    for i, r in enumerate(body):
        if len(r) != len(header):
            raise FrameError(
                f"CSV row {i + 2} has {len(r)} cells, header has {len(header)}"
            )
    cols = {
        name: _infer_column([r[k] for r in body]) for k, name in enumerate(header)
    }
    return Table(cols)


def read_csv(path: str | os.PathLike) -> Table:
    """Read a CSV file into a :class:`Table`."""
    with open(path, "r", newline="", encoding="utf-8") as fh:
        return table_from_csv_text(fh.read())


def _format_cell(v: Any) -> str:
    if v is None:
        return ""
    if isinstance(v, (float, np.floating)):
        if np.isnan(v):
            return ""
        return repr(float(v))
    if isinstance(v, np.generic):
        v = v.item()
    return str(v)


def table_to_csv_text(table: Table) -> str:
    """Render a table as CSV text."""
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    names = table.column_names
    writer.writerow(names)
    cols = [table.column(n) for n in names]
    for i in range(table.num_rows):
        writer.writerow([_format_cell(c[i]) for c in cols])
    return buf.getvalue()


def write_csv(table: Table, path: str | os.PathLike) -> None:
    """Write a table to a CSV file (UTF-8)."""
    with open(path, "w", newline="", encoding="utf-8") as fh:
        fh.write(table_to_csv_text(table))
