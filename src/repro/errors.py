"""Exception hierarchy for :mod:`repro`.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch the whole family with a single
``except`` clause while still being able to discriminate the finer-grained
subclasses when it matters (e.g. treating a bad environment-variable value
differently from a malformed dataset).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "InvalidEnvValue",
    "UnknownVariable",
    "TopologyError",
    "UnknownMachine",
    "WorkloadError",
    "UnknownWorkload",
    "UnknownInput",
    "SimulationError",
    "DeadlockError",
    "CheckFailure",
    "ResilienceError",
    "WorkerCrashError",
    "BatchTimeoutError",
    "PoisonBatchError",
    "SweepCancelledError",
    "ServeError",
    "TransportError",
    "MalformedFrameError",
    "TruncatedFrameError",
    "NodeLostError",
    "DatasetError",
    "SchemaError",
    "CacheError",
    "FrameError",
    "ColumnError",
    "LengthMismatch",
    "FitError",
    "NotFittedError",
    "ConvergenceError",
    "StatsError",
    "VizError",
]


class ReproError(Exception):
    """Base class for all library errors."""


# --------------------------------------------------------------------------
# Configuration / environment-variable space
# --------------------------------------------------------------------------
class ConfigError(ReproError):
    """A runtime configuration is malformed or inconsistent."""


class InvalidEnvValue(ConfigError):
    """An environment variable was given a value outside its legal domain."""

    def __init__(self, variable: str, value: object, allowed: object = None):
        self.variable = variable
        self.value = value
        self.allowed = allowed
        msg = f"invalid value {value!r} for {variable}"
        if allowed is not None:
            msg += f" (allowed: {allowed})"
        super().__init__(msg)


class UnknownVariable(ConfigError):
    """Reference to an environment variable the space does not define."""


# --------------------------------------------------------------------------
# Architecture / topology
# --------------------------------------------------------------------------
class TopologyError(ReproError):
    """A machine topology is internally inconsistent."""


class UnknownMachine(TopologyError):
    """Lookup of a machine name that is not registered."""


# --------------------------------------------------------------------------
# Workloads
# --------------------------------------------------------------------------
class WorkloadError(ReproError):
    """A workload model is malformed."""


class UnknownWorkload(WorkloadError):
    """Lookup of a workload name that is not registered."""


class UnknownInput(WorkloadError):
    """A workload was asked for an input size it does not define."""


# --------------------------------------------------------------------------
# Simulation
# --------------------------------------------------------------------------
class SimulationError(ReproError):
    """The discrete-event or analytic simulation reached an invalid state."""


class DeadlockError(SimulationError):
    """The discrete-event engine ran out of events with live processes."""


class CheckFailure(ReproError):
    """A verification check (invariant, metamorphic relation, differential
    comparison, or golden-trace match) found a violation."""


# --------------------------------------------------------------------------
# Resilience (supervised sweep execution)
# --------------------------------------------------------------------------
class ResilienceError(ReproError):
    """The supervised execution layer failed unrecoverably (worker
    initialization error, respawn budget exhausted)."""


class WorkerCrashError(ResilienceError):
    """A sweep worker process died mid-batch (or chaos simulated it)."""


class BatchTimeoutError(ResilienceError):
    """A batch exceeded its wall-clock deadline (hung worker)."""


class PoisonBatchError(ResilienceError):
    """A batch kept failing past its retry budget under
    ``fail_policy="raise"``.  Carries the sweep's
    :class:`~repro.resilience.report.FailureReport` (when available) as
    ``report`` so callers can see every attempt and cause."""

    def __init__(self, message: str, report: object = None):
        super().__init__(message)
        self.report = report


class SweepCancelledError(ResilienceError):
    """The sweep was cancelled cooperatively (a served request's deadline
    expired, the client went away, or the daemon began draining).  Raised
    between batches — never mid-batch — after landed batches have been
    flushed to the cache, so a cancelled sweep is always resumable."""


class TransportError(ResilienceError):
    """The node socket transport failed.  Every failure mode is typed
    (see subclasses) so the nodes backend can map it to the right
    recovery path — retry, respawn, or shard reassignment — instead of
    hanging on a half-read frame."""


class MalformedFrameError(TransportError):
    """A frame arrived with a bad magic, an implausible length, a failed
    checksum, or an undecodable payload — the peer is not speaking the
    protocol (or the bytes rotted in flight)."""


class TruncatedFrameError(TransportError):
    """The connection ended (or stalled past its deadline) in the middle
    of a frame — the classic mid-message node death."""


class NodeLostError(TransportError):
    """The connection dropped at a frame boundary: the node process died
    or the link was severed between messages."""


# --------------------------------------------------------------------------
# Serving (tuning-as-a-service daemon)
# --------------------------------------------------------------------------
class ServeError(ReproError):
    """The serving layer is misconfigured or an endpoint request is
    malformed (unknown job, bad parameter, oversized body).  Transport-
    level failures map to HTTP status codes in :mod:`repro.serve.app`;
    this class covers errors raised through the Python API."""


# --------------------------------------------------------------------------
# Datasets
# --------------------------------------------------------------------------
class DatasetError(ReproError):
    """Raw records could not be turned into a tabular dataset."""


class SchemaError(DatasetError):
    """A table does not contain the columns an operation requires."""


class CacheError(DatasetError):
    """A sweep-cache entry is malformed (torn write, foreign file)."""


# --------------------------------------------------------------------------
# Frame (tabular substrate)
# --------------------------------------------------------------------------
class FrameError(ReproError):
    """Base class for errors in :mod:`repro.frame`."""


class ColumnError(FrameError):
    """Reference to a column that does not exist (or already exists)."""


class LengthMismatch(FrameError):
    """Columns of differing lengths were combined into one table."""


# --------------------------------------------------------------------------
# ML kit
# --------------------------------------------------------------------------
class FitError(ReproError):
    """Model fitting failed."""


class NotFittedError(FitError):
    """A model was used before :meth:`fit` was called."""


class ConvergenceError(FitError):
    """An iterative solver failed to converge within its iteration budget."""


# --------------------------------------------------------------------------
# Statistics
# --------------------------------------------------------------------------
class StatsError(ReproError):
    """A statistical routine received data it cannot operate on."""


# --------------------------------------------------------------------------
# Visualization
# --------------------------------------------------------------------------
class VizError(ReproError):
    """A plot was requested with inconsistent data."""
