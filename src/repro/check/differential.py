"""Differential and golden-trace checks.

Two oracle-free ways to catch regressions the example-based tests miss:

- **execution-path parity** — the same sweep plan replayed through the
  serial path, the multiprocess path, a cold cache (simulate + store) and
  a warm cache (load only) must produce bit-identical records.  Any
  nondeterminism, ordering sensitivity, or cache-serialization loss shows
  up as a record mismatch,
- **golden traces** — phase-level execution timelines for a pinned set of
  (machine, workload, config) cases, compared against blessed fixtures in
  ``tests/golden/``.  A numeric drift means the model changed; if the
  change is intentional, re-bless with ``repro check --suite differential
  --bless`` (or ``python -m repro.cli check --bless``) and review the
  fixture diff in the PR.
"""

from __future__ import annotations

import dataclasses
import json
import math
import tempfile
from pathlib import Path

from repro.arch.machines import get_machine
from repro.core.cache import SweepCache
from repro.core.sweep import SweepPlan, run_sweep
from repro.errors import CheckFailure
from repro.runtime.icv import EnvConfig
from repro.runtime.trace import ExecutionTrace, trace_execution
from repro.workloads import get_workload

__all__ = [
    "GOLDEN_CASES",
    "default_golden_dir",
    "differential_parity",
    "pruning_parity",
    "resilience_degrade_parity",
    "columnar_pipeline_parity",
    "sharded_execution_parity",
    "service_degrade_parity",
    "golden_trace_check",
    "verify_bless_stability",
    "bless_golden_traces",
]

#: Pinned golden-trace cases: id -> (arch, workload, input, EnvConfig).
#: Chosen to cover loop + task parallelism, all three machines, and the
#: wait-policy / schedule / reduction model paths.
GOLDEN_CASES: dict[str, tuple[str, str, str, EnvConfig]] = {
    "milan_cg_default": (
        "milan", "cg", "A", EnvConfig(num_threads=96),
    ),
    "skylake_xsbench_dynamic_turnaround": (
        "skylake", "xsbench", "default",
        EnvConfig(num_threads=40, schedule="dynamic",
                  library="turnaround"),
    ),
    "a64fx_nqueens_blocktime0_tree": (
        "a64fx", "nqueens", "small",
        EnvConfig(num_threads=48, blocktime="0", force_reduction="tree"),
    ),
    "milan_lulesh_spread_guided": (
        "milan", "lulesh", "default",
        EnvConfig(num_threads=48, places="cores", proc_bind="spread",
                  schedule="guided"),
    ),
}


def default_golden_dir() -> Path:
    """The repository's golden fixture directory (``tests/golden``).

    Resolved relative to the package source tree so the check works from
    any working directory of a source checkout; installed environments
    must pass an explicit directory.
    """
    return Path(__file__).resolve().parents[3] / "tests" / "golden"


def _quick_plan() -> SweepPlan:
    """A small but multi-path plan for parity replay (two workloads so the
    parallel path actually interleaves batches)."""
    return SweepPlan(arch="milan", workload_names=("cg", "ep"),
                     scale="small", repetitions=2, inputs_limit=2)


def full_plan() -> SweepPlan:
    """The deeper parity plan (``repro check`` without ``--quick``): a
    denser grid, more workloads, paper-level repetitions."""
    return SweepPlan(arch="milan",
                     workload_names=("cg", "ep", "xsbench", "nqueens"),
                     scale="medium", repetitions=3, inputs_limit=2)


def differential_parity(plan: SweepPlan | None = None) -> dict:
    """Replay one plan through all execution paths; records must match."""
    plan = plan or _quick_plan()
    serial = run_sweep(plan)
    if not serial.records:
        raise CheckFailure("differential plan produced no records")

    with tempfile.TemporaryDirectory(prefix="repro-check-") as tmp:
        cache = SweepCache(Path(tmp) / "cache")
        paths = {
            "parallel": run_sweep(plan, n_processes=2),
            "cold-cache": run_sweep(plan, cache=cache),
            "warm-cache": run_sweep(plan, cache=cache),
        }
        if paths["warm-cache"].n_computed_batches != 0:
            raise CheckFailure(
                "warm-cache path recomputed "
                f"{paths['warm-cache'].n_computed_batches} batch(es); "
                "expected all from cache"
            )
    for name, result in paths.items():
        if result.records != serial.records:
            n = sum(
                1 for a, b in zip(serial.records, result.records) if a != b
            ) + abs(len(serial.records) - len(result.records))
            raise CheckFailure(
                f"{name} path diverged from serial: {n} record(s) differ "
                f"(serial {len(serial.records)} vs {name} "
                f"{len(result.records)})"
            )
    return {
        "details": f"{len(serial.records)} records bit-identical across "
                   f"serial/parallel/cold-cache/warm-cache",
        "n_records": len(serial.records),
        "paths": sorted(paths),
    }


def pruning_parity(plan: SweepPlan | None = None) -> dict:
    """ICV-equivalence pruning must be invisible in the records.

    Runs one plan twice — pruned (the default: one model evaluation per
    resolved-ICV equivalence class, per-member noise on top) and unpruned
    (every grid point simulated) — and requires bit-identical records.
    Also requires that pruning actually pruned something: a grid with no
    equivalent spellings would make the check vacuous, and the default
    grids all contain them (``proc_bind=false`` vs unset,
    ``turnaround`` vs ``blocktime=infinite``, ``true`` vs ``spread``).
    """
    plan = plan or _quick_plan()
    pruned = run_sweep(dataclasses.replace(plan, prune=True))
    unpruned = run_sweep(dataclasses.replace(plan, prune=False))
    if not pruned.records:
        raise CheckFailure("pruning-parity plan produced no records")
    if pruned.n_pruned_configs == 0:
        raise CheckFailure(
            "pruned sweep simulated every config "
            f"({pruned.n_simulated_configs}): the plan's grid exposes no "
            "ICV-equivalent spellings, so the check is vacuous"
        )
    if unpruned.n_pruned_configs != 0:
        raise CheckFailure(
            "unpruned sweep reported "
            f"{unpruned.n_pruned_configs} pruned config(s)"
        )
    if pruned.records != unpruned.records:
        n = sum(
            1 for a, b in zip(pruned.records, unpruned.records) if a != b
        ) + abs(len(pruned.records) - len(unpruned.records))
        raise CheckFailure(
            f"pruned sweep diverged from exhaustive execution: {n} "
            f"record(s) differ (pruned {len(pruned.records)} vs unpruned "
            f"{len(unpruned.records)}) — an execution-relevant ICV leaked "
            "out of ResolvedICVs.execution_signature()"
        )
    total = pruned.n_simulated_configs + pruned.n_pruned_configs
    return {
        "details": (
            f"{len(pruned.records)} records bit-identical; pruning "
            f"simulated {pruned.n_simulated_configs}/{total} configs "
            f"({pruned.n_pruned_configs} fanned out)"
        ),
        "n_records": len(pruned.records),
        "n_simulated": pruned.n_simulated_configs,
        "n_pruned": pruned.n_pruned_configs,
    }


def resilience_degrade_parity(
    plan: SweepPlan | None = None, backend: str = "pool"
) -> dict:
    """Chaos degrade + resume must reproduce the fault-free sweep.

    Injects a seeded :class:`~repro.resilience.chaos.ChaosPlan` (a worker
    crash, a hang, a corrupt payload, a poison batch, and an on-disk
    cache corruption) into a degrade-mode sweep on the given executor
    ``backend``, then resumes over the same cache.  The resume must
    re-attempt the quarantined batch, catch the cache corruption via
    checksum, and yield records bit-identical to a clean exhaustive run —
    the guarantee that graceful degradation never silently alters the
    dataset, on every backend (the serial path *simulates* faults it
    cannot survive in-process; the nodes backend runs sharded).
    """
    from repro.core.sweep import plan_batches
    from repro.resilience import BACKEND_NAMES, ChaosPlan, RetryPolicy

    if backend not in BACKEND_NAMES:
        raise CheckFailure(
            f"unknown backend {backend!r}; have {BACKEND_NAMES}"
        )
    plan = plan or dataclasses.replace(
        _quick_plan(), workload_names=("cg", "ep", "nqueens")
    )
    n_batches = len(plan_batches(plan))
    chaos = ChaosPlan.generate(n_batches, seed=11, crashes=1, hangs=1,
                               corrupt_results=1, cache_faults=1, poison=1)
    retry = RetryPolicy(max_retries=2, base_delay_s=0.01, seed=11)
    clean = run_sweep(plan)
    if not clean.records:
        raise CheckFailure("resilience-parity plan produced no records")

    with tempfile.TemporaryDirectory(prefix="repro-check-") as tmp:
        degraded = run_sweep(
            plan, n_processes=2, cache=SweepCache(Path(tmp) / "cache"),
            fail_policy="degrade", chaos=chaos, retry=retry,
            batch_timeout_s=5.0, backend=backend,
            n_shards=2 if backend == "nodes" else 1,
        )
        if degraded.n_quarantined_batches == 0:
            raise CheckFailure(
                "chaos degrade run quarantined nothing — the poison fault "
                "did not fire, so the check is vacuous"
            )
        report = degraded.failure_report
        if report.n_failed_batches == 0:
            raise CheckFailure("chaos degrade run reported no failures")
        resume_cache = SweepCache(Path(tmp) / "cache")
        resumed = run_sweep(plan, cache=resume_cache,
                            fail_policy="degrade")
        if len(resume_cache.corrupt_keys) != 1:
            raise CheckFailure(
                "resume detected "
                f"{len(resume_cache.corrupt_keys)} corrupt cache "
                "entry(ies); the injected corruption must be caught by "
                "checksum (exactly 1)"
            )
    if resumed.records != clean.records:
        n = sum(
            1 for a, b in zip(clean.records, resumed.records) if a != b
        ) + abs(len(clean.records) - len(resumed.records))
        raise CheckFailure(
            f"degrade+resume diverged from the fault-free sweep: {n} "
            f"record(s) differ (clean {len(clean.records)} vs resumed "
            f"{len(resumed.records)})"
        )
    return {
        "details": (
            f"{len(resumed.records)} records bit-identical after "
            f"{report.n_failed_batches} failed batch(es) "
            f"({report.n_quarantined} quarantined, "
            f"{report.n_recovered} recovered) and 1 cache corruption "
            f"on the {backend} backend"
        ),
        "backend": backend,
        "n_records": len(resumed.records),
        "n_failed_batches": report.n_failed_batches,
        "n_quarantined": report.n_quarantined,
        "n_recovered": report.n_recovered,
    }


def columnar_pipeline_parity(
    plan: SweepPlan | None = None, backend: str = "serial"
) -> dict:
    """The packed columnar record path must be invisible end-to-end.

    One plan's records travel every columnar hop — packing into a
    :class:`~repro.frame.columns.RecordBlock`, the JSON payload
    round-trip (the spool/cache wire shape), a cache format v5 store and
    load, and the block-backed dataset table — and every hop must
    reproduce the dict path bit-identically.  The vectorized frame fast
    paths (``group_by``, ``join``, stable descending ``sort_by``) are
    then compared against their hash-based python reference
    implementations on the resulting dataset table.

    ``backend`` selects the executor the source records come from, so
    the same guarantees are pinned when blocks arrive through the pool
    spool or across the nodes backend's socket frames rather than from
    in-process execution.
    """
    from repro.core.dataset import enrich_with_speedup, records_to_table
    from repro.core.sweep import (
        sweep_block_to_records,
        sweep_records_to_block,
    )
    from repro.frame.columns import RecordBlock
    from repro.resilience import BACKEND_NAMES

    if backend not in BACKEND_NAMES:
        raise CheckFailure(
            f"unknown backend {backend!r}; have {BACKEND_NAMES}"
        )
    plan = plan or _quick_plan()
    records = run_sweep(
        plan,
        n_processes=1 if backend == "serial" else 2,
        backend=backend,
        n_shards=2 if backend == "nodes" else 1,
    ).records
    if not records:
        raise CheckFailure("columnar-parity plan produced no records")

    block = sweep_records_to_block(records)
    if sweep_block_to_records(block) != records:
        raise CheckFailure(
            "columnar pack/unpack round-trip altered the records"
        )
    payload = json.loads(json.dumps(block.to_payload()))
    if sweep_block_to_records(RecordBlock.from_payload(payload)) != records:
        raise CheckFailure(
            "columnar JSON payload round-trip altered the records"
        )

    with tempfile.TemporaryDirectory(prefix="repro-check-") as tmp:
        cache = SweepCache(Path(tmp) / "cache")
        key = "f" * 64
        cache.put(key, block)
        if cache.get(key) != records:
            raise CheckFailure(
                "cache format v5 round-trip altered the records"
            )
        if cache.corrupt_keys:
            raise CheckFailure(
                "cache format v5 round-trip flagged a healthy entry as "
                "corrupt"
            )

    table_dict = records_to_table(list(records))
    table_block = records_to_table(block)
    if table_dict.column_names != table_block.column_names:
        raise CheckFailure(
            "block-backed dataset table changed the column set: "
            f"{table_dict.column_names} vs {table_block.column_names}"
        )
    if table_dict.to_records() != table_block.to_records():
        raise CheckFailure(
            "block-backed dataset table diverged from the dict path"
        )
    enriched = enrich_with_speedup(table_block)
    if enriched.to_records() != enrich_with_speedup(table_dict).to_records():
        raise CheckFailure(
            "speedup enrichment diverged between the block and dict paths"
        )

    keys = ["app", "input_size", "num_threads"]
    fast = enriched.group_by(keys)
    reference = enriched._group_by_python(keys)
    if [k for k, _ in fast] != [k for k, _ in reference] or any(
        a.to_records() != b.to_records()
        for (_, a), (_, b) in zip(fast, reference)
    ):
        raise CheckFailure(
            "vectorized group_by diverged from the python reference"
        )

    best = enriched.aggregate(["app"], {"speedup": "max"})
    joined_fast = enriched._join_fast(best, ["app"], "inner")
    joined_ref = enriched._join_python(best, ["app"], "inner")
    if joined_fast is None:
        raise CheckFailure(
            "vectorized join refused a factorizable dataset key"
        )
    if joined_fast.to_records() != joined_ref.to_records():
        raise CheckFailure(
            "vectorized join diverged from the python reference"
        )

    tagged = enriched.with_column("_row", list(range(enriched.num_rows)))
    by_app = tagged.sort_by("app", descending=True)
    apps = list(by_app.column("app"))
    rows = [int(v) for v in by_app.column("_row")]
    for i in range(len(apps) - 1):
        if apps[i] < apps[i + 1]:
            raise CheckFailure(
                "descending sort produced a non-descending key sequence"
            )
        if apps[i] == apps[i + 1] and rows[i] > rows[i + 1]:
            raise CheckFailure(
                "descending sort broke the stable-tie contract: equal "
                "keys reordered"
            )
    return {
        "details": (
            f"{len(records)} records bit-identical through "
            "pack/payload/cache-v5/table hops; vectorized group_by "
            f"({len(fast)} groups), join ({joined_fast.num_rows} rows) "
            "and stable descending sort match the python reference"
        ),
        "n_records": len(records),
        "n_groups": len(fast),
        "block_nbytes": block.nbytes(),
    }


def sharded_execution_parity(plan: SweepPlan | None = None) -> dict:
    """Every backend × shard count must be bit-identical to serial.

    The tentpole guarantee of the executor-backend abstraction: records
    are a function of the plan alone, never of the execution substrate.
    One plan runs on every backend in
    :data:`~repro.resilience.BACKEND_NAMES` at shard counts 1, 2 and 4,
    and each combination must reproduce the serial reference exactly —
    sharding permutes *dispatch* order (round-robin interleave, work
    stealing, key-homed assignment) but results always surface in
    submission order, and the columnar spool/frame encodings must be
    lossless across every boundary (pool pipe, nodes socket).

    The same pin then extends to faulted execution: a seeded chaos plan
    with a poison batch, a node loss and a shard partition runs on the
    nodes backend under ``fail_policy="degrade"`` with a cache, and the
    resume over that cache must again match the serial reference.  The
    chaos leg is checked for non-vacuity (something was quarantined,
    and both node-fault kinds appear in the failure report).
    """
    from repro.core.sweep import plan_batches
    from repro.resilience import BACKEND_NAMES, ChaosPlan, RetryPolicy

    plan = plan or _quick_plan()
    serial = run_sweep(plan)
    if not serial.records:
        raise CheckFailure("sharded-parity plan produced no records")

    combos: list[str] = []
    for backend in BACKEND_NAMES:
        for n_shards in (1, 2, 4):
            result = run_sweep(plan, n_processes=2, backend=backend,
                               n_shards=n_shards)
            if result.records != serial.records:
                n = sum(
                    1 for a, b in zip(serial.records, result.records)
                    if a != b
                ) + abs(len(serial.records) - len(result.records))
                raise CheckFailure(
                    f"backend={backend} shards={n_shards} diverged from "
                    f"the serial reference: {n} record(s) differ "
                    f"(serial {len(serial.records)} vs "
                    f"{len(result.records)})"
                )
            combos.append(f"{backend}x{n_shards}")

    n_batches = len(plan_batches(plan))
    chaos = ChaosPlan.generate(n_batches, seed=7, crashes=0, hangs=0,
                               corrupt_results=0, cache_faults=0,
                               poison=1, node_lost=1, shard_partitions=1)
    retry = RetryPolicy(max_retries=1, base_delay_s=0.01, seed=7)
    with tempfile.TemporaryDirectory(prefix="repro-check-") as tmp:
        degraded = run_sweep(
            plan, n_processes=2, cache=SweepCache(Path(tmp) / "cache"),
            fail_policy="degrade", chaos=chaos, retry=retry,
            batch_timeout_s=5.0, backend="nodes", n_shards=2,
        )
        if degraded.n_quarantined_batches == 0:
            raise CheckFailure(
                "nodes chaos degrade run quarantined nothing — the "
                "poison fault did not fire, so the check is vacuous"
            )
        report = degraded.failure_report
        kinds = {
            attempt.kind
            for failure in report.batches
            for attempt in failure.attempts
        }
        missing = {"node-lost", "shard-partition"} - kinds
        if missing:
            raise CheckFailure(
                "nodes chaos degrade run never observed "
                f"{sorted(missing)} fault(s); saw {sorted(kinds)}"
            )
        resumed = run_sweep(plan, cache=SweepCache(Path(tmp) / "cache"),
                            fail_policy="degrade")
    if resumed.records != serial.records:
        n = sum(
            1 for a, b in zip(serial.records, resumed.records) if a != b
        ) + abs(len(serial.records) - len(resumed.records))
        raise CheckFailure(
            "nodes chaos degrade+resume diverged from the serial "
            f"reference: {n} record(s) differ (serial "
            f"{len(serial.records)} vs resumed {len(resumed.records)})"
        )
    return {
        "details": (
            f"{len(serial.records)} records bit-identical across "
            f"{len(combos)} backend×shard combination(s) "
            f"({', '.join(combos)}); nodes degrade+resume under "
            f"node-lost/shard-partition chaos matched the serial "
            f"reference ({report.n_failed_batches} failed batch(es), "
            f"{report.n_quarantined} quarantined)"
        ),
        "n_records": len(serial.records),
        "combinations": combos,
        "chaos_fault_kinds": sorted(kinds),
        "n_failed_batches": report.n_failed_batches,
        "n_quarantined": report.n_quarantined,
    }


def service_degrade_parity(plan: SweepPlan | None = None) -> dict:
    """Daemon-served sweeps must be record-identical to direct ones —
    through backend death *and* a kill-during-drain restart cycle.

    Ground truth is a fault-free direct :func:`run_sweep`.  Two served
    legs must reproduce it byte-for-byte via
    :func:`repro.serve.render.records_payload`:

    1. **degradation leg** — an all-attempt crash fault rides the pool
       backend; the circuit breaker must trip, the job must finish
       ``degraded`` on a fallback rung, and the failure report must be
       non-empty (vacuity guard: the fault really fired),
    2. **drain/restart leg** — a throttled sweep is interrupted by a
       graceful drain after its first batch lands, journaled, and
       resumed by a *new* daemon over the same cache and state
       directory.  The resumed run must mix cached (pre-drain) and
       computed (post-restart) batches — both counts nonzero, or the
       interruption was vacuous — and still match the ground truth.

    Together they pin the serving layer's core promise: no degradation
    or restart path may silently alter the dataset.
    """
    from repro.serve.app import DaemonConfig
    from repro.serve.harness import DaemonHandle
    from repro.serve.render import records_payload

    plan = plan or _quick_plan()
    plan_payload = {
        "arch": plan.arch,
        "workloads": (list(plan.workload_names)
                      if plan.workload_names else None),
        "scale": plan.scale,
        "repetitions": plan.repetitions,
        "inputs_limit": plan.inputs_limit,
        "seed": plan.seed,
    }
    direct = run_sweep(plan)
    if not direct.records:
        raise CheckFailure("service-parity plan produced no records")
    truth = records_payload(direct.records)

    with tempfile.TemporaryDirectory(prefix="repro-check-serve-") as tmp:
        # Leg 1: backend death mid-request -> breaker -> degraded rung.
        handle = DaemonHandle(DaemonConfig(
            cache_dir=f"{tmp}/cache-degrade",
            state_dir=f"{tmp}/state-degrade",
            backend="pool", deadline_s=600.0, breaker_threshold=1,
        ))
        try:
            status, resp = handle.request("POST", "/sweep", body={
                "plan": plan_payload, "client": "check", "backend": "pool",
                "chaos": {"seed": 7, "faults": [
                    {"kind": "crash", "batch_index": 0, "attempts": "all"},
                ]},
            })
            if status != 202:
                raise CheckFailure(
                    f"degradation-leg submit refused: {status} {resp}"
                )
            final = handle.wait_for_state(
                resp["job_id"], ("done", "failed"), timeout_s=600.0
            )
            if final["state"] != "done":
                raise CheckFailure(
                    f"degradation-leg job ended {final['state']}: "
                    f"{final.get('error', '')}"
                )
            if not final["degraded"]:
                raise CheckFailure(
                    "degradation leg finished undegraded — the injected "
                    "backend death never fired, so the check is vacuous"
                )
            degrade_events = [
                e for e in handle.stream_events(resp["job_id"])
                if "degrade" in e
            ]
            if not degrade_events:
                raise CheckFailure(
                    "no degrade event was streamed for the dying backend"
                )
            status, served = handle.request(
                "GET", f"/jobs/{resp['job_id']}/records"
            )
            if served != truth:
                raise CheckFailure(
                    "degradation-leg records diverged from the direct "
                    f"sweep ({served.get('n_records')} vs "
                    f"{truth['n_records']})"
                )
            backend_used = final["backend_used"]
        finally:
            handle.drain()

        # Leg 2: drain mid-sweep, journal, restart, resume.
        drain_cfg = DaemonConfig(
            cache_dir=f"{tmp}/cache-drain",
            state_dir=f"{tmp}/state-drain",
            backend="serial", deadline_s=600.0, drain_grace_s=0.2,
        )
        handle = DaemonHandle(drain_cfg)
        interrupted: list[str] = []
        try:
            status, resp = handle.request("POST", "/sweep", body={
                "plan": plan_payload, "client": "check",
                "backend": "serial", "throttle_s": 0.25,
            })
            if status != 202:
                raise CheckFailure(
                    f"drain-leg submit refused: {status} {resp}"
                )
            job_id = resp["job_id"]
            handle.wait_for_events(job_id, 1, timeout_s=600.0)
        finally:
            interrupted = handle.drain().get("interrupted", [])
        if job_id not in interrupted:
            raise CheckFailure(
                f"drain did not interrupt the in-flight job {job_id} "
                f"(interrupted: {interrupted})"
            )
        revived = DaemonHandle(drain_cfg)
        try:
            if revived.daemon.resumed_job_ids != [job_id]:
                raise CheckFailure(
                    "restart resumed "
                    f"{revived.daemon.resumed_job_ids} instead of "
                    f"[{job_id!r}]"
                )
            final = revived.wait_for_state(
                job_id, ("done", "failed"), timeout_s=600.0
            )
            if final["state"] != "done":
                raise CheckFailure(
                    f"resumed job ended {final['state']}: "
                    f"{final.get('error', '')}"
                )
            summary = final.get("summary") or {}
            cached = summary.get("n_cached_batches", 0)
            computed = summary.get("n_computed_batches", 0)
            if cached == 0 or computed == 0:
                raise CheckFailure(
                    "resume was vacuous: "
                    f"{cached} cached / {computed} computed batch(es); "
                    "the drain must interrupt mid-sweep so the resumed "
                    "run mixes pre-drain cache hits with fresh work"
                )
            status, served = revived.request(
                "GET", f"/jobs/{job_id}/records"
            )
            if served != truth:
                raise CheckFailure(
                    "resumed records diverged from the direct sweep "
                    f"({served.get('n_records')} vs {truth['n_records']})"
                )
        finally:
            revived.drain()

    return {
        "details": (
            f"{truth['n_records']} records identical through backend "
            f"death (degraded to {backend_used} after "
            f"{len(degrade_events)} rung failure(s)) and a "
            f"drain/restart cycle ({cached} cached + {computed} "
            "computed batch(es) on resume)"
        ),
        "n_records": truth["n_records"],
        "degraded_backend": backend_used,
        "resume_cached_batches": cached,
        "resume_computed_batches": computed,
    }


def _compute_trace(case_id: str) -> ExecutionTrace:
    arch, workload_name, input_name, config = GOLDEN_CASES[case_id]
    program = get_workload(workload_name).program(input_name)
    return trace_execution(program, get_machine(arch), config)


def _compare_traces(case_id: str, golden: ExecutionTrace,
                    fresh: ExecutionTrace) -> None:
    if (golden.program, golden.arch, golden.config) != (
        fresh.program, fresh.arch, fresh.config
    ):
        raise CheckFailure(
            f"golden {case_id}: fixture identity "
            f"({golden.program}, {golden.arch}) does not match the case "
            f"definition ({fresh.program}, {fresh.arch}) — re-bless"
        )
    if len(golden.events) != len(fresh.events):
        raise CheckFailure(
            f"golden {case_id}: {len(fresh.events)} phases computed, "
            f"fixture has {len(golden.events)}"
        )
    for g, f in zip(golden.events, fresh.events):
        if (g.name, g.kind, g.trips) != (f.name, f.kind, f.trips):
            raise CheckFailure(
                f"golden {case_id}: phase {g.name!r} identity changed to "
                f"({f.name!r}, {f.kind!r}, trips={f.trips})"
            )
        for field in ("start_s", "duration_s"):
            gv, fv = getattr(g, field), getattr(f, field)
            if not math.isclose(gv, fv, rel_tol=1e-9, abs_tol=1e-15):
                raise CheckFailure(
                    f"golden {case_id}: phase {g.name!r} {field} drifted "
                    f"{gv!r} -> {fv!r} (model change? bless if intended)"
                )


def golden_trace_check(golden_dir: str | Path | None = None) -> dict:
    """Compare freshly computed traces against the blessed fixtures."""
    root = Path(golden_dir) if golden_dir is not None else default_golden_dir()
    if not root.is_dir():
        raise CheckFailure(
            f"golden directory {root} does not exist — run the bless flow "
            "first (repro check --suite differential --bless)"
        )
    n_events = 0
    for case_id in sorted(GOLDEN_CASES):
        path = root / f"{case_id}.json"
        if not path.is_file():
            raise CheckFailure(
                f"golden fixture {path.name} missing from {root} — bless it"
            )
        try:
            golden = ExecutionTrace.from_dict(
                json.loads(path.read_text(encoding="utf-8"))
            )
        except (json.JSONDecodeError, OSError) as exc:
            raise CheckFailure(
                f"golden fixture {path.name} unreadable: {exc}"
            ) from exc
        fresh = _compute_trace(case_id)
        _compare_traces(case_id, golden, fresh)
        n_events += len(fresh.events)
    return {
        "details": f"{len(GOLDEN_CASES)} golden traces, {n_events} phase "
                   "events match blessed fixtures",
        "n_cases": len(GOLDEN_CASES),
        "n_events": n_events,
    }


def verify_bless_stability(
    seeds: tuple[int, ...] = (1, 2, 3)
) -> dict[str, int]:
    """Require every golden case to be tie-break stable before blessing.

    Recomputes each case's trace under seeded same-timestamp perturbation
    (:func:`repro.desim.tiebreak_scope`) and raises :class:`CheckFailure`
    if any seed produces a different trace than the canonical order.  A
    trace that depends on how the engine breaks timestamp ties would make
    the fixture an accident of heap ordering, not a model property — such
    a case must be fixed, never blessed.

    Returns ``{case_id: n_seeds_verified}``.
    """
    from repro.desim import tiebreak_scope

    verified: dict[str, int] = {}
    for case_id in sorted(GOLDEN_CASES):
        canonical = _compute_trace(case_id).to_dict()
        for seed in seeds:
            with tiebreak_scope(seed):
                perturbed = _compute_trace(case_id).to_dict()
            if perturbed != canonical:
                raise CheckFailure(
                    f"golden case {case_id} is tie-break-unstable: trace "
                    f"changed under perturbation seed {seed} — the model "
                    "depends on same-timestamp event order; fix it (run "
                    "repro-omp sanitize) before blessing"
                )
        verified[case_id] = len(seeds)
    return verified


def bless_golden_traces(
    golden_dir: str | Path | None = None,
    verify_stability: bool = True,
) -> list[str]:
    """(Re)write every golden fixture from the current model.

    Returns the paths written.  Review the resulting diff — blessing
    encodes the current model output as correct.  Unless
    ``verify_stability`` is disabled, the bless refuses to write fixtures
    whose traces change under seeded tie-break perturbation (see
    :func:`verify_bless_stability`).
    """
    root = Path(golden_dir) if golden_dir is not None else default_golden_dir()
    if verify_stability:
        verify_bless_stability()
    root.mkdir(parents=True, exist_ok=True)
    written = []
    for case_id in sorted(GOLDEN_CASES):
        trace = _compute_trace(case_id)
        path = root / f"{case_id}.json"
        path.write_text(
            json.dumps(trace.to_dict(), indent=1, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        written.append(str(path))
    return written
