"""Check outcomes and the run-one-check harness.

Every verification check — invariant, metamorphic relation, differential
comparison, golden-trace match — reduces to a named pass/fail with a
human-readable detail string.  :func:`run_check` is the uniform adapter:
it times the check body, converts a clean return into a passing
:class:`CheckResult` and a :class:`~repro.errors.CheckFailure` into a
failing one, and lets any *other* exception propagate (a crash is a bug
in the checker, not a finding).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import CheckFailure

__all__ = ["CheckResult", "run_check"]


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one verification check."""

    name: str
    passed: bool
    details: str = ""
    duration_s: float = 0.0
    #: Which suite the check belongs to (invariants | metamorphic |
    #: differential) — used for reporting and CLI suite selection.
    suite: str = ""
    #: Structured extras (counts, deltas) for the JSON report.
    data: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-serializable form for the parity report artifact."""
        return {
            "name": self.name,
            "suite": self.suite,
            "passed": self.passed,
            "details": self.details,
            "duration_s": self.duration_s,
            "data": self.data,
        }


def run_check(
    name: str, suite: str, body: Callable[[], str | dict | None]
) -> CheckResult:
    """Execute one check body under the uniform pass/fail contract.

    The body either returns (pass) — optionally a detail string or a data
    dict — or raises :class:`CheckFailure` (fail).  Timing uses the wall
    clock; checks are deterministic so the duration is informational only.
    """
    start = time.perf_counter()
    try:
        outcome = body()
    except CheckFailure as exc:
        return CheckResult(
            name=name,
            suite=suite,
            passed=False,
            details=str(exc),
            duration_s=time.perf_counter() - start,
        )
    duration = time.perf_counter() - start
    if isinstance(outcome, dict):
        return CheckResult(
            name=name,
            suite=suite,
            passed=True,
            details=str(outcome.pop("details", "")),
            duration_s=duration,
            data=outcome,
        )
    return CheckResult(
        name=name,
        suite=suite,
        passed=True,
        details=outcome or "",
        duration_s=duration,
    )
