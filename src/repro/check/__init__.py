"""Simulation verification subsystem (``repro check`` / ``pytest -m check``).

Three complementary suites guard the simulator's trustworthiness (see
``docs/TESTING.md`` for the full catalog):

- :mod:`repro.check.invariants` — structural laws of the discrete-event
  kernel and the chunking/stealing simulators, observed through the
  engine's opt-in instrumentation hooks,
- :mod:`repro.check.metamorphic` — model-level relations with provable
  expected effects (cost-scaling homogeneity, wait-policy envelopes,
  default-speedup unity),
- :mod:`repro.check.differential` — execution-path parity (serial vs
  parallel vs cached sweeps) and blessed golden-trace fixtures.

The CLI subcommand and the pytest marker run the same check functions.
"""

from repro.check.differential import (
    GOLDEN_CASES,
    bless_golden_traces,
    columnar_pipeline_parity,
    default_golden_dir,
    differential_parity,
    golden_trace_check,
    pruning_parity,
    resilience_degrade_parity,
    sharded_execution_parity,
)
from repro.check.invariants import (
    InvariantObserver,
    check_engine_invariants,
    check_loop_iteration_coverage,
    check_no_negative_delay,
    check_schedule_chunk_coverage,
    check_work_stealing_conservation,
)
from repro.check.metamorphic import (
    relation_blocktime_bracketing,
    relation_cost_scaling,
    relation_default_speedup_unity,
    relation_serial_phase_threads,
)
from repro.check.result import CheckResult, run_check
from repro.check.runner import (
    SUITES,
    format_results,
    run_all,
    run_suite,
    write_report,
)

__all__ = [
    "CheckResult",
    "run_check",
    "InvariantObserver",
    "check_engine_invariants",
    "check_no_negative_delay",
    "check_loop_iteration_coverage",
    "check_schedule_chunk_coverage",
    "check_work_stealing_conservation",
    "relation_cost_scaling",
    "relation_serial_phase_threads",
    "relation_blocktime_bracketing",
    "relation_default_speedup_unity",
    "GOLDEN_CASES",
    "default_golden_dir",
    "differential_parity",
    "pruning_parity",
    "resilience_degrade_parity",
    "columnar_pipeline_parity",
    "sharded_execution_parity",
    "golden_trace_check",
    "bless_golden_traces",
    "SUITES",
    "run_suite",
    "run_all",
    "format_results",
    "write_report",
]
