"""Engine and simulator invariants (the "does the simulator tell the
truth about itself" layer).

Built on the opt-in instrumentation hooks: :class:`InvariantObserver`
plugs into :class:`repro.desim.engine.Engine` and records violations of
the kernel's structural laws, and the ``check_*`` functions drive
representative simulations through the observers:

- **monotonic clock** — event times never decrease as the engine runs,
- **no scheduling into the past** — every scheduled delay is >= 0,
- **live-process conservation** — every started process finishes, and the
  engine's live count returns to zero,
- **iteration coverage** — a worksharing loop executes every iteration
  exactly once across all chunks, on every schedule,
- **per-core occupancy** — no worker executes two chunks at once, and no
  more workers appear than the machine model provides,
- **task conservation** — work stealing executes every task exactly once.

Each check raises :class:`~repro.errors.CheckFailure` on violation.
"""

from __future__ import annotations

import numpy as np

from repro.desim.engine import Engine, Timeout
from repro.desim.loopsim import simulate_loop
from repro.desim.stealing import TaskGraph, WorkStealingSimulator
from repro.errors import CheckFailure, SimulationError
from repro.runtime.schedule import iterate_chunks

__all__ = [
    "InvariantObserver",
    "check_engine_invariants",
    "check_no_negative_delay",
    "check_loop_iteration_coverage",
    "check_schedule_chunk_coverage",
    "check_work_stealing_conservation",
]


class InvariantObserver:
    """Engine observer that records structural-invariant violations.

    Attach to an :class:`Engine` (``Engine(observer=...)``); after the run,
    :attr:`violations` lists every broken law and :meth:`assert_clean`
    raises :class:`CheckFailure` if any were seen.
    """

    def __init__(self) -> None:
        self.violations: list[str] = []
        self.n_scheduled = 0
        self.n_advanced = 0
        self.n_started = 0
        self.n_finished = 0
        self._last_advance: float | None = None

    # -- Engine hooks ---------------------------------------------------
    def on_schedule(self, now: float, delay: float) -> None:
        """A callback entered the event heap; flag negative delays."""
        self.n_scheduled += 1
        if delay < 0:
            self.violations.append(
                f"negative delay {delay!r} reached _schedule at t={now!r}"
            )

    def on_advance(self, time: float) -> None:
        """The clock advanced; flag any backwards movement."""
        self.n_advanced += 1
        if self._last_advance is not None and time < self._last_advance:
            self.violations.append(
                f"clock moved backwards: {self._last_advance!r} -> {time!r}"
            )
        self._last_advance = time

    def on_process_start(self, proc) -> None:
        """A process was registered with the engine."""
        self.n_started += 1

    def on_process_finish(self, proc) -> None:
        """A process generator was exhausted."""
        self.n_finished += 1

    # -- Post-run assertions --------------------------------------------
    def assert_clean(self, engine: Engine | None = None) -> None:
        """Raise :class:`CheckFailure` on any recorded violation, on
        unbalanced process accounting, or (given the engine) a nonzero
        residual live count."""
        problems = list(self.violations)
        if self.n_finished != self.n_started:
            problems.append(
                f"process accounting unbalanced: {self.n_started} started, "
                f"{self.n_finished} finished"
            )
        if engine is not None and engine.live_processes != 0:
            problems.append(
                f"engine reports {engine.live_processes} live process(es) "
                "after a drained run"
            )
        if problems:
            raise CheckFailure("; ".join(problems))


def check_engine_invariants() -> dict:
    """Drive an observed engine through a mixed workload and assert the
    clock/scheduling/process laws held throughout."""
    obs = InvariantObserver()
    eng = Engine(observer=obs)
    gate = eng.event()

    def staggered(d):
        yield Timeout(d)
        yield Timeout(d / 2)

    def waiter():
        yield gate

    def firer():
        yield Timeout(1.5)
        gate.succeed("go")

    for d in (3.0, 1.0, 2.0, 0.5):
        eng.process(staggered(d))
    eng.process(waiter())
    eng.process(firer())
    eng.run()
    obs.assert_clean(eng)
    return {
        "details": (
            f"{obs.n_started} processes, {obs.n_scheduled} schedules, "
            f"{obs.n_advanced} advances, clock monotone"
        ),
        "n_scheduled": obs.n_scheduled,
        "n_advanced": obs.n_advanced,
    }


def check_no_negative_delay() -> str:
    """The engine's guards against scheduling into the past are active."""
    eng = Engine()
    try:
        eng._schedule(-1e-9, lambda arg: None, None)
    except SimulationError:
        pass
    else:
        raise CheckFailure("negative _schedule delay was accepted")

    eng2 = Engine()

    def worker():
        yield Timeout(10.0)

    eng2.process(worker())
    eng2.run(until=5.0)
    try:
        eng2.run(until=1.0)
    except SimulationError:
        pass
    else:
        raise CheckFailure("run(until=past) moved the clock backwards")
    return "negative-delay and backwards-until guards active"


def _coverage_failure(kind: str, context: str, counts: np.ndarray) -> str:
    missed = np.nonzero(counts == 0)[0]
    dupe = np.nonzero(counts > 1)[0]
    parts = []
    if missed.size:
        parts.append(f"{missed.size} iteration(s) never executed "
                     f"(first: {int(missed[0])})")
    if dupe.size:
        parts.append(f"{dupe.size} iteration(s) executed more than once "
                     f"(first: {int(dupe[0])})")
    return f"{kind} {context}: " + "; ".join(parts)


def check_loop_iteration_coverage(
    n_iters: int = 257, seed: int = 0
) -> dict:
    """Every loop iteration executes exactly once across chunks, no worker
    overlaps itself, and no phantom workers appear — on every schedule.

    Uses :func:`simulate_loop`'s ``on_chunk`` instrumentation plus an
    :class:`InvariantObserver` on the underlying engine.
    """
    rng = np.random.default_rng(seed)
    costs = rng.uniform(0.5, 1.5, size=n_iters)
    cases = [
        ("static", 1, 1), ("static", 7, 1), ("static", 8, 3),
        ("dynamic", 4, 1), ("dynamic", 7, 5), ("dynamic", 16, 32),
        ("guided", 4, 1), ("guided", 8, 2),
    ]
    total_chunks = 0
    for kind, workers, chunk in cases:
        counts = np.zeros(n_iters, dtype=np.int64)
        intervals: dict[int, list[tuple[float, float]]] = {}
        obs = InvariantObserver()

        def on_chunk(w, lo, hi, start, duration):
            counts[lo:hi] += 1
            intervals.setdefault(w, []).append((start, start + duration))

        simulate_loop(
            costs, workers, schedule=kind, chunk=chunk,
            dispatch_time=1e-3, on_chunk=on_chunk, engine_observer=obs,
        )
        context = f"(T={workers}, chunk={chunk}, n={n_iters})"
        if (counts != 1).any():
            raise CheckFailure(_coverage_failure(kind, context, counts))
        if len(intervals) > workers:
            raise CheckFailure(
                f"{kind} {context}: {len(intervals)} workers executed "
                f"chunks but the team has only {workers}"
            )
        for w, spans in intervals.items():
            spans.sort()
            for (_, end_a), (start_b, _) in zip(spans, spans[1:]):
                if start_b < end_a - 1e-12:
                    raise CheckFailure(
                        f"{kind} {context}: worker {w} executed overlapping "
                        f"chunks ([..{end_a}] vs [{start_b}..])"
                    )
            total_chunks += len(spans)
        obs.assert_clean()
    return {
        "details": f"{len(cases)} schedule cases, {total_chunks} chunks, "
                   f"every iteration exactly once",
        "n_cases": len(cases),
        "n_chunks": total_chunks,
    }


def check_schedule_chunk_coverage() -> dict:
    """:func:`iterate_chunks` tiles the iteration space exactly once and
    its chunk counts agree with the analytic model's closed forms."""
    from repro.runtime.schedule import _guided_chunks

    cases = [
        ("static", 100, 8, None), ("static", 7, 12, None),
        ("static", 100, 8, 13), ("static", 64, 4, 16),
        ("dynamic", 100, 8, 1), ("dynamic", 101, 8, 7),
        ("dynamic", 5, 16, 3),
        ("guided", 100, 8, None), ("guided", 1000, 16, 4),
        ("guided", 33, 48, None),
    ]
    for kind, n, T, chunk in cases:
        counts = np.zeros(n, dtype=np.int64)
        n_chunks = 0
        prev_hi = 0
        for lo, hi in iterate_chunks(kind, n, T, chunk):
            if not (0 <= lo <= hi <= n):
                raise CheckFailure(
                    f"{kind}(n={n}, T={T}, chunk={chunk}): chunk "
                    f"[{lo}, {hi}) out of bounds"
                )
            if kind != "static" or chunk is not None:
                # Dispatch-ordered schedules hand out ranges in order.
                if lo != prev_hi:
                    raise CheckFailure(
                        f"{kind}(n={n}, T={T}, chunk={chunk}): gap or "
                        f"overlap at iteration {prev_hi} (next chunk "
                        f"starts at {lo})"
                    )
            counts[lo:hi] += 1
            prev_hi = hi
            n_chunks += 1
        context = f"(n={n}, T={T}, chunk={chunk})"
        if (counts != 1).any():
            raise CheckFailure(_coverage_failure(kind, context, counts))

        # Cross-validate against the closed forms the pricing model uses.
        if kind == "static" and chunk is None:
            expected = min(T, n)
        elif kind in ("static", "dynamic"):
            expected = max(1, -(-n // (chunk or 1)))
        else:
            expected = None  # guided closed form is approximate
        if expected is not None and n_chunks != expected:
            raise CheckFailure(
                f"{kind} {context}: enumerated {n_chunks} chunks, closed "
                f"form predicts {expected}"
            )
        if kind == "guided" and (chunk is None or chunk == 1):
            approx = min(_guided_chunks(n, T), n)
            if not (0.3 * approx <= n_chunks <= 3.0 * approx + T):
                raise CheckFailure(
                    f"guided {context}: enumerated {n_chunks} chunks, far "
                    f"from the analytic approximation {approx}"
                )
    return {"details": f"{len(cases)} (schedule, n, T, chunk) cases tiled "
                       "exactly once, counts match closed forms",
            "n_cases": len(cases)}


def check_work_stealing_conservation() -> dict:
    """Work stealing executes every task in the graph exactly once, and
    the per-task spans account for the reported busy time."""
    graphs = [
        ("balanced", TaskGraph.balanced_tree(4, 3, leaf_work=1e-4,
                                             node_work=2e-5)),
        ("chain", _chain_graph(40, 5e-5)),
        ("wide", TaskGraph.balanced_tree(1, 64, leaf_work=3e-5)),
    ]
    for name, graph in graphs:
        for workers in (1, 4, 7):
            executed: dict[int, int] = {}
            span_total = 0.0

            def on_task(w, tid, start, end):
                nonlocal span_total
                executed[tid] = executed.get(tid, 0) + 1
                span_total += end - start

            sim = WorkStealingSimulator(workers, seed=3)
            result = sim.run(graph, on_task=on_task)
            context = f"{name} graph, T={workers}"
            if len(executed) != graph.n_tasks:
                raise CheckFailure(
                    f"{context}: executed {len(executed)} distinct tasks, "
                    f"graph has {graph.n_tasks}"
                )
            dupes = [t for t, c in executed.items() if c != 1]
            if dupes:
                raise CheckFailure(
                    f"{context}: task(s) {dupes[:5]} executed more than once"
                )
            if not np.isclose(span_total, result.busy_time, rtol=1e-9):
                raise CheckFailure(
                    f"{context}: per-task spans sum to {span_total}, "
                    f"simulator reports busy_time={result.busy_time}"
                )
    return {"details": f"{len(graphs)} graphs x 3 team sizes: every task "
                       "exactly once, busy time conserved",
            "n_graphs": len(graphs)}


def _chain_graph(length: int, work: float) -> TaskGraph:
    """A dependency chain: each task spawns exactly one child."""
    graph = TaskGraph()
    prev: tuple[int, ...] = ()
    for _ in range(length):
        prev = (graph.add(work, prev),)
    graph.root = prev[0]
    return graph
