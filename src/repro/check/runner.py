"""Suite orchestration for the verification subsystem.

Maps suite names to their checks, runs them under the uniform
:func:`~repro.check.result.run_check` harness, and renders results for
the CLI and the JSON parity-report artifact.  The pytest suite
(``-m check``) exercises the same check functions, so CI and users run
identical machinery.
"""

from __future__ import annotations

from pathlib import Path

from repro.check import differential, invariants, metamorphic
from repro.check.result import CheckResult, run_check
from repro.errors import CheckFailure

__all__ = [
    "SUITES",
    "run_suite",
    "run_all",
    "format_results",
    "write_report",
]

#: Suite name -> ordered (check name, zero-arg callable) pairs.
SUITES: dict[str, tuple] = {
    "invariants": (
        ("engine-invariants", invariants.check_engine_invariants),
        ("no-negative-delay", invariants.check_no_negative_delay),
        ("loop-iteration-coverage", invariants.check_loop_iteration_coverage),
        ("schedule-chunk-coverage", invariants.check_schedule_chunk_coverage),
        ("work-stealing-conservation",
         invariants.check_work_stealing_conservation),
    ),
    "metamorphic": (
        ("cost-scaling", metamorphic.relation_cost_scaling),
        ("serial-phase-threads", metamorphic.relation_serial_phase_threads),
        ("blocktime-bracketing", metamorphic.relation_blocktime_bracketing),
        ("default-speedup-unity", metamorphic.relation_default_speedup_unity),
    ),
    "differential": (
        ("execution-path-parity", differential.differential_parity),
        ("equivalence-pruning-parity", differential.pruning_parity),
        ("resilience-degrade-parity",
         differential.resilience_degrade_parity),
        ("columnar-pipeline-parity",
         differential.columnar_pipeline_parity),
        ("sharded-execution-parity",
         differential.sharded_execution_parity),
        ("service-degrade-parity",
         differential.service_degrade_parity),
        ("golden-traces", differential.golden_trace_check),
    ),
}


def run_suite(
    suite: str,
    golden_dir: str | Path | None = None,
    quick: bool = True,
) -> list[CheckResult]:
    """Run one suite's checks; never raises on check failure.

    ``quick`` selects the scaled-down differential parity plan (the
    default, and what ``repro check --quick`` / CI run); ``quick=False``
    replays the denser :func:`~repro.check.differential.full_plan`.
    """
    if suite not in SUITES:
        raise CheckFailure(
            f"unknown check suite {suite!r}; have {sorted(SUITES)}"
        )
    results = []
    for name, fn in SUITES[suite]:
        if name == "golden-traces":
            body = lambda fn=fn: fn(golden_dir=golden_dir)
        elif (
            name in ("execution-path-parity", "equivalence-pruning-parity",
                     "resilience-degrade-parity",
                     "columnar-pipeline-parity",
                     "sharded-execution-parity",
                     "service-degrade-parity")
            and not quick
        ):
            body = lambda fn=fn: fn(plan=differential.full_plan())
        else:
            body = fn
        results.append(run_check(name, suite, body))
    return results


def run_all(
    suites: tuple[str, ...] | None = None,
    golden_dir: str | Path | None = None,
    quick: bool = True,
) -> list[CheckResult]:
    """Run the selected suites (default: all, in catalog order)."""
    out: list[CheckResult] = []
    for suite in suites or tuple(SUITES):
        out.extend(run_suite(suite, golden_dir=golden_dir, quick=quick))
    return out


def format_results(results: list[CheckResult]) -> str:
    """Human-readable summary, one line per check plus a verdict."""
    lines = []
    width = max((len(r.name) for r in results), default=0)
    current_suite = None
    for r in results:
        if r.suite != current_suite:
            current_suite = r.suite
            lines.append(f"[{current_suite}]")
        mark = "PASS" if r.passed else "FAIL"
        lines.append(
            f"  {mark}  {r.name:<{width}}  {r.duration_s * 1e3:7.1f} ms"
            + (f"  {r.details}" if r.details else "")
        )
    n_failed = sum(1 for r in results if not r.passed)
    total = sum(r.duration_s for r in results)
    verdict = (
        f"{len(results)} checks passed"
        if n_failed == 0
        else f"{n_failed}/{len(results)} checks FAILED"
    )
    lines.append(f"{verdict} in {total:.2f} s")
    return "\n".join(lines)


def write_report(results: list[CheckResult], path: str | Path) -> None:
    """Write the JSON report artifact (the CI differential-parity report).

    Delegates to :mod:`repro.reporting` — the shared serialization point
    for all three analysis-plane CLIs — so the artifact shape matches
    ``repro-omp check --format json`` exactly.
    """
    from repro.reporting import write_report_file

    write_report_file(path, checks=results)
