"""Metamorphic relations on the runtime model.

These checks assert model-level *laws*: transformations of the input with
a known, provable effect on the output.  No oracle runtimes are needed —
only the relation between two runs of the model.

Relations (each raises :class:`~repro.errors.CheckFailure` on violation):

- **cost-scaling homogeneity** — the overhead model is linear in the
  time-valued cost primitives, so scaling them by ``k`` scales
  fork/join/reduction/task-acquire costs *exactly* by ``k``; whole-program
  runtimes are monotone in ``k`` and bracketed by
  ``f(1) <= f(k) <= k * f(1)`` for ``k >= 1`` (compute does not scale, and
  the dynamic dispatch-bound branch makes overhead piecewise-linear, which
  is why the whole-program law is a bracket rather than an equality),
- **serial phases and threads** — adding threads never increases a serial
  phase under the default (passive) wait policy,
- **blocktime bracketing** — ``KMP_BLOCKTIME=0`` and ``infinite`` are the
  extreme wait policies; the default (200 ms) runtime lies within their
  envelope for every workload/machine sampled,
- **default-speedup unity** — after :func:`enrich_with_speedup`, every
  all-default configuration row has speedup exactly 1.0.
"""

from __future__ import annotations

import math

from repro.arch.machines import get_machine
from repro.errors import CheckFailure
from repro.runtime.affinity import compute_placement
from repro.runtime.barrier import fork_seconds, join_seconds
from repro.runtime.costs import get_costs, scale_costs
from repro.runtime.executor import RuntimeExecutor
from repro.runtime.icv import EnvConfig, resolve_icvs
from repro.runtime.kernel import task_acquire_seconds
from repro.runtime.reduction import reduction_seconds
from repro.workloads import get_workload

__all__ = [
    "relation_cost_scaling",
    "relation_serial_phase_threads",
    "relation_blocktime_bracketing",
    "relation_default_speedup_unity",
]

#: (arch, workload) pairs exercised by the relations — one loop-parallel
#: NPB code, one task-parallel BOTS code, across all three machines.
DEFAULT_SAMPLES = (
    ("milan", "cg"),
    ("skylake", "xsbench"),
    ("a64fx", "nqueens"),
)


def _program(workload_name: str):
    w = get_workload(workload_name)
    return w.program(w.inputs[0])


def relation_cost_scaling(factors=(2.0, 5.0, 0.5)) -> dict:
    """Homogeneity of the overhead model in the time-valued cost fields."""
    n_exact = 0
    n_bracket = 0
    for arch, workload_name in DEFAULT_SAMPLES:
        machine = get_machine(arch)
        base = get_costs(arch)
        config = EnvConfig(num_threads=machine.n_cores)
        icvs = resolve_icvs(config, machine)
        placement = compute_placement(icvs, machine)
        program = _program(workload_name)
        f1 = RuntimeExecutor(machine, config).execute(program)

        for k in factors:
            scaled = scale_costs(base, k)
            # Exact homogeneity of the overhead primitives.
            primitives = {
                "fork": (fork_seconds(icvs, base, True),
                         fork_seconds(icvs, scaled, True)),
                "join": (join_seconds(icvs, placement, base),
                         join_seconds(icvs, placement, scaled)),
                "reduction": (reduction_seconds(icvs, placement, base, 2),
                              reduction_seconds(icvs, placement, scaled, 2)),
                "task_acquire": (task_acquire_seconds(icvs, base),
                                 task_acquire_seconds(icvs, scaled)),
            }
            for name, (v1, vk) in primitives.items():
                if not math.isclose(vk, k * v1, rel_tol=1e-12, abs_tol=0.0):
                    raise CheckFailure(
                        f"{arch}: {name} cost does not scale by k={k}: "
                        f"{v1} -> {vk} (expected {k * v1})"
                    )
                n_exact += 1

            # Whole-program bracket: monotone in k, bounded by k*f(1).
            fk = RuntimeExecutor(machine, config, costs=scaled).execute(
                program
            )
            lo, hi = (min(1.0, k) * f1, max(1.0, k) * f1)
            if not (lo * (1 - 1e-9) <= fk <= hi * (1 + 1e-9)):
                raise CheckFailure(
                    f"{arch}/{workload_name}: runtime at cost scale k={k} "
                    f"is {fk}, outside bracket [{lo}, {hi}] (f(1)={f1})"
                )
            n_bracket += 1
    return {"details": f"{n_exact} exact primitive scalings, "
                       f"{n_bracket} whole-program brackets",
            "n_exact": n_exact, "n_bracket": n_bracket}


def relation_serial_phase_threads() -> dict:
    """Under the default (passive) wait policy, growing the team never
    slows a serial phase."""
    n_compared = 0
    for arch, workload_name in DEFAULT_SAMPLES:
        machine = get_machine(arch)
        program = _program(workload_name)
        thread_counts = sorted(
            {1, 2, machine.n_cores // 2 or 1, machine.n_cores}
        )
        prev_serial = None
        prev_T = None
        for T in thread_counts:
            executor = RuntimeExecutor(machine, EnvConfig(num_threads=T))
            serial = sum(
                c.seconds for c in executor.phase_costs(program)
                if c.kind == "serial"
            )
            if prev_serial is not None and serial > prev_serial * (1 + 1e-12):
                raise CheckFailure(
                    f"{arch}/{workload_name}: serial-phase time grew from "
                    f"{prev_serial} (T={prev_T}) to {serial} (T={T}) under "
                    "the default wait policy"
                )
            prev_serial, prev_T = serial, T
            n_compared += 1
    return {"details": f"{n_compared} (arch, workload, T) serial-phase "
                       "evaluations, non-increasing in T",
            "n_compared": n_compared}


def relation_blocktime_bracketing() -> dict:
    """The default blocktime's runtime lies inside the [0, infinite]
    wait-policy envelope."""
    n_checked = 0
    for arch, workload_name in DEFAULT_SAMPLES:
        machine = get_machine(arch)
        program = _program(workload_name)
        T = machine.n_cores
        runtimes = {}
        for bt in ("0", "unset", "infinite"):
            config = EnvConfig(
                num_threads=T,
                blocktime=bt if bt != "unset" else "unset",
            )
            runtimes[bt] = RuntimeExecutor(machine, config).execute(program)
        lo = min(runtimes["0"], runtimes["infinite"])
        hi = max(runtimes["0"], runtimes["infinite"])
        mid = runtimes["unset"]
        if not (lo * (1 - 1e-9) <= mid <= hi * (1 + 1e-9)):
            raise CheckFailure(
                f"{arch}/{workload_name}: default-blocktime runtime {mid} "
                f"falls outside the [blocktime=0, infinite] envelope "
                f"[{lo}, {hi}]"
            )
        n_checked += 1
    return {"details": f"{n_checked} (arch, workload) envelopes verified",
            "n_checked": n_checked}


def relation_default_speedup_unity() -> dict:
    """Every all-default row has speedup exactly 1.0 after enrichment."""
    import numpy as np

    from repro.core.dataset import (
        _is_default_row,
        enrich_with_speedup,
        records_to_table,
    )
    from repro.core.sweep import SweepPlan, run_sweep

    plan = SweepPlan(arch="milan", workload_names=("cg",), scale="small",
                     repetitions=2)
    table = enrich_with_speedup(records_to_table(run_sweep(plan).records))
    mask = _is_default_row(table)
    if not mask.any():
        raise CheckFailure("sweep produced no all-default rows")
    speedups = np.asarray(table.column("speedup"), dtype=float)[mask]
    off = speedups != 1.0
    if off.any():
        raise CheckFailure(
            f"{int(off.sum())} default row(s) have speedup != 1.0 "
            f"(first: {speedups[off][0]!r})"
        )
    return {"details": f"{int(mask.sum())} default rows, all speedup==1.0",
            "n_default_rows": int(mask.sum())}
