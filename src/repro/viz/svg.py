"""Minimal SVG document builder.

Just enough vector primitives for the reproduction's figures: paths,
polygons, rectangles, lines and text, with sane defaults and numeric
formatting that keeps files small.  No external dependencies.
"""

from __future__ import annotations

import io
from xml.sax.saxutils import escape

from repro.errors import VizError

__all__ = ["SVGCanvas"]


def _fmt(x: float) -> str:
    """Compact numeric formatting for attribute values."""
    if x == int(x):
        return str(int(x))
    return f"{x:.2f}"


class SVGCanvas:
    """An append-only SVG document of fixed size."""

    def __init__(self, width: float, height: float, background: str = "white"):
        if width <= 0 or height <= 0:
            raise VizError(f"canvas size must be positive, got {width}x{height}")
        self.width = width
        self.height = height
        self._parts: list[str] = []
        if background:
            self.rect(0, 0, width, height, fill=background, stroke="none")

    # ------------------------------------------------------------------
    def rect(
        self,
        x: float,
        y: float,
        w: float,
        h: float,
        fill: str = "none",
        stroke: str = "black",
        stroke_width: float = 1.0,
        opacity: float = 1.0,
        title: str | None = None,
    ) -> None:
        """Axis-aligned rectangle; ``title`` adds a hover tooltip."""
        body = (
            f'<rect x="{_fmt(x)}" y="{_fmt(y)}" width="{_fmt(w)}" '
            f'height="{_fmt(h)}" fill="{fill}" stroke="{stroke}" '
            f'stroke-width="{_fmt(stroke_width)}" opacity="{_fmt(opacity)}"'
        )
        if title:
            self._parts.append(f"{body}><title>{escape(title)}</title></rect>")
        else:
            self._parts.append(f"{body}/>")

    def line(
        self,
        x1: float,
        y1: float,
        x2: float,
        y2: float,
        stroke: str = "black",
        stroke_width: float = 1.0,
        dash: str | None = None,
    ) -> None:
        """Straight line segment."""
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self._parts.append(
            f'<line x1="{_fmt(x1)}" y1="{_fmt(y1)}" x2="{_fmt(x2)}" '
            f'y2="{_fmt(y2)}" stroke="{stroke}" '
            f'stroke-width="{_fmt(stroke_width)}"{dash_attr}/>'
        )

    def polygon(
        self,
        points: list[tuple[float, float]],
        fill: str = "steelblue",
        stroke: str = "none",
        opacity: float = 1.0,
    ) -> None:
        """Closed polygon from a vertex list."""
        if len(points) < 3:
            raise VizError("polygon needs at least 3 points")
        pts = " ".join(f"{_fmt(x)},{_fmt(y)}" for x, y in points)
        self._parts.append(
            f'<polygon points="{pts}" fill="{fill}" stroke="{stroke}" '
            f'opacity="{_fmt(opacity)}"/>'
        )

    def circle(
        self,
        cx: float,
        cy: float,
        r: float,
        fill: str = "black",
        stroke: str = "none",
    ) -> None:
        """Filled circle marker."""
        self._parts.append(
            f'<circle cx="{_fmt(cx)}" cy="{_fmt(cy)}" r="{_fmt(r)}" '
            f'fill="{fill}" stroke="{stroke}"/>'
        )

    def text(
        self,
        x: float,
        y: float,
        content: str,
        size: float = 12.0,
        anchor: str = "start",
        rotate: float = 0.0,
        fill: str = "black",
        family: str = "sans-serif",
    ) -> None:
        """Text; ``anchor`` in start/middle/end; ``rotate`` in degrees
        about the anchor point."""
        transform = (
            f' transform="rotate({_fmt(rotate)} {_fmt(x)} {_fmt(y)})"'
            if rotate
            else ""
        )
        self._parts.append(
            f'<text x="{_fmt(x)}" y="{_fmt(y)}" font-size="{_fmt(size)}" '
            f'text-anchor="{anchor}" fill="{fill}" '
            f'font-family="{family}"{transform}>{escape(content)}</text>'
        )

    # ------------------------------------------------------------------
    def to_string(self) -> str:
        """The complete SVG document."""
        buf = io.StringIO()
        buf.write(
            '<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{_fmt(self.width)}" height="{_fmt(self.height)}" '
            f'viewBox="0 0 {_fmt(self.width)} {_fmt(self.height)}">\n'
        )
        for p in self._parts:
            buf.write(p)
            buf.write("\n")
        buf.write("</svg>\n")
        return buf.getvalue()

    def save(self, path: str) -> None:
        """Write the document to a file."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_string())
