"""Influence heat maps (Figs. 2-4): darker cell = larger influence."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.influence import InfluenceMatrix
from repro.errors import VizError
from repro.viz.svg import SVGCanvas

__all__ = ["heatmap", "influence_heatmap"]


def _shade(value: float, vmax: float) -> str:
    """Map [0, vmax] to a white -> dark-blue ramp."""
    if vmax <= 0:
        t = 0.0
    else:
        t = min(max(value / vmax, 0.0), 1.0)
    # Interpolate white (255,255,255) -> dark blue (16, 42, 99).
    r = int(round(255 + (16 - 255) * t))
    g = int(round(255 + (42 - 255) * t))
    b = int(round(255 + (99 - 255) * t))
    return f"#{r:02x}{g:02x}{b:02x}"


def heatmap(
    matrix: np.ndarray,
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    title: str = "",
    cell: float = 34.0,
    annotate: bool = True,
) -> SVGCanvas:
    """Render a (rows x cols) matrix as a shaded grid."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise VizError(f"heatmap needs a 2-D matrix, got shape {matrix.shape}")
    n_rows, n_cols = matrix.shape
    if n_rows != len(row_labels) or n_cols != len(col_labels):
        raise VizError("label counts must match matrix shape")

    margin_l = 10 + 7.2 * max((len(l) for l in row_labels), default=4)
    margin_t = 30 + 5.6 * max((len(l) for l in col_labels), default=4)
    width = margin_l + cell * n_cols + 20
    height = margin_t + cell * n_rows + 20

    canvas = SVGCanvas(width, height)
    if title:
        canvas.text(width / 2, 18, title, size=14, anchor="middle")

    vmax = float(matrix.max()) if matrix.size else 1.0
    for j, cl in enumerate(col_labels):
        canvas.text(
            margin_l + cell * (j + 0.5) + 4,
            margin_t - 6,
            cl,
            size=10,
            anchor="start",
            rotate=-55,
        )
    for i, rl in enumerate(row_labels):
        canvas.text(
            margin_l - 6,
            margin_t + cell * (i + 0.5) + 4,
            rl,
            size=10,
            anchor="end",
        )
        for j in range(n_cols):
            v = float(matrix[i, j])
            canvas.rect(
                margin_l + cell * j,
                margin_t + cell * i,
                cell,
                cell,
                fill=_shade(v, vmax),
                stroke="#ccc",
                stroke_width=0.5,
                title=f"{rl} / {col_labels[j]}: {v:.3f}",
            )
            if annotate:
                dark = vmax > 0 and v / vmax > 0.55
                canvas.text(
                    margin_l + cell * (j + 0.5),
                    margin_t + cell * (i + 0.62),
                    f"{v:.2f}",
                    size=9,
                    anchor="middle",
                    fill="#eee" if dark else "#333",
                )
    return canvas


def influence_heatmap(influence: InfluenceMatrix, title: str = "") -> SVGCanvas:
    """Heat map straight from an :class:`InfluenceMatrix` (Figs. 2-4)."""
    return heatmap(
        influence.matrix(),
        influence.row_labels,
        list(influence.feature_names),
        title=title or f"Feature influence ({influence.grouping})",
    )
