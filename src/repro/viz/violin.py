"""Violin plots of runtime distributions (Figs. 1, 5-7).

One violin per (architecture, setting) showing the spread of runtimes over
the configuration sweep, with median and quartile markers — the figure
family the paper uses to demonstrate non-normal, widely-spread performance
distributions.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import VizError
from repro.stats.distribution import ViolinStats, violin_stats
from repro.viz.svg import SVGCanvas

__all__ = ["violin_plot"]

_PALETTE = ("#4878a8", "#e49444", "#6a9f58", "#b65d60", "#8767a8", "#857aab")


def violin_plot(
    samples: Sequence[np.ndarray],
    labels: Sequence[str],
    title: str = "",
    ylabel: str = "runtime (s)",
    width: float = 900.0,
    height: float = 420.0,
    log_scale: bool = False,
    markers: Sequence[float] | None = None,
    extra_markers: Sequence[float | None] | None = None,
) -> SVGCanvas:
    """Render one violin per sample.

    Parameters
    ----------
    samples, labels:
        Parallel sequences — one distribution and its x-axis label each.
    log_scale:
        Plot on log10(runtime); useful when sweeps span decades (they do).
    markers:
        Optional per-violin highlight values (red dots; e.g. each
        setting's own best configuration).
    extra_markers:
        A second marker family (orange diamonds; e.g. where one reference
        setting's best configuration lands on every *other* setting —
        Fig. 1's cross-setting marks).  ``None`` entries skip a violin.
    """
    if len(samples) != len(labels) or not samples:
        raise VizError("need equally many non-empty samples and labels")
    if markers is not None and len(markers) != len(samples):
        raise VizError("markers must align with samples")
    if extra_markers is not None and len(extra_markers) != len(samples):
        raise VizError("extra_markers must align with samples")

    transformed = []
    for s in samples:
        s = np.asarray(s, dtype=float)
        if s.size == 0:
            raise VizError("empty sample")
        if log_scale:
            if (s <= 0).any():
                raise VizError("log scale requires positive runtimes")
            s = np.log10(s)
        transformed.append(s)

    stats: list[ViolinStats] = [
        violin_stats(s, label=l) for s, l in zip(transformed, labels)
    ]

    margin_l, margin_r, margin_t, margin_b = 70.0, 20.0, 40.0, 70.0
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b

    lo = min(float(v.grid.min()) for v in stats)
    hi = max(float(v.grid.max()) for v in stats)
    if hi == lo:
        hi = lo + 1.0

    def y_of(value: float) -> float:
        return margin_t + plot_h * (1.0 - (value - lo) / (hi - lo))

    canvas = SVGCanvas(width, height)
    if title:
        canvas.text(width / 2, 22, title, size=15, anchor="middle")
    canvas.text(
        16, margin_t + plot_h / 2,
        f"log10 {ylabel}" if log_scale else ylabel,
        size=12, anchor="middle", rotate=-90,
    )

    # Axes and y ticks.
    canvas.line(margin_l, margin_t, margin_l, margin_t + plot_h)
    canvas.line(
        margin_l, margin_t + plot_h, margin_l + plot_w, margin_t + plot_h
    )
    for tick in np.linspace(lo, hi, 6):
        y = y_of(float(tick))
        canvas.line(margin_l - 4, y, margin_l, y)
        canvas.text(margin_l - 8, y + 4, f"{tick:.3g}", size=10, anchor="end")

    slot = plot_w / len(stats)
    half_max = 0.42 * slot
    for k, v in enumerate(stats):
        cx = margin_l + slot * (k + 0.5)
        color = _PALETTE[k % len(_PALETTE)]
        peak = v.peak_density or 1.0
        left = [
            (cx - half_max * d / peak, y_of(g))
            for g, d in zip(v.grid.tolist(), v.density.tolist())
        ]
        right = [
            (cx + half_max * d / peak, y_of(g))
            for g, d in zip(v.grid.tolist()[::-1], v.density.tolist()[::-1])
        ]
        canvas.polygon(left + right, fill=color, opacity=0.55)
        # Quartile box and median.
        canvas.line(cx, y_of(v.minimum), cx, y_of(v.maximum), stroke="#333",
                    stroke_width=0.8)
        canvas.rect(cx - 4, y_of(v.q3), 8, max(y_of(v.q1) - y_of(v.q3), 0.5),
                    fill="#333", stroke="none", opacity=0.85,
                    title=f"{v.label}: median={v.median:.4g} n={v.n}")
        canvas.circle(cx, y_of(v.median), 2.6, fill="white")
        if markers is not None:
            m = markers[k]
            mval = np.log10(m) if log_scale else m
            canvas.circle(cx, y_of(float(mval)), 4.0, fill="#d62728",
                          stroke="black")
        if extra_markers is not None and extra_markers[k] is not None:
            m = float(extra_markers[k])
            mval = np.log10(m) if log_scale else m
            y = y_of(float(mval))
            canvas.polygon(
                [(cx - 5, y), (cx, y - 5), (cx + 5, y), (cx, y + 5)],
                fill="#ff7f0e", stroke="black",
            )
        canvas.text(cx, margin_t + plot_h + 16, v.label, size=10,
                    anchor="middle", rotate=0 if len(v.label) <= 12 else 0)
        canvas.text(cx, margin_t + plot_h + 30, f"n={v.n}", size=9,
                    anchor="middle", fill="#666")
    return canvas
