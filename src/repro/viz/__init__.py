"""Visualization: SVG violin plots and influence heat maps.

Matplotlib is not available offline, so the figures are rendered as
self-contained SVG documents via a small primitive layer
(:mod:`~repro.viz.svg`), with terminal-text fallbacks
(:mod:`~repro.viz.text`) for quick inspection:

- :func:`~repro.viz.violin.violin_plot` — Figs. 1, 5-7 (runtime
  distributions over the full sweep, one violin per architecture x input
  setting),
- :func:`~repro.viz.heatmap.heatmap` — Figs. 2-4 (feature-influence
  matrices; darker = more influential).
"""

from repro.viz.svg import SVGCanvas
from repro.viz.violin import violin_plot
from repro.viz.heatmap import heatmap, influence_heatmap
from repro.viz.text import text_heatmap, text_histogram

__all__ = [
    "SVGCanvas",
    "violin_plot",
    "heatmap",
    "influence_heatmap",
    "text_heatmap",
    "text_histogram",
]
