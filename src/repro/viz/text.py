"""Terminal-text renderings of the figures (for CLI reports and docs)."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import VizError

__all__ = ["text_heatmap", "text_histogram"]

_SHADES = " .:-=+*#%@"


def text_heatmap(
    matrix: np.ndarray,
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    cell_width: int = 6,
) -> str:
    """ASCII heat map: denser glyph = larger value (column header first)."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise VizError(f"need a 2-D matrix, got {matrix.shape}")
    n_rows, n_cols = matrix.shape
    if n_rows != len(row_labels) or n_cols != len(col_labels):
        raise VizError("label counts must match matrix shape")
    vmax = float(matrix.max()) if matrix.size else 1.0
    label_w = max((len(l) for l in row_labels), default=4)

    # Full column names as a numbered legend; the grid header shows the
    # numbers (labels like KMP_FORCE_REDUCTION never fit a cell).
    lines = [
        "columns: "
        + "  ".join(f"[{j + 1}] {c}" for j, c in enumerate(col_labels))
    ]
    header = " " * (label_w + 1) + "".join(
        f"[{j + 1}]".ljust(cell_width) for j in range(n_cols)
    )
    lines.append(header)
    for i, rl in enumerate(row_labels):
        cells = []
        for j in range(n_cols):
            v = matrix[i, j]
            t = 0.0 if vmax <= 0 else min(max(v / vmax, 0.0), 1.0)
            glyph = _SHADES[int(round(t * (len(_SHADES) - 1)))]
            cells.append(f"{glyph}{v:4.2f}".ljust(cell_width))
        lines.append(rl.ljust(label_w) + " " + "".join(cells))
    return "\n".join(lines)


def text_histogram(
    sample: np.ndarray, bins: int = 24, width: int = 50, title: str = ""
) -> str:
    """Horizontal ASCII histogram of a 1-D sample."""
    sample = np.asarray(sample, dtype=float)
    if sample.ndim != 1 or sample.size == 0:
        raise VizError("need a non-empty 1-D sample")
    counts, edges = np.histogram(sample, bins=bins)
    peak = counts.max() or 1
    lines = [title] if title else []
    for c, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(width * c / peak))
        lines.append(f"{lo:10.4g} - {hi:10.4g} | {bar} {c}")
    return "\n".join(lines)
