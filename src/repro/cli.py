"""``repro-omp`` command-line interface.

Subcommands mirror the study's workflow:

- ``machines`` — print Table I (the machine models),
- ``sweep`` — run a sweep and write the dataset CSV,
- ``analyze`` — read a dataset CSV, print speedup summaries and influence
  heat maps (text), optionally write SVG figures,
- ``recommend`` — print per-app/arch tuning recommendations and worst
  trends from a dataset CSV,
- ``tune`` — hill-climb one workload on one machine, optionally with
  influence-guided pruning,
- ``release`` — package a dataset CSV as the per-(arch, app) file tree
  the paper open-sources,
- ``energy`` — runtime/energy/EDP profile of one workload across the
  headline configurations,
- ``microbench`` — EPCC-style per-construct overhead probes of the
  simulated runtime,
- ``trace`` — phase timeline of one run, optionally exported as Chrome
  trace JSON,
- ``check`` — run the simulation verification suites (invariants,
  metamorphic relations, differential parity + golden traces; see
  ``docs/TESTING.md``),
- ``lint`` — static analysis: configuration/program lint against the ICV
  derivation rules, ICV-equivalence pruning statistics, and the
  simulator's determinism self-lint (see ``docs/LINTING.md``),
- ``sanitize`` — concurrency sanitizer: static RACE/DLK rules, vector-clock
  happens-before race detection, and the schedule-perturbation fuzzer
  over the simulated runtime (see ``docs/SANITIZER.md``),
- ``chaos`` — rehearse the sweep engine's failure handling: inject a
  seeded fault plan (worker crashes/hangs, corrupt payloads, node loss,
  shard partitions, cache corruption) into a degrade-mode sweep on any
  executor backend, then prove the resumed sweep is record-identical to
  a fault-free run (see ``docs/RESILIENCE.md``),
- ``workloads`` — the 15 benchmark models and their experimental design,
- ``figures`` — regenerate the paper's figure gallery (violins + heat
  maps) from a fresh sweep in one command,
- ``report`` — assemble a full Markdown study report from a dataset CSV.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.arch.machines import get_machine, hardware_table, machine_names
from repro.core.dataset import (
    aggregate_runs,
    enrich_with_speedup,
    records_to_table,
    speedup_summary,
)
from repro.core.envspace import EnvSpace
from repro.core.influence import (
    influence_by_application,
    influence_by_arch_application,
    influence_by_architecture,
)
from repro.core.labeling import label_optimal
from repro.core.pruning import hill_climb
from repro.core.recommend import best_variable_values, worst_trends
from repro.core.sweep import SweepPlan, run_sweep
from repro.errors import ReproError
from repro.frame.io import read_csv, write_csv
from repro.frame.table import Table
from repro.viz.heatmap import influence_heatmap
from repro.viz.text import text_heatmap
from repro.workloads.base import get_workload, workload_names

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-omp",
        description="LLVM/OpenMP runtime tuning study (SC 2024 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("machines", help="print the machine models (Table I)")

    p_sweep = sub.add_parser("sweep", help="run a sweep, write dataset CSV")
    p_sweep.add_argument("--arch", required=True, choices=machine_names())
    p_sweep.add_argument(
        "--workloads", nargs="*", default=None,
        help=f"subset of {workload_names()} (default: all for the arch)",
    )
    p_sweep.add_argument("--scale", default="small",
                         choices=EnvSpace.SCALES)
    p_sweep.add_argument("--repetitions", type=int, default=3)
    p_sweep.add_argument("--processes", type=int, default=1)
    p_sweep.add_argument("--backend", default="auto",
                         choices=("auto", "serial", "pool", "nodes"),
                         help="executor backend: in-process 'serial', the "
                              "supervised worker 'pool', or simulated "
                              "multi-node 'nodes' over socket links "
                              "(default: auto — pool when --processes > 1)")
    p_sweep.add_argument("--shards", type=int, default=1,
                         help="execution shards for the sharded backends; "
                              "records are bit-identical at any count "
                              "(default: 1)")
    p_sweep.add_argument("--seed", type=int, default=0)
    p_sweep.add_argument("--fidelity", default="analytic",
                         choices=("analytic", "des"),
                         help="task-region fidelity (default: analytic)")
    p_sweep.add_argument("--inputs-limit", type=int, default=None,
                         help="cap settings per workload (quick runs)")
    p_sweep.add_argument("--cache-dir", default=None,
                         help="persistent batch cache directory; batches "
                              "already cached are not re-simulated")
    p_sweep.add_argument("--resume", action="store_true",
                         help="resume from the batch cache (defaults "
                              "--cache-dir to <output>.cache)")
    p_sweep.add_argument("--no-cache", action="store_true",
                         help="ignore the batch cache even if --cache-dir/"
                              "--resume is given")
    p_sweep.add_argument("--no-prune", action="store_true",
                         help="simulate every grid point instead of one "
                              "representative per ICV-equivalence class "
                              "(results are identical either way)")
    p_sweep.add_argument("--fail-policy", default="raise",
                         choices=("raise", "degrade"),
                         help="on a batch that exhausts its retries: "
                              "'raise' aborts the sweep, 'degrade' skips "
                              "the batch and reports it (default: raise)")
    p_sweep.add_argument("--max-retries", type=int, default=None,
                         help="retry budget per failing batch "
                              "(default: the RetryPolicy default)")
    p_sweep.add_argument("--batch-timeout-s", type=float, default=None,
                         help="per-batch deadline in seconds "
                              "(default: scaled by batch size)")
    p_sweep.add_argument("--fsync-cache", action="store_true",
                         help="fsync every cache entry to stable storage "
                              "(durability for long unattended campaigns)")
    p_sweep.add_argument("--failure-report", default=None,
                         help="write the JSON failure report here")
    p_sweep.add_argument("-o", "--output", required=True,
                         help="dataset CSV path")

    p_an = sub.add_parser("analyze", help="analyze a dataset CSV")
    p_an.add_argument("dataset", help="CSV written by 'sweep'")
    p_an.add_argument("--figures-dir", default=None,
                      help="write SVG heat maps here")

    p_rec = sub.add_parser("recommend", help="recommendations from a dataset")
    p_rec.add_argument("dataset")
    p_rec.add_argument("--app", default=None)
    p_rec.add_argument("--quantile", type=float, default=0.05)

    p_tune = sub.add_parser("tune", help="hill-climb one workload")
    p_tune.add_argument("--arch", required=True, choices=machine_names())
    p_tune.add_argument("--workload", required=True)
    p_tune.add_argument("--input", default=None)
    p_tune.add_argument("--threads", type=int, default=None)
    p_tune.add_argument("--restarts", type=int, default=2)
    p_tune.add_argument("--seed", type=int, default=0)

    p_rel = sub.add_parser("release", help="package a dataset for release")
    p_rel.add_argument("dataset", help="CSV written by 'sweep'")
    p_rel.add_argument("-o", "--output", required=True,
                       help="release directory")
    p_rel.add_argument("--version", default="1.0")

    p_en = sub.add_parser("energy", help="energy/EDP profile of a workload")
    p_en.add_argument("--arch", required=True, choices=machine_names())
    p_en.add_argument("--workload", required=True)
    p_en.add_argument("--input", default=None)

    p_mb = sub.add_parser("microbench",
                          help="EPCC-style runtime overhead probes")
    p_mb.add_argument("--library", default=None,
                      choices=(None, "throughput", "turnaround"))
    p_mb.add_argument("--threads", type=int, default=None)

    p_wl = sub.add_parser("workloads", help="list the benchmark models")
    p_wl.add_argument("--arch", default="milan", choices=machine_names())

    p_rep = sub.add_parser("report",
                           help="write REPORT.md from a dataset CSV")
    p_rep.add_argument("dataset", help="CSV written by 'sweep'")
    p_rep.add_argument("-o", "--output", required=True,
                       help="report directory")
    p_rep.add_argument("--title", default="LLVM/OpenMP tuning study")

    p_fig = sub.add_parser("figures",
                           help="regenerate the paper figure gallery")
    p_fig.add_argument("-o", "--output", required=True,
                       help="directory for the SVGs")
    p_fig.add_argument("--scale", default="small", choices=EnvSpace.SCALES)
    p_fig.add_argument("--apps", nargs="*",
                       default=("alignment", "bt", "health", "rsbench"),
                       help="violin-figure applications (paper: Figs 1, 5-7)")
    p_fig.add_argument("--repetitions", type=int, default=2)

    p_chk = sub.add_parser(
        "check", help="run the simulation verification suites"
    )
    p_chk.add_argument("--suite", default="all",
                       choices=("invariants", "metamorphic", "differential",
                                "all"),
                       help="which suite to run (default: all)")
    p_chk.add_argument("--quick", action="store_true",
                       help="scaled-down differential grid (what CI runs)")
    p_chk.add_argument("--golden-dir", default=None,
                       help="golden-trace fixture directory "
                            "(default: tests/golden of the source tree)")
    p_chk.add_argument("--bless", action="store_true",
                       help="regenerate the golden-trace fixtures from the "
                            "current model instead of checking")
    p_chk.add_argument("--format", default="text", dest="fmt",
                       choices=("text", "json"),
                       help="stdout format (default: text)")
    p_chk.add_argument("--report", default=None,
                       help="write a JSON check report here")

    p_lint = sub.add_parser(
        "lint", help="static analysis of configs, programs, and the simulator"
    )
    p_lint.add_argument("--self", action="store_true", dest="self_lint",
                        help="run the determinism self-lint over src/repro")
    p_lint.add_argument("--flow", action="store_true",
                        help="run the interprocedural effect-analysis plane "
                             "(FLOW001-FLOW003) over src/repro")
    p_lint.add_argument("--deps", action="store_true",
                        help="run the signature-soundness dependency plane "
                             "(KEY001-KEY004) over src/repro")
    p_lint.add_argument("--src", default=None,
                        help="source root for --self/--flow/--deps (default: "
                             "the installed repro package)")
    p_lint.add_argument("--arch", nargs="*", default=None,
                        choices=machine_names(),
                        help="lint the benchmark manifests on these machines")
    p_lint.add_argument("--workloads", nargs="*", default=None,
                        help=f"manifest subset of {workload_names()}")
    p_lint.add_argument("--env", action="append", default=[],
                        metavar="VAR=VALUE",
                        help="environment setting to lint (repeatable); "
                             "parsed exactly like a real environment")
    p_lint.add_argument("--stats", action="store_true",
                        help="print ICV-equivalence pruning statistics for "
                             "each selected arch's full grid")
    p_lint.add_argument("--scale", default="full", choices=EnvSpace.SCALES,
                        help="grid scale for --stats (default: full)")
    p_lint.add_argument("--format", default="text", dest="fmt",
                        choices=("text", "json"),
                        help="stdout format (default: text)")
    p_lint.add_argument("--report", default=None,
                        help="write a JSON findings report here")

    p_san = sub.add_parser(
        "sanitize",
        help="concurrency sanitizer: RACE/DLK rules, happens-before "
             "tracking, schedule-perturbation fuzzing",
    )
    p_san.add_argument("--suite", default="all",
                       choices=("static", "hb", "fuzz", "all"),
                       help="which pass to run (default: all)")
    p_san.add_argument("--arch", nargs="*", default=None,
                       choices=machine_names(),
                       help="machines for the static pass (default: all)")
    p_san.add_argument("--workloads", nargs="*", default=None,
                       help=f"manifest subset of {workload_names()}")
    p_san.add_argument("--env", action="append", default=[],
                       metavar="VAR=VALUE",
                       help="sanitize one environment instead of the "
                            "registered manifests (repeatable)")
    p_san.add_argument("--seeds", type=int, default=5,
                       help="perturbation seeds for the fuzz pass "
                            "(default: 5)")
    p_san.add_argument("--format", default="text", dest="fmt",
                       choices=("text", "json"),
                       help="stdout format (default: text)")
    p_san.add_argument("--report", default=None,
                       help="write a JSON sanitize report here")

    p_ch = sub.add_parser(
        "chaos",
        help="rehearse sweep failure handling with seeded fault injection",
    )
    p_ch.add_argument("--arch", default="milan", choices=machine_names())
    p_ch.add_argument("--workloads", nargs="*",
                      default=("cg", "ep", "nqueens"),
                      help=f"subset of {workload_names()}")
    p_ch.add_argument("--scale", default="small", choices=EnvSpace.SCALES)
    p_ch.add_argument("--repetitions", type=int, default=2)
    p_ch.add_argument("--inputs-limit", type=int, default=2)
    p_ch.add_argument("--processes", type=int, default=2,
                      help="worker processes (1 = serial fault simulation)")
    p_ch.add_argument("--backend", default="auto",
                      choices=("auto", "serial", "pool", "nodes"),
                      help="executor backend for the degrade pass "
                           "(default: auto — pool when --processes > 1)")
    p_ch.add_argument("--shards", type=int, default=1,
                      help="execution shards for the degrade pass "
                           "(default: 1)")
    p_ch.add_argument("--seed", type=int, default=0,
                      help="chaos plan seed; same seed, same faults, "
                           "same failure report")
    p_ch.add_argument("--crashes", type=int, default=1)
    p_ch.add_argument("--hangs", type=int, default=1)
    p_ch.add_argument("--corrupt-results", type=int, default=1)
    p_ch.add_argument("--cache-faults", type=int, default=1,
                      help="on-disk cache corruptions (torn write or "
                           "bit flip), detected on the resume pass")
    p_ch.add_argument("--poison", type=int, default=1,
                      help="batches that fail every attempt and must be "
                           "quarantined")
    p_ch.add_argument("--node-lost", type=int, default=0,
                      help="abrupt node deaths mid-result (nodes backend; "
                           "pool/serial degrade them to process faults)")
    p_ch.add_argument("--shard-partitions", type=int, default=0,
                      help="shard network partitions (closed socket links) "
                           "recovered by reassignment")
    p_ch.add_argument("--max-retries", type=int, default=2)
    p_ch.add_argument("--batch-timeout-s", type=float, default=5.0)
    p_ch.add_argument("--cache-dir", default=None,
                      help="cache directory for the degrade+resume cycle "
                           "(default: a temporary directory)")
    p_ch.add_argument("--format", default="text", dest="fmt",
                      choices=("text", "json"),
                      help="stdout format (default: text)")
    p_ch.add_argument("--report", default=None,
                      help="write the JSON failure report here")
    p_ch.add_argument("--serve", action="store_true",
                      help="drive the serving daemon through the service "
                           "fault kinds (slow-client, backend-death-mid-"
                           "request, kill-during-drain) instead of a "
                           "direct sweep")
    p_ch.add_argument("--serve-requests", type=int, default=6,
                      help="scenario request count (--serve)")
    p_ch.add_argument("--slow-clients", type=int, default=1,
                      help="stalled-client faults to inject (--serve)")
    p_ch.add_argument("--backend-deaths", type=int, default=1,
                      help="mid-request backend deaths to inject (--serve)")
    p_ch.add_argument("--drain-kills", type=int, default=1,
                      help="SIGKILLs landed inside the drain window "
                           "(--serve)")
    p_ch.add_argument("--artifact-dir", default=None,
                      help="copy drain journals here for inspection "
                           "(--serve)")

    p_sv = sub.add_parser(
        "serve",
        help="run the tuning-as-a-service daemon (docs/SERVING.md)",
    )
    p_sv.add_argument("--host", default="127.0.0.1")
    p_sv.add_argument("--port", type=int, default=8077,
                      help="listen port (0 = ephemeral; see --port-file)")
    p_sv.add_argument("--backend", default="serial",
                      choices=("auto", "serial", "pool", "nodes"),
                      help="default executor backend for served sweeps "
                           "(top of the degradation ladder)")
    p_sv.add_argument("--shards", type=int, default=1)
    p_sv.add_argument("--max-inflight", type=int, default=2,
                      help="sweeps running concurrently (worker threads)")
    p_sv.add_argument("--max-queued", type=int, default=16,
                      help="admission bound; beyond it, 429 Retry-After")
    p_sv.add_argument("--deadline-s", type=float, default=60.0,
                      help="default per-request deadline")
    p_sv.add_argument("--drain-grace-s", type=float, default=5.0,
                      help="grace a SIGTERM drain waits before cancelling")
    p_sv.add_argument("--header-timeout-s", type=float, default=5.0,
                      help="per-read timeout; slower clients get 408")
    p_sv.add_argument("--rate", type=float, default=50.0,
                      help="token-bucket refill per client key, per second")
    p_sv.add_argument("--burst", type=int, default=100,
                      help="token-bucket capacity per client key")
    p_sv.add_argument("--cache-dir", default=None,
                      help="sweep cache shared with the CLI (recommended)")
    p_sv.add_argument("--state-dir", default=None,
                      help="drain-journal directory; enables resume "
                           "across restarts")
    p_sv.add_argument("--breaker-threshold", type=int, default=3,
                      help="consecutive backend failures that open the "
                           "circuit breaker")
    p_sv.add_argument("--breaker-cooldown-s", type=float, default=30.0,
                      help="open-state cooldown before half-open probes")
    p_sv.add_argument("--port-file", default=None,
                      help="write the bound port here once listening")
    p_sv.add_argument("--fsync", action="store_true",
                      help="fsync journal and cache writes (durability)")

    p_tr = sub.add_parser("trace", help="phase timeline of one run")
    p_tr.add_argument("--arch", required=True, choices=machine_names())
    p_tr.add_argument("--workload", required=True)
    p_tr.add_argument("--input", default=None)
    p_tr.add_argument("--library", default=None,
                      choices=(None, "throughput", "turnaround"))
    p_tr.add_argument("-o", "--output", default=None,
                      help="write Chrome trace JSON here")
    return parser


def _cmd_machines() -> int:
    print(Table.from_records(hardware_table()).to_text())
    return 0


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.0f}s"


def _sweep_cache(args: argparse.Namespace):
    """The batch cache the sweep flags select, or None."""
    if args.no_cache:
        return None
    cache_dir = args.cache_dir
    if cache_dir is None and args.resume:
        cache_dir = f"{args.output}.cache"
    if cache_dir is None:
        return None
    from repro.core.cache import SweepCache

    return SweepCache(cache_dir, fsync=getattr(args, "fsync_cache", False))


def _cmd_sweep(args: argparse.Namespace) -> int:
    import time

    plan = SweepPlan(
        arch=args.arch,
        workload_names=tuple(args.workloads) if args.workloads else None,
        scale=args.scale,
        repetitions=args.repetitions,
        inputs_limit=args.inputs_limit,
        seed=args.seed,
        fidelity=args.fidelity,
        prune=not args.no_prune,
    )
    cache = _sweep_cache(args)
    start = time.monotonic()

    def progress(done: int, total: int, app: str, inp: str, threads: int) -> None:
        elapsed = time.monotonic() - start
        eta = elapsed / done * (total - done)
        print(f"  [{done:3d}/{total}] {app}.{inp} T={threads} "
              f"eta {_fmt_seconds(eta)}", flush=True)

    retry = None
    if args.max_retries is not None:
        from repro.resilience import RetryPolicy

        retry = RetryPolicy(max_retries=args.max_retries, seed=args.seed)
    result = run_sweep(plan, n_processes=args.processes, progress=progress,
                       cache=cache, fail_policy=args.fail_policy,
                       retry=retry, batch_timeout_s=args.batch_timeout_s,
                       backend=args.backend, n_shards=args.shards)
    table = enrich_with_speedup(aggregate_runs(records_to_table(result.records)))
    write_csv(table, args.output)
    rep = result.failure_report
    if rep is not None and not rep.clean:
        print(rep.format_text())
    if args.failure_report:
        from repro.reporting import write_report_file

        write_report_file(args.failure_report, failure_report=rep)
        print(f"failure report -> {args.failure_report}")
    if result.n_quarantined_batches:
        print(f"WARNING: {result.n_quarantined_batches} quarantined "
              f"batch(es) are missing from the dataset; rerun with the "
              f"same --cache-dir to retry them")
    if cache is not None:
        print(f"cache: {result.n_cached_batches} batches reused, "
              f"{result.n_computed_batches} simulated -> {cache.root}")
    if result.shard_report is not None:
        sr = result.shard_report
        print(f"shards: {sr.n_shards} lane(s) on the {result.backend} "
              f"backend, {sr.n_steals} steal(s), "
              f"{sr.n_reassignments} reassignment(s), "
              f"{sr.node_respawns} node respawn(s)")
    if result.n_pruned_configs:
        total = result.n_simulated_configs + result.n_pruned_configs
        print(f"pruning: {result.n_simulated_configs}/{total} configs "
              f"simulated, {result.n_pruned_configs} ICV-equivalent "
              f"configs fanned out")
    print(
        f"{result.n_samples} samples ({result.n_measurements} measurements) "
        f"for {len(result.apps())} applications on {args.arch} "
        f"-> {args.output}"
    )
    return 0


def _prepare(table: Table) -> Table:
    from repro.core.dataset import validate_dataset

    table = validate_dataset(table)
    if "speedup" not in table:
        table = enrich_with_speedup(table)
    if "optimal" not in table:
        table = label_optimal(table)
    return table


def _cmd_analyze(args: argparse.Namespace) -> int:
    table = _prepare(read_csv(args.dataset))
    print("# Best speedup per application")
    print(speedup_summary(table, by=("arch", "app")).to_text())
    print()

    analyses = [
        ("per-application (Fig. 2)", influence_by_application(table)),
        ("per-architecture (Fig. 3)", influence_by_architecture(table)),
        ("per-arch-application (Fig. 4)", influence_by_arch_application(table)),
    ]
    for title, inf in analyses:
        print(f"# Influence, {title}  [mean accuracy "
              f"{inf.mean_accuracy():.2f}]")
        print(
            text_heatmap(
                inf.matrix(), inf.row_labels, list(inf.feature_names)
            )
        )
        print()
        if args.figures_dir:
            out = Path(args.figures_dir)
            out.mkdir(parents=True, exist_ok=True)
            name = inf.grouping.replace("-", "_") + ".svg"
            influence_heatmap(inf).save(str(out / name))
            print(f"wrote {out / name}")
    return 0


def _cmd_recommend(args: argparse.Namespace) -> int:
    table = _prepare(read_csv(args.dataset))
    recs = best_variable_values(table, quantile=args.quantile)
    if args.app:
        recs = [r for r in recs if r.app == args.app]
    print("# Best-performing variables and values (Table VII analogue)")
    for r in recs:
        print(
            f"  {r.app:10s} {r.arch:8s} {r.variable:16s} "
            f"{'/'.join(r.values):24s} lift={r.lift:5.2f} "
            f"best={r.best_speedup:5.2f}x"
        )
    print("\n# Worst trends (Sec. V-4)")
    for t in worst_trends(table):
        print(
            f"  {t.variable}={t.value}: lift={t.lift:.2f}, "
            f"mean speedup {t.mean_speedup:.3f}x"
        )
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    machine = get_machine(args.arch)
    workload = get_workload(args.workload)
    input_name = args.input or workload.default_input
    program = workload.program(input_name)
    space = EnvSpace()

    result = hill_climb(
        program,
        machine,
        space,
        num_threads=args.threads,
        restarts=args.restarts,
        seed=args.seed,
    )
    print(f"workload  : {workload.name}.{input_name} on {args.arch}")
    print(f"default   : {result.start_runtime:.6f} s")
    print(f"tuned     : {result.best_runtime:.6f} s "
          f"({result.speedup:.3f}x, {result.evaluations} evaluations)")
    env = result.best_config.as_env()
    print("config    :", " ".join(f"{k}={v}" for k, v in env.items()) or
          "(defaults)")
    return 0


def _cmd_release(args: argparse.Namespace) -> int:
    from repro.core.release import write_release

    table = _prepare(read_csv(args.dataset))
    manifest = write_release(table, args.output, version=args.version)
    print(
        f"released {manifest.n_samples} samples "
        f"({len(manifest.files)} files, "
        f"{len(manifest.architectures)} architectures, "
        f"{len(manifest.applications)} applications) -> {args.output}"
    )
    return 0


def _cmd_energy(args: argparse.Namespace) -> int:
    from repro.runtime.icv import EnvConfig
    from repro.runtime.power import energy_profile

    machine = get_machine(args.arch)
    workload = get_workload(args.workload)
    program = workload.program(args.input or workload.default_input)
    configs = [
        ("default", EnvConfig()),
        ("turnaround", EnvConfig(library="turnaround")),
        ("blocktime=0", EnvConfig(blocktime="0")),
        ("half threads", EnvConfig(num_threads=machine.n_cores // 2)),
    ]
    rows = []
    for label, cfg in configs:
        p = energy_profile(program, machine, cfg)
        rows.append(
            {
                "config": label,
                "runtime_s": p.runtime_s,
                "energy_j": p.energy_j,
                "avg_power_w": p.avg_power_w,
                "edp_js": p.edp,
            }
        )
    print(Table.from_records(rows).to_text(float_fmt="{:.4g}"))
    return 0


def _cmd_microbench(args: argparse.Namespace) -> int:
    from repro.runtime.icv import EnvConfig
    from repro.runtime.microbench import overhead_table

    kwargs = {}
    if args.library:
        kwargs["library"] = args.library
    if args.threads:
        kwargs["num_threads"] = args.threads
    print(overhead_table(EnvConfig(**kwargs)).to_text(float_fmt="{:.2f}"))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.core.report import generate_report

    table = _prepare(read_csv(args.dataset))
    path = generate_report(table, args.output, title=args.title)
    print(f"wrote {path}")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.frame.ops import concat_tables
    from repro.viz.violin import violin_plot

    out = Path(args.output)
    out.mkdir(parents=True, exist_ok=True)

    apps = tuple(args.apps)
    tables = []
    for arch in machine_names():
        names = tuple(
            a for a in apps
            if get_workload(a).runs_on(arch)
        )
        if not names:
            continue  # e.g. Sort/Strassen never ran on the x86 machines
        print(f"sweeping {names} on {arch} (scale={args.scale}) ...",
              flush=True)
        result = run_sweep(
            SweepPlan(arch=arch, workload_names=names, scale=args.scale,
                      repetitions=args.repetitions)
        )
        tables.append(records_to_table(result.records))
    dataset = label_optimal(enrich_with_speedup(concat_tables(tables)))

    # Violin figures: one per app, violins per (arch, setting).
    for app in apps:
        mask = np.asarray([a == app for a in dataset["app"]])
        sub = dataset.filter(mask)
        samples, labels = [], []
        for (arch, inp, thr), group in sub.group_by(
            ["arch", "input_size", "num_threads"]
        ):
            samples.append(np.asarray(group["runtime_mean"], float))
            varies_threads = (
                get_workload(app).varies == "threads"
            )
            labels.append(
                f"{arch}/T={thr}" if varies_threads else f"{arch}/{inp}"
            )
        path = out / f"violin_{app}.svg"
        violin_plot(
            samples, labels, log_scale=True,
            title=f"{app}: runtime distribution over the sweep",
            width=max(900.0, 60.0 * len(samples)),
            markers=[float(s.min()) for s in samples],
        ).save(str(path))
        print(f"wrote {path}")

    # Influence heat maps (Figs. 2-4).
    for name, inf in (
        ("fig2_by_application", influence_by_application(dataset)),
        ("fig3_by_architecture", influence_by_architecture(dataset)),
        ("fig4_by_arch_application", influence_by_arch_application(dataset)),
    ):
        path = out / f"{name}.svg"
        influence_heatmap(inf).save(str(path))
        print(f"wrote {path}")
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    from repro.workloads.base import WORKLOADS

    machine = get_machine(args.arch)
    rows = [
        w.describe(machine)
        for w in sorted(WORKLOADS.values(), key=lambda w: (w.suite, w.name))
    ]
    print(Table.from_records(rows).to_text())
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.check import bless_golden_traces, run_all
    from repro.check.runner import write_report
    from repro.reporting import render_report

    if args.bless:
        for path in bless_golden_traces(args.golden_dir):
            print(f"blessed {path}")
        print("review the fixture diff before committing")
        return 0
    suites = None if args.suite == "all" else (args.suite,)
    results = run_all(suites, golden_dir=args.golden_dir, quick=args.quick)
    print(render_report(args.fmt, checks=results))
    if args.report:
        write_report(results, args.report)
        if args.fmt == "text":
            print(f"report -> {args.report}")
    return 0 if all(r.passed for r in results) else 1


def _parse_env_items(items: list[str]) -> dict[str, str] | None:
    """Parse repeated ``--env VAR=VALUE`` flags; None on a malformed item."""
    env: dict[str, str] = {}
    for item in items:
        key, sep, value = item.partition("=")
        if not sep:
            print(f"error: --env expects VAR=VALUE, got {item!r}",
                  file=sys.stderr)
            return None
        env[key] = value
    return env


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import (
        dedupe_findings,
        grid_prune_stats,
        lint_environment,
        lint_manifests,
        lint_repository,
        unwaived,
        write_findings_report,
    )
    from repro.reporting import render_report

    # Default invocation (no plane selected): self-lint + flow lint +
    # deps lint + all manifests — what CI runs.
    run_all = not (
        args.self_lint or args.flow or args.deps or args.arch
        or args.env or args.stats
    )
    archs = args.arch if args.arch else (machine_names() if run_all else [])

    findings = []
    planes = []
    if args.self_lint or run_all:
        planes.append("self")
        kwargs = {"src_root": args.src} if args.src else {}
        findings.extend(lint_repository(**kwargs))
    if args.flow or run_all:
        from repro.lint.flow import flow_lint

        planes.append("flow")
        kwargs = {"src_root": args.src} if args.src else {}
        findings.extend(flow_lint(**kwargs))
    if args.deps or run_all:
        from repro.lint.deps import deps_lint

        planes.append("deps")
        kwargs = {"src_root": args.src} if args.src else {}
        findings.extend(deps_lint(**kwargs))
    for arch in archs:
        planes.append(f"manifests:{arch}")
        findings.extend(
            lint_manifests(arch, workload_names=args.workloads)
        )
    if args.env:
        env = _parse_env_items(args.env)
        if env is None:
            return 2
        for arch in (args.arch or ["milan"]):
            planes.append(f"env:{arch}")
            findings.extend(lint_environment(env, arch))

    # Program-spec findings are machine-independent, so linting several
    # archs repeats them; keep the first occurrence only.
    findings = dedupe_findings(findings)

    stats = []
    if args.stats:
        for arch in (args.arch or machine_names()):
            stats.extend(grid_prune_stats(get_machine(arch),
                                          scale=args.scale))
    prune_stats = [
        {
            "arch": s.arch,
            "scale": s.scale,
            "nthreads": s.nthreads,
            "n_configs": s.n_configs,
            "n_classes": s.n_classes,
            "reduction": s.reduction,
        }
        for s in stats
    ]

    print(render_report(args.fmt, findings=findings, planes=planes,
                        prune_stats=prune_stats))
    if args.fmt == "text":
        for s in stats:
            print(s.describe())

    if args.report:
        write_findings_report(findings, args.report, planes=planes,
                              prune_stats=prune_stats)
        if args.fmt == "text":
            print(f"report -> {args.report}")
    return 1 if unwaived(findings) else 0


def _cmd_sanitize(args: argparse.Namespace) -> int:
    from repro.reporting import render_report, write_report_file
    from repro.sanitize import run_sanitize
    from repro.sanitize.runner import ALL_SUITES

    env = _parse_env_items(args.env)
    if env is None:
        return 2
    suites = ALL_SUITES if args.suite == "all" else (args.suite,)
    report = run_sanitize(
        suites=suites,
        archs=args.arch,
        workload_names=args.workloads,
        env=env or None,
        seeds=tuple(range(1, max(args.seeds, 1) + 1)),
    )
    print(render_report(args.fmt, findings=report.findings,
                        **report.extra_payload()))
    if args.fmt == "text":
        for outcome in report.fuzz_outcomes:
            mark = ("identical" if outcome.identical
                    else f"DIVERGED at seeds {outcome.divergent_seeds}")
            print(f"  fuzz {outcome.scenario:24s} "
                  f"{outcome.n_seeds} seed(s): {mark}")
        # format_findings' verdict counts warnings; the sanitize gate is
        # error-only, so state it explicitly.
        n_err = len(report.failures())
        print(f"sanitize gate ({'/'.join(report.suites)}): "
              + ("PASS (no error-severity findings)" if report.passed
                 else f"FAIL ({n_err} error-severity finding(s))"))
    if args.report:
        write_report_file(args.report, findings=report.findings,
                          **report.extra_payload())
        if args.fmt == "text":
            print(f"report -> {args.report}")
    return 0 if report.passed else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import threading

    from repro.serve.app import DaemonConfig, TuningDaemon

    config = DaemonConfig(
        host=args.host,
        port=args.port,
        backend=args.backend,
        n_shards=args.shards,
        max_inflight=args.max_inflight,
        max_queued=args.max_queued,
        deadline_s=args.deadline_s,
        drain_grace_s=args.drain_grace_s,
        header_timeout_s=args.header_timeout_s,
        rate_per_s=args.rate,
        burst=args.burst,
        cache_dir=args.cache_dir,
        state_dir=args.state_dir,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown_s,
        port_file=args.port_file,
        fsync=args.fsync,
    )
    daemon = TuningDaemon(config)
    started = threading.Event()

    def banner() -> None:
        started.wait()
        print(f"repro-omp serve: listening on "
              f"{config.host}:{daemon.port}", flush=True)
        if daemon.resumed_job_ids:
            print(f"repro-omp serve: resumed "
                  f"{len(daemon.resumed_job_ids)} journaled job(s): "
                  f"{', '.join(daemon.resumed_job_ids)}", flush=True)

    threading.Thread(target=banner, daemon=True).start()
    summary = asyncio.run(daemon.serve(started=started))
    interrupted = summary.get("interrupted", [])
    print(f"repro-omp serve: drained; {len(interrupted)} job(s) "
          f"journaled for resume", flush=True)
    return 0


def _cmd_chaos_serve(args: argparse.Namespace) -> int:
    import contextlib
    import tempfile

    from repro.reporting import render_report, write_report_file
    from repro.serve.scenario import run_service_scenario

    with contextlib.ExitStack() as stack:
        work_dir = args.cache_dir or stack.enter_context(
            tempfile.TemporaryDirectory(prefix="repro-serve-chaos-")
        )
        verdict = run_service_scenario(
            arch=args.arch,
            workloads=tuple(args.workloads) if args.workloads else (),
            scale=args.scale,
            repetitions=args.repetitions,
            inputs_limit=args.inputs_limit,
            seed=args.seed,
            n_requests=args.serve_requests,
            slow_clients=args.slow_clients,
            backend_deaths=args.backend_deaths,
            drain_kills=args.drain_kills,
            work_dir=work_dir,
            artifact_dir=args.artifact_dir,
        )
    if args.fmt == "json":
        print(render_report("json", service_chaos=verdict))
    else:
        faults = verdict["service_chaos_plan"]["faults"]
        print(f"injecting {len(faults)} service fault(s) across "
              f"{verdict['n_requests']} request(s) "
              f"(seed {verdict['seed']}):")
        for fault in faults:
            print(f"  {fault['kind']}@request {fault['request_index']}")
        for outcome in verdict["outcomes"]:
            mark = "ok " if outcome["ok"] else "FAIL"
            print(f"  [{mark}] {outcome['kind']}: {outcome['detail']}")
        print("service chaos verdict: "
              + ("PASS" if verdict["ok"] else "FAIL"))
    if args.report:
        write_report_file(args.report, service_chaos=verdict)
        if args.fmt == "text":
            print(f"report -> {args.report}")
    return 0 if verdict["ok"] else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    import contextlib
    import tempfile

    if args.serve:
        return _cmd_chaos_serve(args)

    from repro.core.cache import SweepCache
    from repro.core.sweep import plan_batches
    from repro.reporting import render_report, write_report_file
    from repro.resilience import ChaosPlan, RetryPolicy

    plan = SweepPlan(
        arch=args.arch,
        workload_names=tuple(args.workloads) if args.workloads else None,
        scale=args.scale,
        repetitions=args.repetitions,
        inputs_limit=args.inputs_limit,
    )
    n_batches = len(plan_batches(plan))
    chaos = ChaosPlan.generate(
        n_batches,
        seed=args.seed,
        crashes=args.crashes,
        hangs=args.hangs,
        corrupt_results=args.corrupt_results,
        cache_faults=args.cache_faults,
        poison=args.poison,
        node_lost=args.node_lost,
        shard_partitions=args.shard_partitions,
    )
    retry = RetryPolicy(max_retries=args.max_retries, base_delay_s=0.01,
                        seed=args.seed)

    with contextlib.ExitStack() as stack:
        cache_dir = args.cache_dir or stack.enter_context(
            tempfile.TemporaryDirectory(prefix="repro-chaos-")
        )
        if args.fmt == "text":
            print(f"injecting {len(chaos.faults)} fault(s) into "
                  f"{n_batches} batches (seed {args.seed}):")
            for fault in chaos.describe():
                print(f"  {fault['kind']}@{fault['batch_index']} "
                      f"attempts={fault['attempts']}")
        degraded = run_sweep(
            plan, n_processes=args.processes, cache=SweepCache(cache_dir),
            fail_policy="degrade", chaos=chaos, retry=retry,
            batch_timeout_s=args.batch_timeout_s,
            backend=args.backend, n_shards=args.shards,
        )
        report = degraded.failure_report
        # The resume pass re-attempts quarantined batches and trips the
        # cache checksum on every injected on-disk corruption; the clean
        # sweep is the ground truth the recovery must reproduce.
        resume_cache = SweepCache(cache_dir)
        resumed = run_sweep(plan, cache=resume_cache, fail_policy="degrade")
        clean = run_sweep(plan)

    parity = resumed.records == clean.records
    faults_detected = len(resume_cache.corrupt_keys) == args.cache_faults
    verdict = {
        "n_batches": n_batches,
        "backend": degraded.backend,
        "n_shards": degraded.n_shards,
        "chaos_plan": chaos.to_dict(),
        "resume_parity": parity,
        "cache_faults_detected": len(resume_cache.corrupt_keys),
        "cache_faults_injected": args.cache_faults,
    }
    if degraded.shard_report is not None:
        verdict["shard_report"] = degraded.shard_report.to_dict()
    print(render_report(args.fmt, failure_report=report, chaos=verdict))
    if args.fmt == "text":
        if degraded.shard_report is not None:
            sr = degraded.shard_report
            print(f"shards: {sr.n_shards} lane(s), {sr.n_steals} "
                  f"steal(s), {sr.n_reassignments} reassignment(s), "
                  f"{sr.node_respawns} node respawn(s)")
        print(f"resume: {resumed.n_cached_batches} batches from cache, "
              f"{resumed.n_computed_batches} re-simulated, "
              f"{len(resume_cache.corrupt_keys)}/{args.cache_faults} "
              f"injected cache fault(s) caught by checksum")
        print("resume parity vs fault-free sweep: "
              + ("IDENTICAL" if parity else "DIVERGED"))
    if args.report:
        write_report_file(args.report, failure_report=report, chaos=verdict)
        if args.fmt == "text":
            print(f"report -> {args.report}")
    return 0 if parity and faults_detected else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.runtime.icv import EnvConfig
    from repro.runtime.trace import trace_execution

    machine = get_machine(args.arch)
    workload = get_workload(args.workload)
    program = workload.program(args.input or workload.default_input)
    kwargs = {"library": args.library} if args.library else {}
    trace = trace_execution(program, machine, EnvConfig(**kwargs))
    print(f"{trace.program} on {trace.arch}: {trace.total_s:.6f} s, "
          f"{trace.parallel_fraction:.1%} parallel")
    print(trace.to_table().to_text(float_fmt="{:.4g}"))
    if args.output:
        trace.save_chrome_trace(args.output)
        print(f"chrome trace -> {args.output}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "machines":
            return _cmd_machines()
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "analyze":
            return _cmd_analyze(args)
        if args.command == "recommend":
            return _cmd_recommend(args)
        if args.command == "tune":
            return _cmd_tune(args)
        if args.command == "release":
            return _cmd_release(args)
        if args.command == "energy":
            return _cmd_energy(args)
        if args.command == "microbench":
            return _cmd_microbench(args)
        if args.command == "check":
            return _cmd_check(args)
        if args.command == "lint":
            return _cmd_lint(args)
        if args.command == "sanitize":
            return _cmd_sanitize(args)
        if args.command == "chaos":
            return _cmd_chaos(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "workloads":
            return _cmd_workloads(args)
        if args.command == "figures":
            return _cmd_figures(args)
        if args.command == "report":
            return _cmd_report(args)
        raise AssertionError(f"unhandled command {args.command}")
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
