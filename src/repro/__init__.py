"""repro — reproduction of *Evaluating Tuning Opportunities of the
LLVM/OpenMP Runtime* (SC 2024).

The package implements the paper's full pipeline on a simulated libomp
runtime (see DESIGN.md for substitutions):

1. **Model** — machines (:mod:`repro.arch`), the simulated runtime
   (:mod:`repro.runtime` over :mod:`repro.desim`) and the 15 benchmark
   workloads (:mod:`repro.workloads`),
2. **Sweep** — the environment-variable grid and orchestration
   (:mod:`repro.core.envspace`, :mod:`repro.core.sweep`),
3. **Analyze** — datasets, speedups, optimal labels, logistic-regression
   influence, recommendations, pruning (:mod:`repro.core`), backed by the
   in-house tabular (:mod:`repro.frame`), statistics (:mod:`repro.stats`)
   and linear-model (:mod:`repro.mlkit`) substrates,
4. **Report** — SVG/terminal figures (:mod:`repro.viz`) and the
   ``repro-omp`` CLI (:mod:`repro.cli`).

Quickstart::

    from repro import (EnvConfig, EnvSpace, SweepPlan, run_sweep,
                       records_to_table, enrich_with_speedup, label_optimal,
                       influence_by_architecture)

    result = run_sweep(SweepPlan(arch="milan", scale="small",
                                 workload_names=("xsbench", "cg")))
    table = label_optimal(enrich_with_speedup(records_to_table(result.records)))
    print(influence_by_architecture(table).to_table().to_text())
"""

from repro.arch import (
    A64FX,
    ALL_MACHINES,
    MILAN,
    SKYLAKE,
    MachineTopology,
    get_machine,
    hardware_table,
)
from repro.core import (
    EnvSpace,
    SweepCache,
    SweepPlan,
    SweepResult,
    best_variable_values,
    enrich_with_speedup,
    generate_report,
    hill_climb,
    influence_by_application,
    influence_by_arch_application,
    influence_by_architecture,
    interaction_matrix,
    label_optimal,
    per_kernel_tune,
    prune_space,
    recommend_threads,
    records_to_table,
    recommend,
    run_sweep,
    speedup_summary,
    validate_dataset,
    worst_trends,
)
from repro.errors import ReproError
from repro.frame import Table, read_csv, write_csv
from repro.runtime import EnvConfig, RuntimeExecutor, execute, observe, resolve_icvs
from repro.stats import summarize, wilcoxon_signed_rank
from repro.workloads import get_workload, workload_names, workloads_for_arch

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # machines
    "MachineTopology",
    "A64FX",
    "SKYLAKE",
    "MILAN",
    "ALL_MACHINES",
    "get_machine",
    "hardware_table",
    # runtime
    "EnvConfig",
    "RuntimeExecutor",
    "execute",
    "observe",
    "resolve_icvs",
    # workloads
    "get_workload",
    "workload_names",
    "workloads_for_arch",
    # sweep + analysis
    "EnvSpace",
    "SweepCache",
    "SweepPlan",
    "SweepResult",
    "run_sweep",
    "records_to_table",
    "enrich_with_speedup",
    "label_optimal",
    "speedup_summary",
    "influence_by_application",
    "influence_by_architecture",
    "influence_by_arch_application",
    "best_variable_values",
    "recommend",
    "worst_trends",
    "hill_climb",
    "prune_space",
    "generate_report",
    "interaction_matrix",
    "per_kernel_tune",
    "recommend_threads",
    "validate_dataset",
    # substrates
    "Table",
    "read_csv",
    "write_csv",
    "wilcoxon_signed_rank",
    "summarize",
    # errors
    "ReproError",
]
