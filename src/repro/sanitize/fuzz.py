"""Schedule-perturbation fuzzer (pass 2).

Re-executes instrumented scenarios under deterministic, seeded
permutations of same-timestamp handler order
(:func:`repro.desim.engine.tiebreak_scope`) and asserts each scenario's
record is identical to the canonical run.  This is the dynamic
counterpart to the happens-before pass:

- an HB race whose perturbed records stay identical is a *benign* tie
  (the handlers commute on every observable),
- an HB-clean scenario whose records diverge is a *semantic* order
  dependence the clock analysis cannot see — e.g. float accumulation in
  lock-arrival order, where every access is perfectly synchronized yet
  the result depends on who arrives first.

Divergence is reported as a ``RACE101`` error finding naming the
scenario and the seeds that broke it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.lint.findings import Finding, Severity
from repro.sanitize.scenarios import Scenario, clean_scenarios

__all__ = [
    "DEFAULT_SEEDS",
    "FuzzOutcome",
    "fuzz_scenario",
    "fuzz_pass",
    "fuzz_findings",
]

#: Default perturbation seeds — five permutations per scenario, matching
#: the acceptance bar for the CI smoke run.
DEFAULT_SEEDS: tuple[int, ...] = (1, 2, 3, 4, 5)


@dataclass(frozen=True)
class FuzzOutcome:
    """Result of fuzzing one scenario across all seeds."""

    scenario: str
    n_seeds: int
    divergent_seeds: tuple[int, ...]

    @property
    def identical(self) -> bool:
        """Whether every perturbed record matched the canonical one."""
        return not self.divergent_seeds

    def to_dict(self) -> dict:
        """JSON-serializable form for the findings report."""
        return {
            "scenario": self.scenario,
            "n_seeds": self.n_seeds,
            "identical": self.identical,
            "divergent_seeds": list(self.divergent_seeds),
        }


def fuzz_scenario(
    scenario: Scenario, seeds: Sequence[int] = DEFAULT_SEEDS
) -> FuzzOutcome:
    """Run one scenario canonically, then once per perturbation seed."""
    canonical = scenario.run(None)
    divergent = []
    for seed in seeds:
        if scenario.run(seed) != canonical:
            divergent.append(seed)
    return FuzzOutcome(scenario.name, len(seeds), tuple(divergent))


def fuzz_findings(outcomes: Sequence[FuzzOutcome]) -> list[Finding]:
    """Divergent outcomes as ``RACE101`` error findings."""
    return [
        Finding(
            rule="RACE101",
            severity=Severity.ERROR,
            subject=o.scenario,
            message=(
                f"scenario {o.scenario!r} diverged from the canonical run "
                f"under {len(o.divergent_seeds)}/{o.n_seeds} same-timestamp "
                f"permutation seed(s) {list(o.divergent_seeds)} — a result "
                "depends on tie-break handler order"
            ),
            fixit=(
                "find the order-dependent state (the happens-before pass "
                "usually names it) and give it an ordering edge or an "
                "order-insensitive combine"
            ),
        )
        for o in outcomes
        if not o.identical
    ]


def fuzz_pass(
    seeds: Sequence[int] = DEFAULT_SEEDS,
    scenarios: Sequence[Scenario] | None = None,
) -> tuple[list[Finding], list[FuzzOutcome]]:
    """Fuzz every (clean, by contract) scenario; findings on divergence."""
    chosen = clean_scenarios() if scenarios is None else tuple(scenarios)
    outcomes = [fuzz_scenario(sc, seeds) for sc in chosen]
    return fuzz_findings(outcomes), outcomes
