"""Static concurrency rules over Program x EnvConfig x MachineTopology
(pass 3).

The ``RACE0xx`` family flags configurations whose *results* are ordering-
sensitive on a real runtime (float-associativity-sensitive reduction
combines, timing-dependent chunk placement); the ``DLK0xx`` family flags
deadlock- and starvation-prone interactions between wait policy, thread
placement and program shape.  Like the config-lint plane, every rule
reasons with the *resolved* ICVs — the same derivation the executor uses
— so each finding is decidable statically and carries the derivation that
decides it.

Rule ids are stable; ``docs/SANITIZER.md`` is the catalog.  The dynamic
passes use the 1xx range (RACE100 happens-before, RACE101 fuzzer,
RACE102/RACE103 steal audit); this module owns 001-0xx.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.arch.topology import MachineTopology
from repro.lint.findings import Finding, Severity
from repro.runtime.affinity import compute_placement
from repro.runtime.costs import work_seconds
from repro.runtime.icv import (
    EnvConfig,
    ReductionMethod,
    ResolvedICVs,
    ScheduleKind,
    WaitPolicy,
    resolve_icvs,
)
from repro.runtime.program import LoopRegion, Program, TaskRegion

__all__ = ["SANITIZE_RULES", "sanitize_config"]

SanitizeRule = Callable[
    [EnvConfig, ResolvedICVs, MachineTopology, "Program | None"],
    Iterable[Finding],
]

SANITIZE_RULES: list[SanitizeRule] = []


def rule(func: SanitizeRule) -> SanitizeRule:
    """Register a static sanitize rule (import order = report order)."""
    SANITIZE_RULES.append(func)
    return func


_REDUCTION_RULE = (
    "KMP_FORCE_REDUCTION overrides; default = atomic/critical for small "
    "teams, tree otherwise (Sec. III-6)"
)
_WAIT_RULE = (
    "OMP_WAIT_POLICY = ACTIVE if KMP_LIBRARY=turnaround or "
    "KMP_BLOCKTIME=infinite else PASSIVE (Sec. III-4/5)"
)


def _reduction_loops(program: Program | None) -> list[LoopRegion]:
    if program is None:
        return []
    return [
        p for p in program.phases
        if isinstance(p, LoopRegion) and p.n_reductions > 0
    ]


@rule
def _race001_arrival_order_combine(config, icvs, machine, program):
    """RACE001: atomic/critical reductions combine partials in thread
    *arrival order* — float addition is not associative, so the result
    varies run to run even on a correct runtime."""
    loops = _reduction_loops(program)
    if not loops or icvs.nthreads <= 1:
        return
    if icvs.reduction not in (ReductionMethod.ATOMIC,
                              ReductionMethod.CRITICAL):
        return
    names = ", ".join(p.name for p in loops)
    yield Finding(
        rule="RACE001",
        severity=Severity.WARNING,
        subject=f"{program.name}: reduction combine",
        message=(
            f"{icvs.reduction.value} reduction combines partials in "
            f"thread-arrival order across {icvs.nthreads} threads "
            f"(loops: {names}) — float associativity makes the result "
            "ordering-sensitive run to run"
        ),
        fixit="set KMP_FORCE_REDUCTION=tree for a fixed combine shape",
        icv_rule=_REDUCTION_RULE,
    )


@rule
def _race002_timing_dependent_partials(config, icvs, machine, program):
    """RACE002: dynamic/guided scheduling assigns chunks by request
    timing, so even a deterministic combine sums differently-grouped
    partials across runs."""
    loops = [
        p for p in _reduction_loops(program) if p.fixed_schedule is None
    ]
    if not loops or icvs.nthreads <= 1:
        return
    if icvs.schedule not in (ScheduleKind.DYNAMIC, ScheduleKind.GUIDED):
        return
    names = ", ".join(p.name for p in loops)
    yield Finding(
        rule="RACE002",
        severity=Severity.WARNING,
        subject=f"{program.name}: partial-sum grouping",
        message=(
            f"OMP_SCHEDULE={icvs.schedule.value} assigns iterations to "
            f"threads by request timing, so per-thread reduction partials "
            f"group differently on every run (loops: {names}) — "
            "bit-reproducibility is lost before the combine even starts"
        ),
        fixit=(
            "use schedule(static) on reduction loops that must be "
            "bit-reproducible"
        ),
    )


@rule
def _race003_steal_order_placement(config, icvs, machine, program):
    """RACE003: random-victim work stealing makes task-to-thread placement
    nondeterministic on a real runtime (the simulator pins it with a
    seed).  Informational — tasking trades placement determinism for load
    balance by design."""
    if program is None or not program.uses_tasks or icvs.nthreads <= 1:
        return
    regions = [p for p in program.phases if isinstance(p, TaskRegion)]
    names = ", ".join(p.name for p in regions)
    yield Finding(
        rule="RACE003",
        severity=Severity.INFO,
        subject=f"{program.name}: task placement",
        message=(
            f"task regions ({names}) run under random-victim work "
            f"stealing on {icvs.nthreads} threads: task-to-thread "
            "placement (and any NUMA locality derived from it) is "
            "nondeterministic on a real runtime; the simulator pins it "
            "with a documented seed"
        ),
    )


@rule
def _dlk001_oversubscribed_spin(config, icvs, machine, program):
    """DLK001: more spinning threads than cores — every barrier and steal
    loop timeshares against its own team; forward progress can stall
    arbitrarily long (the paper's pathological active-wait regime)."""
    if icvs.nthreads <= machine.n_cores:
        return
    if icvs.wait_policy is not WaitPolicy.ACTIVE:
        return
    yield Finding(
        rule="DLK001",
        severity=Severity.ERROR,
        subject="OMP_NUM_THREADS",
        message=(
            f"{icvs.nthreads} ACTIVE-wait threads on {machine.n_cores} "
            f"cores ({machine.name}): spinning waiters timeshare against "
            "the workers they wait on, so barriers and task waits can "
            "starve indefinitely"
        ),
        fixit=(
            "set OMP_WAIT_POLICY=passive (or a finite KMP_BLOCKTIME with "
            "KMP_LIBRARY=throughput), or cap OMP_NUM_THREADS at the core "
            "count"
        ),
        icv_rule=_WAIT_RULE,
    )


@rule
def _dlk002_task_tree_starvation(config, icvs, machine, program):
    """DLK002: passive waiters sleep after blocktime, but a task region's
    critical path keeps one worker busy far longer — sleeping threads
    must be kicked awake to steal, serializing the tree."""
    if program is None or icvs.nthreads <= 1:
        return
    if icvs.wait_policy is not WaitPolicy.PASSIVE:
        return
    blocktime_s = icvs.blocktime_ms / 1e3
    slow = [
        p for p in program.phases
        if isinstance(p, TaskRegion)
        and work_seconds(p.critical_path_work, machine) > blocktime_s
        and p.n_tasks > icvs.nthreads
    ]
    if not slow:
        return
    names = ", ".join(p.name for p in slow)
    yield Finding(
        rule="DLK002",
        severity=Severity.WARNING,
        subject=f"{program.name}: task starvation",
        message=(
            f"task region(s) {names}: the spawn tree's critical path "
            f"outlives KMP_BLOCKTIME={icvs.blocktime_ms:g}ms, so idle "
            "workers fall asleep mid-region and each steal first pays a "
            "wake-up — the tree degrades toward serial execution"
        ),
        fixit=(
            "raise KMP_BLOCKTIME past the region's critical path, or use "
            "KMP_LIBRARY=turnaround for task-heavy programs"
        ),
        icv_rule=_WAIT_RULE,
    )


@rule
def _dlk003_unreachable_barrier_parties(config, icvs, machine, program):
    """DLK003: a loop with fewer iterations than threads still makes
    every thread arrive at the region-end barrier — threads that can
    never receive work cycle through trips * barrier for nothing."""
    if program is None or icvs.nthreads <= 1:
        return
    starved = [
        p for p in program.phases
        if isinstance(p, LoopRegion) and p.n_iters < icvs.nthreads
    ]
    if not starved:
        return
    for p in starved:
        idle = icvs.nthreads - p.n_iters
        yield Finding(
            rule="DLK003",
            severity=Severity.WARNING,
            subject=f"{program.name}: {p.name}",
            message=(
                f"loop {p.name!r} has {p.n_iters} iterations for "
                f"{icvs.nthreads} threads: {idle} thread(s) can never "
                f"receive work yet must arrive at the implicit barrier "
                f"on every one of {p.trips} trip(s)"
            ),
            fixit=(
                "size the team to the loop (num_threads clause) or "
                "collapse/expand the iteration space"
            ),
        )


@rule
def _dlk004_oversubscribed_timeshare(config, icvs, machine, program):
    """DLK004: oversubscribed placement without active spin — no
    starvation deadlock (DLK001 covers that), but every barrier waits for
    the slowest timeshared core, and nested regions multiply it."""
    placement = compute_placement(icvs, machine)
    if placement.max_oversubscription <= 1:
        return
    if icvs.nthreads > machine.n_cores and (
        icvs.wait_policy is WaitPolicy.ACTIVE
    ):
        return  # DLK001 already reports the deadlock-grade variant
    yield Finding(
        rule="DLK004",
        severity=Severity.WARNING,
        subject="thread placement",
        message=(
            f"placement stacks up to {placement.max_oversubscription} "
            f"threads per core on {machine.name}: every barrier "
            "synchronizes at the pace of the most oversubscribed core, "
            "and any nested parallelism compounds the stacking"
        ),
        fixit=(
            "spread threads over more places (OMP_PLACES/OMP_PROC_BIND) "
            "or reduce OMP_NUM_THREADS"
        ),
    )


def sanitize_config(
    config: EnvConfig,
    machine: MachineTopology,
    program: Program | None = None,
) -> list[Finding]:
    """Run every static concurrency rule; findings in registration order.

    ``program`` enables the program-aware rules (RACE001-003,
    DLK002/DLK003); without it only configuration-intrinsic rules fire.
    """
    icvs = resolve_icvs(config, machine)
    findings: list[Finding] = []
    for check in SANITIZE_RULES:
        findings.extend(check(config, icvs, machine, program))
    return findings
