"""Instrumented scenarios shared by the HB pass and the perturbation fuzzer.

Each scenario is a deterministic simulation entry point that can run

- **canonically** (``tiebreak_seed=None`` — the engine's documented
  insertion-order tie-break),
- **perturbed** (a seed permutes same-timestamp handler order), and
- **instrumented** (an observer — usually a
  :class:`repro.sanitize.hb.HappensBeforeTracker` — attached),

and returns a *worker-anonymous record*: the observables that must be
invariant under any same-timestamp permutation.  Worker-anonymous means
per-worker vectors are compared as multisets — with interchangeable
(uniform-speed) workers a permutation may relabel who did what, but never
what was done or when.

The injected variants (``inject_tie_race`` / ``arrival_order``) are the
sanitizer's fault-injection coverage: deliberately order-dependent
executions that the HB pass, the fuzzer, or both must flag.  Notably the
``arrival_order`` reduction is HB-*clean* (every accumulator access is
lock-ordered) yet order-*dependent* (float addition in arrival order) —
the case that proves the two passes are complementary, and the dynamic
twin of the static ``RACE001`` rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.arch.machines import get_machine
from repro.core.sweep import SweepPlan, run_sweep
from repro.desim.engine import Engine, Timeout, tiebreak_scope
from repro.desim.loopsim import simulate_loop
from repro.desim.resources import Barrier, Lock
from repro.runtime.icv import EnvConfig
from repro.runtime.program import LoopRegion, Program, SerialPhase, TaskRegion
from repro.runtime.trace import trace_execution

__all__ = [
    "Scenario",
    "loop_record",
    "reduction_record",
    "trace_record",
    "sweep_record",
    "clean_scenarios",
    "injected_scenarios",
]


@dataclass(frozen=True)
class Scenario:
    """A named, re-runnable simulation with an invariance contract."""

    name: str
    #: ``run(tiebreak_seed) -> record``; records of clean scenarios must
    #: be identical for every seed.
    run: Callable[[int | None], Any]


# ----------------------------------------------------------------------
# Worksharing loops (desim.Engine + Lock)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LoopSpec:
    """One loop-simulation configuration worth fuzzing."""

    name: str
    schedule: str
    n_iters: int
    n_workers: int
    chunk: int = 1
    dispatch_time: float = 0.0
    cost_seed: int = 0


LOOP_SPECS: tuple[LoopSpec, ...] = (
    LoopSpec("loop-static", "static", 37, 5),
    LoopSpec("loop-dynamic", "dynamic", 40, 4, chunk=1),
    LoopSpec("loop-dynamic-chunked", "dynamic", 61, 7, chunk=3,
             dispatch_time=1e-3, cost_seed=2),
    LoopSpec("loop-guided", "guided", 96, 8, chunk=2, cost_seed=3),
)


def loop_record(
    spec: LoopSpec,
    tiebreak_seed: int | None = None,
    observer: Any = None,
    inject_tie_race: bool = False,
) -> dict:
    """Run one loop simulation; return its worker-anonymous record."""
    costs = np.random.default_rng(spec.cost_seed).uniform(
        0.5, 1.5, spec.n_iters
    )
    chunks: list[tuple] = []

    def on_chunk(w: int, lo: int, hi: int, start: float, dur: float) -> None:
        chunks.append((lo, hi, start, dur))

    result = simulate_loop(
        costs,
        spec.n_workers,
        schedule=spec.schedule,
        chunk=spec.chunk,
        dispatch_time=spec.dispatch_time,
        on_chunk=on_chunk,
        engine_observer=observer,
        tiebreak_seed=tiebreak_seed,
        inject_tie_race=inject_tie_race,
    )
    return {
        "makespan": result.makespan,
        "n_chunks": result.n_chunks,
        "dispatch_wait": result.dispatch_wait,
        "busy": tuple(sorted(result.busy)),
        "chunks": tuple(sorted(chunks)),
    }


# ----------------------------------------------------------------------
# Barrier + reduction primitive (desim.Engine + Lock + Barrier)
# ----------------------------------------------------------------------
#: Partial values chosen so that float addition in arrival order is
#: *non-associative across arrival groups*: absorbing 1e16 terms cancel
#: only if summed adjacently, so permuting same-timestamp arrivals flips
#: the total between distinct float results.
_PARTIALS = (1e16, -1e16, 0.5, 1.0, 3.0, 0.25)
#: Arrival delay per thread — threads w and w+3 arrive simultaneously,
#: manufacturing the same-timestamp ties the sanitizer exists to analyze.
_ARRIVALS = (0.25, 0.5, 0.75, 0.25, 0.5, 0.75)


def reduction_record(
    tiebreak_seed: int | None = None,
    observer: Any = None,
    arrival_order: bool = False,
) -> dict:
    """A 6-thread compute → combine → barrier rendezvous.

    ``arrival_order=False`` (the clean shape): each thread stores its
    partial in its own slot; after the barrier, thread 0 combines the
    slots in index order — deterministic under any tie-break.

    ``arrival_order=True`` (the injected fault): threads add their
    partial into one shared accumulator under a lock, *in arrival order*.
    Every access is happens-before ordered (the HB pass stays clean), yet
    the float total depends on which same-timestamp arrival wins the lock
    first — exactly the hazard of ``atomic``/``critical`` OpenMP
    reductions that the static rule RACE001 flags.
    """
    n = len(_PARTIALS)
    engine = Engine(observer=observer, tiebreak_seed=tiebreak_seed)
    lock = Lock(engine, name="reduce")
    barrier = Barrier(engine, parties=n, name="join")
    slots = [0.0] * n
    shared = {"acc": 0.0, "total": 0.0}

    def thread(w: int):
        yield Timeout(_ARRIVALS[w])
        if arrival_order:
            yield from lock.acquire()
            shared["acc"] += _PARTIALS[w]
            if engine._observer is not None:
                engine.notify(
                    "state_access", obj="accumulator", op="write",
                    label=f"thread{w} combine",
                )
            lock.release()
        else:
            slots[w] = _PARTIALS[w]
        yield from barrier.wait()
        if w == 0:
            if arrival_order:
                shared["total"] = shared["acc"]
            else:
                total = 0.0
                for v in slots:  # fixed index order: associativity pinned
                    total += v
                shared["total"] = total

    for w in range(n):
        engine.process(thread(w), name=f"thread{w}")
    engine.run()
    return {
        "total": shared["total"],
        "generations": barrier.generations,
        "makespan": engine.now,
    }


# ----------------------------------------------------------------------
# End-to-end production paths (executor trace + sweep)
# ----------------------------------------------------------------------
def _mixed_program() -> Program:
    """A small serial + loop + task program exercising every phase kind."""
    return Program(
        name="sanitize-mixed",
        phases=(
            SerialPhase(work=5.0, name="setup"),
            LoopRegion("sweep-loop", n_iters=64, iter_work=1.0,
                       n_reductions=1, trips=2),
            TaskRegion("task-tree", depth=4, branching=3, leaf_work=0.5,
                       node_work=0.1),
        ),
    )


def trace_record(tiebreak_seed: int | None = None) -> dict:
    """Phase timeline of a mixed program at DES fidelity.

    Runs under :func:`tiebreak_scope` so any :class:`Engine` the executor
    constructs — today none on this path, by design — inherits the
    perturbation.  The fuzzer asserting this record is seed-invariant is
    the standing guarantee that no engine tie-break ever leaks into
    production traces, including from future DES-backed execution paths.
    """
    program = _mixed_program()
    machine = get_machine("milan")
    config = EnvConfig(num_threads=8, schedule="dynamic", blocktime="0")
    with tiebreak_scope(tiebreak_seed):
        trace = trace_execution(program, machine, config, fidelity="des")
    return trace.to_dict()


def sweep_record(tiebreak_seed: int | None = None) -> dict:
    """Records of a small single-workload sweep grid under perturbation."""
    plan = SweepPlan(
        arch="milan", workload_names=("xsbench",), scale="small",
        repetitions=1, inputs_limit=1,
    )
    with tiebreak_scope(tiebreak_seed):
        result = run_sweep(plan)
    return {"n_records": len(result.records), "records": tuple(result.records)}


# ----------------------------------------------------------------------
# Registries
# ----------------------------------------------------------------------
def clean_scenarios() -> tuple[Scenario, ...]:
    """Every scenario whose record must be tie-break invariant."""
    loops = tuple(
        Scenario(spec.name, lambda seed, s=spec: loop_record(s, seed))
        for spec in LOOP_SPECS
    )
    return loops + (
        Scenario("reduction-slots", lambda seed: reduction_record(seed)),
        Scenario("trace-des", trace_record),
        Scenario("sweep-small", sweep_record),
    )


def injected_scenarios() -> tuple[Scenario, ...]:
    """Deliberately order-dependent variants (fault-injection coverage)."""
    return (
        Scenario(
            "loop-dynamic-injected",
            lambda seed: loop_record(
                LOOP_SPECS[1], seed, inject_tie_race=True
            ),
        ),
        Scenario(
            "loop-static-injected",
            lambda seed: loop_record(
                LOOP_SPECS[0], seed, inject_tie_race=True
            ),
        ),
        Scenario(
            "reduction-arrival-order",
            lambda seed: reduction_record(seed, arrival_order=True),
        ),
    )
