"""Happens-before tracking over engine notifications (pass 1).

The tracker is an :class:`~repro.desim.engine.Engine` observer that builds
a vector-clock happens-before relation from the notifications the kernel
and its primitives emit, then scans the recorded shared-state accesses for
**tie-break races**: pairs of accesses at the *same simulated timestamp*,
from different actors, at least one a write, with *concurrent* vector
clocks.  Such a pair has no ordering edge between its handlers, so which
one wins is decided purely by the engine's same-timestamp tie-break — the
one thing production results must never depend on.

Happens-before edges, in engine terms:

========================  ==============================================
edge                      source notification
========================  ==============================================
program order             every access ticks its actor's own clock
spawn → child             ``on_process_start`` (parent's clock seeds the
                          child before its first resume)
succeed → waiter wake     ``event_wake`` / ``event_join`` (the succeeding
                          actor's clock reaches every waiter)
lock release → acquire    ``lock_release`` stores the releasing clock;
                          ``lock_acquire`` joins it
all arrivals → release    ``barrier_arrive`` accumulates every arriver's
                          clock; ``barrier_release`` joins the merged
                          clock into the releasing actor (and, through
                          the gate's ``event_wake``, into every party)
========================  ==============================================

The tracker is purely passive: it never changes the simulation, so the
instrumented run is bit-identical to the uninstrumented one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.lint.findings import Finding, Severity

__all__ = ["StateAccess", "TieRace", "HappensBeforeTracker"]

#: Actor key for code running outside any process (engine setup / main).
MAIN = None


@dataclass
class StateAccess:
    """One recorded touch of shared simulator state."""

    step: int
    time: float
    actor: str
    obj: str
    op: str  # "read" | "write"
    label: str
    clock: dict = field(repr=False, default_factory=dict)

    def describe(self) -> str:
        """Short human form for findings."""
        what = self.label or self.actor
        return f"{what} ({self.op})"


@dataclass
class TieRace:
    """Two unordered same-timestamp accesses to the same state object."""

    obj: str
    time: float
    first: StateAccess
    second: StateAccess


def _leq(a: dict, b: dict) -> bool:
    """Vector-clock partial order: a happened-before-or-equals b."""
    for k, v in a.items():
        if v > b.get(k, 0):
            return False
    return True


def _concurrent(a: dict, b: dict) -> bool:
    return not _leq(a, b) and not _leq(b, a)


class HappensBeforeTracker:
    """Vector-clock happens-before DAG over one engine run.

    Attach as the engine observer (``Engine(observer=tracker)`` or via
    ``simulate_loop(engine_observer=tracker)``), run the simulation, then
    call :meth:`races` / :meth:`findings`.
    """

    def __init__(self) -> None:
        # actor -> its current vector clock (actor key -> tick count).
        self._clocks: dict[Any, dict] = {}
        self._current: Any = MAIN
        # Clocks to join into an actor at its next resume (wake edges).
        self._pending: dict[Any, dict] = {}
        # Edge sources keyed by the synchronization object.
        self._event_clock: dict[Any, dict] = {}
        self._lock_clock: dict[Any, dict] = {}
        self._barrier_clock: dict[Any, dict] = {}
        # Stable display names (process names may repeat).
        self._labels: dict[Any, str] = {MAIN: "main"}
        self._label_counts: dict[str, int] = {}
        self.accesses: list[StateAccess] = []
        self.edge_counts: dict[str, int] = {
            "spawn": 0, "wake": 0, "lock": 0, "barrier": 0,
        }

    # -- bookkeeping ---------------------------------------------------
    def _clock_of(self, actor: Any) -> dict:
        clock = self._clocks.get(actor)
        if clock is None:
            clock = self._clocks[actor] = {}
        return clock

    def _tick(self, actor: Any) -> dict:
        clock = self._clock_of(actor)
        clock[actor] = clock.get(actor, 0) + 1
        return clock

    def _merge_pending(self, actor: Any, src: dict) -> None:
        dst = self._pending.setdefault(actor, {})
        for k, v in src.items():
            if v > dst.get(k, 0):
                dst[k] = v

    def _join(self, actor: Any, src: dict) -> None:
        dst = self._clock_of(actor)
        for k, v in src.items():
            if v > dst.get(k, 0):
                dst[k] = v

    def actor_label(self, actor: Any) -> str:
        """Stable display name for an actor (process names may repeat)."""
        label = self._labels.get(actor)
        if label is None:
            base = getattr(actor, "name", None) or "proc"
            n = self._label_counts.get(base, 0)
            self._label_counts[base] = n + 1
            label = base if n == 0 else f"{base}#{n}"
            self._labels[actor] = label
        return label

    # -- core observer quartet (engine state transitions) --------------
    def on_schedule(self, now: float, delay: float) -> None:
        """Scheduling itself creates no HB edge."""

    def on_advance(self, time: float) -> None:
        """Clock advances create no HB edge."""

    def on_process_start(self, proc: Any) -> None:
        """Spawn edge: the spawning actor's history reaches the child
        before its first resume."""
        self.actor_label(proc)
        parent = self._tick(self._current)
        self._merge_pending(proc, parent)
        self.edge_counts["spawn"] += 1

    def on_process_finish(self, proc: Any) -> None:
        """Join edges arrive via the completion event's wake, not here."""

    # -- named notifications -------------------------------------------
    def on_process_resume(self, now: float, proc: Any) -> None:
        """Track the running actor; join any wake edges delivered to it."""
        self._current = proc
        pending = self._pending.pop(proc, None)
        if pending is not None:
            self._join(proc, pending)

    def on_event_wake(self, now: float, event: Any, waiters: tuple) -> None:
        """Succeed edge: the succeeder's clock reaches every waiter."""
        snap = dict(self._tick(self._current))
        self._event_clock[event] = snap
        for proc in waiters:
            self._merge_pending(proc, snap)
            self.edge_counts["wake"] += 1

    def on_event_join(self, now: float, event: Any, waiters: tuple) -> None:
        """Late joiner of an already-succeeded event gets the same edge."""
        snap = self._event_clock.get(event)
        if snap is None:
            return
        for proc in waiters:
            self._merge_pending(proc, snap)
            self.edge_counts["wake"] += 1

    def on_lock_acquire(self, now: float, lock: Any) -> None:
        """Release→acquire edge: join the last releasing clock."""
        released = self._lock_clock.get(lock)
        if released is not None:
            self._join(self._current, released)
            self.edge_counts["lock"] += 1

    def on_lock_release(self, now: float, lock: Any) -> None:
        """Store the releasing clock for the next acquirer to join."""
        self._lock_clock[lock] = dict(self._tick(self._current))

    def on_barrier_arrive(self, now: float, barrier: Any, arrived: int) -> None:
        """Accumulate every arriver's clock for the release join."""
        acc = self._barrier_clock.setdefault(barrier, {})
        clock = self._tick(self._current)
        for k, v in clock.items():
            if v > acc.get(k, 0):
                acc[k] = v

    def on_barrier_release(
        self, now: float, barrier: Any, generation: int
    ) -> None:
        """All-arrivals→release edge closing one barrier generation."""
        acc = self._barrier_clock.pop(barrier, None)
        if acc is not None:
            # The last arriver carries the merged clock of every arrival
            # into the gate wake, ordering the whole generation before
            # every party's continuation.
            self._join(self._current, acc)
            self.edge_counts["barrier"] += 1

    def on_state_access(
        self, now: float, obj: str, op: str, label: str = ""
    ) -> None:
        """Record one shared-state touch with its actor's clock."""
        clock = self._tick(self._current)
        self.accesses.append(
            StateAccess(
                step=len(self.accesses),
                time=now,
                actor=self.actor_label(self._current),
                obj=obj,
                op=op,
                label=label,
                clock=dict(clock),
            )
        )

    # -- analysis -------------------------------------------------------
    def stats(self) -> dict:
        """Run summary for reports."""
        return {
            "n_accesses": len(self.accesses),
            "n_actors": len(self._clocks),
            "edges": dict(self.edge_counts),
        }

    def races(self) -> list[TieRace]:
        """Scan recorded accesses for tie-break races.

        One race is reported per (object, ordered actor pair) — the first
        unordered same-timestamp pair found; repeats of the same hazard at
        later timestamps add no information.
        """
        groups: dict[tuple, list[StateAccess]] = {}
        for acc in self.accesses:
            groups.setdefault((acc.obj, acc.time), []).append(acc)
        races: list[TieRace] = []
        seen: set[tuple] = set()
        for (obj, time), group in groups.items():
            if len(group) < 2:
                continue
            for i, a in enumerate(group):
                for b in group[i + 1:]:
                    if a.actor == b.actor:
                        continue  # program order
                    if a.op == "read" and b.op == "read":
                        continue  # read/read pairs cannot race
                    key = (obj, a.actor, b.actor)
                    if key in seen:
                        continue
                    if _concurrent(a.clock, b.clock):
                        seen.add(key)
                        races.append(TieRace(obj, time, a, b))
        races.sort(key=lambda r: (r.obj, r.time, r.first.step))
        return races

    def findings(self, context: str = "") -> list[Finding]:
        """Races as ``RACE100`` error findings (empty when clean)."""
        where = f" [{context}]" if context else ""
        return [
            Finding(
                rule="RACE100",
                severity=Severity.ERROR,
                subject=race.obj,
                message=(
                    f"tie-break race on {race.obj!r} at t={race.time:g}"
                    f"{where}: {race.first.describe()} is unordered with "
                    f"{race.second.describe()} — the outcome depends on "
                    "same-timestamp handler order"
                ),
                fixit=(
                    "order the accesses with a happens-before edge (lock, "
                    "event, barrier) or make the state per-actor"
                ),
            )
            for race in self.races()
        ]
